//! The [`Trace`] container: a throughput time series sampled at a fixed
//! interval, plus the summary statistics the calibration tables and tests
//! are written against.

/// One throughput trace: bandwidth samples (Mbit/s) at a fixed interval.
///
/// This mirrors the shape of the Pensieve/Puffer trace files (one
/// capacity sample per time slot); the ABR simulator replays it as the
/// link's capacity process. Generators guarantee samples are finite and
/// non-negative; [`crate::fault`] re-establishes that invariant after
/// every transform, and [`crate::io::save_traces`] refuses to cache a
/// trace that violates it (a NaN sample is a serialization error, not a
/// silently poisoned dataset).
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Stable identifier, e.g. `"gamma_2_2-0007"`; split membership and
    /// cache round-trips are keyed on it.
    pub id: String,
    /// Seconds between consecutive samples.
    pub interval_s: f32,
    /// Bandwidth samples in Mbit/s.
    pub mbps: Vec<f32>,
}

/// Summary statistics of one trace (or corpus), computed in `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceStats {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
}

impl Trace {
    pub fn new(id: impl Into<String>, interval_s: f32, mbps: Vec<f32>) -> Self {
        Trace {
            id: id.into(),
            interval_s,
            mbps,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.mbps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mbps.is_empty()
    }

    /// Wall-clock span covered by the trace, in seconds.
    pub fn duration_s(&self) -> f32 {
        self.interval_s * self.mbps.len() as f32
    }

    /// True when every sample is finite and non-negative — the invariant
    /// the simulator and the JSON cache both rely on.
    pub fn is_wellformed(&self) -> bool {
        self.mbps.iter().all(|x| x.is_finite() && *x >= 0.0)
    }

    /// Mean/std/min/max over this trace's samples (population std; zeroes
    /// for an empty trace).
    pub fn stats(&self) -> TraceStats {
        stats_over(self.mbps.iter().map(|&x| x as f64))
    }

    /// Lag-1 autocorrelation coefficient — the statistic separating the
    /// temporally-correlated mobile corpora from the i.i.d. synthetic
    /// ones. Returns 0.0 for traces shorter than 2 samples or with zero
    /// variance.
    pub fn autocorr_lag1(&self) -> f64 {
        if self.mbps.len() < 2 {
            return 0.0;
        }
        let n = self.mbps.len() as f64;
        let mean = self.mbps.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = self
            .mbps
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        if var == 0.0 {
            return 0.0;
        }
        let cov = self
            .mbps
            .windows(2)
            .map(|w| (w[0] as f64 - mean) * (w[1] as f64 - mean))
            .sum::<f64>()
            / (n - 1.0);
        cov / var
    }
}

/// Mean/std/min/max of an arbitrary sample stream (population std).
pub fn stats_over(samples: impl Iterator<Item = f64>) -> TraceStats {
    let mut n = 0u64;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for x in samples {
        n += 1;
        sum += x;
        sum_sq += x * x;
        min = min.min(x);
        max = max.max(x);
    }
    if n == 0 {
        return TraceStats {
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let mean = sum / n as f64;
    let var = (sum_sq / n as f64 - mean * mean).max(0.0);
    TraceStats {
        mean,
        std: var.sqrt(),
        min,
        max,
    }
}

/// Pooled stats over every sample of every trace in a corpus.
pub fn corpus_stats(traces: &[Trace]) -> TraceStats {
    stats_over(traces.iter().flat_map(|t| t.mbps.iter().map(|&x| x as f64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let t = Trace::new("t", 1.0, vec![1.0, 2.0, 3.0, 4.0]);
        let s = t.stats();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(t.duration_s(), 4.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new("e", 1.0, vec![]);
        assert_eq!(t.stats().mean, 0.0);
        assert_eq!(t.autocorr_lag1(), 0.0);
        assert!(t.is_wellformed());
    }

    #[test]
    fn wellformed_rejects_nan_and_negative() {
        assert!(!Trace::new("a", 1.0, vec![1.0, f32::NAN]).is_wellformed());
        assert!(!Trace::new("b", 1.0, vec![1.0, f32::INFINITY]).is_wellformed());
        assert!(!Trace::new("c", 1.0, vec![-0.5]).is_wellformed());
        assert!(Trace::new("d", 1.0, vec![0.0, 7.5]).is_wellformed());
    }

    #[test]
    fn autocorr_detects_smooth_vs_alternating() {
        let smooth: Vec<f32> = (0..100).map(|i| (i as f32 / 10.0).sin() + 2.0).collect();
        let alternating: Vec<f32> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 3.0 })
            .collect();
        assert!(Trace::new("s", 1.0, smooth).autocorr_lag1() > 0.9);
        assert!(Trace::new("a", 1.0, alternating).autocorr_lag1() < -0.9);
    }

    #[test]
    fn corpus_stats_pool_samples() {
        let traces = vec![
            Trace::new("a", 1.0, vec![1.0, 3.0]),
            Trace::new("b", 1.0, vec![5.0]),
        ];
        let s = corpus_stats(&traces);
        assert_eq!(s.mean, 3.0);
        assert_eq!((s.min, s.max), (1.0, 5.0));
    }
}
