//! Deterministic train/validation/test splitting (DESIGN.md §1 row 3).
//!
//! The paper trains on 70% of each dataset and tests on 30%, with
//! hyper-parameter/threshold validation carved out of the training side
//! (30% of train). Trace realism work (Pensieve, SIGCOMM '17; Puffer,
//! NSDI '20) shows that train/test discipline dominates reported ABR
//! results, so membership here is a pure function of `(traces, seed)`:
//! re-running any experiment binary reproduces the exact same partition,
//! and cached models can never silently train on tomorrow's test set.

use osa_nn::rng::Rng;

use crate::dataset::Dataset;
use crate::trace::Trace;

/// Salt mixed into the seed so the split permutation is decoupled from
/// the generation stream (regenerating with more traces does not reshuffle
/// which RNG state the split sees).
const SPLIT_SALT: u64 = 0x7ab5_11d5_0f7e_57a1;

/// A disjoint, exhaustive train/validation/test partition of a corpus.
#[derive(Clone, Debug)]
pub struct Split {
    pub train: Vec<Trace>,
    pub validation: Vec<Trace>,
    pub test: Vec<Trace>,
}

impl Split {
    /// Partition `traces`: 30% (round-half-up) to test, then 30% of the
    /// remainder to validation, rest to train. Membership depends only on
    /// the trace *positions*, the corpus size, and `seed`.
    pub fn of(traces: Vec<Trace>, seed: u64) -> Self {
        let n = traces.len();
        let test_n = round_frac(n, 0.3);
        let val_n = round_frac(n - test_n, 0.3);

        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Rng::seed_from_u64(seed ^ SPLIT_SALT);
        rng.shuffle(&mut order);

        // Scatter back into role slots: position i of the shuffled order
        // decides trace order[i]'s role.
        let mut role = vec![2u8; n]; // 0 = test, 1 = validation, 2 = train
        for (i, &idx) in order.iter().enumerate() {
            role[idx] = if i < test_n {
                0
            } else if i < test_n + val_n {
                1
            } else {
                2
            };
        }

        let mut split = Split {
            train: Vec::with_capacity(n - test_n - val_n),
            validation: Vec::with_capacity(val_n),
            test: Vec::with_capacity(test_n),
        };
        for (t, r) in traces.into_iter().zip(&role) {
            match r {
                0 => split.test.push(t),
                1 => split.validation.push(t),
                _ => split.train.push(t),
            }
        }
        split
    }

    /// Generate a corpus of `count` traces of `len` samples from `seed`
    /// and partition it — the one-call entry point the quickstart and the
    /// bench pipeline use.
    pub fn generate(dataset: Dataset, count: usize, len: usize, seed: u64) -> Self {
        Split::of(dataset.generate(count, len, seed), seed)
    }

    /// Total number of traces across the three parts.
    pub fn len(&self) -> usize {
        self.train.len() + self.validation.len() + self.test.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// `round(n · frac)` in integer arithmetic (round-half-up), so split
/// sizes cannot drift with float rounding across platforms.
fn round_frac(n: usize, frac: f64) -> usize {
    debug_assert!((0.0..=1.0).contains(&frac));
    // frac is a small decimal (0.3); scale to per-mille to stay exact.
    let permille = (frac * 1000.0).round() as usize;
    (n * permille + 500) / 1000
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize) -> Vec<Trace> {
        (0..n)
            .map(|i| Trace::new(format!("t-{i:03}"), 1.0, vec![i as f32]))
            .collect()
    }

    #[test]
    fn ratios_match_contract() {
        let s = Split::of(corpus(100), 7);
        assert_eq!(s.test.len(), 30);
        assert_eq!(s.validation.len(), 21); // 30% of the 70 remaining
        assert_eq!(s.train.len(), 49);
    }

    #[test]
    fn small_corpora_never_lose_traces() {
        for n in [0, 1, 2, 3, 5, 7, 10] {
            let s = Split::of(corpus(n), 1);
            assert_eq!(s.len(), n, "n = {n}");
        }
    }

    #[test]
    fn relative_order_is_preserved_within_parts() {
        // Stable order keeps downstream iteration deterministic even if a
        // consumer zips traces with cached per-trace artifacts.
        let s = Split::of(corpus(50), 3);
        for part in [&s.train, &s.validation, &s.test] {
            let ids: Vec<_> = part.iter().map(|t| t.id.clone()).collect();
            let mut sorted = ids.clone();
            sorted.sort();
            assert_eq!(ids, sorted);
        }
    }
}
