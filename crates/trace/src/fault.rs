//! Fault injection for robustness experiments: outages, throughput
//! spikes, and rate limiting (DESIGN.md §1 row 3).
//!
//! Faults are pure transforms `Trace → Trace`; the original corpus is
//! never mutated, so a robustness sweep can layer faults over a cached
//! dataset without regenerating it. Every transform re-establishes the
//! bandwidth invariant through [`sanitize_mbps`]: whatever the input
//! contained (including NaN or ±∞ smuggled in through a hand-built
//! trace) and whatever the fault parameters are, the output samples are
//! finite and in `[0, MAX_MBPS]`.

use osa_nn::rng::Rng;

use crate::trace::Trace;

/// Upper clamp for fault-injected bandwidth, far above any real link this
/// workspace models (Belgium-LTE-like caps at 65 Mbit/s).
pub const MAX_MBPS: f32 = 10_000.0;

/// Map one sample onto the valid bandwidth range: non-finite values
/// become 0 (a dead link, the conservative reading), finite values clamp
/// into `[0, MAX_MBPS]`.
pub fn sanitize_mbps(x: f32) -> f32 {
    if x.is_finite() {
        x.clamp(0.0, MAX_MBPS)
    } else {
        0.0
    }
}

/// One injectable link fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Bandwidth drops to zero for `duration` slots starting at `start`
    /// (a tunnel, a handover gap).
    Outage { start: usize, duration: usize },
    /// Bandwidth is multiplied by `factor` for `duration` slots starting
    /// at `start` (a sudden empty cell for `factor > 1`, congestion for
    /// `factor < 1`).
    Spike {
        start: usize,
        duration: usize,
        factor: f32,
    },
    /// Bandwidth is capped at `cap_mbps` for the whole trace (a traffic
    /// shaper / throttled plan).
    RateLimit { cap_mbps: f32 },
}

impl Fault {
    /// Apply the fault, returning a new trace whose id records the
    /// transform (`"<id>+outage@start"` etc.) so faulted traces are
    /// distinguishable in caches and result tables.
    pub fn apply(&self, trace: &Trace) -> Trace {
        let mut mbps: Vec<f32> = trace.mbps.iter().copied().map(sanitize_mbps).collect();
        let id = match *self {
            Fault::Outage { start, duration } => {
                for x in mbps.iter_mut().skip(start).take(duration) {
                    *x = 0.0;
                }
                format!("{}+outage@{start}x{duration}", trace.id)
            }
            Fault::Spike {
                start,
                duration,
                factor,
            } => {
                for x in mbps.iter_mut().skip(start).take(duration) {
                    *x = sanitize_mbps(*x * factor);
                }
                format!("{}+spike@{start}x{duration}", trace.id)
            }
            Fault::RateLimit { cap_mbps } => {
                let cap = sanitize_mbps(cap_mbps);
                for x in mbps.iter_mut() {
                    *x = x.min(cap);
                }
                format!("{}+ratelimit", trace.id)
            }
        };
        Trace::new(id, trace.interval_s, mbps)
    }

    /// Draw a random fault scaled to a trace of `len` slots: kind, onset,
    /// duration (5–20% of the trace) and magnitude all come from `rng`.
    pub fn random(rng: &mut Rng, len: usize) -> Fault {
        let len = len.max(1);
        let duration = (len / 20 + rng.below(len / 5 + 1)).max(1);
        let start = rng.below(len);
        match rng.below(3) {
            0 => Fault::Outage { start, duration },
            1 => Fault::Spike {
                start,
                duration,
                factor: rng.range_f32(0.1, 8.0),
            },
            _ => Fault::RateLimit {
                cap_mbps: rng.range_f32(0.2, 5.0),
            },
        }
    }
}

/// Apply a sequence of faults left to right.
pub fn inject(trace: &Trace, faults: &[Fault]) -> Trace {
    faults.iter().fold(trace.clone(), |acc, f| f.apply(&acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Trace {
        Trace::new("base", 1.0, (1..=10).map(|i| i as f32).collect())
    }

    #[test]
    fn outage_zeroes_exactly_its_window() {
        let t = Fault::Outage {
            start: 3,
            duration: 4,
        }
        .apply(&base());
        assert_eq!(
            t.mbps,
            vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 8.0, 9.0, 10.0]
        );
        assert!(t.id.contains("outage"));
    }

    #[test]
    fn outage_past_the_end_is_truncated() {
        let t = Fault::Outage {
            start: 8,
            duration: 100,
        }
        .apply(&base());
        assert_eq!(&t.mbps[..8], &base().mbps[..8]);
        assert_eq!(&t.mbps[8..], &[0.0, 0.0]);
    }

    #[test]
    fn spike_scales_its_window() {
        let t = Fault::Spike {
            start: 0,
            duration: 2,
            factor: 3.0,
        }
        .apply(&base());
        assert_eq!(&t.mbps[..3], &[3.0, 6.0, 3.0]);
    }

    #[test]
    fn rate_limit_caps_everything() {
        let t = Fault::RateLimit { cap_mbps: 4.5 }.apply(&base());
        assert!(t.mbps.iter().all(|&x| x <= 4.5));
        assert_eq!(t.mbps[0], 1.0); // below the cap: untouched
    }

    #[test]
    fn adversarial_inputs_and_parameters_stay_wellformed() {
        let dirty = Trace::new(
            "dirty",
            1.0,
            vec![f32::NAN, f32::INFINITY, -3.0, 1.0e38, 2.0],
        );
        let faults = [
            Fault::Outage {
                start: 0,
                duration: 1,
            },
            Fault::Spike {
                start: 0,
                duration: 5,
                factor: f32::INFINITY,
            },
            Fault::Spike {
                start: 1,
                duration: 2,
                factor: f32::NAN,
            },
            Fault::Spike {
                start: 0,
                duration: 5,
                factor: -2.0,
            },
            Fault::RateLimit { cap_mbps: f32::NAN },
            Fault::RateLimit { cap_mbps: -1.0 },
        ];
        for f in faults {
            let out = f.apply(&dirty);
            assert!(out.is_wellformed(), "{f:?} -> {:?}", out.mbps);
            assert!(out.mbps.iter().all(|&x| x <= MAX_MBPS));
        }
        // Stacking all of them keeps the invariant too.
        assert!(inject(&dirty, &faults).is_wellformed());
    }
}
