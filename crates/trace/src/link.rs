//! Link-capacity integration: turning a fixed-interval Mbit/s trace into
//! "bytes downloadable over an arbitrary time window" and its inverse,
//! "how long does it take to move N bytes starting at t0".
//!
//! The ABR simulator (`osa-abr`) drives chunk downloads off these two
//! functions; they live here so the piecewise-constant integration logic
//! is defined — and unit-tested with exact arithmetic — in exactly one
//! place. Traces extend periodically past their recorded duration
//! (`t mod duration`), the convention Pensieve's simulator uses so a
//! 48-chunk session never runs off the end of a short capacity file.
//!
//! All arithmetic is `f64` and strictly sequential (slot by slot), so
//! every caller gets bit-identical results regardless of thread count.

use crate::trace::Trace;

/// Bytes per Mbit: the link unit conversion used throughout the ABR
/// stack (1 Mbit/s = 10⁶ bits/s = 125 000 bytes/s).
pub const BYTES_PER_MBIT: f64 = 125_000.0;

/// Total bytes one full period of `trace` can deliver
/// (Σᵢ mbps[i] · interval · 125 000). Zero for an all-outage trace.
pub fn bytes_per_period(trace: &Trace) -> f64 {
    let dt = trace.interval_s as f64;
    trace
        .mbps
        .iter()
        .map(|&m| m as f64 * BYTES_PER_MBIT * dt)
        .sum()
}

/// Bytes downloadable over the half-open window `[t0, t1)`, integrating
/// the piecewise-constant capacity with periodic extension.
///
/// Panics on an empty trace or a malformed window (`t0 < 0`, `t1 < t0`,
/// non-finite endpoints).
pub fn bytes_over(trace: &Trace, t0: f64, t1: f64) -> f64 {
    assert!(!trace.mbps.is_empty(), "bytes_over on an empty trace");
    assert!(
        t0.is_finite() && t1.is_finite() && t0 >= 0.0 && t1 >= t0,
        "malformed window [{t0}, {t1})"
    );
    let n = trace.mbps.len();
    let dt = trace.interval_s as f64;
    let period = dt * n as f64;

    // Whole periods contribute exactly `bytes_per_period` each; resolve
    // them in one step so a long window costs O(samples), not O(window).
    let whole = ((t1 - t0) / period).floor();
    let mut total = whole * bytes_per_period(trace);
    let mut t = t0 + whole * period;

    // The remainder spans less than one period: walk it slot by slot.
    while t < t1 {
        let idx = (t / dt).floor();
        let slot_end = (idx + 1.0) * dt;
        if slot_end <= t {
            // Degenerate float sliver (t astronomically large); the
            // remaining window is below representable slot resolution.
            break;
        }
        let seg_end = slot_end.min(t1);
        let rate = trace.mbps[idx as usize % n] as f64 * BYTES_PER_MBIT;
        total += rate * (seg_end - t);
        t = seg_end;
    }
    total
}

/// Seconds needed to transfer `bytes` starting at absolute time `t0`,
/// i.e. the smallest `d` with `bytes_over(trace, t0, t0 + d) ≥ bytes`.
///
/// Returns `f64::INFINITY` when the trace has zero capacity everywhere
/// (an all-outage trace can never finish a transfer); callers that feed
/// fault-injected traces must handle that. Panics on an empty trace,
/// negative/non-finite `bytes`, or a malformed `t0`.
pub fn transfer_time(trace: &Trace, t0: f64, bytes: f64) -> f64 {
    assert!(!trace.mbps.is_empty(), "transfer_time on an empty trace");
    assert!(t0.is_finite() && t0 >= 0.0, "malformed start time {t0}");
    assert!(
        bytes.is_finite() && bytes >= 0.0,
        "malformed byte count {bytes}"
    );
    if bytes == 0.0 {
        return 0.0;
    }
    let per = bytes_per_period(trace);
    if per <= 0.0 {
        return f64::INFINITY;
    }
    let n = trace.mbps.len();
    let dt = trace.interval_s as f64;
    let period = dt * n as f64;

    let mut remaining = bytes;
    let mut t = t0;
    // Fast-forward whole periods, keeping the remainder in (0, per] so
    // the slot walk below is bounded by ~one period.
    if remaining > per {
        let whole = ((remaining / per).ceil() - 1.0).max(0.0);
        t += whole * period;
        remaining -= whole * per;
    }

    // With `per > 0` at least one slot per period has positive rate, so
    // the walk finishes within a couple of periods; the iteration cap
    // only guards against a float pathology that would otherwise hang.
    for _ in 0..(8 * n + 64) {
        let idx = (t / dt).floor();
        let slot_end = (idx + 1.0) * dt;
        let rate = trace.mbps[idx as usize % n] as f64 * BYTES_PER_MBIT;
        let capacity = rate * (slot_end - t);
        if rate > 0.0 && capacity >= remaining {
            return (t + remaining / rate) - t0;
        }
        remaining -= capacity;
        t = slot_end;
    }
    unreachable!("transfer_time failed to converge: per={per}, bytes={bytes}, t0={t0}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_nn::rng::Rng;

    /// 8 Mbit/s is exactly 10⁶ bytes/s — every expected value below is
    /// exactly representable, so the assertions use `==`.
    fn constant8() -> Trace {
        Trace::new("const-8", 1.0, vec![8.0; 3])
    }

    #[test]
    fn constant_rate_window_is_exact() {
        let t = constant8();
        assert_eq!(bytes_over(&t, 0.0, 1.0), 1_000_000.0);
        assert_eq!(bytes_over(&t, 0.25, 0.75), 500_000.0);
        assert_eq!(bytes_over(&t, 0.0, 0.0), 0.0);
    }

    #[test]
    fn constant_rate_transfer_is_exact() {
        let t = constant8();
        assert_eq!(transfer_time(&t, 0.0, 1_000_000.0), 1.0);
        assert_eq!(transfer_time(&t, 0.5, 250_000.0), 0.25);
        assert_eq!(transfer_time(&t, 0.0, 0.0), 0.0);
    }

    #[test]
    fn piecewise_rates_integrate_slot_by_slot() {
        // Slot 0: 1 MB/s for 0.5 s = 500 kB; slot 1: 2 MB/s.
        let t = Trace::new("steps", 0.5, vec![8.0, 16.0]);
        assert_eq!(bytes_over(&t, 0.0, 1.0), 1_500_000.0);
        // 750 kB: 500 kB from slot 0, then 250 kB at 2 MB/s = 0.125 s.
        assert_eq!(transfer_time(&t, 0.0, 750_000.0), 0.625);
    }

    #[test]
    fn outage_slots_stall_the_transfer() {
        let t = Trace::new("outage", 1.0, vec![8.0, 0.0, 8.0]);
        // 1.5 MB: 1 MB in slot 0, nothing in slot 1, 0.5 MB in slot 2.
        assert_eq!(transfer_time(&t, 0.0, 1_500_000.0), 2.5);
        // [0.5, 2.5) sees half of slot 0 and half of slot 2.
        assert_eq!(bytes_over(&t, 0.5, 2.5), 1_000_000.0);
    }

    #[test]
    fn trace_extends_periodically() {
        let t = Trace::new("periodic", 1.0, vec![8.0]);
        // Window far past the recorded duration wraps around.
        assert_eq!(bytes_over(&t, 0.5, 2.5), 2_000_000.0);
        assert_eq!(transfer_time(&t, 0.0, 10_500_000.0), 10.5);
        // Start mid-way through a later period.
        assert_eq!(transfer_time(&t, 7.5, 1_000_000.0), 1.0);
    }

    #[test]
    fn whole_period_fast_forward_matches_slot_walk() {
        let t = Trace::new("steps", 0.5, vec![8.0, 16.0]);
        // 100 periods + a bit: per = 1.5 MB/period.
        let d = transfer_time(&t, 0.0, 150_750_000.0);
        // 100 periods deliver 150 MB in 100 s; the remaining 750 kB take
        // 0.625 s (see piecewise test).
        assert_eq!(d, 100.625);
    }

    #[test]
    fn all_zero_trace_never_finishes() {
        let t = Trace::new("dead", 1.0, vec![0.0, 0.0]);
        assert_eq!(transfer_time(&t, 0.0, 1.0), f64::INFINITY);
        assert_eq!(bytes_over(&t, 0.0, 100.0), 0.0);
        assert_eq!(bytes_per_period(&t), 0.0);
    }

    #[test]
    fn zero_bytes_is_instant_even_on_dead_links() {
        let t = Trace::new("dead", 1.0, vec![0.0]);
        assert_eq!(transfer_time(&t, 3.0, 0.0), 0.0);
    }

    #[test]
    fn transfer_and_integral_are_inverse() {
        // Property: bytes_over(t0, t0 + transfer_time(t0, b)) ≈ b for
        // random traces, start times, and sizes.
        let mut rng = Rng::seed_from_u64(0x11_4e_6b);
        for case in 0..50 {
            let len = 2 + (case % 7);
            let mbps: Vec<f32> = (0..len).map(|_| rng.range_f32(0.0, 20.0)).collect();
            let trace = Trace::new(format!("rnd-{case}"), 0.5 + (case % 3) as f32, mbps);
            if bytes_per_period(&trace) <= 0.0 {
                continue;
            }
            let t0 = rng.range_f32(0.0, 30.0) as f64;
            let bytes = rng.range_f32(1.0, 5e6) as f64;
            let d = transfer_time(&trace, t0, bytes);
            let back = bytes_over(&trace, t0, t0 + d);
            let rel = (back - bytes).abs() / bytes;
            assert!(rel < 1e-9, "case {case}: {bytes} vs {back} (rel {rel})");
        }
    }
}
