//! JSON trace caching on top of `osa_nn::json` (DESIGN.md §1 row 3).
//!
//! The bench harness generates datasets once and replays them across
//! figure binaries, so traces round-trip through JSON bit-exactly (every
//! `f32` survives the `f64` codec unchanged). Serialization is fallible:
//! a trace carrying a non-finite sample yields [`IoError::NonFinite`]
//! rather than panicking mid-benchmark and losing the run.
//!
//! Document schema (version 1):
//!
//! ```json
//! {"version":1,
//!  "traces":[{"id":"gamma_2_2-0000","interval_s":1,"mbps":[2.5,0.25]}]}
//! ```

use std::fmt;
use std::path::Path;

use osa_nn::json::{obj, JsonError, NonFiniteError, Value};

use crate::trace::Trace;

/// Schema version written by [`save_traces`]; bumped on incompatible
/// layout changes so stale caches fail loudly instead of mis-loading.
pub const FORMAT_VERSION: f64 = 1.0;

/// Everything that can go wrong caching traces to disk or reading them
/// back.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not valid JSON.
    Parse(JsonError),
    /// A trace contains NaN/±∞ and cannot be cached.
    NonFinite(NonFiniteError),
    /// The JSON is valid but not a trace document (wrong version, missing
    /// or mistyped field).
    Schema(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "trace I/O failed: {e}"),
            IoError::Parse(e) => write!(f, "trace file is not valid JSON: {e}"),
            IoError::NonFinite(e) => write!(f, "trace is not serializable: {e}"),
            IoError::Schema(msg) => write!(f, "trace document schema violation: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<JsonError> for IoError {
    fn from(e: JsonError) -> Self {
        IoError::Parse(e)
    }
}

impl From<NonFiniteError> for IoError {
    fn from(e: NonFiniteError) -> Self {
        IoError::NonFinite(e)
    }
}

/// Encode one trace as a JSON value.
pub fn trace_to_value(t: &Trace) -> Value {
    obj(vec![
        ("id", Value::Str(t.id.clone())),
        ("interval_s", Value::Num(t.interval_s as f64)),
        (
            "mbps",
            Value::Arr(t.mbps.iter().map(|&x| Value::Num(x as f64)).collect()),
        ),
    ])
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, IoError> {
    v.get(key)
        .ok_or_else(|| IoError::Schema(format!("missing field '{key}'")))
}

/// Decode one trace, validating field types.
pub fn trace_from_value(v: &Value) -> Result<Trace, IoError> {
    let id = field(v, "id")?
        .as_str()
        .ok_or_else(|| IoError::Schema("'id' must be a string".into()))?;
    let interval_s = field(v, "interval_s")?
        .as_f32()
        .ok_or_else(|| IoError::Schema("'interval_s' must be a number".into()))?;
    let mbps = field(v, "mbps")?
        .as_arr()
        .ok_or_else(|| IoError::Schema("'mbps' must be an array".into()))?
        .iter()
        .map(|x| {
            x.as_f32()
                .ok_or_else(|| IoError::Schema("'mbps' entries must be numbers".into()))
        })
        .collect::<Result<Vec<f32>, _>>()?;
    Ok(Trace::new(id, interval_s, mbps))
}

/// Encode a corpus as a versioned document.
pub fn traces_to_value(traces: &[Trace]) -> Value {
    obj(vec![
        ("version", Value::Num(FORMAT_VERSION)),
        (
            "traces",
            Value::Arr(traces.iter().map(trace_to_value).collect()),
        ),
    ])
}

/// Decode a versioned corpus document.
pub fn traces_from_value(v: &Value) -> Result<Vec<Trace>, IoError> {
    let version = field(v, "version")?
        .as_f64()
        .ok_or_else(|| IoError::Schema("'version' must be a number".into()))?;
    if version != FORMAT_VERSION {
        return Err(IoError::Schema(format!(
            "unsupported trace format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    field(v, "traces")?
        .as_arr()
        .ok_or_else(|| IoError::Schema("'traces' must be an array".into()))?
        .iter()
        .map(trace_from_value)
        .collect()
}

/// Serialize a corpus to a compact JSON string. Fails (instead of
/// panicking) when any sample is non-finite.
pub fn traces_to_json(traces: &[Trace]) -> Result<String, IoError> {
    Ok(traces_to_value(traces).try_to_json()?)
}

/// Parse a corpus from a JSON string.
pub fn traces_from_json(text: &str) -> Result<Vec<Trace>, IoError> {
    traces_from_value(&Value::parse(text)?)
}

/// Cache a corpus to `path` (compact JSON + trailing newline).
pub fn save_traces<P: AsRef<Path>>(path: P, traces: &[Trace]) -> Result<(), IoError> {
    let text = traces_to_json(traces)?;
    std::fs::write(path, text + "\n")?;
    Ok(())
}

/// Reload a cached corpus from `path`.
pub fn load_traces<P: AsRef<Path>>(path: P) -> Result<Vec<Trace>, IoError> {
    traces_from_json(std::fs::read_to_string(path)?.trim_end())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_trace_roundtrips_bit_exactly() {
        let t = Trace::new("x", 0.5, vec![0.1, 1.0 / 3.0, 4.25, 0.0]);
        let back = trace_from_value(&trace_to_value(&t)).unwrap();
        assert_eq!(back.id, t.id);
        assert_eq!(back.interval_s.to_bits(), t.interval_s.to_bits());
        for (a, b) in back.mbps.iter().zip(&t.mbps) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nan_sample_is_an_error_not_a_panic() {
        let t = Trace::new("bad", 1.0, vec![1.0, f32::NAN]);
        match traces_to_json(&[t]) {
            Err(IoError::NonFinite(_)) => {}
            other => panic!("expected NonFinite error, got {other:?}"),
        }
    }

    #[test]
    fn schema_violations_are_reported() {
        for (bad, why) in [
            ("{\"traces\":[]}", "missing version"),
            ("{\"version\":99,\"traces\":[]}", "wrong version"),
            ("{\"version\":1}", "missing traces"),
            (
                "{\"version\":1,\"traces\":[{\"id\":\"a\"}]}",
                "missing fields",
            ),
            (
                "{\"version\":1,\"traces\":[{\"id\":1,\"interval_s\":1,\"mbps\":[]}]}",
                "id not a string",
            ),
        ] {
            match traces_from_json(bad) {
                Err(IoError::Schema(_)) => {}
                other => panic!("{why}: expected Schema error, got {other:?}"),
            }
        }
        assert!(matches!(
            traces_from_json("not json"),
            Err(IoError::Parse(_))
        ));
    }
}
