//! Markov-modulated Gaussian generators for the two "real-world-like"
//! mobile corpora (DESIGN.md §2.2).
//!
//! The paper evaluates on the Norway 3G/HSDPA dataset (Riiser et al.,
//! MMSys '13) and the Belgium 4G/LTE dataset (van der Hooft et al., 2016),
//! neither of which is redistributable offline. What the evaluation needs
//! from them is (a) temporally-correlated, regime-switching dynamics that
//! are *not* i.i.d., and (b) two mutually different "real" distributions.
//! A hidden Markov chain over a few link regimes — deep fades, handover
//! outages, steady cruising, high-rate bursts — with Gaussian emissions
//! and AR(1) smoothing inside each regime reproduces both properties.
//!
//! Calibration targets (published summary statistics of the originals):
//!
//! | corpus | range (Mbit/s) | mean | character |
//! |--------|----------------|------|-----------|
//! | Norway 3G-like | ≈ 0 – 6.5 | ≈ 2 | strong temporal correlation, commute-path outages |
//! | Belgium LTE-like | ≈ 0 – 65 | ≈ 25–35 | high variance, bimodal (low/high regime), brief outages |
//!
//! The *measured* statistics of the shipped configurations are recorded in
//! `EXPERIMENTS.md` (dataset table) and pinned by `tests/mobile_stats.rs`.

use osa_nn::rng::Rng;

use crate::trace::Trace;

/// One link regime: a Gaussian emission the chain dwells in.
#[derive(Clone, Copy, Debug)]
pub struct Regime {
    pub name: &'static str,
    pub mean_mbps: f32,
    pub std_mbps: f32,
}

/// A Markov-modulated Gaussian process over link regimes.
///
/// Each step the hidden state follows the row-stochastic `transition`
/// matrix; the emitted bandwidth is an AR(1) blend of the previous sample
/// and a fresh Gaussian draw from the current regime, clamped into
/// `[floor_mbps, cap_mbps]`. The AR blend gives within-regime temporal
/// correlation; the chain gives the longer-timescale regime persistence
/// (fades and outages lasting several seconds) that separates mobile
/// traces from i.i.d. samplers.
#[derive(Clone, Debug)]
pub struct MarkovGaussian {
    pub name: &'static str,
    pub regimes: Vec<Regime>,
    /// `transition[i][j]` = P(next = j | current = i); rows sum to 1.
    pub transition: Vec<Vec<f64>>,
    /// AR(1) coefficient on the previous emitted sample, in `[0, 1)`.
    pub ar: f32,
    pub floor_mbps: f32,
    pub cap_mbps: f32,
}

impl MarkovGaussian {
    /// Norway 3G/HSDPA-like process: slow links (≈ 0–6.5 Mbit/s, mean
    /// ≈ 2), long coherent stretches, and hard outages mimicking the
    /// tram/ferry handover gaps of the original logs.
    pub fn norway_3g() -> Self {
        MarkovGaussian {
            name: "norway",
            regimes: vec![
                Regime {
                    name: "outage",
                    mean_mbps: 0.0,
                    std_mbps: 0.05,
                },
                Regime {
                    name: "fade",
                    mean_mbps: 0.6,
                    std_mbps: 0.25,
                },
                Regime {
                    name: "steady",
                    mean_mbps: 2.2,
                    std_mbps: 0.6,
                },
                Regime {
                    name: "burst",
                    mean_mbps: 4.6,
                    std_mbps: 0.8,
                },
            ],
            transition: vec![
                vec![0.80, 0.15, 0.05, 0.00],
                vec![0.04, 0.80, 0.15, 0.01],
                vec![0.01, 0.07, 0.85, 0.07],
                vec![0.00, 0.02, 0.18, 0.80],
            ],
            ar: 0.6,
            floor_mbps: 0.0,
            cap_mbps: 6.5,
        }
    }

    /// Belgium 4G/LTE-like process: fast links (≈ 0–65 Mbit/s), high
    /// variance, and the bimodal low/high split (indoor/congested vs
    /// open-road cells) reported for the original dataset, with brief
    /// handover outages.
    pub fn belgium_lte() -> Self {
        MarkovGaussian {
            name: "belgium",
            regimes: vec![
                Regime {
                    name: "outage",
                    mean_mbps: 0.0,
                    std_mbps: 0.10,
                },
                Regime {
                    name: "low",
                    mean_mbps: 12.0,
                    std_mbps: 4.0,
                },
                Regime {
                    name: "high",
                    mean_mbps: 42.0,
                    std_mbps: 8.0,
                },
                Regime {
                    name: "burst",
                    mean_mbps: 58.0,
                    std_mbps: 6.0,
                },
            ],
            transition: vec![
                vec![0.70, 0.25, 0.05, 0.00],
                vec![0.02, 0.85, 0.12, 0.01],
                vec![0.01, 0.10, 0.80, 0.09],
                vec![0.00, 0.02, 0.23, 0.75],
            ],
            ar: 0.5,
            floor_mbps: 0.0,
            cap_mbps: 65.0,
        }
    }

    /// Sample the next hidden state from the current one's transition row.
    fn step_state(&self, state: usize, rng: &mut Rng) -> usize {
        let row = &self.transition[state];
        let u = rng.next_f64();
        let mut acc = 0.0;
        for (j, p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                return j;
            }
        }
        // Row sums to 1 up to rounding; attribute the sliver to the last
        // regime.
        row.len() - 1
    }

    /// Generate one trace of `len` samples at 1 s intervals.
    pub fn generate(&self, id: impl Into<String>, len: usize, rng: &mut Rng) -> Trace {
        debug_assert!(self.regimes.len() == self.transition.len());
        debug_assert!(self
            .transition
            .iter()
            .all(|row| (row.iter().sum::<f64>() - 1.0).abs() < 1e-9));
        // Random initial regime: traces in a corpus start in different
        // link conditions, like recordings starting mid-commute.
        let mut state = rng.below(self.regimes.len());
        let r = &self.regimes[state];
        let mut level = rng
            .normal(r.mean_mbps, r.std_mbps)
            .clamp(self.floor_mbps, self.cap_mbps);
        let mut mbps = Vec::with_capacity(len);
        for _ in 0..len {
            state = self.step_state(state, rng);
            let r = &self.regimes[state];
            let target = rng.normal(r.mean_mbps, r.std_mbps);
            level =
                (self.ar * level + (1.0 - self.ar) * target).clamp(self.floor_mbps, self.cap_mbps);
            mbps.push(level);
        }
        Trace::new(id, 1.0, mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_respect_floor_and_cap() {
        for gen in [MarkovGaussian::norway_3g(), MarkovGaussian::belgium_lte()] {
            let mut rng = Rng::seed_from_u64(3);
            let t = gen.generate("t", 2_000, &mut rng);
            assert!(t.is_wellformed());
            let s = t.stats();
            assert!(s.min >= gen.floor_mbps as f64);
            assert!(s.max <= gen.cap_mbps as f64);
        }
    }

    #[test]
    fn regimes_produce_temporal_correlation() {
        let mut rng = Rng::seed_from_u64(4);
        let t = MarkovGaussian::norway_3g().generate("t", 5_000, &mut rng);
        assert!(
            t.autocorr_lag1() > 0.5,
            "mobile-like traces must be temporally correlated, got {}",
            t.autocorr_lag1()
        );
    }

    #[test]
    fn transition_rows_are_stochastic() {
        for gen in [MarkovGaussian::norway_3g(), MarkovGaussian::belgium_lte()] {
            for row in &gen.transition {
                assert_eq!(row.len(), gen.regimes.len());
                assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(row.iter().all(|p| (0.0..=1.0).contains(p)));
            }
        }
    }
}
