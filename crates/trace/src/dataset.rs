//! The [`Dataset`] enum: one seeded generation API over all six corpora
//! of the paper's evaluation (§3.1).

use osa_nn::rng::Rng;

use crate::mobile::MarkovGaussian;
use crate::samplers;
use crate::trace::Trace;

/// The six throughput datasets of the paper's 6×6 train/test matrix:
/// two mobile-like Markov-modulated corpora and four synthetic i.i.d.
/// distributions (parameters exactly as in §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Norway 3G/HSDPA-like (Markov-modulated Gaussian substitute).
    Norway,
    /// Belgium 4G/LTE-like (Markov-modulated Gaussian substitute).
    Belgium,
    /// Gamma(shape 1, scale 2): mean 2, variance 4 Mbit/s.
    Gamma12,
    /// Gamma(shape 2, scale 2): mean 4, variance 8 Mbit/s.
    Gamma22,
    /// Logistic(location 4, scale 0.5): mean 4, variance π²/12 Mbit/s.
    Logistic,
    /// Exponential(rate 1): mean 1, variance 1 Mbit/s.
    Exp,
}

impl Dataset {
    /// All six datasets in the paper's presentation order (empirical-like
    /// first).
    pub const ALL: [Dataset; 6] = [
        Dataset::Norway,
        Dataset::Belgium,
        Dataset::Gamma12,
        Dataset::Gamma22,
        Dataset::Logistic,
        Dataset::Exp,
    ];

    /// Stable snake_case name used in trace ids, cache filenames, and the
    /// result tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Norway => "norway",
            Dataset::Belgium => "belgium",
            Dataset::Gamma12 => "gamma_1_2",
            Dataset::Gamma22 => "gamma_2_2",
            Dataset::Logistic => "logistic",
            Dataset::Exp => "exponential",
        }
    }

    /// True for the two mobile-like corpora (temporally correlated,
    /// regime-switching), false for the i.i.d. synthetics.
    pub fn is_empirical_like(self) -> bool {
        matches!(self, Dataset::Norway | Dataset::Belgium)
    }

    /// The paper's ND feature-window size k (§3.1): 5 on the empirical
    /// datasets, 30 on the synthetic ones.
    pub fn novelty_window(self) -> usize {
        if self.is_empirical_like() {
            5
        } else {
            30
        }
    }

    /// One i.i.d. bandwidth draw in Mbit/s, clamped non-negative.
    ///
    /// Only defined for the four synthetic datasets (the mobile corpora
    /// are not i.i.d.; their draws live in [`MarkovGaussian`]).
    /// The logistic has unbounded support, so its rare negative draws
    /// (P ≈ 3·10⁻⁴ at location 4, scale 0.5) clamp to 0 — a link cannot
    /// deliver negative throughput.
    pub fn sample_mbps(self, rng: &mut Rng) -> f32 {
        let x = match self {
            Dataset::Gamma12 => samplers::gamma(rng, 1.0, 2.0),
            Dataset::Gamma22 => samplers::gamma(rng, 2.0, 2.0),
            Dataset::Logistic => samplers::logistic(rng, 4.0, 0.5),
            Dataset::Exp => samplers::exponential(rng, 1.0),
            Dataset::Norway | Dataset::Belgium => {
                panic!("{} is not an i.i.d. dataset", self.name())
            }
        };
        (x as f32).max(0.0)
    }

    /// Generate one trace of `len` samples at 1 s intervals from an
    /// explicit RNG.
    pub fn generate_trace(self, id: impl Into<String>, len: usize, rng: &mut Rng) -> Trace {
        match self {
            Dataset::Norway => MarkovGaussian::norway_3g().generate(id, len, rng),
            Dataset::Belgium => MarkovGaussian::belgium_lte().generate(id, len, rng),
            _ => {
                let mbps = (0..len).map(|_| self.sample_mbps(rng)).collect();
                Trace::new(id, 1.0, mbps)
            }
        }
    }

    /// Generate a corpus of `count` traces of `len` samples each from a
    /// u64 seed, parallelized over the current thread pool.
    ///
    /// Each trace gets its own sub-seeded RNG (drawn from a master
    /// stream), so the corpus is bit-reproducible, individual traces are
    /// independent of their neighbours' lengths — and, since PR 5,
    /// embarrassingly parallel: the sub-seeds are drawn serially up
    /// front, then each worker lane synthesizes a disjoint contiguous run
    /// of traces. The corpus is byte-identical for every worker count
    /// (pinned by `tests/parallel_corpus.rs`).
    pub fn generate(self, count: usize, len: usize, seed: u64) -> Vec<Trace> {
        let mut master = Rng::seed_from_u64(seed);
        let subs: Vec<u64> = (0..count).map(|_| master.next_u64()).collect();
        let mut out: Vec<Option<Trace>> = Vec::with_capacity(count);
        out.resize_with(count, || None);
        osa_runtime::with_current(|pool| {
            pool.parallel_for_slice(&mut out, 1, |_, first, slots| {
                for (offset, slot) in slots.iter_mut().enumerate() {
                    let i = first + offset;
                    let mut rng = Rng::seed_from_u64(subs[i]);
                    *slot =
                        Some(self.generate_trace(format!("{}-{i:04}", self.name()), len, &mut rng));
                }
            });
        });
        out.into_iter()
            .map(|t| t.expect("every trace generated"))
            .collect()
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let names: std::collections::BTreeSet<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), Dataset::ALL.len());
        assert_eq!(Dataset::Gamma22.to_string(), "gamma_2_2");
    }

    #[test]
    fn novelty_windows_match_paper() {
        assert_eq!(Dataset::Norway.novelty_window(), 5);
        assert_eq!(Dataset::Belgium.novelty_window(), 5);
        assert_eq!(Dataset::Gamma12.novelty_window(), 30);
        assert_eq!(Dataset::Exp.novelty_window(), 30);
    }

    #[test]
    fn generated_corpora_are_wellformed() {
        for d in Dataset::ALL {
            let traces = d.generate(3, 50, 42);
            assert_eq!(traces.len(), 3);
            for t in &traces {
                assert_eq!(t.len(), 50);
                assert!(t.is_wellformed(), "{} produced a malformed trace", d);
            }
            // Ids are unique within the corpus.
            let ids: std::collections::BTreeSet<_> = traces.iter().map(|t| t.id.as_str()).collect();
            assert_eq!(ids.len(), traces.len());
        }
    }

    #[test]
    #[should_panic(expected = "not an i.i.d. dataset")]
    fn mobile_datasets_have_no_iid_sampler() {
        let mut rng = Rng::seed_from_u64(1);
        Dataset::Norway.sample_mbps(&mut rng);
    }
}
