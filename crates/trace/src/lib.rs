//! `osa-trace` — network throughput trace datasets (DESIGN.md §1 row 3).
//!
//! The paper's entire evaluation (§3.1) runs over six throughput datasets:
//! two empirical mobile corpora (Norway 3G/HSDPA, Belgium 4G/LTE) and four
//! synthetic i.i.d. distributions (Gamma(1,2), Gamma(2,2),
//! Logistic(μ=4, s=0.5), Exp(1)). The real traces are not redistributable,
//! so the two mobile corpora are substituted by Markov-modulated Gaussian
//! generators calibrated to their published summary statistics
//! (DESIGN.md §2.2); the four i.i.d. samplers are implemented from scratch
//! (Marsaglia–Tsang gamma, inverse-CDF logistic/exponential).
//!
//! # Layout
//!
//! - [`trace`] — the [`Trace`] sample container and its summary
//!   statistics;
//! - [`samplers`] — the i.i.d. samplers plus the guarded quantile
//!   functions they are built on;
//! - [`mobile`] — the Markov-modulated Gaussian processes behind the
//!   Norway-3G-like and Belgium-LTE-like corpora;
//! - [`dataset`] — the [`Dataset`] enum tying the six corpora to one
//!   seeded generation API;
//! - [`split`] — deterministic 70/30 train/test splitting with validation
//!   carved from the training side;
//! - [`fault`] — outage / spike / rate-limit transforms for robustness
//!   experiments;
//! - [`link`] — piecewise-constant capacity integration (bytes over a
//!   window, transfer durations) for the ABR chunk simulator;
//! - [`io`] — JSON trace caching on top of `osa_nn::json`.
//!
//! # Determinism
//!
//! Every generator takes either an explicit [`osa_nn::rng::Rng`] or a u64
//! seed; the same seed always reproduces the same traces bit-for-bit and
//! the same train/validation/test membership, which the cacheable bench
//! pipeline and the paper's 6×6 train/test matrix rely on.
//!
//! # Example
//!
//! ```
//! use osa_trace::prelude::*;
//!
//! let split = Split::generate(Dataset::Gamma22, 20, 120, 42);
//! assert_eq!(split.len(), 20);
//! let stats = split.train[0].stats();
//! assert!(stats.mean > 0.0 && stats.max.is_finite());
//!
//! // Robustness experiments perturb traces without regenerating them.
//! let faulted = Fault::Outage { start: 10, duration: 5 }.apply(&split.test[0]);
//! assert!(faulted.mbps.iter().all(|x| x.is_finite() && *x >= 0.0));
//! ```
#![forbid(unsafe_code)]

pub mod dataset;
pub mod fault;
pub mod io;
pub mod link;
pub mod mobile;
pub mod samplers;
pub mod split;
pub mod trace;

pub use dataset::Dataset;
pub use fault::{inject, Fault, MAX_MBPS};
pub use io::{load_traces, save_traces, IoError};
pub use link::{bytes_over, bytes_per_period, transfer_time, BYTES_PER_MBIT};
pub use mobile::MarkovGaussian;
pub use split::Split;
pub use trace::{Trace, TraceStats};

/// Number of datasets the paper's cross-evaluation matrix is built over.
pub const NUM_DATASETS: usize = 6;

/// One-stop import for downstream crates, examples, and tests.
pub mod prelude {
    pub use crate::dataset::Dataset;
    pub use crate::fault::{inject, Fault, MAX_MBPS};
    pub use crate::io::{load_traces, save_traces, IoError};
    pub use crate::link::{bytes_over, bytes_per_period, transfer_time, BYTES_PER_MBIT};
    pub use crate::mobile::MarkovGaussian;
    pub use crate::split::Split;
    pub use crate::trace::{Trace, TraceStats};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_count_matches_paper_matrix() {
        assert_eq!(Dataset::ALL.len(), NUM_DATASETS);
    }
}
