//! `osa-trace` — network throughput trace datasets (DESIGN.md §1 row 3).
//!
//! # Contract
//!
//! This crate will provide the six throughput datasets the paper evaluates
//! on, all generated from explicit seeded RNG state:
//!
//! - two "real-world-like" generators substituting the Norway 3G/HSDPA and
//!   Belgium 4G/LTE datasets: Markov-modulated Gaussian processes whose
//!   regimes (deep fades, handover outages, high-rate bursts) match the
//!   published summary statistics of the originals (DESIGN.md §2.2);
//! - four synthetic i.i.d. samplers implemented from scratch:
//!   Gamma(1,2) and Gamma(2,2) via Marsaglia–Tsang, Logistic(4, 0.5) and
//!   Exp(1) via inverse-CDF;
//! - 70/30 train/test splits with validation carved from the training side;
//! - fault injection (outages, throughput spikes, rate limiting) for
//!   robustness experiments;
//! - serde-JSON trace I/O so generated datasets can be cached by the bench
//!   harness.
#![forbid(unsafe_code)]

/// Marks the crate as scaffolded but not yet implemented; removed once the
/// dataset generators land.
pub const IMPLEMENTED: bool = false;

/// Number of datasets the paper's cross-evaluation matrix is built over.
pub const NUM_DATASETS: usize = 6;

#[cfg(test)]
mod tests {
    #[test]
    fn scaffold_compiles() {
        assert_eq!(super::NUM_DATASETS, 6);
    }
}
