//! The four i.i.d. throughput samplers of the paper's §3.1, implemented
//! from scratch: Gamma via Marsaglia–Tsang, Logistic and Exponential via
//! inverse-CDF.
//!
//! Each distribution comes as a pair: a pure *quantile* function taking
//! `u ∈ [0, 1]` (so the u-boundary behaviour is testable directly) and a
//! sampling function drawing `u` from an [`Rng`]. The quantile functions
//! clamp `u` into the open unit interval before transforming it:
//! `Rng::next_f64` can return exactly 0, and a careless caller can pass
//! exactly 1, either of which would otherwise send `ln(u)`, `ln(1-u)` or
//! `u/(1-u)` to a non-finite value that then poisons a whole generated
//! dataset. With the clamp, every quantile below is finite on the entire
//! closed interval.

use osa_nn::rng::Rng;

/// Largest `f64` strictly below 1.
const ONE_BELOW: f64 = 1.0 - f64::EPSILON / 2.0;

/// Clamp `u` into the open unit interval `(0, 1)`.
fn clamp_unit_open(u: f64) -> f64 {
    u.clamp(f64::MIN_POSITIVE, ONE_BELOW)
}

/// Exponential(rate) quantile: `-ln(1-u) / rate`, finite for all
/// `u ∈ [0, 1]` thanks to the open-interval clamp.
pub fn exponential_quantile(u: f64, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    -(1.0 - clamp_unit_open(u)).ln() / rate
}

/// Draw from Exponential(rate). Mean `1/rate`, variance `1/rate²`.
pub fn exponential(rng: &mut Rng, rate: f64) -> f64 {
    exponential_quantile(rng.next_f64(), rate)
}

/// Logistic(location, scale) quantile: `location + scale·ln(u/(1-u))`,
/// finite for all `u ∈ [0, 1]` thanks to the open-interval clamp.
pub fn logistic_quantile(u: f64, location: f64, scale: f64) -> f64 {
    debug_assert!(scale > 0.0);
    let u = clamp_unit_open(u);
    location + scale * (u / (1.0 - u)).ln()
}

/// Draw from Logistic(location, scale). Mean `location`, variance
/// `scale²·π²/3`.
pub fn logistic(rng: &mut Rng, location: f64, scale: f64) -> f64 {
    logistic_quantile(rng.next_f64(), location, scale)
}

/// Standard normal in `f64` via Box–Muller (the `f32` generator in
/// `osa_nn::rng` is too coarse for the gamma squeeze test).
fn standard_normal(rng: &mut Rng) -> f64 {
    // 1 - u ∈ (0, 1], so the log is finite.
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw from Gamma(shape, scale) with the Marsaglia–Tsang method
/// ("A simple method for generating gamma variables", 2000).
///
/// Mean `shape·scale`, variance `shape·scale²`. For `shape ≥ 1` this is
/// the squeeze/accept loop on `d·(1 + c·x)³`; for `shape < 1` the
/// standard boost `Gamma(a) = Gamma(a+1)·U^{1/a}` is applied, with `U`
/// clamped away from 0 so the power never produces a spurious 0⁻ or NaN.
pub fn gamma(rng: &mut Rng, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "gamma requires positive shape and scale"
    );
    if shape < 1.0 {
        let u = clamp_unit_open(rng.next_f64());
        return gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = clamp_unit_open(rng.next_f64());
        // Squeeze test accepts ~98% of draws without a log.
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v * scale;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite regression: quantiles must stay finite at both ends
    /// of the `next_f64` range — `u = 0` exactly (which `next_f64` *does*
    /// return) and `u = 1` (one careless `1.0 - x` away).
    #[test]
    fn quantiles_finite_at_unit_interval_boundaries() {
        for u in [0.0, f64::MIN_POSITIVE, 0.5, ONE_BELOW, 1.0] {
            let e = exponential_quantile(u, 1.0);
            assert!(e.is_finite() && e >= 0.0, "exp({u}) = {e}");
            let l = logistic_quantile(u, 4.0, 0.5);
            assert!(l.is_finite(), "logistic({u}) = {l}");
        }
        // Monotone and correctly ordered across the boundary clamp.
        assert!(exponential_quantile(0.0, 1.0) < exponential_quantile(1.0, 1.0));
        assert!(logistic_quantile(0.0, 4.0, 0.5) < logistic_quantile(1.0, 4.0, 0.5));
    }

    #[test]
    fn quantiles_hit_known_medians() {
        assert!((exponential_quantile(0.5, 1.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((logistic_quantile(0.5, 4.0, 0.5) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_stays_finite_and_positive_for_tiny_shapes() {
        // shape < 1 exercises the boost path where U^{1/shape} underflows
        // toward 0 aggressively; samples may be 0 after underflow but
        // must never be negative or non-finite.
        let mut rng = Rng::seed_from_u64(5);
        for &shape in &[0.05, 0.3, 0.9, 1.0, 2.0, 7.5] {
            for _ in 0..5_000 {
                let x = gamma(&mut rng, shape, 2.0);
                assert!(x.is_finite() && x >= 0.0, "gamma({shape}) = {x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive shape")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = Rng::seed_from_u64(1);
        gamma(&mut rng, 0.0, 1.0);
    }
}
