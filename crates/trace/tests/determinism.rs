//! 50-seed determinism sweep for every trace generator, mirroring the nn
//! serialization round-trip suite: the same seed must reproduce every
//! corpus bit-for-bit, and split membership must be stable across runs —
//! the property the cacheable bench pipeline and the paper's 6×6
//! train/test matrix rely on.

use osa_trace::prelude::*;

const SEEDS: u64 = 50;

fn assert_bit_identical(a: &[Trace], b: &[Trace], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: corpus size differs");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{context}: ids differ");
        assert_eq!(
            x.interval_s.to_bits(),
            y.interval_s.to_bits(),
            "{context}: interval differs"
        );
        assert_eq!(x.mbps.len(), y.mbps.len(), "{context}: length differs");
        for (i, (p, q)) in x.mbps.iter().zip(&y.mbps).enumerate() {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{context}: sample {i} of {} differs: {p} vs {q}",
                x.id
            );
        }
    }
}

fn ids(traces: &[Trace]) -> Vec<&str> {
    traces.iter().map(|t| t.id.as_str()).collect()
}

#[test]
fn same_seed_is_bit_identical_for_every_generator() {
    for dataset in Dataset::ALL {
        for seed in 0..SEEDS {
            let a = dataset.generate(2, 40, seed);
            let b = dataset.generate(2, 40, seed);
            assert_bit_identical(&a, &b, &format!("{dataset} seed {seed}"));
        }
    }
}

#[test]
fn different_seeds_produce_different_corpora() {
    for dataset in Dataset::ALL {
        let a = dataset.generate(1, 64, 1);
        let b = dataset.generate(1, 64, 2);
        assert!(
            a[0].mbps.iter().zip(&b[0].mbps).any(|(x, y)| x != y),
            "{dataset}: seeds 1 and 2 produced identical traces"
        );
    }
}

#[test]
fn split_membership_is_stable_across_runs() {
    for dataset in Dataset::ALL {
        for seed in 0..SEEDS {
            let a = Split::generate(dataset, 21, 10, seed);
            let b = Split::generate(dataset, 21, 10, seed);
            assert_eq!(ids(&a.train), ids(&b.train), "{dataset} seed {seed}");
            assert_eq!(
                ids(&a.validation),
                ids(&b.validation),
                "{dataset} seed {seed}"
            );
            assert_eq!(ids(&a.test), ids(&b.test), "{dataset} seed {seed}");
        }
    }
}

#[test]
fn split_membership_varies_with_seed() {
    // Not a fixed partition in disguise: across 50 seeds the test-set
    // membership must actually move.
    let distinct: std::collections::BTreeSet<Vec<String>> = (0..SEEDS)
        .map(|seed| {
            Split::generate(Dataset::Gamma12, 20, 4, seed)
                .test
                .iter()
                .map(|t| t.id.clone())
                .collect()
        })
        .collect();
    assert!(
        distinct.len() > 10,
        "only {} distinct partitions",
        distinct.len()
    );
}

#[test]
fn trace_length_of_neighbours_does_not_change_a_trace() {
    // Per-trace sub-seeding: trace i is a function of (dataset, seed, i),
    // not of how many samples its neighbours drew.
    for dataset in Dataset::ALL {
        let long = dataset.generate(3, 80, 9);
        let short = dataset.generate(3, 20, 9);
        for (l, s) in long.iter().zip(&short) {
            for (i, (p, q)) in l.mbps.iter().zip(&s.mbps).enumerate() {
                assert_eq!(
                    p.to_bits(),
                    q.to_bits(),
                    "{dataset}: prefix sample {i} changed with trace length"
                );
            }
        }
    }
}
