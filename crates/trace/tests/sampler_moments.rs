//! Moment-matching statistical tests for the four i.i.d. samplers
//! (acceptance criterion: sample mean and variance within 3σ of the
//! closed-form values over ≥ 100k samples).
//!
//! The 3σ bands use the exact asymptotic standard errors:
//! `SE(mean) = σ/√n` and `SE(s²) = √((μ₄ − σ⁴)/n)`, with the fourth
//! central moment μ₄ from the closed forms — Gamma(k, θ):
//! `μ₄ = 3k(k+2)θ⁴`; Logistic (excess kurtosis 6/5): `μ₄ = 4.2 σ⁴`;
//! Exponential (excess kurtosis 6): `μ₄ = 9/λ⁴`. Seeds are fixed, so
//! these are deterministic regression tests, not flaky coin flips.

use osa_nn::rng::Rng;
use osa_trace::samplers;

const N: usize = 200_000;

struct Moments {
    mean: f64,
    var: f64,
    mu4: f64,
}

fn check(name: &str, seed: u64, expected: Moments, mut draw: impl FnMut(&mut Rng) -> f64) {
    let mut rng = Rng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..N).map(|_| draw(&mut rng)).collect();
    assert!(
        xs.iter().all(|x| x.is_finite()),
        "{name}: non-finite sample"
    );
    let n = N as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);

    let se_mean = (expected.var / n).sqrt();
    let se_var = ((expected.mu4 - expected.var * expected.var) / n).sqrt();
    assert!(
        (mean - expected.mean).abs() < 3.0 * se_mean,
        "{name}: sample mean {mean} vs {} (3σ = {})",
        expected.mean,
        3.0 * se_mean
    );
    assert!(
        (var - expected.var).abs() < 3.0 * se_var,
        "{name}: sample variance {var} vs {} (3σ = {})",
        expected.var,
        3.0 * se_var
    );
}

#[test]
fn gamma_1_2_moments() {
    // Gamma(1, 2): mean kθ = 2, var kθ² = 4, μ₄ = 3·1·3·2⁴ = 144.
    check(
        "gamma(1,2)",
        101,
        Moments {
            mean: 2.0,
            var: 4.0,
            mu4: 144.0,
        },
        |rng| samplers::gamma(rng, 1.0, 2.0),
    );
}

#[test]
fn gamma_2_2_moments() {
    // Gamma(2, 2): mean 4, var 8, μ₄ = 3·2·4·2⁴ = 384.
    check(
        "gamma(2,2)",
        102,
        Moments {
            mean: 4.0,
            var: 8.0,
            mu4: 384.0,
        },
        |rng| samplers::gamma(rng, 2.0, 2.0),
    );
}

#[test]
fn gamma_small_shape_moments() {
    // The shape < 1 boost path: Gamma(0.5, 2): mean 1, var 2,
    // μ₄ = 3·0.5·2.5·2⁴ = 60.
    check(
        "gamma(0.5,2)",
        103,
        Moments {
            mean: 1.0,
            var: 2.0,
            mu4: 60.0,
        },
        |rng| samplers::gamma(rng, 0.5, 2.0),
    );
}

#[test]
fn logistic_4_05_moments() {
    // Logistic(4, 0.5): mean 4, var s²π²/3, μ₄ = 4.2 var².
    let var = 0.25 * std::f64::consts::PI.powi(2) / 3.0;
    check(
        "logistic(4,0.5)",
        104,
        Moments {
            mean: 4.0,
            var,
            mu4: 4.2 * var * var,
        },
        |rng| samplers::logistic(rng, 4.0, 0.5),
    );
}

#[test]
fn exponential_1_moments() {
    // Exp(1): mean 1, var 1, μ₄ = 9.
    check(
        "exp(1)",
        105,
        Moments {
            mean: 1.0,
            var: 1.0,
            mu4: 9.0,
        },
        |rng| samplers::exponential(rng, 1.0),
    );
}

/// The Kolmogorov–Smirnov-style sanity check nobody regrets having: the
/// empirical CDF at the known quartiles must sit near 25/50/75%.
#[test]
fn quantile_functions_invert_the_samplers() {
    let mut rng = Rng::seed_from_u64(106);
    let n = 100_000;
    let xs: Vec<f64> = (0..n)
        .map(|_| samplers::logistic(&mut rng, 4.0, 0.5))
        .collect();
    for (q, p) in [(0.25, 0.25), (0.5, 0.5), (0.75, 0.75)] {
        let x_q = samplers::logistic_quantile(q, 4.0, 0.5);
        let frac = xs.iter().filter(|&&x| x <= x_q).count() as f64 / n as f64;
        assert!(
            (frac - p).abs() < 0.01,
            "P(X <= F⁻¹({q})) = {frac}, expected ≈ {p}"
        );
    }
}
