//! Corpus generation must be invisible to parallelism: the exact same
//! bytes must come out of `Dataset::generate` whatever the pool size,
//! because downstream consumers (dataset snapshots in CI, seeded
//! training sweeps) compare serialized corpora byte-for-byte.

use osa_runtime::ThreadPool;
use osa_trace::io::traces_to_json;
use osa_trace::prelude::*;

/// Every dataset family, swept over pool sizes, must serialize to the
/// exact bytes of the single-worker corpus. `count` is chosen so the
/// per-lane trace ranges are uneven for 2 and 4 workers (boundary
/// coverage), and `len` keeps the Markov models' state chains long
/// enough to expose any cross-trace RNG bleed.
#[test]
fn corpus_bytes_are_identical_across_worker_counts() {
    for dataset in Dataset::ALL {
        let serial = {
            let pool = ThreadPool::new(1);
            osa_runtime::with_pool(&pool, || dataset.generate(13, 200, 0xC0FFEE))
        };
        let reference = traces_to_json(&serial).expect("serialize");
        for workers in [2, 4] {
            let pool = ThreadPool::new(workers);
            let corpus = osa_runtime::with_pool(&pool, || dataset.generate(13, 200, 0xC0FFEE));
            assert_eq!(
                corpus, serial,
                "{dataset}: corpus diverged at {workers} workers"
            );
            assert_eq!(
                traces_to_json(&corpus).expect("serialize"),
                reference,
                "{dataset}: serialized bytes diverged at {workers} workers"
            );
        }
    }
}

/// The parallel path must also leave the documented sub-seed contract
/// intact: trace `i` depends only on (seed, `i`, `len`), never on
/// `count`, so growing a corpus keeps its prefix bit-stable.
#[test]
fn corpus_prefix_is_stable_under_growth_with_a_pool() {
    let pool = ThreadPool::new(4);
    osa_runtime::with_pool(&pool, || {
        let small = Dataset::Norway.generate(5, 64, 7);
        let large = Dataset::Norway.generate(11, 64, 7);
        assert_eq!(&large[..5], &small[..]);
    });
}
