//! Statistical property tests for the two Markov-modulated mobile-like
//! corpora, pinning the calibration bands documented in `mobile.rs` and
//! the dataset table in `EXPERIMENTS.md`.
//!
//! Measured at seed 42 over 40 traces × 2000 samples:
//! norway mean ≈ 2.09, std ≈ 1.28, max ≈ 6.0, lag-1 ≈ 0.94, ≈ 3.4% of
//! slots in outage (< 0.1 Mbit/s); belgium mean ≈ 32.0, std ≈ 17.0,
//! max = 65, lag-1 ≈ 0.92. The assertions use generous bands around
//! those values so they fail on real calibration drift, not on noise.

use osa_trace::prelude::*;
use osa_trace::trace::corpus_stats;

fn corpus(d: Dataset) -> Vec<Trace> {
    d.generate(40, 2_000, 42)
}

fn mean_lag1(traces: &[Trace]) -> f64 {
    traces.iter().map(|t| t.autocorr_lag1()).sum::<f64>() / traces.len() as f64
}

fn frac_below(traces: &[Trace], threshold: f32) -> f64 {
    let total: usize = traces.iter().map(Trace::len).sum();
    let below: usize = traces
        .iter()
        .flat_map(|t| t.mbps.iter())
        .filter(|&&x| x < threshold)
        .count();
    below as f64 / total as f64
}

#[test]
fn norway_matches_3g_calibration_targets() {
    let traces = corpus(Dataset::Norway);
    let s = corpus_stats(&traces);
    assert!((1.6..=2.6).contains(&s.mean), "mean {}", s.mean);
    assert!((0.9..=1.8).contains(&s.std), "std {}", s.std);
    assert!(s.min >= 0.0);
    assert!(s.max <= 6.5, "max {}", s.max);
    // Commute-path outages: a visible but minor fraction of dead slots.
    let outage = frac_below(&traces, 0.1);
    assert!((0.005..=0.15).contains(&outage), "outage fraction {outage}");
}

#[test]
fn belgium_matches_lte_calibration_targets() {
    let traces = corpus(Dataset::Belgium);
    let s = corpus_stats(&traces);
    assert!((22.0..=42.0).contains(&s.mean), "mean {}", s.mean);
    assert!(s.std >= 10.0, "std {}", s.std);
    assert!(s.min >= 0.0);
    assert!(s.max <= 65.0, "max {}", s.max);
    // Bimodal low/high split: real mass on both sides of the mid band.
    let low = frac_below(&traces, 20.0);
    let high = 1.0 - frac_below(&traces, 40.0);
    assert!(low > 0.1, "low-regime mass {low}");
    assert!(high > 0.1, "high-regime mass {high}");
}

/// The property the whole substitution hinges on (DESIGN.md §2.2): the
/// mobile-like corpora are temporally correlated, the synthetic ones are
/// not, and the two "real" distributions differ from each other.
#[test]
fn mobile_corpora_are_correlated_and_mutually_different() {
    let norway = corpus(Dataset::Norway);
    let belgium = corpus(Dataset::Belgium);
    assert!(
        mean_lag1(&norway) > 0.7,
        "norway lag1 {}",
        mean_lag1(&norway)
    );
    assert!(
        mean_lag1(&belgium) > 0.7,
        "belgium lag1 {}",
        mean_lag1(&belgium)
    );
    // An order of magnitude apart in mean rate — mutually OOD.
    assert!(corpus_stats(&belgium).mean > 5.0 * corpus_stats(&norway).mean);
}

#[test]
fn synthetic_corpora_are_iid_by_contrast() {
    for d in [
        Dataset::Gamma12,
        Dataset::Gamma22,
        Dataset::Logistic,
        Dataset::Exp,
    ] {
        let traces = d.generate(10, 2_000, 42);
        let lag1 = mean_lag1(&traces);
        assert!(lag1.abs() < 0.05, "{}: lag1 {lag1}", d.name());
    }
}
