//! Cross-module property tests: split partition laws, fault invariants
//! over randomized faults, and JSON cache round-trips for whole corpora.

use std::collections::BTreeSet;

use osa_nn::rng::Rng;
use osa_trace::prelude::*;

/// Acceptance criterion: the 70/30/validation split is disjoint,
/// exhaustive, and seed-deterministic, at every corpus size.
#[test]
fn splits_are_disjoint_and_exhaustive() {
    for count in [1usize, 2, 3, 7, 10, 21, 33, 100] {
        for seed in [0u64, 1, 42, 1234] {
            let all = Dataset::Gamma22.generate(count, 4, seed);
            let all_ids: BTreeSet<String> = all.iter().map(|t| t.id.clone()).collect();
            let split = Split::of(all, seed);

            let train: BTreeSet<String> = split.train.iter().map(|t| t.id.clone()).collect();
            let val: BTreeSet<String> = split.validation.iter().map(|t| t.id.clone()).collect();
            let test: BTreeSet<String> = split.test.iter().map(|t| t.id.clone()).collect();

            assert!(train.is_disjoint(&val), "count {count} seed {seed}");
            assert!(train.is_disjoint(&test), "count {count} seed {seed}");
            assert!(val.is_disjoint(&test), "count {count} seed {seed}");

            let union: BTreeSet<String> = train.union(&val).chain(&test).cloned().collect();
            assert_eq!(union, all_ids, "count {count} seed {seed}: not exhaustive");

            // 30% to test (round-half-up), 30% of the remainder to
            // validation.
            let expect_test = (count * 3 + 5) / 10;
            let expect_val = ((count - expect_test) * 3 + 5) / 10;
            assert_eq!(test.len(), expect_test, "count {count}");
            assert_eq!(val.len(), expect_val, "count {count}");
        }
    }
}

/// Acceptance criterion: fault-injected traces remain non-negative and
/// finite — under randomized faults, on every dataset, including stacked
/// faults.
#[test]
fn random_faults_preserve_wellformedness_on_every_dataset() {
    for dataset in Dataset::ALL {
        let traces = dataset.generate(4, 120, 7);
        let mut rng = Rng::seed_from_u64(99);
        for t in &traces {
            for _ in 0..50 {
                let f = Fault::random(&mut rng, t.len());
                let out = f.apply(t);
                assert_eq!(out.len(), t.len());
                assert!(
                    out.is_wellformed(),
                    "{dataset}: {f:?} broke the bandwidth invariant"
                );
                assert!(out.mbps.iter().all(|&x| x <= MAX_MBPS));
            }
            // Stacked random faults.
            let faults: Vec<Fault> = (0..5).map(|_| Fault::random(&mut rng, t.len())).collect();
            assert!(inject(t, &faults).is_wellformed(), "{dataset}: stack broke");
        }
    }
}

/// Whole-corpus JSON cache round-trip: every dataset, bit-exact samples,
/// through a real file.
#[test]
fn corpus_cache_roundtrips_bit_exactly_for_every_dataset() {
    for dataset in Dataset::ALL {
        let traces = dataset.generate(3, 60, 42);
        let path = std::env::temp_dir().join(format!(
            "osa_trace_cache_{}_{}.json",
            dataset.name(),
            std::process::id()
        ));
        save_traces(&path, &traces).expect("save");
        let loaded = load_traces(&path).expect("load");
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.len(), traces.len());
        for (a, b) in loaded.iter().zip(&traces) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.interval_s.to_bits(), b.interval_s.to_bits());
            for (x, y) in a.mbps.iter().zip(&b.mbps) {
                assert_eq!(x.to_bits(), y.to_bits(), "{dataset}: cache not bit-exact");
            }
        }
    }
}

/// Faulted traces go through the same cache path (robustness sweeps cache
/// their perturbed corpora too).
#[test]
fn faulted_traces_roundtrip_through_cache() {
    let base = Dataset::Norway.generate(2, 50, 3);
    let faulted: Vec<Trace> = base
        .iter()
        .map(|t| {
            Fault::Outage {
                start: 5,
                duration: 10,
            }
            .apply(t)
        })
        .collect();
    let path = std::env::temp_dir().join(format!("osa_trace_fault_{}.json", std::process::id()));
    save_traces(&path, &faulted).expect("save");
    let loaded = load_traces(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, faulted);
    assert!(loaded.iter().all(|t| t.id.contains("+outage")));
}

/// A corpus poisoned with one NaN sample must fail to cache with an
/// error — not panic, not write a half-document.
#[test]
fn poisoned_corpus_fails_to_cache_without_writing() {
    let mut traces = Dataset::Exp.generate(2, 10, 1);
    traces[1].mbps[3] = f32::NAN;
    let path = std::env::temp_dir().join(format!("osa_trace_nan_{}.json", std::process::id()));
    match save_traces(&path, &traces) {
        Err(IoError::NonFinite(_)) => {}
        other => panic!("expected NonFinite, got {other:?}"),
    }
    assert!(!path.exists(), "failed save must not leave a file behind");
}
