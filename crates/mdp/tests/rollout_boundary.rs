//! Regression tests pinning the `Collector` contract at the seam the GAE
//! math is most sensitive to: an episode that terminates *exactly* at a
//! fragment boundary.
//!
//! The contract (documented on `Rollout::bootstrap`): the truncated-tail
//! bootstrap `V(s_T)` is only meaningful when the fragment ends
//! mid-episode. When the last transition is genuinely terminal, the
//! collector has already reset the environment, so the only state it
//! *could* evaluate is the first state of the **next** episode — using it
//! would leak value across the episode boundary and bias every advantage
//! in the fragment. These tests poison that reset state's value with NaN
//! so any such leak fails loudly instead of shifting training quietly.

use osa_mdp::gae::{discounted_returns, gae};
use osa_mdp::prelude::*;
use osa_nn::rng::Rng;

/// Deterministic 3-step episode: obs = [t], reward 1.0 per step.
#[derive(Clone)]
struct ThreeStepEnv {
    t: usize,
}

impl Env for ThreeStepEnv {
    fn obs_dim(&self) -> usize {
        1
    }
    fn num_actions(&self) -> usize {
        2
    }
    fn reset(&mut self, _rng: &mut Rng) -> Vec<f32> {
        self.t = 0;
        vec![0.0]
    }
    fn step(&mut self, _action: usize, _rng: &mut Rng) -> Step {
        self.t += 1;
        Step {
            obs: vec![self.t as f32],
            reward: 1.0,
            done: self.t == 3,
        }
    }
}

/// Value function poisoned at the post-reset state (obs [0]): if the
/// collector ever bootstraps a terminal tail from the next episode's
/// first state, NaN propagates into `bootstrap` and the assertions below
/// catch it.
struct PoisonedAtResetAgent;

impl Policy for PoisonedAtResetAgent {
    fn action_probs(&mut self, _obs: &[f32]) -> Vec<f32> {
        vec![0.5, 0.5]
    }
}

impl ValueFunction for PoisonedAtResetAgent {
    fn value(&mut self, obs: &[f32]) -> f32 {
        if obs[0] == 0.0 {
            f32::NAN
        } else {
            obs[0]
        }
    }
}

#[test]
fn terminal_at_fragment_boundary_never_bootstraps_the_reset_state() {
    let mut rng = Rng::seed_from_u64(1);
    let mut col = Collector::new(ThreeStepEnv { t: 0 }, &mut rng);
    let mut agent = PoisonedAtResetAgent;

    // Horizon == episode length: the episode terminates exactly at the
    // fragment boundary.
    let r = col.collect(&mut agent, 3, &mut rng);
    assert_eq!(r.dones, vec![false, false, true]);
    assert_eq!(
        r.bootstrap, 0.0,
        "terminal tail must use V = 0, not V(reset state) = {}",
        r.bootstrap
    );
    assert_eq!(r.episode_returns, vec![3.0]);

    // The poisoned V(s_0) of the *current* episode is recorded for t = 0
    // (that is the collector honestly reporting the critic), but the
    // advantages of a terminal-at-boundary fragment must not involve the
    // next episode's states at all: with finite rewards and a zero tail,
    // returns are finite.
    let returns = discounted_returns(&r.rewards, &r.dones, r.bootstrap, 0.9);
    assert!(returns.iter().all(|g| g.is_finite()), "returns {returns:?}");
    assert_eq!(returns[2], 1.0); // terminal step: G = r, no tail
}

#[test]
fn advantages_after_boundary_terminal_are_finite() {
    // Same collector, two consecutive fragments, the first ending exactly
    // on the terminal transition. GAE over each fragment must stay finite
    // even though V(reset obs) is NaN — i.e. the poisoned value is never
    // consulted as a tail.
    let mut rng = Rng::seed_from_u64(2);
    let mut col = Collector::new(ThreeStepEnv { t: 0 }, &mut rng);
    let mut agent = PoisonedAtResetAgent;

    let r1 = col.collect(&mut agent, 3, &mut rng);
    // values[0] is the honest (poisoned) V(s_0); exclude it from the
    // finiteness claim — the contract under test is the *tail*, which
    // enters every advantage through the backward recursion only via
    // bootstrap. Use the fragment's recorded values with the NaN replaced
    // to isolate the tail contribution.
    let mut values = r1.values.clone();
    values[0] = 0.0;
    let adv = gae(&r1.rewards, &values, &r1.dones, r1.bootstrap, 0.99, 0.95);
    assert!(adv.iter().all(|a| a.is_finite()), "advantages {adv:?}");

    // The next fragment starts a fresh episode and again ends exactly on
    // its terminal transition: the seam repeats across fragments.
    let r2 = col.collect(&mut agent, 3, &mut rng);
    assert_eq!(r2.dones, vec![false, false, true]);
    assert_eq!(r2.bootstrap, 0.0);
    assert_eq!(r2.episode_returns, vec![3.0]);
    assert_eq!(col.total_steps, 6);
}

#[test]
fn mid_episode_fragment_does_bootstrap() {
    // Control case: cut the episode mid-way and the collector must
    // bootstrap with V of the state actually reached (obs [2] → 2.0),
    // proving the zero above is the terminal rule and not a constant.
    let mut rng = Rng::seed_from_u64(3);
    let mut col = Collector::new(ThreeStepEnv { t: 0 }, &mut rng);
    let r = col.collect(&mut PoisonedAtResetAgent, 2, &mut rng);
    assert_eq!(r.dones, vec![false, false]);
    assert_eq!(r.bootstrap, 2.0);
}
