//! Property tests pinning GAE(γ, λ) to its two classical endpoints on
//! randomized rollout fragments (random rewards, values, episode
//! boundaries, bootstraps, and discounts):
//!
//! - λ = 1 ⇒ advantages equal discounted-returns-minus-baseline;
//! - λ = 0 ⇒ advantages equal the one-step TD residual.
//!
//! The offline workspace has no proptest; randomization is driven by the
//! in-tree seeded RNG, so failures reproduce from the printed trial seed.

use osa_mdp::prelude::*;
use osa_nn::rng::Rng;

struct Fragment {
    rewards: Vec<f32>,
    values: Vec<f32>,
    dones: Vec<bool>,
    bootstrap: f32,
    gamma: f32,
}

fn random_fragment(seed: u64) -> Fragment {
    let mut rng = Rng::seed_from_u64(seed);
    let len = 1 + rng.below(40);
    Fragment {
        rewards: (0..len).map(|_| rng.range_f32(-5.0, 5.0)).collect(),
        values: (0..len).map(|_| rng.range_f32(-5.0, 5.0)).collect(),
        dones: (0..len).map(|_| rng.next_f32() < 0.2).collect(),
        bootstrap: rng.range_f32(-5.0, 5.0),
        gamma: rng.range_f32(0.8, 1.0),
    }
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (a.abs() + b.abs()) + 1e-4
}

#[test]
fn lambda_one_is_returns_minus_baseline() {
    for seed in 0..200u64 {
        let f = random_fragment(seed);
        let adv = gae(&f.rewards, &f.values, &f.dones, f.bootstrap, f.gamma, 1.0);
        let returns = discounted_returns(&f.rewards, &f.dones, f.bootstrap, f.gamma);
        for t in 0..adv.len() {
            let expected = returns[t] - f.values[t];
            assert!(
                close(adv[t], expected),
                "seed {seed} t {t}: gae {} vs G−V {}",
                adv[t],
                expected
            );
        }
    }
}

#[test]
fn lambda_zero_is_one_step_td_advantage() {
    for seed in 0..200u64 {
        let f = random_fragment(seed);
        let adv = gae(&f.rewards, &f.values, &f.dones, f.bootstrap, f.gamma, 0.0);
        for t in 0..adv.len() {
            let next_v = if f.dones[t] {
                0.0
            } else if t + 1 == adv.len() {
                f.bootstrap
            } else {
                f.values[t + 1]
            };
            let delta = f.rewards[t] + f.gamma * next_v - f.values[t];
            assert!(
                close(adv[t], delta),
                "seed {seed} t {t}: gae {} vs δ {delta}",
                adv[t]
            );
        }
    }
}

#[test]
fn intermediate_lambda_lies_between_endpoints_in_magnitude_of_bias() {
    // Not a strict ordering claim — just that GAE varies continuously with
    // λ and agrees with itself: recomputing with the same λ is identical,
    // and λ only matters when fragments run longer than one step.
    for seed in 0..50u64 {
        let f = random_fragment(seed);
        let a = gae(&f.rewards, &f.values, &f.dones, f.bootstrap, f.gamma, 0.7);
        let b = gae(&f.rewards, &f.values, &f.dones, f.bootstrap, f.gamma, 0.7);
        assert_eq!(a, b, "seed {seed}: GAE must be deterministic");
    }
}

#[test]
fn all_lambdas_agree_on_single_step_episodes() {
    // When every transition terminates, there is no temporal mixing left
    // and every λ gives r_t − V(s_t).
    for seed in 0..50u64 {
        let mut f = random_fragment(seed);
        f.dones = vec![true; f.rewards.len()];
        for lambda in [0.0, 0.3, 0.95, 1.0] {
            let adv = gae(
                &f.rewards,
                &f.values,
                &f.dones,
                f.bootstrap,
                f.gamma,
                lambda,
            );
            for (t, &a) in adv.iter().enumerate() {
                let expected = f.rewards[t] - f.values[t];
                assert!(close(a, expected), "seed {seed} λ {lambda} t {t}");
            }
        }
    }
}
