//! End-to-end determinism sweep for the parallel trainer: the bits of
//! the final parameters — and the whole training curve — must depend
//! only on the config, never on the thread pool executing it. This is
//! the contract that lets CI exercise pooled code paths (`OSA_THREADS=4`)
//! while every seeded gate keeps its pinned outputs.

use osa_mdp::prelude::*;
use osa_nn::prelude::Rng;
use osa_runtime::ThreadPool;

fn run(pool_workers: usize, cfg: &A2cConfig) -> (Vec<f32>, Vec<f32>, TrainReport) {
    let env = ChainEnv::new(5);
    let mut rng = Rng::seed_from_u64(99);
    let mut ac = ActorCritic::mlp(env.num_states(), 16, 2, &mut rng);
    let pool = ThreadPool::new(pool_workers);
    let report = train_with_pool(&mut ac, &env, cfg, &pool);
    (ac.actor.params_to_vec(), ac.critic.params_to_vec(), report)
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what} length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

/// Chain-MDP A2C with 4 logical streams: final actor/critic parameters
/// and the full episode statistics are bit-identical for pools of 1, 2,
/// and 4 workers. 61 updates over 4 streams makes the final round
/// partial (one stream applied), covering the tail-truncation path.
#[test]
fn final_parameters_are_bit_identical_across_pool_sizes() {
    let cfg = A2cConfig {
        workers: 4,
        updates: 61,
        rollout_len: 16,
        seed: 7,
        ..A2cConfig::default()
    };
    let (actor_ref, critic_ref, report_ref) = run(1, &cfg);
    assert_eq!(report_ref.updates, 61);
    assert_eq!(report_ref.env_steps, 61 * 16);
    for pool_workers in [2, 4] {
        let (actor, critic, report) = run(pool_workers, &cfg);
        assert_bits_eq(
            &actor,
            &actor_ref,
            &format!("actor params, pool {pool_workers}"),
        );
        assert_bits_eq(
            &critic,
            &critic_ref,
            &format!("critic params, pool {pool_workers}"),
        );
        assert_bits_eq(
            &report.episode_returns,
            &report_ref.episode_returns,
            &format!("episode returns, pool {pool_workers}"),
        );
        assert_eq!(report.episode_lengths, report_ref.episode_lengths);
        assert_eq!(report.env_steps, report_ref.env_steps);
        assert_eq!(
            report.final_policy_loss.to_bits(),
            report_ref.final_policy_loss.to_bits()
        );
        assert_eq!(
            report.final_value_loss.to_bits(),
            report_ref.final_value_loss.to_bits()
        );
    }
}

/// Pool-size invariance must also hold when streams don't divide evenly
/// across lanes (3 streams on 2 lanes) and when the pool is wider than
/// the stream count (3 streams on 8 lanes, some lanes idle).
#[test]
fn uneven_stream_to_lane_mappings_change_nothing() {
    let cfg = A2cConfig {
        workers: 3,
        updates: 24,
        rollout_len: 12,
        seed: 21,
        ..A2cConfig::default()
    };
    let (actor_ref, critic_ref, _) = run(1, &cfg);
    for pool_workers in [2, 8] {
        let (actor, critic, _) = run(pool_workers, &cfg);
        assert_bits_eq(
            &actor,
            &actor_ref,
            &format!("actor params, pool {pool_workers}"),
        );
        assert_bits_eq(
            &critic,
            &critic_ref,
            &format!("critic params, pool {pool_workers}"),
        );
    }
}

/// The `train` entry point must honour a `with_pool` override, so
/// callers who never thread a pool through still sweep deterministically.
#[test]
fn train_honours_with_pool_override() {
    let cfg = A2cConfig {
        workers: 2,
        updates: 10,
        rollout_len: 8,
        seed: 3,
        ..A2cConfig::default()
    };
    let (actor_ref, _, _) = run(1, &cfg);
    let env = ChainEnv::new(5);
    let mut rng = Rng::seed_from_u64(99);
    let mut ac = ActorCritic::mlp(env.num_states(), 16, 2, &mut rng);
    let pool = ThreadPool::new(4);
    osa_runtime::with_pool(&pool, || train(&mut ac, &env, &cfg));
    assert_bits_eq(
        &ac.actor.params_to_vec(),
        &actor_ref,
        "actor params via train()",
    );
}
