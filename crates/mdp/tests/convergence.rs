//! End-to-end trainer correctness: determinism and convergence to known
//! optima on the in-crate environments (ISSUE acceptance criterion).

use osa_mdp::envs::chain::{ChainEnv, ADVANCE};
use osa_mdp::prelude::*;
use osa_nn::rng::Rng;

fn one_hot(i: usize, n: usize) -> Vec<f32> {
    let mut v = vec![0.0; n];
    v[i] = 1.0;
    v
}

fn chain_config(workers: usize, updates: usize) -> A2cConfig {
    A2cConfig {
        gamma: 0.95,
        workers,
        updates,
        seed: 42,
        ..A2cConfig::default()
    }
}

/// With one worker the trainer is strictly sequential, so two runs from
/// the same seed must agree bit-for-bit: every parameter and the whole
/// training curve.
#[test]
fn single_worker_training_is_bit_reproducible() {
    let run = || {
        let env = ChainEnv::new(5);
        let mut rng = Rng::seed_from_u64(7);
        let mut ac = ActorCritic::mlp(env.num_states(), 16, 2, &mut rng);
        let report = train(&mut ac, &env, &chain_config(1, 120));
        (
            ac.actor.params_to_vec(),
            ac.critic.params_to_vec(),
            report.episode_returns,
        )
    };
    let (a1, c1, r1) = run();
    let (a2, c2, r2) = run();
    assert_eq!(a1, a2, "actor parameters diverged across identical runs");
    assert_eq!(c1, c2, "critic parameters diverged across identical runs");
    assert_eq!(r1, r2, "training curves diverged across identical runs");
}

/// Shared helper: train on the chain and assert the greedy policy is
/// optimal in every non-goal state and the critic matches the closed-form
/// optimal values within tolerance.
fn assert_chain_converged(workers: usize) {
    let env = ChainEnv::new(5);
    let cfg = chain_config(workers, 700);
    let mut rng = Rng::seed_from_u64(1);
    let mut ac = ActorCritic::mlp(env.num_states(), 16, 2, &mut rng);
    let report = train(&mut ac, &env, &cfg);

    assert_eq!(report.updates, cfg.updates as u64);
    assert_eq!(report.env_steps, (cfg.updates * cfg.rollout_len) as u64);
    assert!(
        !report.episode_returns.is_empty(),
        "no episode ever completed"
    );

    // Optimal policy: advance everywhere.
    for s in 0..env.num_states() - 1 {
        let obs = one_hot(s, env.num_states());
        assert_eq!(
            ac.greedy(&obs),
            ADVANCE,
            "workers {workers}: greedy policy suboptimal in state {s}; probs {:?}",
            ac.action_probs(&obs)
        );
    }

    // Critic close to the closed-form optimal values. The learned policy
    // stays slightly stochastic (entropy bonus), so V^π sits a little
    // below V*; 0.2 absolute tolerance covers that gap.
    for s in 0..env.num_states() - 1 {
        let v = ac.value(&one_hot(s, env.num_states()));
        let v_star = env.optimal_value(s, cfg.gamma);
        assert!(
            (v - v_star).abs() < 0.2,
            "workers {workers}: critic off in state {s}: {v} vs V* {v_star}"
        );
    }

    // The training curve actually improved. Undiscounted chain returns
    // are ≈ 1.0 for any policy that eventually reaches the goal, so the
    // separating signal is episode *length*: a random walk takes many
    // steps, the optimal policy exactly n − 1 = 4.
    let n = report.episode_lengths.len();
    let early: f32 = report.episode_lengths[..n / 4].iter().sum::<usize>() as f32 / (n / 4) as f32;
    let late_lens = &report.episode_lengths[n - n / 4..];
    let late: f32 = late_lens.iter().sum::<usize>() as f32 / late_lens.len() as f32;
    assert!(
        late < early,
        "workers {workers}: episodes did not shorten: early {early} vs late {late}"
    );
    assert!(
        late < 4.5,
        "workers {workers}: late episodes average {late} steps, optimum is 4"
    );
}

#[test]
fn single_worker_chain_training_reaches_known_optimum() {
    assert_chain_converged(1);
}

/// The acceptance-criterion test: asynchronous multi-worker training
/// recovers the chain MDP's known optimal policy and critic values.
#[test]
fn multi_worker_chain_training_reaches_known_optimum() {
    assert_chain_converged(4);
}

/// The noisy stateful-bandit env: the trainer must average away N(0, σ²)
/// reward noise and pick the best arm in every context.
#[test]
fn bandit_training_finds_best_arm_in_every_context() {
    let env = ContextBanditEnv::standard();
    let cfg = A2cConfig {
        gamma: 0.9,
        workers: 2,
        updates: 600,
        seed: 11,
        ..A2cConfig::default()
    };
    let mut rng = Rng::seed_from_u64(5);
    let mut ac = ActorCritic::mlp(env.num_contexts(), 16, 3, &mut rng);
    let report = train(&mut ac, &env, &cfg);

    for c in 0..env.num_contexts() {
        let obs = one_hot(c, env.num_contexts());
        assert_eq!(
            ac.greedy(&obs),
            env.best_arm(c),
            "wrong arm in context {c}; probs {:?}",
            ac.action_probs(&obs)
        );
    }

    // Optimal play earns ~1.0/step over 8-step episodes; an untrained
    // uniform policy earns ~0. Require most of that headroom.
    let recent = report.recent_mean_return(50);
    assert!(recent > 5.0, "recent mean return only {recent}");
}

/// Different seeds must explore differently: the RNG streams are really
/// worker/seed-dependent, not accidentally shared.
#[test]
fn different_seeds_give_different_training_runs() {
    let run = |seed: u64| {
        let env = ChainEnv::new(5);
        let mut rng = Rng::seed_from_u64(9);
        let mut ac = ActorCritic::mlp(env.num_states(), 16, 2, &mut rng);
        let cfg = A2cConfig {
            seed,
            ..chain_config(1, 60)
        };
        train(&mut ac, &env, &cfg);
        ac.actor.params_to_vec()
    };
    assert_ne!(run(1), run(2), "distinct seeds produced identical training");
}
