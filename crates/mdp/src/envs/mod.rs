//! In-crate test environments with analytically known optima.
//!
//! These exist so the trainer can be *proved* correct, not just observed
//! to run: [`chain::ChainEnv`] has a closed-form optimal policy and value
//! function, and [`bandit::ContextBanditEnv`] has a known best arm per
//! context under reward noise. Both are `Clone`, cheap, and fully
//! deterministic given the caller's RNG, which also makes them the
//! workload for the rollout-throughput microbench in `crates/bench`.

pub mod bandit;
pub mod chain;

pub use bandit::ContextBanditEnv;
pub use chain::ChainEnv;
