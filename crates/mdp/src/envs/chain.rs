//! A deterministic chain MDP with a closed-form optimal policy and value
//! function — the convergence oracle for the A2C trainer.

use osa_nn::rng::Rng;

use crate::env::{Env, Step};

/// States `0..n` laid out in a line; the agent starts at state 0 and state
/// `n − 1` is the goal.
///
/// - action 1 (**advance**) moves one state to the right; entering the
///   goal pays `goal_reward` and ends the episode;
/// - action 0 (**retreat**) teleports back to state 0 and pays the small
///   `distractor_reward` immediately — a myopic temptation the agent must
///   learn to refuse.
///
/// With discount γ the optimal policy is "always advance", and since every
/// transition is deterministic the optimal values are closed-form:
/// `V*(s) = goal_reward · γ^(n−2−s)` (see [`ChainEnv::optimal_value`]).
/// Advancing stays optimal in every state as long as
/// `distractor_reward < goal_reward · γ^(n−2) · (1 − γ)`, which the
/// constructor asserts — so tests can compare the trained greedy policy
/// and critic against the truth.
///
/// Episodes are capped at `max_steps` transitions (reported as `done`) so
/// an untrained policy cannot stall a rollout forever.
#[derive(Clone, Debug)]
pub struct ChainEnv {
    n: usize,
    goal_reward: f32,
    distractor_reward: f32,
    max_steps: usize,
    state: usize,
    steps: usize,
}

/// The retreat action index.
pub const RETREAT: usize = 0;
/// The advance action index — optimal in every state.
pub const ADVANCE: usize = 1;

impl ChainEnv {
    /// Chain of `n ≥ 2` states with `goal_reward = 1`,
    /// `distractor_reward = 0.01`, and a 100-step episode cap.
    pub fn new(n: usize) -> Self {
        Self::with_rewards(n, 1.0, 0.01)
    }

    pub fn with_rewards(n: usize, goal_reward: f32, distractor_reward: f32) -> Self {
        assert!(n >= 2, "a chain needs at least a start and a goal");
        assert!(goal_reward > 0.0);
        assert!(
            distractor_reward >= 0.0 && distractor_reward < goal_reward,
            "the distractor must not dominate the goal"
        );
        ChainEnv {
            n,
            goal_reward,
            distractor_reward,
            max_steps: 100,
            state: 0,
            steps: 0,
        }
    }

    /// Number of states (observation dimension).
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// `V*(s)` under discount `gamma`, for non-goal states `s ≤ n − 2`.
    ///
    /// From state `s`, always advancing reaches the goal in `n − 1 − s`
    /// transitions, earning `goal_reward` on the last one; every earlier
    /// transition pays 0, so `V*(s) = goal_reward · γ^(n−2−s)`. Panics if
    /// the distractor breaks "advance is optimal" for this `gamma`.
    pub fn optimal_value(&self, s: usize, gamma: f32) -> f32 {
        assert!(s + 1 < self.n, "the goal state has no outgoing value");
        let v0 = self.goal_reward * gamma.powi((self.n - 2) as i32);
        assert!(
            self.distractor_reward < v0 * (1.0 - gamma),
            "distractor_reward {} makes retreating optimal at gamma {}",
            self.distractor_reward,
            gamma
        );
        self.goal_reward * gamma.powi((self.n - 2 - s) as i32)
    }

    fn one_hot(&self, s: usize) -> Vec<f32> {
        let mut obs = vec![0.0; self.n];
        obs[s] = 1.0;
        obs
    }

    fn one_hot_into(&self, s: usize, obs: &mut Vec<f32>) {
        obs.clear();
        obs.resize(self.n, 0.0);
        obs[s] = 1.0;
    }

    /// The transition function proper: updates `state`/`steps` and returns
    /// `(reward, done)`. Shared by [`Env::step`] and the allocation-free
    /// [`Env::step_into`] override.
    fn advance(&mut self, action: usize) -> (f32, bool) {
        assert!(action < 2, "chain env has two actions");
        assert!(self.state + 1 < self.n, "stepped a finished episode");
        self.steps += 1;
        let (reward, terminal) = if action == ADVANCE {
            self.state += 1;
            if self.state + 1 == self.n {
                (self.goal_reward, true)
            } else {
                (0.0, false)
            }
        } else {
            self.state = 0;
            (self.distractor_reward, false)
        };
        (reward, terminal || self.steps >= self.max_steps)
    }
}

impl Env for ChainEnv {
    fn obs_dim(&self) -> usize {
        self.n
    }

    fn num_actions(&self) -> usize {
        2
    }

    fn reset(&mut self, _rng: &mut Rng) -> Vec<f32> {
        self.state = 0;
        self.steps = 0;
        self.one_hot(0)
    }

    fn step(&mut self, action: usize, _rng: &mut Rng) -> Step {
        let (reward, done) = self.advance(action);
        Step {
            obs: self.one_hot(self.state),
            reward,
            done,
        }
    }

    // Allocation-free transition path: the chain is deterministic, so the
    // overrides just skip the `Vec` the defaults would build.
    fn reset_into(&mut self, _rng: &mut Rng, obs: &mut Vec<f32>) {
        self.state = 0;
        self.steps = 0;
        self.one_hot_into(0, obs);
    }

    fn step_into(&mut self, action: usize, _rng: &mut Rng, obs: &mut Vec<f32>) -> (f32, bool) {
        let (reward, done) = self.advance(action);
        self.one_hot_into(self.state, obs);
        (reward, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advancing_reaches_goal_with_known_return() {
        let mut env = ChainEnv::new(5);
        let mut rng = Rng::seed_from_u64(1);
        let mut obs = env.reset(&mut rng);
        assert_eq!(obs, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
        let mut total = 0.0;
        for i in 0..4 {
            let step = env.step(ADVANCE, &mut rng);
            total += step.reward;
            assert_eq!(step.done, i == 3);
            obs = step.obs;
        }
        assert_eq!(total, 1.0);
        assert_eq!(obs, vec![0.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn retreat_teleports_to_start_and_pays_distractor() {
        let mut env = ChainEnv::new(5);
        let mut rng = Rng::seed_from_u64(2);
        env.reset(&mut rng);
        env.step(ADVANCE, &mut rng);
        env.step(ADVANCE, &mut rng);
        let step = env.step(RETREAT, &mut rng);
        assert_eq!(step.obs[0], 1.0);
        assert_eq!(step.reward, 0.01);
        assert!(!step.done);
    }

    #[test]
    fn optimal_values_satisfy_bellman() {
        let env = ChainEnv::new(6);
        let gamma = 0.95;
        // V*(s) = γ·V*(s+1) for interior states, V*(n−2) = goal_reward.
        assert!((env.optimal_value(4, gamma) - 1.0).abs() < 1e-6);
        for s in 0..4 {
            let lhs = env.optimal_value(s, gamma);
            let rhs = gamma * env.optimal_value(s + 1, gamma);
            assert!((lhs - rhs).abs() < 1e-6, "state {s}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn episodes_truncate_at_cap() {
        let mut env = ChainEnv::new(5);
        let mut rng = Rng::seed_from_u64(3);
        env.reset(&mut rng);
        for i in 1..=100 {
            let step = env.step(RETREAT, &mut rng);
            assert_eq!(step.done, i == 100);
        }
    }

    #[test]
    #[should_panic(expected = "distractor must not dominate")]
    fn dominant_distractor_rejected() {
        let _ = ChainEnv::with_rewards(5, 1.0, 1.5);
    }
}
