//! A noisy contextual bandit dressed as an episodic MDP — the stochastic
//! counterpart to [`crate::envs::chain::ChainEnv`].

use osa_nn::rng::Rng;

use crate::env::{Env, Step};

/// "Bandit with state": each step presents one of `C` contexts (one-hot
/// observation); pulling arm `a` in context `c` pays
/// `means[c][a] + N(0, noise_std²)`, and an episode lasts `horizon` pulls.
///
/// There are no temporal dynamics — the next context is drawn uniformly
/// regardless of the action — so the optimal policy is memoryless: in
/// context `c`, pull [`ContextBanditEnv::best_arm`]`(c)`. What this env
/// exercises that the chain cannot is *reward noise*: the advantage
/// estimator must average away `N(0, σ²)` to find arms whose means differ
/// by less than σ, and the critic's target `V*(c) = max_a means[c][a]`
/// (γ-discounted tail aside) is known exactly.
#[derive(Clone, Debug)]
pub struct ContextBanditEnv {
    means: Vec<Vec<f32>>,
    noise_std: f32,
    horizon: usize,
    context: usize,
    pulls: usize,
}

impl ContextBanditEnv {
    /// `means[c][a]` = expected reward of arm `a` in context `c`; all
    /// contexts must offer the same number of arms.
    pub fn new(means: Vec<Vec<f32>>, noise_std: f32, horizon: usize) -> Self {
        assert!(!means.is_empty(), "need at least one context");
        let arms = means[0].len();
        assert!(arms >= 2, "need at least two arms");
        assert!(
            means.iter().all(|row| row.len() == arms),
            "ragged arm table"
        );
        assert!(noise_std >= 0.0);
        assert!(horizon > 0);
        ContextBanditEnv {
            means,
            noise_std,
            horizon,
            context: 0,
            pulls: 0,
        }
    }

    /// A standard 3-context / 3-arm instance with unit-gap means and
    /// σ = 0.5 noise, used by the convergence tests.
    pub fn standard() -> Self {
        ContextBanditEnv::new(
            vec![
                vec![1.0, 0.0, -1.0],
                vec![-1.0, 1.0, 0.0],
                vec![0.0, -1.0, 1.0],
            ],
            0.5,
            8,
        )
    }

    pub fn num_contexts(&self) -> usize {
        self.means.len()
    }

    /// The arm with the highest mean reward in context `c` (first on
    /// ties) — what a converged greedy policy must pick.
    pub fn best_arm(&self, c: usize) -> usize {
        let row = &self.means[c];
        let mut best = 0;
        for (a, &m) in row.iter().enumerate() {
            if m > row[best] {
                best = a;
            }
        }
        best
    }

    fn one_hot(&self, c: usize) -> Vec<f32> {
        let mut obs = vec![0.0; self.means.len()];
        obs[c] = 1.0;
        obs
    }

    fn one_hot_into(&self, c: usize, obs: &mut Vec<f32>) {
        obs.clear();
        obs.resize(self.means.len(), 0.0);
        obs[c] = 1.0;
    }

    /// The transition proper: draws the noisy reward, then the next
    /// context — that RNG draw order is part of the env's reproducibility
    /// contract, so [`Env::step`] and [`Env::step_into`] share this.
    fn pull(&mut self, action: usize, rng: &mut Rng) -> (f32, bool) {
        assert!(action < self.num_actions(), "arm index out of range");
        assert!(self.pulls < self.horizon, "stepped a finished episode");
        self.pulls += 1;
        let reward = rng.normal(self.means[self.context][action], self.noise_std);
        self.context = rng.below(self.means.len());
        (reward, self.pulls >= self.horizon)
    }
}

impl Env for ContextBanditEnv {
    fn obs_dim(&self) -> usize {
        self.means.len()
    }

    fn num_actions(&self) -> usize {
        self.means[0].len()
    }

    fn reset(&mut self, rng: &mut Rng) -> Vec<f32> {
        self.pulls = 0;
        self.context = rng.below(self.means.len());
        self.one_hot(self.context)
    }

    fn step(&mut self, action: usize, rng: &mut Rng) -> Step {
        let (reward, done) = self.pull(action, rng);
        Step {
            obs: self.one_hot(self.context),
            reward,
            done,
        }
    }

    fn reset_into(&mut self, rng: &mut Rng, obs: &mut Vec<f32>) {
        self.pulls = 0;
        self.context = rng.below(self.means.len());
        self.one_hot_into(self.context, obs);
    }

    fn step_into(&mut self, action: usize, rng: &mut Rng, obs: &mut Vec<f32>) -> (f32, bool) {
        let (reward, done) = self.pull(action, rng);
        self.one_hot_into(self.context, obs);
        (reward, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_arm_is_diagonal_for_standard_instance() {
        let env = ContextBanditEnv::standard();
        assert_eq!(env.best_arm(0), 0);
        assert_eq!(env.best_arm(1), 1);
        assert_eq!(env.best_arm(2), 2);
    }

    #[test]
    fn episodes_last_exactly_horizon_pulls() {
        let mut env = ContextBanditEnv::standard();
        let mut rng = Rng::seed_from_u64(1);
        env.reset(&mut rng);
        for i in 1..=8 {
            let step = env.step(0, &mut rng);
            assert_eq!(step.done, i == 8);
            assert_eq!(step.obs.iter().filter(|&&x| x == 1.0).count(), 1);
        }
    }

    #[test]
    fn noiseless_rewards_match_means() {
        let mut env = ContextBanditEnv::new(vec![vec![2.0, -3.0], vec![0.5, 4.0]], 0.0, 4);
        let mut rng = Rng::seed_from_u64(2);
        let obs = env.reset(&mut rng);
        let ctx = obs.iter().position(|&x| x == 1.0).unwrap();
        let step = env.step(1, &mut rng);
        assert_eq!(step.reward, env.means[ctx][1]);
    }

    #[test]
    fn noisy_rewards_average_to_the_mean() {
        let mut env = ContextBanditEnv::new(vec![vec![1.0, 0.0]], 0.5, 1_000_000);
        let mut rng = Rng::seed_from_u64(3);
        env.reset(&mut rng);
        let n = 20_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            sum += env.step(0, &mut rng).reward as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }
}
