//! Discounted returns and generalized advantage estimation (GAE).
//!
//! Both functions consume one rollout *fragment*: `T` transitions that may
//! span several episode boundaries (marked in `dones`) and may end
//! mid-episode, in which case the tail is bootstrapped with
//! `bootstrap` ≈ V(s_T). Everything accumulates backwards in one pass.
//!
//! # The math
//!
//! With TD residual `δ_t = r_t + γ·V(s_{t+1})·(1−done_t) − V(s_t)`, the
//! GAE(γ, λ) advantage is the exponentially weighted sum
//!
//! ```text
//! Â_t = Σ_{k≥0} (γλ)^k · δ_{t+k}        (truncated at episode/fragment end)
//! ```
//!
//! computed by the backward recursion `Â_t = δ_t + γλ·(1−done_t)·Â_{t+1}`.
//! The two endpoints are classical estimators, which the property tests in
//! `tests/gae_properties.rs` verify exactly:
//!
//! - λ = 1: `Â_t = G_t − V(s_t)` — the Monte-Carlo discounted return minus
//!   the baseline (low bias, high variance);
//! - λ = 0: `Â_t = δ_t` — the one-step TD advantage (high bias, low
//!   variance).

/// Discounted returns `G_t = Σ_k γ^k r_{t+k}` over a fragment, resetting
/// at episode boundaries and seeding the truncated tail with `bootstrap`.
///
/// `rewards[t]` and `dones[t]` describe transition `t`; if the fragment
/// ends mid-episode (`dones[T-1] == false`), `bootstrap` should be the
/// value estimate of the state the last transition landed in (use 0.0 for
/// a complete episode).
pub fn discounted_returns(rewards: &[f32], dones: &[bool], bootstrap: f32, gamma: f32) -> Vec<f32> {
    assert_eq!(rewards.len(), dones.len(), "rewards/dones length mismatch");
    let mut returns = vec![0.0f32; rewards.len()];
    let mut acc = bootstrap;
    for t in (0..rewards.len()).rev() {
        if dones[t] {
            acc = 0.0;
        }
        acc = rewards[t] + gamma * acc;
        returns[t] = acc;
    }
    returns
}

/// GAE(γ, λ) advantages over a fragment. `values[t]` is `V(s_t)` for the
/// state transition `t` started from; `bootstrap` is `V(s_T)` for the
/// state after the last transition (ignored if that transition ended an
/// episode).
///
/// The critic's regression targets are `advantages[t] + values[t]`, which
/// at λ = 1 reduces to the discounted returns.
pub fn gae(
    rewards: &[f32],
    values: &[f32],
    dones: &[bool],
    bootstrap: f32,
    gamma: f32,
    lambda: f32,
) -> Vec<f32> {
    let mut adv = Vec::new();
    gae_into(rewards, values, dones, bootstrap, gamma, lambda, &mut adv);
    adv
}

/// [`gae`] writing into a caller-owned buffer — the zero-alloc variant
/// for steady-state training loops.
#[allow(clippy::too_many_arguments)]
pub fn gae_into(
    rewards: &[f32],
    values: &[f32],
    dones: &[bool],
    bootstrap: f32,
    gamma: f32,
    lambda: f32,
    adv: &mut Vec<f32>,
) {
    assert_eq!(
        rewards.len(),
        values.len(),
        "rewards/values length mismatch"
    );
    assert_eq!(rewards.len(), dones.len(), "rewards/dones length mismatch");
    let t_max = rewards.len();
    adv.clear();
    adv.resize(t_max, 0.0);
    let mut acc = 0.0f32;
    for t in (0..t_max).rev() {
        let (next_value, nonterminal) = if dones[t] {
            (0.0, 0.0)
        } else if t + 1 == t_max {
            (bootstrap, 1.0)
        } else {
            (values[t + 1], 1.0)
        };
        let delta = rewards[t] + gamma * next_value - values[t];
        acc = delta + gamma * lambda * nonterminal * acc;
        adv[t] = acc;
    }
}

/// Standardize advantages to zero mean / unit variance in place (`f64`
/// accumulation), a common variance-reduction step before the policy
/// gradient. Degenerate fragments (constant advantages) are left centered
/// but unscaled.
pub fn normalize_advantages(adv: &mut [f32]) {
    if adv.len() < 2 {
        return;
    }
    let n = adv.len() as f64;
    let mean = adv.iter().map(|&a| a as f64).sum::<f64>() / n;
    let var = adv.iter().map(|&a| (a as f64 - mean).powi(2)).sum::<f64>() / n;
    let std = var.sqrt();
    let scale = if std > 1e-8 { 1.0 / std } else { 1.0 };
    for a in adv {
        *a = ((*a as f64 - mean) * scale) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_single_episode_hand_computed() {
        // r = [1, 2, 3], episode complete, γ = 0.5:
        // G_2 = 3, G_1 = 2 + 0.5·3 = 3.5, G_0 = 1 + 0.5·3.5 = 2.75.
        let g = discounted_returns(&[1.0, 2.0, 3.0], &[false, false, true], 0.0, 0.5);
        assert_eq!(g, vec![2.75, 3.5, 3.0]);
    }

    #[test]
    fn returns_reset_at_episode_boundary() {
        // Two one-step episodes: each return is just its own reward.
        let g = discounted_returns(&[5.0, 7.0], &[true, true], 0.0, 0.9);
        assert_eq!(g, vec![5.0, 7.0]);
    }

    #[test]
    fn returns_bootstrap_truncated_tail() {
        // Fragment ends mid-episode: G_1 = 2 + γ·V(s_2).
        let g = discounted_returns(&[1.0, 2.0], &[false, false], 10.0, 0.9);
        assert!((g[1] - (2.0 + 0.9 * 10.0)).abs() < 1e-6);
        assert!((g[0] - (1.0 + 0.9 * g[1])).abs() < 1e-6);
    }

    #[test]
    fn bootstrap_ignored_when_last_step_terminates() {
        let with = gae(&[1.0], &[0.3], &[true], 99.0, 0.9, 0.95);
        let without = gae(&[1.0], &[0.3], &[true], 0.0, 0.9, 0.95);
        assert_eq!(with, without);
    }

    #[test]
    fn gae_single_step_is_td_residual() {
        let adv = gae(&[2.0], &[0.5], &[false], 1.0, 0.9, 0.95);
        assert!((adv[0] - (2.0 + 0.9 * 1.0 - 0.5)).abs() < 1e-6);
    }

    #[test]
    fn normalize_gives_zero_mean_unit_std() {
        let mut adv = vec![1.0, 2.0, 3.0, 4.0, 10.0];
        normalize_advantages(&mut adv);
        let mean: f32 = adv.iter().sum::<f32>() / adv.len() as f32;
        let var: f32 = adv.iter().map(|a| (a - mean).powi(2)).sum::<f32>() / adv.len() as f32;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_constant_input_stays_finite() {
        let mut adv = vec![3.0; 4];
        normalize_advantages(&mut adv);
        assert!(adv.iter().all(|a| a.is_finite()));
        assert!(adv.iter().all(|a| a.abs() < 1e-6));
    }
}
