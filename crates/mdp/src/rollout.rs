//! Trajectory collection: fixed-horizon rollout fragments that carry
//! episodes across fragment boundaries.
//!
//! A2C-style trainers do not collect whole episodes — they collect
//! fixed-length *fragments* (`rollout_len` transitions), compute GAE over
//! the fragment with a bootstrapped tail, and update. [`Collector`] owns
//! the environment and the in-flight episode state, so consecutive
//! [`Collector::collect`] calls resume exactly where the previous fragment
//! stopped, with no transitions dropped or duplicated at the seam.
//!
//! # Batched inference
//!
//! Value estimates are *not* queried step by step. The collector records
//! the starting observation of every transition into one `(T × obs_dim)`
//! matrix and runs a single batched [`ValueFunction::values_into`] pass at
//! the end of the fragment — with the truncated-tail bootstrap riding
//! along as one extra row when the fragment ends mid-episode. For a
//! network-backed critic that turns `T + 1` batch-1 forwards into one
//! batch-`T+1` forward. [`BatchCollector`] goes further and steps `N`
//! environment copies in lockstep, stacking their current states into a
//! single [`Policy::action_probs_batch_into`] call per timestep.
//!
//! # Allocation discipline
//!
//! [`Collector::collect_into`] reuses the caller's [`Rollout`] buffers and
//! the collector's own scratch, so after a warmup fragment the steady
//! state performs no heap allocation (given envs that override
//! [`Env::step_into`]/[`Env::reset_into`] and agents that override the
//! `_into` inference hooks — everything in this workspace does). The
//! allocation-counter test in `osa-bench` pins this.

use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;

use crate::env::{sample_categorical, Env, Policy, ValueFunction};

/// One fixed-horizon rollout fragment plus the bookkeeping GAE needs.
#[derive(Clone, Debug, Default)]
pub struct Rollout {
    /// Observation each transition started from, stacked as a
    /// `(T × obs_dim)` matrix ready for batched forward passes.
    pub observations: Tensor,
    /// Action taken at each transition.
    pub actions: Vec<usize>,
    /// Reward earned by each transition.
    pub rewards: Vec<f32>,
    /// Whether each transition ended its episode.
    pub dones: Vec<bool>,
    /// Value estimate `V(s_t)` for each starting observation, computed
    /// with the value function current at collection time.
    pub values: Vec<f32>,
    /// Value estimate of the state after the last transition, or 0.0 if
    /// that transition terminated its episode. This is GAE's tail
    /// bootstrap.
    pub bootstrap: f32,
    /// Undiscounted returns of every episode that *completed* during this
    /// fragment, in completion order — the training curve signal.
    pub episode_returns: Vec<f32>,
    /// Length (in transitions) of each completed episode, parallel to
    /// `episode_returns`.
    pub episode_lengths: Vec<usize>,
}

impl Rollout {
    /// Number of transitions in the fragment.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Empty the fragment for reuse, keeping every buffer's capacity.
    /// Observation rows collected next will be `obs_dim` wide.
    pub fn clear(&mut self, obs_dim: usize) {
        self.observations.reset_rows(obs_dim);
        self.actions.clear();
        self.rewards.clear();
        self.dones.clear();
        self.values.clear();
        self.bootstrap = 0.0;
        self.episode_returns.clear();
        self.episode_lengths.clear();
    }

    /// Observations stacked into a `(T × obs_dim)` matrix for batched
    /// forward passes.
    pub fn observation_matrix(&self) -> &Tensor {
        &self.observations
    }
}

/// Owns an environment plus the in-flight episode, and cuts fixed-horizon
/// fragments from the stream of transitions.
pub struct Collector<E: Env> {
    env: E,
    obs: Vec<f32>,
    next_obs: Vec<f32>,
    probs: Vec<f32>,
    ep_return: f32,
    ep_len: usize,
    /// Total transitions taken since construction.
    pub total_steps: u64,
}

impl<E: Env> Collector<E> {
    /// Wrap an environment and start its first episode.
    pub fn new(mut env: E, rng: &mut Rng) -> Self {
        let obs = env.reset(rng);
        Collector {
            env,
            obs,
            next_obs: Vec::new(),
            probs: Vec::new(),
            ep_return: 0.0,
            ep_len: 0,
            total_steps: 0,
        }
    }

    /// Collect exactly `horizon` transitions into a fresh [`Rollout`].
    /// Allocating convenience wrapper over [`Collector::collect_into`].
    pub fn collect<A: Policy + ValueFunction>(
        &mut self,
        agent: &mut A,
        horizon: usize,
        rng: &mut Rng,
    ) -> Rollout {
        let mut out = Rollout::default();
        self.collect_into(agent, horizon, rng, &mut out);
        out
    }

    /// Collect exactly `horizon` transitions into `out`, reusing its
    /// buffers. Actions are sampled from `agent`; episodes that end are
    /// reset transparently. Value estimates for the whole fragment (and
    /// the truncated-tail bootstrap, if the fragment ends mid-episode)
    /// are computed in a single batched [`ValueFunction::values_into`]
    /// pass at the end — a terminal tail bootstraps 0 and never evaluates
    /// the next episode's reset state.
    pub fn collect_into<A: Policy + ValueFunction>(
        &mut self,
        agent: &mut A,
        horizon: usize,
        rng: &mut Rng,
        out: &mut Rollout,
    ) {
        assert!(horizon > 0, "cannot collect an empty rollout");
        out.clear(self.env.obs_dim());
        for _ in 0..horizon {
            out.observations.push_row(&self.obs);
            agent.action_probs_into(&self.obs, &mut self.probs);
            let action = sample_categorical(&self.probs, rng);
            let (reward, done) = self.env.step_into(action, rng, &mut self.next_obs);
            self.total_steps += 1;
            self.ep_return += reward;
            self.ep_len += 1;

            out.actions.push(action);
            out.rewards.push(reward);
            out.dones.push(done);

            if done {
                out.episode_returns.push(self.ep_return);
                out.episode_lengths.push(self.ep_len);
                self.ep_return = 0.0;
                self.ep_len = 0;
                self.env.reset_into(rng, &mut self.obs);
            } else {
                std::mem::swap(&mut self.obs, &mut self.next_obs);
            }
        }
        // One batched critic pass over every V(s_t). The tail state rides
        // along as an extra row only when the fragment ends mid-episode:
        // after a terminal transition the environment has already been
        // reset, and evaluating that state would leak value across the
        // episode boundary (pinned by tests/rollout_boundary.rs).
        let tail = !*out.dones.last().expect("horizon > 0");
        if tail {
            out.observations.push_row(&self.obs);
        }
        agent.values_into(&out.observations, &mut out.values);
        out.bootstrap = if tail {
            let b = out.values.pop().expect("tail value present");
            out.observations.pop_row();
            b
        } else {
            0.0
        };
    }
}

/// Steps `N` copies of an environment in lockstep, stacking their current
/// states so the policy runs **one** batched forward per timestep instead
/// of `N` batch-1 forwards — the synchronous counterpart to handing each
/// worker thread its own [`Collector`].
///
/// All `N` streams share one RNG, consumed in env order within each
/// timestep, so a run is still a pure function of the seed. Fragments come
/// out as one [`Rollout`] per environment, each internally identical to
/// what a dedicated `Collector` would produce for that env's stream of
/// transitions.
pub struct BatchCollector<E: Env> {
    envs: Vec<E>,
    /// Current observation of every env, `(N × obs_dim)`.
    obs: Tensor,
    next_obs: Vec<f32>,
    probs: Tensor,
    ep_return: Vec<f32>,
    ep_len: Vec<usize>,
    /// Total transitions taken since construction, across all envs.
    pub total_steps: u64,
}

impl<E: Env> BatchCollector<E> {
    /// Wrap `envs` (at least one) and start each one's first episode.
    pub fn new(mut envs: Vec<E>, rng: &mut Rng) -> Self {
        assert!(!envs.is_empty(), "need at least one environment");
        let dim = envs[0].obs_dim();
        let mut obs = Tensor::zeros(0, 0);
        obs.reset_rows(dim);
        let mut first = Vec::new();
        for env in &mut envs {
            assert_eq!(env.obs_dim(), dim, "mixed observation widths");
            env.reset_into(rng, &mut first);
            obs.push_row(&first);
        }
        let n = envs.len();
        BatchCollector {
            envs,
            obs,
            next_obs: first,
            probs: Tensor::zeros(0, 0),
            ep_return: vec![0.0; n],
            ep_len: vec![0; n],
            total_steps: 0,
        }
    }

    pub fn num_envs(&self) -> usize {
        self.envs.len()
    }

    /// Collect `horizon` transitions from every env into `outs[i]`
    /// (resized to `num_envs`, buffers reused), running one batched
    /// policy forward per timestep and one batched value pass per env at
    /// the end, with the same terminal-tail bootstrap contract as
    /// [`Collector::collect_into`].
    pub fn collect_into<A: Policy + ValueFunction>(
        &mut self,
        agent: &mut A,
        horizon: usize,
        rng: &mut Rng,
        outs: &mut Vec<Rollout>,
    ) {
        assert!(horizon > 0, "cannot collect an empty rollout");
        let dim = self.obs.cols();
        outs.resize_with(self.envs.len(), Rollout::default);
        for out in outs.iter_mut() {
            out.clear(dim);
        }
        for _ in 0..horizon {
            // One inference call covers every env's pending action.
            agent.action_probs_batch_into(&self.obs, &mut self.probs);
            for (i, out) in outs.iter_mut().enumerate() {
                out.observations.push_row(self.obs.row(i));
                let action = sample_categorical(self.probs.row(i), rng);
                let (reward, done) = self.envs[i].step_into(action, rng, &mut self.next_obs);
                self.total_steps += 1;
                self.ep_return[i] += reward;
                self.ep_len[i] += 1;

                out.actions.push(action);
                out.rewards.push(reward);
                out.dones.push(done);

                if done {
                    out.episode_returns.push(self.ep_return[i]);
                    out.episode_lengths.push(self.ep_len[i]);
                    self.ep_return[i] = 0.0;
                    self.ep_len[i] = 0;
                    self.envs[i].reset_into(rng, &mut self.next_obs);
                }
                self.obs.row_mut(i).copy_from_slice(&self.next_obs);
            }
        }
        for (i, out) in outs.iter_mut().enumerate() {
            let tail = !*out.dones.last().expect("horizon > 0");
            if tail {
                out.observations.push_row(self.obs.row(i));
            }
            agent.values_into(&out.observations, &mut out.values);
            out.bootstrap = if tail {
                let b = out.values.pop().expect("tail value present");
                out.observations.pop_row();
                b
            } else {
                0.0
            };
        }
    }
}

/// Run `episodes` full episodes with a frozen policy (greedy or sampled)
/// and return their undiscounted returns. `max_steps` bounds each episode
/// against policies that never terminate.
pub fn evaluate<E: Env, P: Policy>(
    env: &mut E,
    policy: &mut P,
    episodes: usize,
    max_steps: usize,
    greedy: bool,
    rng: &mut Rng,
) -> Vec<f32> {
    let mut returns = Vec::with_capacity(episodes);
    for _ in 0..episodes {
        let mut obs = env.reset(rng);
        let mut total = 0.0f32;
        for _ in 0..max_steps {
            let action = if greedy {
                policy.greedy(&obs)
            } else {
                policy.sample(&obs, rng)
            };
            let step = env.step(action, rng);
            total += step.reward;
            if step.done {
                break;
            }
            obs = step.obs;
        }
        returns.push(total);
    }
    returns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Step;

    /// Deterministic counting env: obs = [t], reward = t, episode of 3.
    #[derive(Clone)]
    struct CountEnv {
        t: usize,
    }

    impl Env for CountEnv {
        fn obs_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self, _rng: &mut Rng) -> Vec<f32> {
            self.t = 0;
            vec![0.0]
        }
        fn step(&mut self, _action: usize, _rng: &mut Rng) -> Step {
            self.t += 1;
            Step {
                obs: vec![self.t as f32],
                reward: self.t as f32,
                done: self.t == 3,
            }
        }
    }

    struct UniformAgent;

    impl Policy for UniformAgent {
        fn action_probs(&mut self, _obs: &[f32]) -> Vec<f32> {
            vec![0.5, 0.5]
        }
    }

    impl ValueFunction for UniformAgent {
        fn value(&mut self, obs: &[f32]) -> f32 {
            10.0 + obs[0]
        }
    }

    #[test]
    fn fragments_carry_episodes_across_boundaries() {
        let mut rng = Rng::seed_from_u64(1);
        let mut col = Collector::new(CountEnv { t: 0 }, &mut rng);
        let mut agent = UniformAgent;

        // Horizon 2 cuts the 3-step episode mid-way.
        let r1 = col.collect(&mut agent, 2, &mut rng);
        assert_eq!(r1.rewards, vec![1.0, 2.0]);
        assert_eq!(r1.dones, vec![false, false]);
        assert!(r1.episode_returns.is_empty());
        // Tail bootstrapped with V([2]) = 12.
        assert_eq!(r1.bootstrap, 12.0);

        // The next fragment resumes at t = 2: finishes the episode (reward
        // 3) then starts a fresh one (reward 1).
        let r2 = col.collect(&mut agent, 2, &mut rng);
        assert_eq!(r2.rewards, vec![3.0, 1.0]);
        assert_eq!(r2.dones, vec![true, false]);
        assert_eq!(r2.episode_returns, vec![6.0]); // 1 + 2 + 3
        assert_eq!(r2.episode_lengths, vec![3]);
        assert_eq!(col.total_steps, 4);
    }

    #[test]
    fn terminal_fragment_has_zero_bootstrap() {
        let mut rng = Rng::seed_from_u64(2);
        let mut col = Collector::new(CountEnv { t: 0 }, &mut rng);
        let r = col.collect(&mut UniformAgent, 3, &mut rng);
        assert_eq!(r.dones, vec![false, false, true]);
        assert_eq!(r.bootstrap, 0.0);
        assert_eq!(r.episode_returns, vec![6.0]);
    }

    #[test]
    fn observation_matrix_stacks_rows() {
        let mut rng = Rng::seed_from_u64(3);
        let mut col = Collector::new(CountEnv { t: 0 }, &mut rng);
        let r = col.collect(&mut UniformAgent, 3, &mut rng);
        let m = r.observation_matrix();
        assert_eq!((m.rows(), m.cols()), (3, 1));
        assert_eq!(m.data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn collect_into_reuses_buffers_and_matches_collect() {
        let mut rng_a = Rng::seed_from_u64(7);
        let mut rng_b = Rng::seed_from_u64(7);
        let mut col_a = Collector::new(CountEnv { t: 0 }, &mut rng_a);
        let mut col_b = Collector::new(CountEnv { t: 0 }, &mut rng_b);
        let mut reused = Rollout::default();
        for _ in 0..4 {
            let fresh = col_a.collect(&mut UniformAgent, 5, &mut rng_a);
            col_b.collect_into(&mut UniformAgent, 5, &mut rng_b, &mut reused);
            assert_eq!(fresh.observations, reused.observations);
            assert_eq!(fresh.actions, reused.actions);
            assert_eq!(fresh.rewards, reused.rewards);
            assert_eq!(fresh.dones, reused.dones);
            assert_eq!(fresh.values, reused.values);
            assert_eq!(fresh.bootstrap, reused.bootstrap);
            assert_eq!(fresh.episode_returns, reused.episode_returns);
            assert_eq!(fresh.episode_lengths, reused.episode_lengths);
        }
    }

    #[test]
    fn evaluate_counts_full_episodes() {
        let mut rng = Rng::seed_from_u64(4);
        let returns = evaluate(
            &mut CountEnv { t: 0 },
            &mut UniformAgent,
            5,
            100,
            true,
            &mut rng,
        );
        assert_eq!(returns, vec![6.0; 5]);
    }

    /// Wraps [`UniformAgent`] and counts batched-inference calls, proving
    /// the [`BatchCollector`] really runs one policy forward per timestep.
    struct CountingAgent {
        batch_calls: usize,
        value_batches: usize,
    }

    impl Policy for CountingAgent {
        fn action_probs(&mut self, _obs: &[f32]) -> Vec<f32> {
            vec![0.5, 0.5]
        }
        fn action_probs_batch_into(&mut self, obs: &Tensor, out: &mut Tensor) {
            self.batch_calls += 1;
            out.reset_rows(2);
            for _ in 0..obs.rows() {
                out.push_row(&[0.5, 0.5]);
            }
        }
    }

    impl ValueFunction for CountingAgent {
        fn value(&mut self, obs: &[f32]) -> f32 {
            10.0 + obs[0]
        }
        fn values_into(&mut self, obs: &Tensor, out: &mut Vec<f32>) {
            self.value_batches += 1;
            out.clear();
            for r in 0..obs.rows() {
                out.push(10.0 + obs.row(r)[0]);
            }
        }
    }

    #[test]
    fn batch_collector_steps_envs_in_lockstep() {
        let mut rng = Rng::seed_from_u64(5);
        let envs = vec![CountEnv { t: 0 }, CountEnv { t: 0 }, CountEnv { t: 0 }];
        let mut col = BatchCollector::new(envs, &mut rng);
        let mut agent = CountingAgent {
            batch_calls: 0,
            value_batches: 0,
        };
        let mut outs = Vec::new();
        col.collect_into(&mut agent, 4, &mut rng, &mut outs);

        assert_eq!(outs.len(), 3);
        // One policy forward per timestep, one value batch per env.
        assert_eq!(agent.batch_calls, 4);
        assert_eq!(agent.value_batches, 3);
        assert_eq!(col.total_steps, 12);
        // CountEnv is action-independent, so every stream is the same
        // deterministic 3-step episode wrapping into a fourth step.
        for out in &outs {
            assert_eq!(out.rewards, vec![1.0, 2.0, 3.0, 1.0]);
            assert_eq!(out.dones, vec![false, false, true, false]);
            assert_eq!(out.episode_returns, vec![6.0]);
            // Fragment ends mid-episode at t = 1 → bootstrap V([1]) = 11.
            assert_eq!(out.bootstrap, 11.0);
            assert_eq!(out.observations.rows(), 4);
            assert_eq!(out.values, vec![10.0, 11.0, 12.0, 10.0]);
        }
    }

    #[test]
    fn batch_collector_terminal_tail_bootstraps_zero() {
        let mut rng = Rng::seed_from_u64(6);
        let mut col = BatchCollector::new(vec![CountEnv { t: 0 }; 2], &mut rng);
        let mut agent = CountingAgent {
            batch_calls: 0,
            value_batches: 0,
        };
        let mut outs = Vec::new();
        col.collect_into(&mut agent, 3, &mut rng, &mut outs);
        for out in &outs {
            assert_eq!(out.dones, vec![false, false, true]);
            assert_eq!(out.bootstrap, 0.0);
        }
    }
}
