//! Trajectory collection: fixed-horizon rollout fragments that carry
//! episodes across fragment boundaries.
//!
//! A2C-style trainers do not collect whole episodes — they collect
//! fixed-length *fragments* (`rollout_len` transitions), compute GAE over
//! the fragment with a bootstrapped tail, and update. [`Collector`] owns
//! the environment and the in-flight episode state, so consecutive
//! [`Collector::collect`] calls resume exactly where the previous fragment
//! stopped, with no transitions dropped or duplicated at the seam.

use osa_nn::rng::Rng;

use crate::env::{Env, Policy, ValueFunction};

/// One fixed-horizon rollout fragment plus the bookkeeping GAE needs.
#[derive(Clone, Debug, Default)]
pub struct Rollout {
    /// Observation each transition started from (`T` rows).
    pub observations: Vec<Vec<f32>>,
    /// Action taken at each transition.
    pub actions: Vec<usize>,
    /// Reward earned by each transition.
    pub rewards: Vec<f32>,
    /// Whether each transition ended its episode.
    pub dones: Vec<bool>,
    /// Value estimate `V(s_t)` for each starting observation, computed
    /// with the value function current at collection time.
    pub values: Vec<f32>,
    /// Value estimate of the state after the last transition, or 0.0 if
    /// that transition terminated its episode. This is GAE's tail
    /// bootstrap.
    pub bootstrap: f32,
    /// Undiscounted returns of every episode that *completed* during this
    /// fragment, in completion order — the training curve signal.
    pub episode_returns: Vec<f32>,
    /// Length (in transitions) of each completed episode, parallel to
    /// `episode_returns`.
    pub episode_lengths: Vec<usize>,
}

impl Rollout {
    /// Number of transitions in the fragment.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Observations stacked into a `(T × obs_dim)` matrix for batched
    /// forward passes.
    pub fn observation_matrix(&self) -> osa_nn::tensor::Tensor {
        let rows = self.observations.len();
        let cols = self.observations.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows * cols);
        for obs in &self.observations {
            data.extend_from_slice(obs);
        }
        osa_nn::tensor::Tensor::from_vec(rows, cols, data)
    }
}

/// Owns an environment plus the in-flight episode, and cuts fixed-horizon
/// fragments from the stream of transitions.
pub struct Collector<E: Env> {
    env: E,
    obs: Vec<f32>,
    ep_return: f32,
    ep_len: usize,
    /// Total transitions taken since construction.
    pub total_steps: u64,
}

impl<E: Env> Collector<E> {
    /// Wrap an environment and start its first episode.
    pub fn new(mut env: E, rng: &mut Rng) -> Self {
        let obs = env.reset(rng);
        Collector {
            env,
            obs,
            ep_return: 0.0,
            ep_len: 0,
            total_steps: 0,
        }
    }

    /// Collect exactly `horizon` transitions, sampling actions from
    /// `agent` and recording its value estimates; episodes that end are
    /// reset transparently, and the final state is bootstrapped through
    /// the agent's [`ValueFunction`] if the fragment ends mid-episode.
    pub fn collect<A: Policy + ValueFunction>(
        &mut self,
        agent: &mut A,
        horizon: usize,
        rng: &mut Rng,
    ) -> Rollout {
        assert!(horizon > 0, "cannot collect an empty rollout");
        let mut out = Rollout::default();
        out.observations.reserve(horizon);
        for _ in 0..horizon {
            let action = agent.sample(&self.obs, rng);
            let value = agent.value(&self.obs);
            let step = self.env.step(action, rng);
            self.total_steps += 1;
            self.ep_return += step.reward;
            self.ep_len += 1;

            out.observations.push(std::mem::take(&mut self.obs));
            out.actions.push(action);
            out.rewards.push(step.reward);
            out.dones.push(step.done);
            out.values.push(value);

            if step.done {
                out.episode_returns.push(self.ep_return);
                out.episode_lengths.push(self.ep_len);
                self.ep_return = 0.0;
                self.ep_len = 0;
                self.obs = self.env.reset(rng);
            } else {
                self.obs = step.obs;
            }
        }
        out.bootstrap = if *out.dones.last().expect("horizon > 0") {
            0.0
        } else {
            agent.value(&self.obs)
        };
        out
    }
}

/// Run `episodes` full episodes with a frozen policy (greedy or sampled)
/// and return their undiscounted returns. `max_steps` bounds each episode
/// against policies that never terminate.
pub fn evaluate<E: Env, P: Policy>(
    env: &mut E,
    policy: &mut P,
    episodes: usize,
    max_steps: usize,
    greedy: bool,
    rng: &mut Rng,
) -> Vec<f32> {
    let mut returns = Vec::with_capacity(episodes);
    for _ in 0..episodes {
        let mut obs = env.reset(rng);
        let mut total = 0.0f32;
        for _ in 0..max_steps {
            let action = if greedy {
                policy.greedy(&obs)
            } else {
                policy.sample(&obs, rng)
            };
            let step = env.step(action, rng);
            total += step.reward;
            if step.done {
                break;
            }
            obs = step.obs;
        }
        returns.push(total);
    }
    returns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Step;

    /// Deterministic counting env: obs = [t], reward = t, episode of 3.
    #[derive(Clone)]
    struct CountEnv {
        t: usize,
    }

    impl Env for CountEnv {
        fn obs_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self, _rng: &mut Rng) -> Vec<f32> {
            self.t = 0;
            vec![0.0]
        }
        fn step(&mut self, _action: usize, _rng: &mut Rng) -> Step {
            self.t += 1;
            Step {
                obs: vec![self.t as f32],
                reward: self.t as f32,
                done: self.t == 3,
            }
        }
    }

    struct UniformAgent;

    impl Policy for UniformAgent {
        fn action_probs(&mut self, _obs: &[f32]) -> Vec<f32> {
            vec![0.5, 0.5]
        }
    }

    impl ValueFunction for UniformAgent {
        fn value(&mut self, obs: &[f32]) -> f32 {
            10.0 + obs[0]
        }
    }

    #[test]
    fn fragments_carry_episodes_across_boundaries() {
        let mut rng = Rng::seed_from_u64(1);
        let mut col = Collector::new(CountEnv { t: 0 }, &mut rng);
        let mut agent = UniformAgent;

        // Horizon 2 cuts the 3-step episode mid-way.
        let r1 = col.collect(&mut agent, 2, &mut rng);
        assert_eq!(r1.rewards, vec![1.0, 2.0]);
        assert_eq!(r1.dones, vec![false, false]);
        assert!(r1.episode_returns.is_empty());
        // Tail bootstrapped with V([2]) = 12.
        assert_eq!(r1.bootstrap, 12.0);

        // The next fragment resumes at t = 2: finishes the episode (reward
        // 3) then starts a fresh one (reward 1).
        let r2 = col.collect(&mut agent, 2, &mut rng);
        assert_eq!(r2.rewards, vec![3.0, 1.0]);
        assert_eq!(r2.dones, vec![true, false]);
        assert_eq!(r2.episode_returns, vec![6.0]); // 1 + 2 + 3
        assert_eq!(r2.episode_lengths, vec![3]);
        assert_eq!(col.total_steps, 4);
    }

    #[test]
    fn terminal_fragment_has_zero_bootstrap() {
        let mut rng = Rng::seed_from_u64(2);
        let mut col = Collector::new(CountEnv { t: 0 }, &mut rng);
        let r = col.collect(&mut UniformAgent, 3, &mut rng);
        assert_eq!(r.dones, vec![false, false, true]);
        assert_eq!(r.bootstrap, 0.0);
        assert_eq!(r.episode_returns, vec![6.0]);
    }

    #[test]
    fn observation_matrix_stacks_rows() {
        let mut rng = Rng::seed_from_u64(3);
        let mut col = Collector::new(CountEnv { t: 0 }, &mut rng);
        let r = col.collect(&mut UniformAgent, 3, &mut rng);
        let m = r.observation_matrix();
        assert_eq!((m.rows(), m.cols()), (3, 1));
        assert_eq!(m.data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn evaluate_counts_full_episodes() {
        let mut rng = Rng::seed_from_u64(4);
        let returns = evaluate(
            &mut CountEnv { t: 0 },
            &mut UniformAgent,
            5,
            100,
            true,
            &mut rng,
        );
        assert_eq!(returns, vec![6.0; 5]);
    }
}
