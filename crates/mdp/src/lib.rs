//! `osa-mdp` — sequential decision making for the osa workspace (DESIGN.md §1 row 2).
//!
//! # Contract
//!
//! This crate will provide the MDP substrate every learned policy in the
//! workspace trains against:
//!
//! - `Env`, `Policy`, and `ValueFunction` traits with explicit, seedable RNG
//!   state (no global randomness);
//! - episode rollouts, discounted returns, and generalized advantage
//!   estimation (GAE);
//! - an A2C trainer with crossbeam-scoped parallel workers and a
//!   parking_lot-guarded shared parameter server (A3C-style asynchronous
//!   advantage actor-critic), consuming actor/critic networks from
//!   [`osa_nn`].
//!
//! The paper (§2.1) frames the learning-augmented system as an agent acting
//! in an MDP; this crate is that framing, kept independent of any concrete
//! domain so both the ABR and the congestion-control case studies can reuse
//! it.
#![forbid(unsafe_code)]

/// Marks the crate as scaffolded but not yet implemented; removed once the
/// A2C trainer lands.
pub const IMPLEMENTED: bool = false;

/// Discount factor the paper's experiments use; exposed now so downstream
/// scaffolds can reference a single constant.
pub const DEFAULT_GAMMA: f32 = 0.99;

#[cfg(test)]
mod tests {
    #[test]
    fn scaffold_compiles() {
        let gamma = std::hint::black_box(super::DEFAULT_GAMMA);
        assert!(!std::hint::black_box(super::IMPLEMENTED));
        assert!(gamma > 0.0 && gamma < 1.0);
    }
}
