//! `osa-mdp` — sequential decision making for the osa workspace
//! (DESIGN.md §1 row 2).
//!
//! The paper (§2.1) frames a learning-augmented system as an agent acting
//! in an MDP and trains Pensieve-style policies with parallel-worker
//! advantage actor-critic. This crate is that framing, kept independent of
//! any concrete domain so the ABR (`osa-pensieve`) and congestion-control
//! (`osa-cc`) case studies, and the ensembles behind `osa-core`'s U_π/U_V
//! signals, all train through the same substrate:
//!
//! - [`env`] — the [`Env`]/[`Policy`]/[`ValueFunction`] traits with
//!   explicit seedable RNG state and strict episode-boundary semantics;
//! - [`rollout`] — fixed-horizon fragment collection that carries
//!   episodes across fragment boundaries, plus policy evaluation;
//! - [`gae`] — discounted returns and generalized advantage estimation
//!   GAE(γ, λ);
//! - [`a2c`] — the A2C trainer: softmax policy gradient with entropy
//!   bonus, critic MSE, global-norm gradient clipping, and synchronous
//!   parallel rollout streams on the deterministic `osa-runtime` thread
//!   pool — final parameters are bit-identical for every pool size;
//! - [`envs`] — deterministic in-crate environments with known optima
//!   ([`envs::ChainEnv`], [`envs::ContextBanditEnv`]) proving trainer
//!   correctness in `tests/`.
//!
//! # Example
//!
//! Train the chain MDP to its known optimal policy:
//!
//! ```
//! use osa_mdp::a2c::{train, A2cConfig, ActorCritic};
//! use osa_mdp::envs::chain::{ChainEnv, ADVANCE};
//! use osa_mdp::env::Policy;
//! use osa_nn::rng::Rng;
//!
//! let env = ChainEnv::new(4);
//! let mut rng = Rng::seed_from_u64(7);
//! let mut ac = ActorCritic::mlp(env.num_states(), 16, 2, &mut rng);
//! let cfg = A2cConfig {
//!     gamma: 0.95,
//!     updates: 150,
//!     ..A2cConfig::default()
//! };
//! let report = train(&mut ac, &env, &cfg);
//! assert_eq!(report.updates, 150);
//! // The greedy policy advances from the start state.
//! let mut obs = vec![0.0; env.num_states()];
//! obs[0] = 1.0;
//! assert_eq!(ac.greedy(&obs), ADVANCE);
//! ```
#![forbid(unsafe_code)]

pub mod a2c;
pub mod env;
pub mod envs;
pub mod gae;
pub mod rollout;

pub use a2c::{
    policy_gradient_loss, policy_gradient_loss_into, train, train_with_pool, A2cConfig,
    ActorCritic, TrainReport, Trainer,
};
pub use env::{sample_categorical, Env, Policy, Step, ValueFunction};
pub use gae::{discounted_returns, gae, gae_into, normalize_advantages};
pub use rollout::{evaluate, BatchCollector, Collector, Rollout};

/// Discount factor the paper's experiments use, re-exported as the
/// workspace-wide default ([`A2cConfig::default`] starts from it).
pub const DEFAULT_GAMMA: f32 = 0.99;

/// One-stop import for downstream crates, examples, and tests.
pub mod prelude {
    pub use crate::a2c::{
        policy_gradient_loss, policy_gradient_loss_into, train, train_with_pool, A2cConfig,
        ActorCritic, TrainReport, Trainer,
    };
    pub use crate::env::{sample_categorical, Env, Policy, Step, ValueFunction};
    pub use crate::envs::{ChainEnv, ContextBanditEnv};
    pub use crate::gae::{discounted_returns, gae, gae_into, normalize_advantages};
    pub use crate::rollout::{evaluate, BatchCollector, Collector, Rollout};
    pub use crate::DEFAULT_GAMMA;
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_gamma_is_a_valid_discount() {
        let gamma = std::hint::black_box(super::DEFAULT_GAMMA);
        assert!(gamma > 0.0 && gamma < 1.0);
    }
}
