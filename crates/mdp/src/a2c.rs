//! Advantage actor-critic training with A3C-style asynchronous parallel
//! workers.
//!
//! # Architecture
//!
//! One [`ActorCritic`] pair (actor: obs → logits, critic: obs → scalar)
//! lives in a `Mutex`-guarded parameter server together with its two
//! optimizers and a monotonically increasing *parameter version*. Each
//! worker (a `std::thread::scope` thread; the workspace is std-only, so
//! no crossbeam/parking_lot) owns a private environment and an
//! architecturally identical local replica, and loops:
//!
//! 1. lock, copy the server's parameters into the replica, unlock;
//! 2. collect a `rollout_len`-step fragment with the replica
//!    ([`crate::rollout::Collector`] carries episodes across fragments);
//! 3. compute GAE(γ, λ) advantages and λ-return critic targets;
//! 4. run the fused softmax policy-gradient + entropy-bonus backward pass
//!    and the critic MSE backward pass on the replica, clip both
//!    gradients to a global norm;
//! 5. lock, apply the gradients to the server's nets through the shared
//!    optimizers, bump the version, record stats, unlock.
//!
//! Workers never block each other during (2)–(4), the expensive part;
//! the lock is held only for parameter copies and optimizer steps. As in
//! A3C, gradients may be one version stale when applied — the classic
//! asynchronous trade that buys near-linear rollout throughput. With
//! `workers == 1` the whole procedure is strictly sequential and
//! therefore bit-reproducible from the seed (pinned by
//! `tests/convergence.rs`).

use std::sync::Mutex;

use osa_nn::loss;
use osa_nn::optim::Adam;
use osa_nn::prelude::{Dense, Init, Sequential};
use osa_nn::rng::Rng;
use osa_nn::tensor::{Act, Tensor};
use osa_nn::workspace::Workspace;

use crate::env::{Env, Policy, ValueFunction};
use crate::gae::{gae_into, normalize_advantages};
use crate::rollout::{Collector, Rollout};

/// A softmax policy network and a state-value network trained together.
///
/// The actor outputs *logits* (no softmax layer): sampling and the policy
/// gradient both work in log-space, which is numerically stable for
/// near-deterministic policies.
#[derive(Default)]
pub struct ActorCritic {
    /// `(batch × obs_dim) → (batch × num_actions)` logits.
    pub actor: Sequential,
    /// `(batch × obs_dim) → (batch × 1)` state values.
    pub critic: Sequential,
    /// Scratch pool for the inference paths below: after a warmup call,
    /// `action_probs_into`/`values_into` run without heap allocation.
    ws: Workspace,
}

impl ActorCritic {
    /// Two independent single-hidden-layer ReLU MLPs — the workhorse
    /// shape for the in-crate environments and the CC case study. The
    /// ReLU is fused into the hidden `Dense` layer's forward pass
    /// ([`Dense::with_act`]), which is bit-identical to a standalone
    /// `ReLU` layer but skips one full pass over the activations.
    pub fn mlp(obs_dim: usize, hidden: usize, num_actions: usize, rng: &mut Rng) -> Self {
        ActorCritic {
            actor: Sequential::new()
                .with(Dense::new(obs_dim, hidden, Init::HeUniform, rng).with_act(Act::Relu))
                .with(Dense::new(hidden, num_actions, Init::XavierUniform, rng)),
            critic: Sequential::new()
                .with(Dense::new(obs_dim, hidden, Init::HeUniform, rng).with_act(Act::Relu))
                .with(Dense::new(hidden, 1, Init::XavierUniform, rng)),
            ws: Workspace::new(),
        }
    }

    /// A fresh pair with the same architecture *and* parameters, built
    /// through the spec round-trip (exact for `f32`).
    pub fn replicate(&self) -> Self {
        ActorCritic {
            actor: Sequential::from_spec(&self.actor.to_spec()),
            critic: Sequential::from_spec(&self.critic.to_spec()),
            ws: Workspace::new(),
        }
    }

    /// Stage `obs` as a `(1 × n)` matrix in a pooled buffer.
    fn stage_row(&mut self, obs: &[f32]) -> Tensor {
        let mut x = self.ws.take(1, obs.len());
        x.row_mut(0).copy_from_slice(obs);
        x
    }
}

/// Row-wise max-subtracted softmax, `logits` → `probs` (same math the
/// allocating `action_probs` always used, shared by every batched path).
fn softmax_row(logits: &[f32], probs: &mut [f32]) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (p, &l) in probs.iter_mut().zip(logits) {
        *p = (l - max).exp();
        sum += *p;
    }
    for p in probs {
        *p /= sum;
    }
}

impl Policy for ActorCritic {
    fn action_probs(&mut self, obs: &[f32]) -> Vec<f32> {
        let mut probs = Vec::new();
        self.action_probs_into(obs, &mut probs);
        probs
    }

    fn action_probs_into(&mut self, obs: &[f32], out: &mut Vec<f32>) {
        let x = self.stage_row(obs);
        let logits = self.actor.forward_ws(&x, &mut self.ws);
        out.clear();
        out.resize(logits.cols(), 0.0);
        softmax_row(logits.row(0), out);
        self.ws.recycle(logits);
        self.ws.recycle(x);
    }

    fn action_probs_batch_into(&mut self, obs: &Tensor, out: &mut Tensor) {
        let logits = self.actor.forward_ws(obs, &mut self.ws);
        out.resize_shape(logits.rows(), logits.cols());
        for r in 0..logits.rows() {
            softmax_row(logits.row(r), out.row_mut(r));
        }
        self.ws.recycle(logits);
    }
}

impl ValueFunction for ActorCritic {
    fn value(&mut self, obs: &[f32]) -> f32 {
        let x = self.stage_row(obs);
        let y = self.critic.forward_ws(&x, &mut self.ws);
        let v = y.get(0, 0);
        self.ws.recycle(y);
        self.ws.recycle(x);
        v
    }

    fn values_into(&mut self, obs: &Tensor, out: &mut Vec<f32>) {
        let y = self.critic.forward_ws(obs, &mut self.ws);
        out.clear();
        out.extend_from_slice(y.data());
        self.ws.recycle(y);
    }
}

/// Fused softmax policy gradient with entropy bonus, on logits.
///
/// Loss per fragment of `T` transitions:
/// `L = −(1/T)·Σ_t A_t·ln π(a_t|s_t) − β·(1/T)·Σ_t H(π(·|s_t))`.
/// Returns `(policy loss, mean entropy, dL/d logits)`. Working from
/// log-probabilities `ln π_j = z_j − lse(z)` keeps every term finite even
/// for saturated policies; the analytic gradient is
/// `dL/dz_j = [(π_j − 1{j=a_t})·A_t + β·π_j·(ln π_j + H_t)] / T`,
/// verified against central differences in this module's tests.
pub fn policy_gradient_loss(
    logits: &Tensor,
    actions: &[usize],
    advantages: &[f32],
    entropy_coef: f32,
) -> (f32, f32, Tensor) {
    let mut grad = Tensor::zeros(logits.rows(), logits.cols());
    let (pg, h) = policy_gradient_loss_into(logits, actions, advantages, entropy_coef, &mut grad);
    (pg, h, grad)
}

/// [`policy_gradient_loss`] writing the gradient into a caller-owned
/// buffer — the zero-alloc variant for steady-state training loops.
/// Returns `(policy loss, mean entropy)`.
pub fn policy_gradient_loss_into(
    logits: &Tensor,
    actions: &[usize],
    advantages: &[f32],
    entropy_coef: f32,
    grad: &mut Tensor,
) -> (f32, f32) {
    let t_max = logits.rows();
    assert_eq!(actions.len(), t_max, "one action per logit row");
    assert_eq!(advantages.len(), t_max, "one advantage per logit row");
    let inv_t = 1.0 / t_max as f64;
    let mut pg_loss = 0.0f64;
    let mut entropy_sum = 0.0f64;
    grad.resize_shape(t_max, logits.cols());
    for t in 0..t_max {
        let row = logits.row(t);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        let sum_exp: f64 = row.iter().map(|&l| (l as f64 - max).exp()).sum();
        let lse = max + sum_exp.ln();
        let adv = advantages[t] as f64;
        let a_t = actions[t];
        assert!(a_t < row.len(), "action index out of range");

        // Per-row entropy from log-probabilities (finite even when some
        // probability underflows to 0, since p·ln p → 0).
        let mut h = 0.0f64;
        for &l in row {
            let lp = l as f64 - lse;
            h -= lp.exp() * lp;
        }
        entropy_sum += h;
        pg_loss -= adv * (row[a_t] as f64 - lse);

        let grow = grad.row_mut(t);
        for (j, (&l, g)) in row.iter().zip(grow.iter_mut()).enumerate() {
            let lp = l as f64 - lse;
            let p = lp.exp();
            let indicator = if j == a_t { 1.0 } else { 0.0 };
            let d = (p - indicator) * adv + entropy_coef as f64 * p * (lp + h);
            *g = (d * inv_t) as f32;
        }
    }
    ((pg_loss * inv_t) as f32, (entropy_sum * inv_t) as f32)
}

/// Hyper-parameters for [`train`]. The defaults suit the small in-crate
/// environments; domain crates override what they need.
#[derive(Clone, Debug)]
pub struct A2cConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ (1 = Monte-Carlo advantages, 0 = one-step TD).
    pub lambda: f32,
    /// Adam learning rate for the actor.
    pub actor_lr: f32,
    /// Adam learning rate for the critic.
    pub critic_lr: f32,
    /// Entropy-bonus coefficient β.
    pub entropy_coef: f32,
    /// Transitions per rollout fragment (and per gradient update).
    pub rollout_len: usize,
    /// Global-norm gradient clip applied to actor and critic separately.
    pub max_grad_norm: f32,
    /// Parallel workers; 1 ⇒ fully deterministic training.
    pub workers: usize,
    /// Total gradient updates across all workers.
    pub updates: usize,
    /// Master seed; worker `w` derives an independent stream from it.
    pub seed: u64,
    /// Standardize advantages per fragment before the policy gradient.
    pub normalize_advantages: bool,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            gamma: crate::DEFAULT_GAMMA,
            lambda: 0.95,
            actor_lr: 0.01,
            critic_lr: 0.02,
            entropy_coef: 0.01,
            rollout_len: 32,
            max_grad_norm: 0.5,
            workers: 1,
            updates: 300,
            seed: 0,
            normalize_advantages: true,
        }
    }
}

/// What a training run did, aggregated at the parameter server.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Gradient updates applied (== `cfg.updates`).
    pub updates: u64,
    /// Environment transitions consumed across all workers.
    pub env_steps: u64,
    /// Final parameter version (== `updates`; exposed for staleness
    /// diagnostics and the bench harness).
    pub param_version: u64,
    /// Undiscounted returns of completed episodes, in server-arrival
    /// order. With one worker this is the exact training curve.
    pub episode_returns: Vec<f32>,
    /// Length (in transitions) of each completed episode, parallel to
    /// `episode_returns` — the improvement signal for environments whose
    /// undiscounted return barely separates good and bad policies.
    pub episode_lengths: Vec<usize>,
    /// Mean policy entropy of the last applied update.
    pub final_entropy: f32,
    /// Policy-gradient loss of the last applied update.
    pub final_policy_loss: f32,
    /// Critic MSE of the last applied update.
    pub final_value_loss: f32,
}

impl TrainReport {
    /// Mean return of the last `n` completed episodes (all, if fewer).
    pub fn recent_mean_return(&self, n: usize) -> f32 {
        let tail = &self.episode_returns[self.episode_returns.len().saturating_sub(n)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// The shared parameter server: nets, optimizers, version, stats.
struct Server {
    ac: ActorCritic,
    actor_opt: Adam,
    critic_opt: Adam,
    updates_done: u64,
    report: TrainReport,
}

/// Train `ac` on `env` with `cfg.workers` asynchronous workers, in place.
///
/// Each worker clones `env`, so the environment type carries its own
/// initial-state template; per-worker stochasticity comes from the
/// explicit RNG streams derived from `cfg.seed`, not from the clone.
pub fn train<E: Env + Clone + Send>(ac: &mut ActorCritic, env: &E, cfg: &A2cConfig) -> TrainReport {
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(cfg.updates >= 1, "need at least one update");
    assert!(
        cfg.rollout_len >= 1,
        "need at least one transition per update"
    );

    let server = Mutex::new(Server {
        ac: std::mem::take(ac),
        actor_opt: Adam::new(cfg.actor_lr),
        critic_opt: Adam::new(cfg.critic_lr),
        updates_done: 0,
        report: TrainReport::default(),
    });

    std::thread::scope(|scope| {
        for wid in 0..cfg.workers {
            let env = env.clone();
            let server = &server;
            scope.spawn(move || worker_loop(wid, env, server, cfg));
        }
    });

    let server = server.into_inner().expect("no worker may panic");
    *ac = server.ac;
    let mut report = server.report;
    report.updates = server.updates_done;
    report.param_version = server.updates_done;
    report
}

fn worker_loop<E: Env>(wid: usize, env: E, server: &Mutex<Server>, cfg: &A2cConfig) {
    // Independent stream per worker; worker 0 uses the master seed
    // directly, so single-worker runs are a pure function of `cfg.seed`.
    let mut rng = Rng::seed_from_u64(cfg.seed ^ (wid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut local = server.lock().expect("server lock").ac.replicate();
    let mut collector = Collector::new(env, &mut rng);

    // Persistent buffers: the first iteration sizes them, every later one
    // reuses the capacity, so the steady-state loop body performs no heap
    // allocation (pinned by the counting-allocator test in `osa-bench`).
    let mut ro = Rollout::default();
    let mut adv: Vec<f32> = Vec::new();
    let mut targets: Vec<f32> = Vec::new();
    let mut actor_params: Vec<f32> = Vec::new();
    let mut critic_params: Vec<f32> = Vec::new();
    let mut actor_grads: Vec<f32> = Vec::new();
    let mut critic_grads: Vec<f32> = Vec::new();
    let mut ws = Workspace::new();
    let mut grad_logits = Tensor::default();
    let mut target_mat = Tensor::default();
    let mut grad_values = Tensor::default();

    loop {
        // Sync the replica to the freshest parameters.
        {
            let mut guard = server.lock().expect("server lock");
            if guard.updates_done >= cfg.updates as u64 {
                break;
            }
            guard.ac.actor.copy_params_into(&mut actor_params);
            guard.ac.critic.copy_params_into(&mut critic_params);
            drop(guard);
            local.actor.set_params_from_vec(&actor_params);
            local.critic.set_params_from_vec(&critic_params);
        }

        // Rollout + gradients, entirely outside the lock.
        collector.collect_into(&mut local, cfg.rollout_len, &mut rng, &mut ro);
        gae_into(
            &ro.rewards,
            &ro.values,
            &ro.dones,
            ro.bootstrap,
            cfg.gamma,
            cfg.lambda,
            &mut adv,
        );
        targets.clear();
        targets.extend(adv.iter().zip(&ro.values).map(|(a, v)| a + v));
        if cfg.normalize_advantages {
            normalize_advantages(&mut adv);
        }

        let obs = ro.observation_matrix();
        let logits = local.actor.forward_ws(obs, &mut ws);
        let (pg_loss, entropy) = policy_gradient_loss_into(
            &logits,
            &ro.actions,
            &adv,
            cfg.entropy_coef,
            &mut grad_logits,
        );
        ws.recycle(logits);
        let g = local.actor.backward_ws(&grad_logits, &mut ws);
        ws.recycle(g);
        local.actor.clip_grad_global_norm(cfg.max_grad_norm);

        let predicted = local.critic.forward_ws(obs, &mut ws);
        target_mat.resize_shape(targets.len(), 1);
        target_mat.data_mut().copy_from_slice(&targets);
        let value_loss = loss::mse_into(&predicted, &target_mat, &mut grad_values);
        ws.recycle(predicted);
        let g = local.critic.backward_ws(&grad_values, &mut ws);
        ws.recycle(g);
        local.critic.clip_grad_global_norm(cfg.max_grad_norm);

        local.actor.copy_grads_into(&mut actor_grads);
        local.critic.copy_grads_into(&mut critic_grads);

        // Apply to the shared nets; possibly one version stale (A3C).
        let mut guard = server.lock().expect("server lock");
        if guard.updates_done >= cfg.updates as u64 {
            break;
        }
        let s = &mut *guard;
        s.ac.actor.set_grads_from_vec(&actor_grads);
        s.ac.actor.step(&mut s.actor_opt);
        s.ac.critic.set_grads_from_vec(&critic_grads);
        s.ac.critic.step(&mut s.critic_opt);
        s.updates_done += 1;
        s.report.env_steps += ro.len() as u64;
        s.report
            .episode_returns
            .extend_from_slice(&ro.episode_returns);
        s.report
            .episode_lengths
            .extend_from_slice(&ro.episode_lengths);
        s.report.final_entropy = entropy;
        s.report.final_policy_loss = pg_loss;
        s.report.final_value_loss = value_loss;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_probs_normalize_even_for_huge_logits() {
        let mut rng = Rng::seed_from_u64(1);
        let mut ac = ActorCritic::mlp(3, 4, 5, &mut rng);
        // Scale the head weights up to force saturated logits.
        let mut p = ac.actor.params_to_vec();
        for v in &mut p {
            *v *= 100.0;
        }
        ac.actor.set_params_from_vec(&p);
        let probs = ac.action_probs(&[1.0, -2.0, 0.5]);
        assert_eq!(probs.len(), 5);
        assert!(probs.iter().all(|p| p.is_finite() && *p >= 0.0));
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn replicate_preserves_parameters_exactly() {
        let mut rng = Rng::seed_from_u64(2);
        let mut ac = ActorCritic::mlp(4, 8, 3, &mut rng);
        let mut twin = ac.replicate();
        assert_eq!(ac.actor.params_to_vec(), twin.actor.params_to_vec());
        assert_eq!(ac.critic.params_to_vec(), twin.critic.params_to_vec());
        let obs = [0.1, -0.3, 0.7, 0.0];
        assert_eq!(ac.action_probs(&obs), twin.action_probs(&obs));
        assert_eq!(ac.value(&obs), twin.value(&obs));
    }

    /// Central-difference check of the fused policy-gradient/entropy
    /// gradient: the analytic dL/d logits must match numeric
    /// differentiation of `pg_loss − β·entropy`.
    #[test]
    fn policy_gradient_matches_central_differences() {
        let mut rng = Rng::seed_from_u64(3);
        let (t_max, acts) = (4, 3);
        let data = (0..t_max * acts)
            .map(|_| rng.range_f32(-1.5, 1.5))
            .collect();
        let logits = Tensor::from_vec(t_max, acts, data);
        let actions = vec![0, 2, 1, 2];
        let advantages = vec![1.3, -0.7, 0.4, 2.0];
        let beta = 0.05;

        let scalar = |l: &Tensor| {
            let (pg, h, _) = policy_gradient_loss(l, &actions, &advantages, beta);
            pg - beta * h
        };
        let (_, _, analytic) = policy_gradient_loss(&logits, &actions, &advantages, beta);

        let eps = 1e-2f32;
        let mut probe = logits.clone();
        for i in 0..probe.len() {
            let orig = probe.data()[i];
            probe.data_mut()[i] = orig + eps;
            let lp = scalar(&probe);
            probe.data_mut()[i] = orig - eps;
            let lm = scalar(&probe);
            probe.data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= 1e-3 * (a.abs() + numeric.abs()) + 1e-4,
                "elem {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn policy_gradient_rows_sum_to_zero() {
        // Both the softmax and the entropy terms live on the simplex, so
        // each row of the logit gradient must sum to 0.
        let logits = Tensor::from_rows(&[vec![0.2, -1.0, 0.7], vec![2.0, 2.0, -3.0]]);
        let (_, _, grad) = policy_gradient_loss(&logits, &[1, 0], &[0.5, -2.0], 0.02);
        for r in 0..grad.rows() {
            let sum: f32 = grad.row(r).iter().sum();
            assert!(sum.abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn zero_advantage_leaves_only_entropy_force() {
        let logits = Tensor::from_rows(&[vec![1.0, 0.0]]);
        let (pg, _, grad) = policy_gradient_loss(&logits, &[0], &[0.0], 0.0);
        assert_eq!(pg, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }
}
