//! Advantage actor-critic training with synchronous parallel rollout
//! streams on the deterministic `osa-runtime` thread pool.
//!
//! # Architecture
//!
//! One [`ActorCritic`] pair (actor: obs → logits, critic: obs → scalar)
//! lives in the [`Trainer`] together with its two optimizers. Training is
//! organized around `cfg.workers` *logical streams*; each stream owns a
//! private environment, an independent RNG derived from `cfg.seed`, and
//! an architecturally identical local replica. A round is:
//!
//! 1. snapshot the server parameters once (flat copies);
//! 2. **in parallel across pool lanes**, each stream syncs its replica,
//!    collects a `rollout_len`-step fragment
//!    ([`crate::rollout::Collector`] carries episodes across fragments),
//!    computes GAE(γ, λ) advantages and λ-return critic targets, runs the
//!    fused softmax policy-gradient + entropy-bonus backward pass and the
//!    critic MSE backward pass, and clips both gradients to a global
//!    norm;
//! 3. serially, **in stream order**, apply each stream's gradients to the
//!    server nets through the shared optimizers.
//!
//! Unlike the A3C-style asynchronous server this module shipped with
//! originally, the result is a pure function of `(cfg, seed)`: streams
//! never observe each other, the gradient application order is fixed, and
//! the pool only decides *which lane* computes a stream — so final
//! parameters are **bit-identical for every pool size**, including the
//! inline `workers = 1` pool (pinned by `tests/determinism_pool.rs`).
//! Gradients within a round are computed against the round's starting
//! parameters — the same one-version staleness A3C tolerates, now paid
//! deterministically. With `cfg.workers == 1` the procedure is strictly
//! sequential and reproduces the original single-worker trajectory
//! (pinned by `tests/convergence.rs`).
//!
//! Steady-state rounds perform no heap allocation: every stream owns
//! persistent buffers and a `Workspace` arena sized on the first round
//! (pinned by the counting-allocator tests in `osa-bench`).

use osa_nn::loss;
use osa_nn::optim::Adam;
use osa_nn::prelude::{Dense, Init, Sequential};
use osa_nn::rng::Rng;
use osa_nn::tensor::{Act, Tensor};
use osa_nn::workspace::Workspace;
use osa_runtime::ThreadPool;

use crate::env::{Env, Policy, ValueFunction};
use crate::gae::{gae_into, normalize_advantages};
use crate::rollout::{Collector, Rollout};

/// A softmax policy network and a state-value network trained together.
///
/// The actor outputs *logits* (no softmax layer): sampling and the policy
/// gradient both work in log-space, which is numerically stable for
/// near-deterministic policies.
#[derive(Default)]
pub struct ActorCritic {
    /// `(batch × obs_dim) → (batch × num_actions)` logits.
    pub actor: Sequential,
    /// `(batch × obs_dim) → (batch × 1)` state values.
    pub critic: Sequential,
    /// Scratch pool for the inference paths below: after a warmup call,
    /// `action_probs_into`/`values_into` run without heap allocation.
    ws: Workspace,
}

impl ActorCritic {
    /// Two independent single-hidden-layer ReLU MLPs — the workhorse
    /// shape for the in-crate environments and the CC case study. The
    /// ReLU is fused into the hidden `Dense` layer's forward pass
    /// ([`Dense::with_act`]), which is bit-identical to a standalone
    /// `ReLU` layer but skips one full pass over the activations.
    pub fn mlp(obs_dim: usize, hidden: usize, num_actions: usize, rng: &mut Rng) -> Self {
        ActorCritic {
            actor: Sequential::new()
                .with(Dense::new(obs_dim, hidden, Init::HeUniform, rng).with_act(Act::Relu))
                .with(Dense::new(hidden, num_actions, Init::XavierUniform, rng)),
            critic: Sequential::new()
                .with(Dense::new(obs_dim, hidden, Init::HeUniform, rng).with_act(Act::Relu))
                .with(Dense::new(hidden, 1, Init::XavierUniform, rng)),
            ws: Workspace::new(),
        }
    }

    /// Wrap caller-built actor/critic networks (e.g. the branched
    /// Pensieve architecture) so custom architectures ride the same
    /// Policy/ValueFunction impls, trainer, and workspace pooling as
    /// [`ActorCritic::mlp`].
    pub fn from_nets(actor: Sequential, critic: Sequential) -> Self {
        ActorCritic {
            actor,
            critic,
            ws: Workspace::new(),
        }
    }

    /// A fresh pair with the same architecture *and* parameters, built
    /// through the spec round-trip (exact for `f32`).
    pub fn replicate(&self) -> Self {
        ActorCritic {
            actor: Sequential::from_spec(&self.actor.to_spec()),
            critic: Sequential::from_spec(&self.critic.to_spec()),
            ws: Workspace::new(),
        }
    }

    /// Stage `obs` as a `(1 × n)` matrix in a pooled buffer.
    fn stage_row(&mut self, obs: &[f32]) -> Tensor {
        let mut x = self.ws.take(1, obs.len());
        x.row_mut(0).copy_from_slice(obs);
        x
    }
}

/// Row-wise max-subtracted softmax, `logits` → `probs` (same math the
/// allocating `action_probs` always used, shared by every batched path).
fn softmax_row(logits: &[f32], probs: &mut [f32]) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (p, &l) in probs.iter_mut().zip(logits) {
        *p = (l - max).exp();
        sum += *p;
    }
    for p in probs {
        *p /= sum;
    }
}

impl Policy for ActorCritic {
    fn action_probs(&mut self, obs: &[f32]) -> Vec<f32> {
        let mut probs = Vec::new();
        self.action_probs_into(obs, &mut probs);
        probs
    }

    fn action_probs_into(&mut self, obs: &[f32], out: &mut Vec<f32>) {
        let x = self.stage_row(obs);
        let logits = self.actor.forward_ws(&x, &mut self.ws);
        out.clear();
        out.resize(logits.cols(), 0.0);
        softmax_row(logits.row(0), out);
        self.ws.recycle(logits);
        self.ws.recycle(x);
    }

    fn action_probs_batch_into(&mut self, obs: &Tensor, out: &mut Tensor) {
        let logits = self.actor.forward_ws(obs, &mut self.ws);
        out.resize_shape(logits.rows(), logits.cols());
        for r in 0..logits.rows() {
            softmax_row(logits.row(r), out.row_mut(r));
        }
        self.ws.recycle(logits);
    }
}

impl ValueFunction for ActorCritic {
    fn value(&mut self, obs: &[f32]) -> f32 {
        let x = self.stage_row(obs);
        let y = self.critic.forward_ws(&x, &mut self.ws);
        let v = y.get(0, 0);
        self.ws.recycle(y);
        self.ws.recycle(x);
        v
    }

    fn values_into(&mut self, obs: &Tensor, out: &mut Vec<f32>) {
        let y = self.critic.forward_ws(obs, &mut self.ws);
        out.clear();
        out.extend_from_slice(y.data());
        self.ws.recycle(y);
    }
}

/// Fused softmax policy gradient with entropy bonus, on logits.
///
/// Loss per fragment of `T` transitions:
/// `L = −(1/T)·Σ_t A_t·ln π(a_t|s_t) − β·(1/T)·Σ_t H(π(·|s_t))`.
/// Returns `(policy loss, mean entropy, dL/d logits)`. Working from
/// log-probabilities `ln π_j = z_j − lse(z)` keeps every term finite even
/// for saturated policies; the analytic gradient is
/// `dL/dz_j = [(π_j − 1{j=a_t})·A_t + β·π_j·(ln π_j + H_t)] / T`,
/// verified against central differences in this module's tests.
pub fn policy_gradient_loss(
    logits: &Tensor,
    actions: &[usize],
    advantages: &[f32],
    entropy_coef: f32,
) -> (f32, f32, Tensor) {
    let mut grad = Tensor::zeros(logits.rows(), logits.cols());
    let (pg, h) = policy_gradient_loss_into(logits, actions, advantages, entropy_coef, &mut grad);
    (pg, h, grad)
}

/// [`policy_gradient_loss`] writing the gradient into a caller-owned
/// buffer — the zero-alloc variant for steady-state training loops.
/// Returns `(policy loss, mean entropy)`.
pub fn policy_gradient_loss_into(
    logits: &Tensor,
    actions: &[usize],
    advantages: &[f32],
    entropy_coef: f32,
    grad: &mut Tensor,
) -> (f32, f32) {
    let t_max = logits.rows();
    assert_eq!(actions.len(), t_max, "one action per logit row");
    assert_eq!(advantages.len(), t_max, "one advantage per logit row");
    let inv_t = 1.0 / t_max as f64;
    let mut pg_loss = 0.0f64;
    let mut entropy_sum = 0.0f64;
    grad.resize_shape(t_max, logits.cols());
    for t in 0..t_max {
        let row = logits.row(t);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        let sum_exp: f64 = row.iter().map(|&l| (l as f64 - max).exp()).sum();
        let lse = max + sum_exp.ln();
        let adv = advantages[t] as f64;
        let a_t = actions[t];
        assert!(a_t < row.len(), "action index out of range");

        // Per-row entropy from log-probabilities (finite even when some
        // probability underflows to 0, since p·ln p → 0).
        let mut h = 0.0f64;
        for &l in row {
            let lp = l as f64 - lse;
            h -= lp.exp() * lp;
        }
        entropy_sum += h;
        pg_loss -= adv * (row[a_t] as f64 - lse);

        let grow = grad.row_mut(t);
        for (j, (&l, g)) in row.iter().zip(grow.iter_mut()).enumerate() {
            let lp = l as f64 - lse;
            let p = lp.exp();
            let indicator = if j == a_t { 1.0 } else { 0.0 };
            let d = (p - indicator) * adv + entropy_coef as f64 * p * (lp + h);
            *g = (d * inv_t) as f32;
        }
    }
    ((pg_loss * inv_t) as f32, (entropy_sum * inv_t) as f32)
}

/// Hyper-parameters for [`train`]. The defaults suit the small in-crate
/// environments; domain crates override what they need.
#[derive(Clone, Debug)]
pub struct A2cConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ (1 = Monte-Carlo advantages, 0 = one-step TD).
    pub lambda: f32,
    /// Adam learning rate for the actor.
    pub actor_lr: f32,
    /// Adam learning rate for the critic.
    pub critic_lr: f32,
    /// Entropy-bonus coefficient β.
    pub entropy_coef: f32,
    /// Transitions per rollout fragment (and per gradient update).
    pub rollout_len: usize,
    /// Global-norm gradient clip applied to actor and critic separately.
    pub max_grad_norm: f32,
    /// Logical rollout streams. Part of the *semantics* of a run (it
    /// fixes how many fragments are collected per round), not of its
    /// schedule: any pool size yields bit-identical results for a given
    /// `workers`, and `workers = 1` is strictly sequential.
    pub workers: usize,
    /// Total gradient updates across all streams.
    pub updates: usize,
    /// Master seed; stream `w` derives an independent RNG from it.
    pub seed: u64,
    /// Standardize advantages per fragment before the policy gradient.
    pub normalize_advantages: bool,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            gamma: crate::DEFAULT_GAMMA,
            lambda: 0.95,
            actor_lr: 0.01,
            critic_lr: 0.02,
            entropy_coef: 0.01,
            rollout_len: 32,
            max_grad_norm: 0.5,
            workers: 1,
            updates: 300,
            seed: 0,
            normalize_advantages: true,
        }
    }
}

/// What a training run did, aggregated at the parameter server.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Gradient updates applied (== `cfg.updates`).
    pub updates: u64,
    /// Environment transitions consumed across all workers.
    pub env_steps: u64,
    /// Final parameter version (== `updates`; exposed for staleness
    /// diagnostics and the bench harness).
    pub param_version: u64,
    /// Undiscounted returns of completed episodes, in gradient
    /// application order (stream order within each round) — deterministic
    /// for any pool size. With one stream this is the exact training
    /// curve.
    pub episode_returns: Vec<f32>,
    /// Length (in transitions) of each completed episode, parallel to
    /// `episode_returns` — the improvement signal for environments whose
    /// undiscounted return barely separates good and bad policies.
    pub episode_lengths: Vec<usize>,
    /// Mean policy entropy of the last applied update.
    pub final_entropy: f32,
    /// Policy-gradient loss of the last applied update.
    pub final_policy_loss: f32,
    /// Critic MSE of the last applied update.
    pub final_value_loss: f32,
}

impl TrainReport {
    /// Mean return of the last `n` completed episodes (all, if fewer).
    pub fn recent_mean_return(&self, n: usize) -> f32 {
        let tail = &self.episode_returns[self.episode_returns.len().saturating_sub(n)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// One logical rollout stream: a private environment, RNG, replica, and
/// every persistent buffer its gradient computation needs. Streams are
/// fully independent between rounds' serial phases, which is what lets
/// the pool run them on any lane without changing a single bit.
struct Stream<E: Env> {
    collector: Collector<E>,
    rng: Rng,
    local: ActorCritic,
    ro: Rollout,
    adv: Vec<f32>,
    targets: Vec<f32>,
    actor_grads: Vec<f32>,
    critic_grads: Vec<f32>,
    ws: Workspace,
    grad_logits: Tensor,
    target_mat: Tensor,
    grad_values: Tensor,
    pg_loss: f32,
    entropy: f32,
    value_loss: f32,
}

impl<E: Env> Stream<E> {
    /// Sync the replica to the round-start parameters, collect one
    /// fragment, and leave clipped gradients + stats in `self`. Runs on
    /// an arbitrary pool lane; touches nothing outside `self`.
    ///
    /// The math is unchanged from the original single-worker loop, so
    /// steady-state calls perform no heap allocation: the first round
    /// sizes every buffer, later rounds reuse the capacity.
    fn step(&mut self, actor_params: &[f32], critic_params: &[f32], cfg: &A2cConfig) {
        self.local.actor.set_params_from_vec(actor_params);
        self.local.critic.set_params_from_vec(critic_params);

        self.collector.collect_into(
            &mut self.local,
            cfg.rollout_len,
            &mut self.rng,
            &mut self.ro,
        );
        gae_into(
            &self.ro.rewards,
            &self.ro.values,
            &self.ro.dones,
            self.ro.bootstrap,
            cfg.gamma,
            cfg.lambda,
            &mut self.adv,
        );
        self.targets.clear();
        self.targets
            .extend(self.adv.iter().zip(&self.ro.values).map(|(a, v)| a + v));
        if cfg.normalize_advantages {
            normalize_advantages(&mut self.adv);
        }

        let obs = self.ro.observation_matrix();
        let logits = self.local.actor.forward_ws(obs, &mut self.ws);
        let (pg_loss, entropy) = policy_gradient_loss_into(
            &logits,
            &self.ro.actions,
            &self.adv,
            cfg.entropy_coef,
            &mut self.grad_logits,
        );
        self.ws.recycle(logits);
        let g = self
            .local
            .actor
            .backward_ws(&self.grad_logits, &mut self.ws);
        self.ws.recycle(g);
        self.local.actor.clip_grad_global_norm(cfg.max_grad_norm);

        let predicted = self.local.critic.forward_ws(obs, &mut self.ws);
        self.target_mat.resize_shape(self.targets.len(), 1);
        self.target_mat.data_mut().copy_from_slice(&self.targets);
        let value_loss = loss::mse_into(&predicted, &self.target_mat, &mut self.grad_values);
        self.ws.recycle(predicted);
        let g = self
            .local
            .critic
            .backward_ws(&self.grad_values, &mut self.ws);
        self.ws.recycle(g);
        self.local.critic.clip_grad_global_norm(cfg.max_grad_norm);

        self.local.actor.copy_grads_into(&mut self.actor_grads);
        self.local.critic.copy_grads_into(&mut self.critic_grads);
        self.pg_loss = pg_loss;
        self.entropy = entropy;
        self.value_loss = value_loss;
    }
}

/// Synchronous deterministic A2C driver: owns the server nets, the
/// optimizers, and `cfg.workers` logical [`Stream`]s, and advances
/// training one round at a time. Most callers use [`train`]; the bench
/// and zero-allocation harnesses drive [`Trainer::round`] directly so
/// they can warm up and then measure steady-state rounds.
pub struct Trainer<E: Env> {
    cfg: A2cConfig,
    ac: ActorCritic,
    actor_opt: Adam,
    critic_opt: Adam,
    streams: Vec<Stream<E>>,
    actor_params: Vec<f32>,
    critic_params: Vec<f32>,
    updates_done: u64,
    report: TrainReport,
}

impl<E: Env + Clone + Send> Trainer<E> {
    /// Build the trainer, taking ownership of the nets. Each stream
    /// clones `env`, so the environment type carries its own
    /// initial-state template; per-stream stochasticity comes from the
    /// RNG streams derived from `cfg.seed`, not from the clone. Stream 0
    /// uses the master seed directly, so `workers = 1` runs are a pure
    /// function of `cfg.seed` — and identical to the historical
    /// single-worker trajectory.
    pub fn new(ac: ActorCritic, env: &E, cfg: &A2cConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one stream");
        assert!(cfg.updates >= 1, "need at least one update");
        assert!(
            cfg.rollout_len >= 1,
            "need at least one transition per update"
        );
        let streams = (0..cfg.workers)
            .map(|wid| {
                let mut rng =
                    Rng::seed_from_u64(cfg.seed ^ (wid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let local = ac.replicate();
                let collector = Collector::new(env.clone(), &mut rng);
                let mut ro = Rollout::default();
                // Headroom so episode bookkeeping cannot allocate in
                // steady state even for environments with short episodes.
                ro.episode_returns.reserve(64);
                ro.episode_lengths.reserve(64);
                Stream {
                    collector,
                    rng,
                    local,
                    ro,
                    adv: Vec::new(),
                    targets: Vec::new(),
                    actor_grads: Vec::new(),
                    critic_grads: Vec::new(),
                    ws: Workspace::new(),
                    grad_logits: Tensor::default(),
                    target_mat: Tensor::default(),
                    grad_values: Tensor::default(),
                    pg_loss: 0.0,
                    entropy: 0.0,
                    value_loss: 0.0,
                }
            })
            .collect();
        let mut report = TrainReport::default();
        report.episode_returns.reserve(1024);
        report.episode_lengths.reserve(1024);
        Trainer {
            actor_opt: Adam::new(cfg.actor_lr),
            critic_opt: Adam::new(cfg.critic_lr),
            cfg: cfg.clone(),
            ac,
            streams,
            actor_params: Vec::new(),
            critic_params: Vec::new(),
            updates_done: 0,
            report,
        }
    }

    /// Grow the episode-statistics headroom (e.g. before a long
    /// allocation-counted run).
    pub fn reserve_episode_capacity(&mut self, episodes: usize) {
        self.report.episode_returns.reserve(episodes);
        self.report.episode_lengths.reserve(episodes);
    }

    pub fn is_done(&self) -> bool {
        self.updates_done >= self.cfg.updates as u64
    }

    pub fn updates_done(&self) -> u64 {
        self.updates_done
    }

    /// One training round: snapshot the server parameters, run every
    /// stream's rollout + gradient phase across the pool lanes, then
    /// apply the gradients serially in stream order. The last round of a
    /// run applies only as many streams as updates remain, so the total
    /// is exactly `cfg.updates` regardless of `cfg.workers`.
    ///
    /// Steady-state rounds are allocation-free (pinned by
    /// `crates/bench/tests/zero_alloc_pool.rs`).
    pub fn round(&mut self, pool: &ThreadPool) {
        if self.is_done() {
            return;
        }
        self.ac.actor.copy_params_into(&mut self.actor_params);
        self.ac.critic.copy_params_into(&mut self.critic_params);
        let actor_params = self.actor_params.as_slice();
        let critic_params = self.critic_params.as_slice();
        let cfg = &self.cfg;
        // Parallel phase: streams are data-disjoint, so the pool may run
        // them on any lane in any interleaving without affecting results.
        // Nested GEMM dispatches inside a stream degrade to inline.
        pool.parallel_for_slice(&mut self.streams, 1, |_, _, chunk| {
            for stream in chunk {
                stream.step(actor_params, critic_params, cfg);
            }
        });
        // Serial phase: fixed application order = fixed final parameters.
        let remaining = self.cfg.updates as u64 - self.updates_done;
        let take = (self.streams.len() as u64).min(remaining) as usize;
        for stream in &mut self.streams[..take] {
            self.ac.actor.set_grads_from_vec(&stream.actor_grads);
            self.ac.actor.step(&mut self.actor_opt);
            self.ac.critic.set_grads_from_vec(&stream.critic_grads);
            self.ac.critic.step(&mut self.critic_opt);
            self.updates_done += 1;
            self.report.env_steps += stream.ro.len() as u64;
            self.report
                .episode_returns
                .extend_from_slice(&stream.ro.episode_returns);
            self.report
                .episode_lengths
                .extend_from_slice(&stream.ro.episode_lengths);
            self.report.final_entropy = stream.entropy;
            self.report.final_policy_loss = stream.pg_loss;
            self.report.final_value_loss = stream.value_loss;
        }
    }

    /// Tear down into the trained nets and the final report.
    pub fn finish(mut self) -> (ActorCritic, TrainReport) {
        self.report.updates = self.updates_done;
        self.report.param_version = self.updates_done;
        (self.ac, self.report)
    }
}

/// Train `ac` on `env` with `cfg.workers` logical streams, in place, on
/// the current thread pool ([`osa_runtime::with_current`] — the
/// [`osa_runtime::global`] pool unless overridden via
/// [`osa_runtime::with_pool`]).
///
/// The result is bit-identical for every pool size; see the module docs.
pub fn train<E: Env + Clone + Send>(ac: &mut ActorCritic, env: &E, cfg: &A2cConfig) -> TrainReport {
    osa_runtime::with_current(|pool| train_with_pool(ac, env, cfg, pool))
}

/// [`train`] on an explicit pool — for worker-count sweeps and tests.
pub fn train_with_pool<E: Env + Clone + Send>(
    ac: &mut ActorCritic,
    env: &E,
    cfg: &A2cConfig,
    pool: &ThreadPool,
) -> TrainReport {
    let mut trainer = Trainer::new(std::mem::take(ac), env, cfg);
    while !trainer.is_done() {
        trainer.round(pool);
    }
    let (trained, report) = trainer.finish();
    *ac = trained;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_probs_normalize_even_for_huge_logits() {
        let mut rng = Rng::seed_from_u64(1);
        let mut ac = ActorCritic::mlp(3, 4, 5, &mut rng);
        // Scale the head weights up to force saturated logits.
        let mut p = ac.actor.params_to_vec();
        for v in &mut p {
            *v *= 100.0;
        }
        ac.actor.set_params_from_vec(&p);
        let probs = ac.action_probs(&[1.0, -2.0, 0.5]);
        assert_eq!(probs.len(), 5);
        assert!(probs.iter().all(|p| p.is_finite() && *p >= 0.0));
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn replicate_preserves_parameters_exactly() {
        let mut rng = Rng::seed_from_u64(2);
        let mut ac = ActorCritic::mlp(4, 8, 3, &mut rng);
        let mut twin = ac.replicate();
        assert_eq!(ac.actor.params_to_vec(), twin.actor.params_to_vec());
        assert_eq!(ac.critic.params_to_vec(), twin.critic.params_to_vec());
        let obs = [0.1, -0.3, 0.7, 0.0];
        assert_eq!(ac.action_probs(&obs), twin.action_probs(&obs));
        assert_eq!(ac.value(&obs), twin.value(&obs));
    }

    /// Central-difference check of the fused policy-gradient/entropy
    /// gradient: the analytic dL/d logits must match numeric
    /// differentiation of `pg_loss − β·entropy`.
    #[test]
    fn policy_gradient_matches_central_differences() {
        let mut rng = Rng::seed_from_u64(3);
        let (t_max, acts) = (4, 3);
        let data = (0..t_max * acts)
            .map(|_| rng.range_f32(-1.5, 1.5))
            .collect();
        let logits = Tensor::from_vec(t_max, acts, data);
        let actions = vec![0, 2, 1, 2];
        let advantages = vec![1.3, -0.7, 0.4, 2.0];
        let beta = 0.05;

        let scalar = |l: &Tensor| {
            let (pg, h, _) = policy_gradient_loss(l, &actions, &advantages, beta);
            pg - beta * h
        };
        let (_, _, analytic) = policy_gradient_loss(&logits, &actions, &advantages, beta);

        let eps = 1e-2f32;
        let mut probe = logits.clone();
        for i in 0..probe.len() {
            let orig = probe.data()[i];
            probe.data_mut()[i] = orig + eps;
            let lp = scalar(&probe);
            probe.data_mut()[i] = orig - eps;
            let lm = scalar(&probe);
            probe.data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= 1e-3 * (a.abs() + numeric.abs()) + 1e-4,
                "elem {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn policy_gradient_rows_sum_to_zero() {
        // Both the softmax and the entropy terms live on the simplex, so
        // each row of the logit gradient must sum to 0.
        let logits = Tensor::from_rows(&[vec![0.2, -1.0, 0.7], vec![2.0, 2.0, -3.0]]);
        let (_, _, grad) = policy_gradient_loss(&logits, &[1, 0], &[0.5, -2.0], 0.02);
        for r in 0..grad.rows() {
            let sum: f32 = grad.row(r).iter().sum();
            assert!(sum.abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn zero_advantage_leaves_only_entropy_force() {
        let logits = Tensor::from_rows(&[vec![1.0, 0.0]]);
        let (pg, _, grad) = policy_gradient_loss(&logits, &[0], &[0.0], 0.0);
        assert_eq!(pg, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }
}
