//! The core MDP traits: [`Env`], [`Policy`], [`ValueFunction`].
//!
//! All randomness flows through an explicit [`osa_nn::rng::Rng`] handed in
//! by the caller — environments and policies hold no RNG state of their
//! own, so a single u64 seed reproduces a whole training run bit-for-bit
//! (the property the determinism tests in `tests/convergence.rs` pin
//! down).
//!
//! # Episode-boundary semantics
//!
//! An environment is a state machine with exactly two legal moves:
//!
//! 1. [`Env::reset`] starts a fresh episode and returns its first
//!    observation.
//! 2. [`Env::step`] advances one transition and returns the *next*
//!    observation, the reward earned by the transition, and whether the
//!    episode just ended.
//!
//! After a step reports `done == true`, the returned observation is the
//! terminal observation; the caller must `reset` before stepping again
//! (implementations are entitled to panic otherwise). Rollout fragments
//! collected by [`crate::rollout::Collector`] may end mid-episode; the
//! collector carries the episode across fragment boundaries and
//! bootstraps the tail with the value function, so `done` here always
//! means a true environment termination, never a fragment edge.

use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;

/// The result of one environment transition.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    /// Observation of the state the transition landed in.
    pub obs: Vec<f32>,
    /// Reward earned by the transition.
    pub reward: f32,
    /// True iff the episode ended on this transition.
    pub done: bool,
}

/// A Markov decision process with a finite action set and dense `f32`
/// observations — the shape both the ABR and congestion-control case
/// studies take.
pub trait Env {
    /// Length of every observation vector this environment emits.
    fn obs_dim(&self) -> usize;

    /// Number of discrete actions; `step` accepts `0..num_actions()`.
    fn num_actions(&self) -> usize;

    /// Start a new episode and return its first observation.
    fn reset(&mut self, rng: &mut Rng) -> Vec<f32>;

    /// Take `action` and advance one transition. See the module docs for
    /// the episode-boundary contract.
    fn step(&mut self, action: usize, rng: &mut Rng) -> Step;

    /// [`Env::reset`] writing the first observation into a caller-owned
    /// buffer. The default delegates to `reset` (and therefore allocates);
    /// environments on the rollout hot path override it so steady-state
    /// collection stays allocation-free. Overrides must consume RNG draws
    /// in exactly the order `reset` does.
    fn reset_into(&mut self, rng: &mut Rng, obs: &mut Vec<f32>) {
        let o = self.reset(rng);
        obs.clear();
        obs.extend_from_slice(&o);
    }

    /// [`Env::step`] writing the next observation into a caller-owned
    /// buffer and returning `(reward, done)`. Same override contract as
    /// [`Env::reset_into`]: identical semantics and RNG draw order, minus
    /// the allocation.
    fn step_into(&mut self, action: usize, rng: &mut Rng, obs: &mut Vec<f32>) -> (f32, bool) {
        let step = self.step(action, rng);
        obs.clear();
        obs.extend_from_slice(&step.obs);
        (step.reward, step.done)
    }
}

/// A (possibly stochastic) mapping from observations to distributions
/// over actions.
pub trait Policy {
    /// Action probabilities for this observation; must be non-negative
    /// and sum to 1 (within rounding).
    fn action_probs(&mut self, obs: &[f32]) -> Vec<f32>;

    /// Sample an action from `action_probs` using the caller's RNG.
    fn sample(&mut self, obs: &[f32], rng: &mut Rng) -> usize {
        sample_categorical(&self.action_probs(obs), rng)
    }

    /// The modal action (first index on ties) — deterministic inference.
    fn greedy(&mut self, obs: &[f32]) -> usize {
        let probs = self.action_probs(obs);
        let mut best = 0;
        for (i, &p) in probs.iter().enumerate() {
            if p > probs[best] {
                best = i;
            }
        }
        best
    }

    /// [`Policy::action_probs`] into a caller-owned buffer. The default
    /// delegates (and allocates); network-backed policies override it so
    /// per-step sampling in the collector is allocation-free. Must produce
    /// exactly the same probabilities as `action_probs`.
    fn action_probs_into(&mut self, obs: &[f32], out: &mut Vec<f32>) {
        let probs = self.action_probs(obs);
        out.clear();
        out.extend_from_slice(&probs);
    }

    /// Action probabilities for a whole `(N × obs_dim)` batch of
    /// observations at once, written into `out` (one row per observation).
    /// The default evaluates row by row; network-backed policies override
    /// it with a single batched forward pass — this is what lets a
    /// [`crate::rollout::BatchCollector`] stack its worker states into one
    /// inference call per timestep. Row `i` must equal
    /// `action_probs(obs.row(i))`.
    fn action_probs_batch_into(&mut self, obs: &Tensor, out: &mut Tensor) {
        let mut cols_set = false;
        for r in 0..obs.rows() {
            let probs = self.action_probs(obs.row(r));
            if !cols_set {
                out.reset_rows(probs.len());
                cols_set = true;
            }
            out.push_row(&probs);
        }
        if !cols_set {
            out.reset_rows(0);
        }
    }
}

/// A state-value estimator `V(s)`, used to bootstrap truncated rollouts
/// and as the GAE baseline.
pub trait ValueFunction {
    fn value(&mut self, obs: &[f32]) -> f32;

    /// Value estimates for a whole `(N × obs_dim)` batch of observations,
    /// written into `out` (cleared first), one entry per row.
    /// The default evaluates row by row; network-backed critics
    /// override it with a single batched forward pass — the collector
    /// batches every `V(s_t)` of a fragment (plus the truncated-tail
    /// bootstrap) through this. Entry `i` must equal `value(obs.row(i))`.
    fn values_into(&mut self, obs: &Tensor, out: &mut Vec<f32>) {
        out.clear();
        for r in 0..obs.rows() {
            let v = self.value(obs.row(r));
            out.push(v);
        }
    }
}

/// Sample an index from an (approximately normalized) probability vector
/// by inverse-CDF. Rounding shortfall falls to the last index, so the
/// function is total for any probs summing to ≤ 1 + ε.
pub fn sample_categorical(probs: &[f32], rng: &mut Rng) -> usize {
    assert!(
        !probs.is_empty(),
        "cannot sample from an empty distribution"
    );
    let u = rng.next_f32();
    let mut acc = 0.0f32;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_categorical_respects_point_mass() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(sample_categorical(&[0.0, 1.0, 0.0], &mut rng), 1);
        }
    }

    #[test]
    fn sample_categorical_matches_frequencies() {
        let mut rng = Rng::seed_from_u64(2);
        let probs = [0.2f32, 0.5, 0.3];
        let mut counts = [0usize; 3];
        let n = 20_000;
        for _ in 0..n {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        for (c, &p) in counts.iter().zip(&probs) {
            let freq = *c as f32 / n as f32;
            assert!((freq - p).abs() < 0.02, "freq {freq} vs p {p}");
        }
    }

    #[test]
    fn sample_categorical_total_under_rounding() {
        // Deliberately short of 1.0: the tail index must absorb the rest.
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = sample_categorical(&[0.3, 0.3], &mut rng);
            assert!(i < 2);
        }
    }

    struct FixedPolicy(Vec<f32>);

    impl Policy for FixedPolicy {
        fn action_probs(&mut self, _obs: &[f32]) -> Vec<f32> {
            self.0.clone()
        }
    }

    #[test]
    fn greedy_picks_mode_first_on_ties() {
        let mut p = FixedPolicy(vec![0.4, 0.4, 0.2]);
        assert_eq!(p.greedy(&[]), 0);
        let mut q = FixedPolicy(vec![0.1, 0.2, 0.7]);
        assert_eq!(q.greedy(&[]), 2);
    }
}
