//! Hand-computed golden-value sessions for the chunk simulator and the
//! §3.1 linear QoE.
//!
//! The scenario is engineered for clean arithmetic: a flat 1.6 Mbit/s
//! link is 200 000 bytes/s, the constant-bitrate video's chunk sizes
//! are round byte counts, and the RTT is overridden to 0.25 s — so the
//! hand computation comes out in short decimals (0.75 s transfers,
//! 1.0 s delays). Trace capacities are stored as `f32`, where 1.6 is
//! not exactly representable (it is ≈1.60000002), so the asserts use a
//! 1e-6 tolerance rather than `==`: tight enough to catch any logic
//! error, loose enough for the f32→f64 rate conversion.

use osa_abr::prelude::*;
use osa_trace::Trace;

const TOL: f64 = 1e-6;

fn cfg() -> AbrConfig {
    AbrConfig {
        rtt_s: 0.25,
        ..AbrConfig::default()
    }
}

fn flat_16() -> Trace {
    Trace::new("flat-1.6", 1.0, vec![1.6; 10])
}

fn close(actual: f64, expected: f64, what: &str) {
    assert!(
        (actual - expected).abs() < TOL,
        "{what}: got {actual}, expected {expected}"
    );
}

/// chunk 0 @ level 0: size 150 000 B → transfer 0.75 s, delay 1.0 s;
/// chunk 1 @ level 2: size 600 000 B → transfer 3.0 s, delay 3.25 s;
/// chunk 2 @ level 2: same again.
#[test]
fn three_chunk_session_matches_hand_computation() {
    let video = VideoModel::constant_bitrate();
    let cfg = cfg();
    let mut sim = MultiSession::new(video, cfg, vec![flat_16()], 1, false);

    // Chunk 0, level 0: empty buffer stalls for the full 1.0 s delay.
    let r0 = sim.step_all(&[0])[0];
    close(sim.time_s(0), 1.0, "time after chunk 0");
    close(sim.buffer_s(0), 4.0, "buffer after chunk 0");
    close(sim.rebuffer_total(0), 1.0, "rebuffer after chunk 0");
    close(r0 as f64, 0.3 - 4.3, "reward 0"); // q(300k) − 4.3·1.0, no switch

    // Chunk 1, level 2: 3.25 s delay against a 4.0 s buffer — no stall,
    // buffer 4.0 − 3.25 + 4.0 = 4.75, one-step bitrate switch penalty.
    let r1 = sim.step_all(&[2])[0];
    close(sim.time_s(0), 4.25, "time after chunk 1");
    close(sim.buffer_s(0), 4.75, "buffer after chunk 1");
    close(sim.rebuffer_total(0), 1.0, "rebuffer after chunk 1");
    close(r1 as f64, 1.2 - (1.2 - 0.3), "reward 1"); // q(1200k) − |Δq|

    // Chunk 2, level 2 again: no switch, no stall.
    let r2 = sim.step_all(&[2])[0];
    close(sim.time_s(0), 7.5, "time after chunk 2");
    close(sim.buffer_s(0), 5.5, "buffer after chunk 2");
    close(r2 as f64, 1.2, "reward 2");

    // Lifetime QoE is the sum of the three chunk rewards.
    close(sim.qoe_total(0), 0.3 - 4.3 + 0.3 + 1.2, "session qoe");
    assert_eq!(sim.chunks_total(0), 3);
}

/// On a fat link the buffer pins at the 60 s cap and the client sleeps:
/// per steady-state chunk the session clock must advance by exactly
/// chunk duration (delay + sleep = 4 s) while the buffer stays capped.
#[test]
fn capped_buffer_reaches_steady_state_sleep() {
    let video = VideoModel::constant_bitrate();
    // 80 Mbit/s = 10⁷ B/s: level-0 chunks take 0.015 s + RTT, so the
    // only stall is the unavoidable 0.265 s startup on an empty buffer.
    let trace = Trace::new("fat", 1.0, vec![80.0; 5]);
    let mut sim = MultiSession::new(video, cfg(), vec![trace], 1, false);
    let mut last_time = 0.0;
    let mut capped_steps = 0;
    for step in 0..30 {
        let was_capped = sim.buffer_s(0) == 60.0;
        sim.step_all(&[0]);
        let dt = sim.time_s(0) - last_time;
        last_time = sim.time_s(0);
        if was_capped {
            // Steady state (capped at step start): delay + sleep must
            // equal one chunk duration (up to the rounding of the two
            // separate time additions). The step that first *reaches*
            // the cap only sleeps off its overshoot, so it is excluded.
            assert_eq!(sim.buffer_s(0), 60.0, "step {step}: fell off cap");
            assert!((dt - 4.0).abs() < 1e-9, "step {step}: dt {dt}");
            capped_steps += 1;
        }
        close(sim.rebuffer_total(0), 0.265, "startup stall only");
    }
    assert_eq!(sim.buffer_s(0), 60.0);
    assert!(capped_steps >= 10, "cap never reached steady state");
}

/// The QoE identity on a whole session: total reward equals
/// Σ q(Rₙ) − μ·total rebuffer − Σ |q(Rₙ) − q(Rₙ₋₁)|, recomputed here
/// from first principles with independent bookkeeping.
#[test]
fn session_qoe_decomposes_into_its_three_terms() {
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let trace = Trace::new("varied", 2.0, vec![3.0, 1.0, 5.0, 0.5, 2.0]);
    let mut sim = MultiSession::new(video.clone(), cfg.clone(), vec![trace], 1, false);

    let mut quality = 0.0;
    let mut switches = 0.0;
    let mut prev = video.bitrate_mbps(0);
    let mut step = 0usize;
    while !sim.all_done() {
        let level = [0, 2, 4, 1, 3, 5][step % 6];
        sim.step_all(&[level]);
        let q = video.bitrate_mbps(level);
        quality += q;
        switches += (q - prev).abs();
        prev = q;
        step += 1;
    }
    let expected = quality - cfg.rebuf_penalty * sim.rebuffer_total(0) - switches;
    assert!(
        (sim.qoe_total(0) - expected).abs() < 1e-9,
        "qoe {} vs decomposition {expected}",
        sim.qoe_total(0)
    );
    assert_eq!(step, 48);
}
