//! Property and determinism tests for the multi-session engine:
//! invariants over random workloads, multi-vs-single-session
//! bit-equality, and pool-size invariance of `step_all`.

use osa_abr::prelude::*;
use osa_mdp::env::Env;
use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;
use osa_runtime::ThreadPool;
use osa_trace::prelude::*;

fn corpus(count: usize, seed: u64) -> Vec<Trace> {
    Dataset::Norway.generate(count, 240, seed)
}

/// Invariants that must hold on every transition, driven by a random
/// policy over a Norway corpus: rebuffer ≥ 0, 0 ≤ buffer ≤ cap, chunk
/// accounting conserved.
#[test]
fn transition_invariants_hold_under_random_policy() {
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let n = 32;
    let steps = 200;
    let mut sim = MultiSession::new(video, cfg.clone(), corpus(7, 42), n, true);
    let mut rng = Rng::seed_from_u64(1);
    let mut actions = vec![0usize; n];
    for _ in 0..steps {
        for a in actions.iter_mut() {
            *a = rng.below(NUM_BITRATES);
        }
        sim.step_all(&actions);
        for i in 0..n {
            let o = sim.outcomes()[i];
            assert!(o.rebuffer_s >= 0.0);
            assert!(o.sleep_s >= 0.0);
            assert!(o.delay_s > 0.0 && o.delay_s.is_finite());
            assert!(o.tput_mbps > 0.0 && o.tput_mbps.is_finite());
            assert!((0.0..=cfg.buffer_cap_s).contains(&sim.buffer_s(i)));
            assert!(sim.time_s(i).is_finite());
        }
    }
    // Chunk conservation: with auto-reset every session downloads
    // exactly one chunk per step, and completed videos account for all
    // but the in-progress remainder.
    for i in 0..n {
        assert_eq!(sim.chunks_total(i), steps as u64);
        let done = sim.sessions_completed(i);
        let in_progress = sim.next_chunk(i) as u64;
        assert_eq!(done * CHUNK_COUNT as u64 + in_progress, steps as u64);
    }
}

/// Without auto-reset, every session downloads exactly one video.
#[test]
fn finite_sessions_conserve_chunks() {
    let video = VideoModel::envivio();
    let traces = corpus(5, 7);
    let n = traces.len();
    let mut sim = MultiSession::new(video, AbrConfig::default(), traces, n, false);
    let actions = vec![3usize; n];
    let mut steps = 0;
    while !sim.all_done() {
        sim.step_all(&actions);
        steps += 1;
        assert!(steps <= CHUNK_COUNT, "sessions failed to terminate");
    }
    assert_eq!(steps, CHUNK_COUNT);
    for i in 0..n {
        assert_eq!(sim.chunks_total(i), CHUNK_COUNT as u64);
        assert_eq!(sim.sessions_completed(i), 1);
    }
}

/// The batched engine must be bit-equal to the single-session
/// `AbrEnv` adapter: same traces, same per-session action sequences →
/// identical rewards and identical observations, because both run the
/// same `step_chunk`.
#[test]
fn multi_session_is_bit_equal_to_single_session_env() {
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let traces = corpus(6, 11);
    let n = traces.len();

    let mut sim = MultiSession::new(video.clone(), cfg.clone(), traces.clone(), n, false);
    let mut envs: Vec<AbrEnv> = traces
        .iter()
        .map(|t| AbrEnv::new(video.clone(), cfg.clone(), vec![t.clone()]).with_fixed_start())
        .collect();
    // Fixed-start envs over single-trace corpora: reset consumes RNG
    // draws but ignores them, so any seed gives trace time 0 — the
    // exact state MultiSession starts sessions in.
    let mut rng = Rng::seed_from_u64(0);
    let mut env_obs: Vec<Vec<f32>> = envs.iter_mut().map(|e| e.reset(&mut rng)).collect();

    let mut obs = Tensor::zeros(n, OBS_DIM);
    let mut actions = vec![0usize; n];
    for step in 0..CHUNK_COUNT {
        // A deterministic, session-dependent action pattern that sweeps
        // the ladder.
        for (i, a) in actions.iter_mut().enumerate() {
            *a = (step + 2 * i) % NUM_BITRATES;
        }
        let rewards = sim.step_all(&actions).to_vec();
        sim.fill_observations(&mut obs);
        for i in 0..n {
            let s = envs[i].step(actions[i], &mut rng);
            assert_eq!(
                rewards[i].to_bits(),
                s.reward.to_bits(),
                "reward diverged: session {i}, step {step}"
            );
            env_obs[i] = s.obs;
            let row = obs.row(i);
            for (c, (&a, &b)) in row.iter().zip(&env_obs[i]).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "obs diverged: session {i}, step {step}, col {c}"
                );
            }
        }
    }
    assert!(sim.all_done());
}

/// `step_all` must be bit-identical for any pool width. Runs the same
/// random-policy workload on pools of 1, 2, 4 and 8 workers and
/// compares every reward and the final observation matrix bitwise.
#[test]
fn step_all_is_bit_identical_across_pool_sizes() {
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let traces = corpus(5, 23);
    let n = 37; // deliberately not a multiple of any pool width
    let steps = 120;

    let run = |workers: usize| -> (Vec<u32>, Vec<u32>) {
        let pool = ThreadPool::new(workers);
        let mut sim = MultiSession::new(video.clone(), cfg.clone(), traces.clone(), n, true);
        let mut rng = Rng::seed_from_u64(99);
        let mut actions = vec![0usize; n];
        let mut reward_bits = Vec::with_capacity(steps * n);
        for _ in 0..steps {
            for a in actions.iter_mut() {
                *a = rng.below(NUM_BITRATES);
            }
            let r = sim.step_all_with_pool(&actions, &pool);
            reward_bits.extend(r.iter().map(|x| x.to_bits()));
        }
        let mut obs = Tensor::zeros(n, OBS_DIM);
        sim.fill_observations(&mut obs);
        let obs_bits = obs.data().iter().map(|x| x.to_bits()).collect();
        (reward_bits, obs_bits)
    };

    let baseline = run(1);
    for workers in [2, 4, 8] {
        let other = run(workers);
        assert_eq!(
            baseline, other,
            "pool width {workers} diverged from single-worker run"
        );
    }
}

/// The observation encoding stays finite and in its documented range
/// envelope across a long random workload (NaN here would poison
/// training silently).
#[test]
fn observations_stay_finite_and_bounded() {
    let video = VideoModel::envivio();
    let n = 16;
    let mut sim = MultiSession::new(video, AbrConfig::default(), corpus(4, 5), n, true);
    let mut rng = Rng::seed_from_u64(3);
    let mut actions = vec![0usize; n];
    let mut obs = Tensor::zeros(n, OBS_DIM);
    for _ in 0..150 {
        for a in actions.iter_mut() {
            *a = rng.below(NUM_BITRATES);
        }
        sim.step_all(&actions);
        sim.fill_observations(&mut obs);
        assert!(obs.is_finite());
        for &x in obs.data() {
            assert!((-0.001..=100.0).contains(&x), "obs out of envelope: {x}");
        }
    }
}
