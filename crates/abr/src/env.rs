//! [`AbrEnv`]: the single-session [`osa_mdp::Env`] adapter the A2C
//! trainer runs against.
//!
//! Each episode is one 48-chunk streaming session on a trace drawn from
//! the env's corpus, starting at a random offset (Pensieve trains the
//! same way so the agent sees every link regime, not just trace
//! openings). The transition itself is [`crate::sim::step_chunk`] — the
//! exact function [`crate::sim::MultiSession`] runs — so single-session
//! training and batched evaluation are bit-equal by construction
//! (`tests/properties.rs` pins this).
//!
//! RNG contract: `reset` consumes exactly two draws (trace index, start
//! slot — the second is drawn even with [`AbrEnv::with_fixed_start`] so
//! the draw order never depends on configuration); `step` consumes none.

use osa_mdp::env::{Env, Step};
use osa_nn::rng::Rng;
use osa_trace::{link, Trace};

use crate::sim::{encode_obs, step_chunk, AbrConfig};
use crate::video::VideoModel;
use crate::{HISTORY_LEN, NUM_BITRATES, OBS_DIM};

/// Single-session ABR environment over a trace corpus. `Clone + Send`,
/// as the synchronous-streams trainer requires.
#[derive(Clone)]
pub struct AbrEnv {
    video: VideoModel,
    cfg: AbrConfig,
    traces: Vec<Trace>,
    random_start: bool,
    // Episode state.
    trace_idx: usize,
    time_s: f64,
    buffer_s: f64,
    next_chunk: usize,
    prev_level: usize,
    tput_hist: [f32; HISTORY_LEN],
    delay_hist: [f32; HISTORY_LEN],
}

impl AbrEnv {
    /// Build over `traces` with random episode start offsets. Panics on
    /// an empty corpus or a trace with zero capacity everywhere.
    pub fn new(video: VideoModel, cfg: AbrConfig, traces: Vec<Trace>) -> Self {
        assert!(!traces.is_empty(), "AbrEnv needs at least one trace");
        for t in &traces {
            assert!(t.is_wellformed(), "malformed trace {}", t.id);
            assert!(
                link::bytes_per_period(t) > 0.0,
                "trace {} has zero capacity everywhere",
                t.id
            );
        }
        AbrEnv {
            video,
            cfg,
            traces,
            random_start: true,
            trace_idx: 0,
            time_s: 0.0,
            buffer_s: 0.0,
            next_chunk: 0,
            prev_level: 0,
            tput_hist: [0.0; HISTORY_LEN],
            delay_hist: [0.0; HISTORY_LEN],
        }
    }

    /// Start every episode at trace time 0 instead of a random offset —
    /// what the bit-equality tests against [`crate::sim::MultiSession`]
    /// use. The reset RNG draw order is unchanged.
    pub fn with_fixed_start(mut self) -> Self {
        self.random_start = false;
        self
    }

    pub fn video(&self) -> &VideoModel {
        &self.video
    }

    pub fn cfg(&self) -> &AbrConfig {
        &self.cfg
    }

    pub fn num_traces(&self) -> usize {
        self.traces.len()
    }

    fn encode(&self, obs: &mut [f32]) {
        encode_obs(
            obs,
            &self.video,
            &self.tput_hist,
            &self.delay_hist,
            self.buffer_s,
            self.next_chunk,
            self.prev_level,
        );
    }
}

impl Env for AbrEnv {
    fn obs_dim(&self) -> usize {
        OBS_DIM
    }

    fn num_actions(&self) -> usize {
        NUM_BITRATES
    }

    fn reset(&mut self, rng: &mut Rng) -> Vec<f32> {
        let mut obs = vec![0.0; OBS_DIM];
        self.reset_into(rng, &mut obs);
        obs
    }

    fn step(&mut self, action: usize, rng: &mut Rng) -> Step {
        let mut obs = vec![0.0; OBS_DIM];
        let (reward, done) = self.step_into(action, rng, &mut obs);
        Step { obs, reward, done }
    }

    fn reset_into(&mut self, rng: &mut Rng, obs: &mut Vec<f32>) {
        self.trace_idx = rng.below(self.traces.len());
        // Always consume the slot draw so configuration can't shift the
        // RNG stream (the Env override contract).
        let slot = rng.below(self.traces[self.trace_idx].len());
        self.time_s = if self.random_start {
            slot as f64 * self.traces[self.trace_idx].interval_s as f64
        } else {
            0.0
        };
        self.buffer_s = 0.0;
        self.next_chunk = 0;
        self.prev_level = 0;
        self.tput_hist = [0.0; HISTORY_LEN];
        self.delay_hist = [0.0; HISTORY_LEN];
        obs.clear();
        obs.resize(OBS_DIM, 0.0);
        self.encode(obs);
    }

    fn step_into(&mut self, action: usize, _rng: &mut Rng, obs: &mut Vec<f32>) -> (f32, bool) {
        assert!(
            self.next_chunk < self.video.chunk_count(),
            "step after episode end; reset first"
        );
        let o = step_chunk(
            &self.video,
            &self.cfg,
            &self.traces[self.trace_idx],
            self.time_s,
            self.buffer_s,
            self.next_chunk,
            self.prev_level,
            action,
        );
        self.time_s = o.new_time_s;
        self.buffer_s = o.new_buffer_s;
        self.prev_level = action;
        self.next_chunk += 1;
        self.tput_hist.copy_within(1.., 0);
        self.tput_hist[HISTORY_LEN - 1] = o.tput_mbps as f32;
        self.delay_hist.copy_within(1.., 0);
        self.delay_hist[HISTORY_LEN - 1] = o.delay_s as f32;
        obs.clear();
        obs.resize(OBS_DIM, 0.0);
        self.encode(obs);
        (o.reward as f32, o.finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::CHUNK_COUNT;

    fn env() -> AbrEnv {
        AbrEnv::new(
            VideoModel::constant_bitrate(),
            AbrConfig::default(),
            vec![Trace::new("flat", 1.0, vec![6.0; 20])],
        )
    }

    #[test]
    fn episode_runs_exactly_chunk_count_steps() {
        let mut e = env();
        let mut rng = Rng::seed_from_u64(1);
        let obs = e.reset(&mut rng);
        assert_eq!(obs.len(), OBS_DIM);
        let mut steps = 0;
        loop {
            let s = e.step(1, &mut rng);
            steps += 1;
            assert!(s.obs.iter().all(|x| x.is_finite()));
            if s.done {
                break;
            }
        }
        assert_eq!(steps, CHUNK_COUNT);
    }

    #[test]
    fn reset_into_matches_reset_rng_stream() {
        let mut a = env();
        let mut b = env();
        let mut rng_a = Rng::seed_from_u64(7);
        let mut rng_b = Rng::seed_from_u64(7);
        let oa = a.reset(&mut rng_a);
        let mut ob = Vec::new();
        b.reset_into(&mut rng_b, &mut ob);
        assert_eq!(oa, ob);
        // Post-reset streams agree too.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    #[should_panic(expected = "reset first")]
    fn stepping_past_done_panics() {
        let mut e = env();
        let mut rng = Rng::seed_from_u64(2);
        e.reset(&mut rng);
        for _ in 0..CHUNK_COUNT + 1 {
            e.step(0, &mut rng);
        }
    }
}
