//! Batched ABR decision policies: the [`AbrPolicy`] trait plus the
//! paper's two anchor baselines, Buffer-Based and Random, which define
//! the normalized score's 1 and 0 (ROADMAP / EXPERIMENTS.md).

use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;

use crate::sim::MultiSession;
use crate::NUM_BITRATES;

/// A policy that picks one bitrate level per session for a whole
/// [`MultiSession`] batch at once.
///
/// `obs` is the matrix [`MultiSession::fill_observations`] produced for
/// the current state (`sim.len() × OBS_DIM`) — learned policies read it
/// with one batched forward pass; rule-based baselines ignore it and
/// read session state directly. Implementations must write `actions[i]`
/// for every `i` (values `< NUM_BITRATES`); entries for inactive
/// sessions are ignored by `step_all`. Implementations must be
/// allocation-free after warm-up — the zero-alloc bench test covers the
/// whole decide + step loop.
pub trait AbrPolicy {
    /// Stable name for score tables and bench reports.
    fn name(&self) -> &'static str;

    fn decide_all(
        &mut self,
        sim: &MultiSession,
        obs: &Tensor,
        actions: &mut [usize],
        rng: &mut Rng,
    );
}

/// Uniform-random level selection — the normalized score's zero point.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomPolicy;

impl AbrPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn decide_all(
        &mut self,
        sim: &MultiSession,
        _obs: &Tensor,
        actions: &mut [usize],
        rng: &mut Rng,
    ) {
        assert_eq!(actions.len(), sim.len());
        for a in actions.iter_mut() {
            *a = rng.below(NUM_BITRATES);
        }
    }
}

/// Buffer-Based rate selection (Huang et al., SIGCOMM '14), the paper's
/// incumbent baseline: below the reservoir stream the lowest level,
/// above reservoir + cushion the highest, and map the buffer linearly
/// onto the ladder in between.
#[derive(Clone, Copy, Debug)]
pub struct BufferBased {
    pub reservoir_s: f64,
    pub cushion_s: f64,
}

impl Default for BufferBased {
    fn default() -> Self {
        BufferBased {
            reservoir_s: 5.0,
            cushion_s: 10.0,
        }
    }
}

impl BufferBased {
    /// The reservoir/cushion map for a single buffer level.
    pub fn level_for_buffer(&self, buffer_s: f64) -> usize {
        if buffer_s < self.reservoir_s {
            0
        } else if buffer_s >= self.reservoir_s + self.cushion_s {
            NUM_BITRATES - 1
        } else {
            let frac = (buffer_s - self.reservoir_s) / self.cushion_s;
            ((frac * (NUM_BITRATES - 1) as f64) as usize).min(NUM_BITRATES - 1)
        }
    }
}

impl AbrPolicy for BufferBased {
    fn name(&self) -> &'static str {
        "bb"
    }

    fn decide_all(
        &mut self,
        sim: &MultiSession,
        _obs: &Tensor,
        actions: &mut [usize],
        _rng: &mut Rng,
    ) {
        assert_eq!(actions.len(), sim.len());
        for (i, a) in actions.iter_mut().enumerate() {
            *a = self.level_for_buffer(sim.buffer_s(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bb_maps_buffer_onto_the_ladder() {
        let bb = BufferBased::default();
        assert_eq!(bb.level_for_buffer(0.0), 0);
        assert_eq!(bb.level_for_buffer(4.99), 0);
        assert_eq!(bb.level_for_buffer(5.0), 0); // frac 0
        assert_eq!(bb.level_for_buffer(7.0), 1); // frac 0.2 → level 1
        assert_eq!(bb.level_for_buffer(12.0), 3);
        assert_eq!(bb.level_for_buffer(14.99), 4);
        assert_eq!(bb.level_for_buffer(15.0), 5);
        assert_eq!(bb.level_for_buffer(60.0), 5);
    }

    #[test]
    fn random_levels_cover_the_ladder() {
        use crate::video::VideoModel;
        use osa_trace::Trace;
        let sim = MultiSession::new(
            VideoModel::constant_bitrate(),
            crate::AbrConfig::default(),
            vec![Trace::new("t", 1.0, vec![5.0; 4])],
            64,
            true,
        );
        let obs = Tensor::zeros(64, crate::OBS_DIM);
        let mut actions = vec![0usize; 64];
        let mut rng = Rng::seed_from_u64(9);
        RandomPolicy.decide_all(&sim, &obs, &mut actions, &mut rng);
        assert!(actions.iter().all(|&a| a < NUM_BITRATES));
        let distinct: std::collections::BTreeSet<_> = actions.iter().collect();
        assert!(distinct.len() >= 4, "64 draws should hit most levels");
    }
}
