//! Policy scoring over a trace set, and the ROADMAP's normalized score
//! (0 = Random, 1 = BB) used in every results table.

use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;

use crate::policy::AbrPolicy;
use crate::sim::{AbrConfig, MultiSession};
use crate::video::VideoModel;
use crate::OBS_DIM;
use osa_trace::Trace;

/// Aggregate result of running one policy once over every trace of a
/// set (one 48-chunk session per trace, started at trace time 0).
#[derive(Clone, Debug)]
pub struct PolicyScore {
    pub name: String,
    /// Mean linear QoE per chunk — the headline number.
    pub mean_qoe: f64,
    /// Mean rebuffering seconds per session.
    pub mean_rebuffer_s: f64,
    /// Mean selected bitrate per chunk, Mbit/s.
    pub mean_bitrate_mbps: f64,
    pub sessions: usize,
    pub chunks: u64,
}

/// Stream every trace once under `policy` and aggregate. Deterministic
/// given `seed` (which only feeds stochastic policies — the dynamics
/// consume no RNG).
pub fn evaluate_policy(
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
    policy: &mut dyn AbrPolicy,
    seed: u64,
) -> PolicyScore {
    assert!(!traces.is_empty(), "evaluate_policy needs traces");
    let n = traces.len();
    let mut sim = MultiSession::new(video.clone(), cfg.clone(), traces.to_vec(), n, false);
    let mut rng = Rng::seed_from_u64(seed);
    let mut obs = Tensor::zeros(n, OBS_DIM);
    let mut actions = vec![0usize; n];
    while !sim.all_done() {
        sim.fill_observations(&mut obs);
        policy.decide_all(&sim, &obs, &mut actions, &mut rng);
        sim.step_all(&actions);
    }
    let chunks: u64 = (0..n).map(|i| sim.chunks_total(i)).sum();
    let qoe: f64 = (0..n).map(|i| sim.qoe_total(i)).sum();
    let rebuf: f64 = (0..n).map(|i| sim.rebuffer_total(i)).sum();
    let bitrate: f64 = (0..n).map(|i| sim.bitrate_total_mbps(i)).sum();
    PolicyScore {
        name: policy.name().to_string(),
        mean_qoe: qoe / chunks as f64,
        mean_rebuffer_s: rebuf / n as f64,
        mean_bitrate_mbps: bitrate / chunks as f64,
        sessions: n,
        chunks,
    }
}

/// Map a mean QoE onto the ROADMAP's normalized scale where Random
/// scores 0 and Buffer-Based scores 1:
/// `(qoe − random) / (bb − random)`. Panics if the two anchors
/// coincide (a degenerate trace set).
pub fn normalized_score(qoe: f64, random_qoe: f64, bb_qoe: f64) -> f64 {
    let span = bb_qoe - random_qoe;
    assert!(
        span.abs() > 1e-12,
        "BB and Random anchors coincide ({bb_qoe}); normalization undefined"
    );
    (qoe - random_qoe) / span
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BufferBased, RandomPolicy};

    fn traces() -> Vec<Trace> {
        (0..4)
            .map(|i| Trace::new(format!("t{i}"), 1.0, vec![2.0 + i as f32; 30]))
            .collect()
    }

    #[test]
    fn bb_beats_random_on_steady_links() {
        let video = VideoModel::envivio();
        let cfg = AbrConfig::default();
        let bb = evaluate_policy(&video, &cfg, &traces(), &mut BufferBased::default(), 1);
        let rnd = evaluate_policy(&video, &cfg, &traces(), &mut RandomPolicy, 1);
        assert!(
            bb.mean_qoe > rnd.mean_qoe,
            "bb {} <= random {}",
            bb.mean_qoe,
            rnd.mean_qoe
        );
        assert_eq!(bb.sessions, 4);
        assert_eq!(bb.chunks, 4 * 48);
        assert_eq!(
            normalized_score(bb.mean_qoe, rnd.mean_qoe, bb.mean_qoe),
            1.0
        );
        assert_eq!(
            normalized_score(rnd.mean_qoe, rnd.mean_qoe, bb.mean_qoe),
            0.0
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let video = VideoModel::envivio();
        let cfg = AbrConfig::default();
        let a = evaluate_policy(&video, &cfg, &traces(), &mut RandomPolicy, 9);
        let b = evaluate_policy(&video, &cfg, &traces(), &mut RandomPolicy, 9);
        assert_eq!(a.mean_qoe.to_bits(), b.mean_qoe.to_bits());
        assert_eq!(a.mean_rebuffer_s.to_bits(), b.mean_rebuffer_s.to_bits());
    }
}
