//! EnvivioDash3-style video model: 48 chunks × 6 bitrate levels, ~4 s
//! chunks, VBR per-chunk size variation.
//!
//! Pensieve's testbed video (EnvivioDash3) is 193 s of H.264 encoded at
//! six average bitrates and sliced into 48 four-second chunks; the
//! per-chunk sizes vary around `bitrate × 4 s` because the encoder is
//! VBR. The real size table is not redistributable, so [`VideoModel::
//! envivio`] synthesizes one deterministically: a per-chunk complexity
//! factor (scenes differ in how hard they compress) shared across
//! levels, plus a small per-level jitter, with strict monotonicity in
//! bitrate enforced — a higher level never yields a smaller chunk.

use osa_nn::rng::Rng;

use crate::NUM_BITRATES;

/// The six encoding bitrates of EnvivioDash3, in kbit/s.
pub const BITRATES_KBPS: [u32; NUM_BITRATES] = [300, 750, 1200, 1850, 2850, 4300];

/// Number of chunks in the video (48 × 4 s ≈ 193 s).
pub const CHUNK_COUNT: usize = 48;

/// Chunk play duration in seconds.
pub const CHUNK_S: f64 = 4.0;

/// Fixed internal seed for the synthetic VBR table, so every build of
/// the workspace trains and evaluates against the identical video.
const VBR_SEED: u64 = 0xe1_71d3_0a5e;

/// Immutable chunk-size table plus the bitrate ladder.
#[derive(Clone, Debug, PartialEq)]
pub struct VideoModel {
    chunk_s: f64,
    /// `CHUNK_COUNT × NUM_BITRATES` chunk sizes in bytes, row-major by
    /// chunk index.
    sizes: Vec<f64>,
}

impl VideoModel {
    /// The workspace's standard synthetic EnvivioDash3 substitute.
    pub fn envivio() -> Self {
        let mut rng = Rng::seed_from_u64(VBR_SEED);
        let mut sizes = Vec::with_capacity(CHUNK_COUNT * NUM_BITRATES);
        for _ in 0..CHUNK_COUNT {
            // Scene complexity: shared across levels so the whole ladder
            // breathes together, like a real VBR encode.
            let scene = (rng.normal(1.0, 0.15) as f64).clamp(0.6, 1.5);
            let base = sizes.len();
            for (level, &kbps) in BITRATES_KBPS.iter().enumerate() {
                let jitter = (rng.normal(1.0, 0.05) as f64).clamp(0.85, 1.15);
                let nominal = kbps as f64 * 1000.0 / 8.0 * CHUNK_S;
                let mut size = nominal * scene * jitter;
                // A higher encoding bitrate must never produce a smaller
                // chunk, or the QoE ladder would invert.
                if level > 0 {
                    size = size.max(sizes[base + level - 1] * 1.05);
                }
                sizes.push(size);
            }
        }
        VideoModel {
            chunk_s: CHUNK_S,
            sizes,
        }
    }

    /// Exact constant-bitrate sizes (`kbps × 500` bytes per 4 s chunk),
    /// used by the hand-computed golden-value tests.
    pub fn constant_bitrate() -> Self {
        let mut sizes = Vec::with_capacity(CHUNK_COUNT * NUM_BITRATES);
        for _ in 0..CHUNK_COUNT {
            for &kbps in &BITRATES_KBPS {
                sizes.push(kbps as f64 * 1000.0 / 8.0 * CHUNK_S);
            }
        }
        VideoModel {
            chunk_s: CHUNK_S,
            sizes,
        }
    }

    /// Size in bytes of `chunk` encoded at bitrate `level`.
    pub fn size_bytes(&self, chunk: usize, level: usize) -> f64 {
        assert!(chunk < CHUNK_COUNT && level < NUM_BITRATES);
        self.sizes[chunk * NUM_BITRATES + level]
    }

    /// Number of chunks in the video.
    pub fn chunk_count(&self) -> usize {
        CHUNK_COUNT
    }

    /// Chunk play duration in seconds.
    pub fn chunk_s(&self) -> f64 {
        self.chunk_s
    }

    /// Encoding bitrate of `level` in kbit/s.
    pub fn bitrate_kbps(&self, level: usize) -> u32 {
        BITRATES_KBPS[level]
    }

    /// Encoding bitrate of `level` in Mbit/s — also the §3.1 linear QoE
    /// quality term `q(R)`.
    pub fn bitrate_mbps(&self, level: usize) -> f64 {
        BITRATES_KBPS[level] as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ascending() {
        let mut prev = 0;
        for &b in &BITRATES_KBPS {
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn sizes_are_strictly_monotone_in_bitrate() {
        let v = VideoModel::envivio();
        for c in 0..CHUNK_COUNT {
            for l in 1..NUM_BITRATES {
                assert!(
                    v.size_bytes(c, l) > v.size_bytes(c, l - 1),
                    "chunk {c}: level {l} not larger"
                );
            }
        }
    }

    #[test]
    fn vbr_sizes_track_nominal_within_encoder_bounds() {
        let v = VideoModel::envivio();
        for c in 0..CHUNK_COUNT {
            for (l, &kbps) in BITRATES_KBPS.iter().enumerate() {
                let nominal = kbps as f64 * 500.0;
                let ratio = v.size_bytes(c, l) / nominal;
                // scene ∈ [0.6, 1.5], jitter ∈ [0.85, 1.15], plus the
                // monotonicity fix-up's 5% bumps.
                assert!(
                    (0.5..=1.9).contains(&ratio),
                    "chunk {c} level {l}: ratio {ratio}"
                );
            }
        }
        // ...and the table is actually VBR, not constant.
        let first = v.size_bytes(0, 0);
        assert!((0..CHUNK_COUNT).any(|c| (v.size_bytes(c, 0) - first).abs() > 1.0));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(VideoModel::envivio(), VideoModel::envivio());
    }

    #[test]
    fn constant_bitrate_sizes_are_exact() {
        let v = VideoModel::constant_bitrate();
        assert_eq!(v.size_bytes(0, 0), 150_000.0); // 300 kbps × 4 s / 8
        assert_eq!(v.size_bytes(47, 5), 2_150_000.0); // 4300 kbps
    }
}
