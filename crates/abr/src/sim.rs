//! The chunk-level download simulator: the pure per-chunk transition
//! [`step_chunk`], the observation encoding [`encode_obs`], and the
//! struct-of-arrays [`MultiSession`] batch engine.
//!
//! # Dynamics (per chunk, Pensieve's MahiMahi-equivalent model)
//!
//! A session at absolute time `t` with `buffer` seconds of video queued
//! requests chunk `k` at bitrate level `a`:
//!
//! 1. the request spends one RTT (80 ms) in flight, then the payload
//!    streams over the trace-driven link: `delay = rtt +
//!    transfer_time(trace, t + rtt, size(k, a))` ([`osa_trace::link`]);
//! 2. playback drains the buffer during the download; if it runs dry the
//!    client rebuffers for `max(0, delay − buffer)` seconds;
//! 3. the finished chunk adds 4 s of video; if the buffer would exceed
//!    its cap (60 s) the client pauses requesting until it drains to the
//!    cap (Pensieve's "sleep", exact rather than 500 ms-quantized);
//! 4. the chunk earns the §3.1 linear QoE
//!    `q(R) − μ·rebuffer − |q(R) − q(R_prev)|` with `q` = bitrate in
//!    Mbit/s and μ = 4.3.
//!
//! # Determinism
//!
//! `step_chunk` is a pure `f64` function of its arguments — no RNG, no
//! global state. [`MultiSession::step_all`] runs it over sessions in two
//! phases: a parallel compute phase where each pool lane fills a
//! disjoint slice of per-session outcomes (sessions are independent, so
//! lane assignment cannot change any arithmetic), then a serial apply
//! phase that folds the outcomes into the state arrays in session order.
//! Results are therefore bit-identical for any worker count, which
//! `tests/properties.rs` pins for pools of 1, 2, 4 and 8.

use osa_nn::tensor::Tensor;
use osa_trace::link;
use osa_trace::Trace;

use crate::video::VideoModel;
use crate::{HISTORY_LEN, NUM_BITRATES, OBS_DIM};

/// Environment parameters of the streaming session.
#[derive(Clone, Debug)]
pub struct AbrConfig {
    /// Request round-trip time in seconds.
    pub rtt_s: f64,
    /// Client playback buffer capacity in seconds of video.
    pub buffer_cap_s: f64,
    /// QoE rebuffering penalty μ per stalled second (§3.1: 4.3, the
    /// highest bitrate in Mbit/s).
    pub rebuf_penalty: f64,
    /// QoE smoothness penalty per Mbit/s of bitrate switch.
    pub smooth_penalty: f64,
}

impl Default for AbrConfig {
    fn default() -> Self {
        AbrConfig {
            rtt_s: crate::RTT_MS as f64 / 1000.0,
            buffer_cap_s: 60.0,
            rebuf_penalty: 4.3,
            smooth_penalty: 1.0,
        }
    }
}

/// Everything one chunk download did to a session, computed by
/// [`step_chunk`] before any state is mutated.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChunkOutcome {
    /// Wall-clock seconds from request to last byte (RTT + transfer).
    pub delay_s: f64,
    /// Seconds playback stalled waiting for this chunk.
    pub rebuffer_s: f64,
    /// Seconds the client paused requesting because the buffer was full.
    pub sleep_s: f64,
    /// Measured throughput over the download, Mbit/s (size·8 / delay).
    pub tput_mbps: f64,
    /// Bytes transferred.
    pub size_bytes: f64,
    /// Linear QoE earned by this chunk.
    pub reward: f64,
    /// Session clock after download + any sleep.
    pub new_time_s: f64,
    /// Buffer level after drain, fill, and cap.
    pub new_buffer_s: f64,
    /// True iff this was the last chunk of the video.
    pub finished: bool,
}

/// Advance one session by one chunk download — the single transition
/// function shared by [`MultiSession`] and [`crate::env::AbrEnv`], which
/// is what makes the two bit-equal by construction.
///
/// Panics (via the assertion on `delay`) if `trace` has zero capacity
/// everywhere; [`MultiSession::new`] and `AbrEnv::new` reject such
/// traces up front.
#[allow(clippy::too_many_arguments)] // the full per-session state, flattened on purpose
pub fn step_chunk(
    video: &VideoModel,
    cfg: &AbrConfig,
    trace: &Trace,
    time_s: f64,
    buffer_s: f64,
    chunk: usize,
    prev_level: usize,
    level: usize,
) -> ChunkOutcome {
    assert!(level < NUM_BITRATES, "bitrate level {level} out of range");
    let size = video.size_bytes(chunk, level);
    // The link idles during the request RTT; bytes flow from t + rtt.
    let delay = cfg.rtt_s + link::transfer_time(trace, time_s + cfg.rtt_s, size);
    assert!(
        delay.is_finite(),
        "chunk download never completes (dead trace)"
    );
    let rebuffer = (delay - buffer_s).max(0.0);
    let mut buffer = (buffer_s - delay).max(0.0) + video.chunk_s();
    let mut sleep = 0.0;
    if buffer > cfg.buffer_cap_s {
        sleep = buffer - cfg.buffer_cap_s;
        buffer = cfg.buffer_cap_s;
    }
    let q = video.bitrate_mbps(level);
    let q_prev = video.bitrate_mbps(prev_level);
    ChunkOutcome {
        delay_s: delay,
        rebuffer_s: rebuffer,
        sleep_s: sleep,
        tput_mbps: size * 8.0 / 1e6 / delay,
        size_bytes: size,
        reward: q - cfg.rebuf_penalty * rebuffer - cfg.smooth_penalty * (q - q_prev).abs(),
        new_time_s: time_s + delay + sleep,
        new_buffer_s: buffer,
        finished: chunk + 1 == video.chunk_count(),
    }
}

/// Write the Pensieve state vector for one session into `out`
/// (`out.len() == OBS_DIM`). Layout, with normalizations chosen to keep
/// every feature roughly in [0, 1]:
///
/// | cols                | feature                                   |
/// |---------------------|-------------------------------------------|
/// | `0 .. H`            | past chunk throughputs, Mbit/s ÷ 10       |
/// | `H .. 2H`           | past chunk download times, s ÷ 10         |
/// | `2H .. 2H+6`        | next-chunk size per level, MB (0 at end)  |
/// | `2H+6`              | buffer level, s ÷ 10                      |
/// | `2H+7`              | chunks remaining ÷ chunk count            |
/// | `2H+8`              | last bitrate level ÷ (levels − 1)         |
pub fn encode_obs(
    out: &mut [f32],
    video: &VideoModel,
    tput_hist: &[f32],
    delay_hist: &[f32],
    buffer_s: f64,
    next_chunk: usize,
    prev_level: usize,
) {
    assert_eq!(out.len(), OBS_DIM);
    assert_eq!(tput_hist.len(), HISTORY_LEN);
    assert_eq!(delay_hist.len(), HISTORY_LEN);
    for (o, &t) in out[..HISTORY_LEN].iter_mut().zip(tput_hist) {
        *o = t / 10.0;
    }
    for (o, &d) in out[HISTORY_LEN..2 * HISTORY_LEN].iter_mut().zip(delay_hist) {
        *o = d / 10.0;
    }
    let sizes = &mut out[2 * HISTORY_LEN..2 * HISTORY_LEN + NUM_BITRATES];
    if next_chunk < video.chunk_count() {
        for (level, o) in sizes.iter_mut().enumerate() {
            *o = (video.size_bytes(next_chunk, level) / 1e6) as f32;
        }
    } else {
        sizes.fill(0.0);
    }
    let remaining = video.chunk_count().saturating_sub(next_chunk);
    out[2 * HISTORY_LEN + NUM_BITRATES] = (buffer_s / 10.0) as f32;
    out[2 * HISTORY_LEN + NUM_BITRATES + 1] = remaining as f32 / video.chunk_count() as f32;
    out[2 * HISTORY_LEN + NUM_BITRATES + 2] = prev_level as f32 / (NUM_BITRATES - 1) as f32;
}

/// Scalar state of one streaming session, stepped against *borrowed*
/// video/config/trace — the clone-free single-session counterpart of
/// [`MultiSession`].
///
/// [`MultiSession`] clones its inputs once per *batch*; evaluation
/// loops that spin up one session per trace (calibration sweeps,
/// `osa_core::run_session`) used to pay a `VideoModel` + `Trace` clone
/// per *session*. A cursor is a few plain scalars and two fixed history
/// arrays, so per-session setup is allocation- and clone-free. Both
/// paths share [`step_chunk`] and [`encode_obs`], which keeps them
/// bit-equal by construction (pinned in this module's tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionCursor {
    time_s: f64,
    buffer_s: f64,
    next_chunk: usize,
    prev_level: usize,
    tput_hist: [f32; HISTORY_LEN],
    delay_hist: [f32; HISTORY_LEN],
}

impl SessionCursor {
    /// A fresh session at trace time 0 with an empty buffer.
    pub fn new() -> SessionCursor {
        SessionCursor::default()
    }

    /// Back to the start-of-session state.
    pub fn reset(&mut self) {
        *self = SessionCursor::default();
    }

    /// True once every chunk of `video` has been downloaded.
    pub fn done(&self, video: &VideoModel) -> bool {
        self.next_chunk >= video.chunk_count()
    }

    /// Write this session's observation row (`out.len() == OBS_DIM`).
    pub fn encode_obs(&self, video: &VideoModel, out: &mut [f32]) {
        encode_obs(
            out,
            video,
            &self.tput_hist,
            &self.delay_hist,
            self.buffer_s,
            self.next_chunk,
            self.prev_level,
        );
    }

    /// Download the next chunk at `level`, folding the outcome into the
    /// session state exactly like [`MultiSession::step_all`]'s apply
    /// phase. Panics if the session is already [`done`](Self::done).
    pub fn step(
        &mut self,
        video: &VideoModel,
        cfg: &AbrConfig,
        trace: &Trace,
        level: usize,
    ) -> ChunkOutcome {
        assert!(!self.done(video), "session already finished");
        let o = step_chunk(
            video,
            cfg,
            trace,
            self.time_s,
            self.buffer_s,
            self.next_chunk,
            self.prev_level,
            level,
        );
        self.time_s = o.new_time_s;
        self.buffer_s = o.new_buffer_s;
        self.prev_level = level;
        self.next_chunk += 1;
        self.tput_hist.copy_within(1.., 0);
        self.tput_hist[HISTORY_LEN - 1] = o.tput_mbps as f32;
        self.delay_hist.copy_within(1.., 0);
        self.delay_hist[HISTORY_LEN - 1] = o.delay_s as f32;
        o
    }

    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    pub fn buffer_s(&self) -> f64 {
        self.buffer_s
    }

    pub fn next_chunk(&self) -> usize {
        self.next_chunk
    }

    pub fn prev_level(&self) -> usize {
        self.prev_level
    }
}

/// Struct-of-arrays batch of concurrent streaming sessions.
///
/// Session `i` starts on trace `i mod traces.len()` at its beginning.
/// With `auto_reset` the session rolls onto the next trace
/// (round-robin) when the video ends, so a fixed-size batch can stream
/// forever — the training/bench configuration. Without it, finished
/// sessions go inactive (reward 0, state frozen) — the evaluation
/// configuration, one pass per trace.
pub struct MultiSession {
    video: VideoModel,
    cfg: AbrConfig,
    traces: Vec<Trace>,
    auto_reset: bool,
    // Per-session state, indexed 0..n.
    trace_of: Vec<u32>,
    time_s: Vec<f64>,
    buffer_s: Vec<f64>,
    next_chunk: Vec<u32>,
    prev_level: Vec<u8>,
    active: Vec<bool>,
    /// `n × HISTORY_LEN`, most recent sample last.
    tput_hist: Vec<f32>,
    delay_hist: Vec<f32>,
    // Lifetime accounting (across auto-resets).
    qoe_total: Vec<f64>,
    rebuffer_total: Vec<f64>,
    bitrate_total_mbps: Vec<f64>,
    chunks_total: Vec<u64>,
    sessions_completed: Vec<u64>,
    // Scratch for the parallel compute phase and the returned rewards.
    outcomes: Vec<ChunkOutcome>,
    rewards: Vec<f32>,
}

impl MultiSession {
    /// Build `n` sessions over `traces`. Panics on an empty trace set,
    /// a malformed trace, or a trace with zero capacity everywhere (a
    /// download on it would never finish).
    pub fn new(
        video: VideoModel,
        cfg: AbrConfig,
        traces: Vec<Trace>,
        n: usize,
        auto_reset: bool,
    ) -> Self {
        assert!(!traces.is_empty(), "MultiSession needs at least one trace");
        assert!(n > 0, "MultiSession needs at least one session");
        for t in &traces {
            assert!(t.is_wellformed(), "malformed trace {}", t.id);
            assert!(
                link::bytes_per_period(t) > 0.0,
                "trace {} has zero capacity everywhere",
                t.id
            );
        }
        let trace_of: Vec<u32> = (0..n).map(|i| (i % traces.len()) as u32).collect();
        MultiSession {
            video,
            cfg,
            traces,
            auto_reset,
            trace_of,
            time_s: vec![0.0; n],
            buffer_s: vec![0.0; n],
            next_chunk: vec![0; n],
            prev_level: vec![0; n],
            active: vec![true; n],
            tput_hist: vec![0.0; n * HISTORY_LEN],
            delay_hist: vec![0.0; n * HISTORY_LEN],
            qoe_total: vec![0.0; n],
            rebuffer_total: vec![0.0; n],
            bitrate_total_mbps: vec![0.0; n],
            chunks_total: vec![0; n],
            sessions_completed: vec![0; n],
            outcomes: vec![ChunkOutcome::default(); n],
            rewards: vec![0.0; n],
        }
    }

    /// Number of sessions in the batch.
    pub fn len(&self) -> usize {
        self.time_s.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advance every active session by one chunk download on the current
    /// `osa_runtime` pool; `actions[i]` is session `i`'s bitrate level
    /// (ignored for inactive sessions). Returns per-session rewards
    /// (0 for inactive sessions). Bit-identical for any worker count.
    pub fn step_all(&mut self, actions: &[usize]) -> &[f32] {
        osa_runtime::with_current(|pool| self.step_all_with_pool(actions, pool))
    }

    /// [`MultiSession::step_all`] on an explicit pool.
    pub fn step_all_with_pool(
        &mut self,
        actions: &[usize],
        pool: &osa_runtime::ThreadPool,
    ) -> &[f32] {
        let n = self.len();
        assert_eq!(actions.len(), n, "one action per session");

        // Phase 1 — parallel, pure: lanes fill disjoint outcome slices
        // from immutable session state. Destructure so the mutable
        // borrow of `outcomes` can coexist with the shared borrows.
        {
            let MultiSession {
                video,
                cfg,
                traces,
                trace_of,
                time_s,
                buffer_s,
                next_chunk,
                prev_level,
                active,
                outcomes,
                ..
            } = self;
            pool.parallel_for_slice(outcomes, 1, |_, first, slots| {
                for (off, slot) in slots.iter_mut().enumerate() {
                    let i = first + off;
                    *slot = if active[i] {
                        step_chunk(
                            video,
                            cfg,
                            &traces[trace_of[i] as usize],
                            time_s[i],
                            buffer_s[i],
                            next_chunk[i] as usize,
                            prev_level[i] as usize,
                            actions[i],
                        )
                    } else {
                        ChunkOutcome::default()
                    };
                }
            });
        }

        // Phase 2 — serial, in session order: fold outcomes into state.
        let num_traces = self.traces.len() as u32;
        #[allow(clippy::needless_range_loop)] // i indexes a dozen parallel arrays
        for i in 0..n {
            if !self.active[i] {
                self.rewards[i] = 0.0;
                continue;
            }
            let o = self.outcomes[i];
            self.rewards[i] = o.reward as f32;
            self.time_s[i] = o.new_time_s;
            self.buffer_s[i] = o.new_buffer_s;
            self.prev_level[i] = actions[i] as u8;
            self.next_chunk[i] += 1;
            self.qoe_total[i] += o.reward;
            self.rebuffer_total[i] += o.rebuffer_s;
            self.bitrate_total_mbps[i] += self.video.bitrate_mbps(actions[i]);
            self.chunks_total[i] += 1;
            let h = &mut self.tput_hist[i * HISTORY_LEN..(i + 1) * HISTORY_LEN];
            h.copy_within(1.., 0);
            h[HISTORY_LEN - 1] = o.tput_mbps as f32;
            let h = &mut self.delay_hist[i * HISTORY_LEN..(i + 1) * HISTORY_LEN];
            h.copy_within(1.., 0);
            h[HISTORY_LEN - 1] = o.delay_s as f32;
            if o.finished {
                self.sessions_completed[i] += 1;
                if self.auto_reset {
                    // Deterministic round-robin onto the next trace; no
                    // RNG, so worker count can't perturb anything.
                    self.trace_of[i] = (self.trace_of[i] + 1) % num_traces;
                    self.time_s[i] = 0.0;
                    self.buffer_s[i] = 0.0;
                    self.next_chunk[i] = 0;
                    self.prev_level[i] = 0;
                    self.tput_hist[i * HISTORY_LEN..(i + 1) * HISTORY_LEN].fill(0.0);
                    self.delay_hist[i * HISTORY_LEN..(i + 1) * HISTORY_LEN].fill(0.0);
                } else {
                    self.active[i] = false;
                }
            }
        }
        &self.rewards
    }

    /// Write the `(n × OBS_DIM)` observation matrix into `out`, reusing
    /// its capacity (allocation-free once warmed up).
    pub fn fill_observations(&self, out: &mut Tensor) {
        self.fill_observations_range(0, self.len(), out);
    }

    /// Write observations for the session range `first .. first + count`
    /// into `out` (`count × OBS_DIM`, row `off` = session `first + off`),
    /// reusing its capacity. This is the shard-sized fill the serving
    /// engine batches its stacked forwards over; each row's bits depend
    /// only on that session's state, never on the range bounds.
    pub fn fill_observations_range(&self, first: usize, count: usize, out: &mut Tensor) {
        assert!(first + count <= self.len(), "session range out of bounds");
        out.resize_shape(count, OBS_DIM);
        for off in 0..count {
            let i = first + off;
            encode_obs(
                out.row_mut(off),
                &self.video,
                &self.tput_hist[i * HISTORY_LEN..(i + 1) * HISTORY_LEN],
                &self.delay_hist[i * HISTORY_LEN..(i + 1) * HISTORY_LEN],
                self.buffer_s[i],
                self.next_chunk[i] as usize,
                self.prev_level[i] as usize,
            );
        }
    }

    // -- accessors -------------------------------------------------------

    pub fn video(&self) -> &VideoModel {
        &self.video
    }

    pub fn cfg(&self) -> &AbrConfig {
        &self.cfg
    }

    pub fn num_traces(&self) -> usize {
        self.traces.len()
    }

    /// Per-session rewards of the last `step_all`.
    pub fn rewards(&self) -> &[f32] {
        &self.rewards
    }

    /// Per-session outcomes of the last `step_all` (zeroed for sessions
    /// that were inactive).
    pub fn outcomes(&self) -> &[ChunkOutcome] {
        &self.outcomes
    }

    pub fn active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// True when every session has finished (never true with
    /// `auto_reset`).
    pub fn all_done(&self) -> bool {
        self.active.iter().all(|&a| !a)
    }

    pub fn time_s(&self, i: usize) -> f64 {
        self.time_s[i]
    }

    pub fn buffer_s(&self, i: usize) -> f64 {
        self.buffer_s[i]
    }

    pub fn next_chunk(&self, i: usize) -> usize {
        self.next_chunk[i] as usize
    }

    pub fn prev_level(&self, i: usize) -> usize {
        self.prev_level[i] as usize
    }

    /// Lifetime QoE sum of session slot `i` (across auto-resets).
    pub fn qoe_total(&self, i: usize) -> f64 {
        self.qoe_total[i]
    }

    /// Lifetime rebuffering seconds of session slot `i`.
    pub fn rebuffer_total(&self, i: usize) -> f64 {
        self.rebuffer_total[i]
    }

    /// Lifetime sum of selected bitrates (Mbit/s) of session slot `i`.
    pub fn bitrate_total_mbps(&self, i: usize) -> f64 {
        self.bitrate_total_mbps[i]
    }

    /// Lifetime chunks downloaded by session slot `i`.
    pub fn chunks_total(&self, i: usize) -> u64 {
        self.chunks_total[i]
    }

    /// Videos finished by session slot `i`.
    pub fn sessions_completed(&self, i: usize) -> u64 {
        self.sessions_completed[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_trace(mbps: f32) -> Trace {
        Trace::new("flat", 1.0, vec![mbps; 10])
    }

    #[test]
    fn step_chunk_known_values_on_flat_link() {
        // 8 Mbit/s = 10⁶ B/s; lowest level chunk = 150 000 B → 0.15 s
        // transfer + 0.08 s RTT = 0.23 s delay. All values exact.
        let video = VideoModel::constant_bitrate();
        let cfg = AbrConfig::default();
        let o = step_chunk(&video, &cfg, &flat_trace(8.0), 0.0, 0.0, 0, 0, 0);
        let tol = 1e-12;
        assert!((o.delay_s - 0.23).abs() < tol);
        // Empty buffer stalls for the whole delay.
        assert_eq!(o.rebuffer_s, o.delay_s);
        assert_eq!(o.new_buffer_s, 4.0);
        assert_eq!(o.sleep_s, 0.0);
        assert_eq!(o.reward, 0.3 - 4.3 * o.rebuffer_s);
        assert_eq!(o.new_time_s, o.delay_s);
        assert!(!o.finished);
    }

    #[test]
    fn buffer_cap_forces_sleep() {
        let video = VideoModel::constant_bitrate();
        let cfg = AbrConfig::default();
        // Buffer nearly full: 59 s. Download takes 0.23 s → drain to
        // 58.77, fill to 62.77, sleep 2.77 back to the 60 s cap.
        let o = step_chunk(&video, &cfg, &flat_trace(8.0), 100.0, 59.0, 3, 0, 0);
        assert_eq!(o.rebuffer_s, 0.0);
        assert_eq!(o.new_buffer_s, 60.0);
        assert!((o.sleep_s - 2.77).abs() < 1e-12);
        assert!((o.new_time_s - 103.0).abs() < 1e-12);
    }

    #[test]
    fn smoothness_penalty_charges_switches_both_ways() {
        let video = VideoModel::constant_bitrate();
        let cfg = AbrConfig {
            rebuf_penalty: 0.0, // isolate the smoothness term
            ..AbrConfig::default()
        };
        let up = step_chunk(&video, &cfg, &flat_trace(50.0), 0.0, 10.0, 1, 0, 5);
        assert_eq!(up.reward, 4.3 - (4.3 - 0.3));
        let down = step_chunk(&video, &cfg, &flat_trace(50.0), 0.0, 10.0, 1, 5, 0);
        assert_eq!(down.reward, 0.3 - (4.3 - 0.3));
    }

    #[test]
    fn observation_layout_and_normalization() {
        let video = VideoModel::constant_bitrate();
        let tput = [2.0f32; HISTORY_LEN];
        let delay = [1.0f32; HISTORY_LEN];
        let mut obs = [0.0f32; OBS_DIM];
        encode_obs(&mut obs, &video, &tput, &delay, 30.0, 10, 3);
        assert_eq!(obs[0], 0.2);
        assert_eq!(obs[HISTORY_LEN], 0.1);
        assert_eq!(obs[2 * HISTORY_LEN], 0.15); // 150 kB in MB
        assert_eq!(obs[2 * HISTORY_LEN + NUM_BITRATES], 3.0);
        assert_eq!(obs[2 * HISTORY_LEN + NUM_BITRATES + 1], 38.0 / 48.0);
        assert_eq!(obs[2 * HISTORY_LEN + NUM_BITRATES + 2], 0.6);
        // Past the last chunk the size columns go dark.
        encode_obs(&mut obs, &video, &tput, &delay, 30.0, 48, 3);
        assert_eq!(
            &obs[2 * HISTORY_LEN..2 * HISTORY_LEN + NUM_BITRATES],
            &[0.0; 6]
        );
    }

    #[test]
    fn sessions_finish_and_deactivate_without_auto_reset() {
        let video = VideoModel::constant_bitrate();
        let sim_traces = vec![flat_trace(8.0)];
        let mut sim = MultiSession::new(video, AbrConfig::default(), sim_traces, 2, false);
        let actions = vec![0usize; 2];
        for k in 0..CHUNK_COUNT_LOCAL {
            assert!(!sim.all_done(), "done too early at chunk {k}");
            sim.step_all(&actions);
        }
        assert!(sim.all_done());
        assert_eq!(sim.chunks_total(0), CHUNK_COUNT_LOCAL as u64);
        assert_eq!(sim.sessions_completed(1), 1);
        // Further steps are no-ops with zero reward.
        let r = sim.step_all(&actions).to_vec();
        assert_eq!(r, vec![0.0, 0.0]);
        assert_eq!(sim.chunks_total(0), CHUNK_COUNT_LOCAL as u64);
    }

    #[test]
    fn auto_reset_rolls_onto_next_trace() {
        let video = VideoModel::constant_bitrate();
        let traces = vec![flat_trace(8.0), flat_trace(4.0)];
        let mut sim = MultiSession::new(video, AbrConfig::default(), traces, 1, true);
        let actions = vec![0usize];
        for _ in 0..CHUNK_COUNT_LOCAL {
            sim.step_all(&actions);
        }
        assert!(!sim.all_done());
        assert_eq!(sim.sessions_completed(0), 1);
        assert_eq!(sim.next_chunk(0), 0);
        assert_eq!(sim.time_s(0), 0.0);
        assert_eq!(sim.buffer_s(0), 0.0);
    }

    #[test]
    fn cursor_is_bit_equal_to_a_single_session_batch() {
        let video = VideoModel::constant_bitrate();
        let cfg = AbrConfig::default();
        let mbps: Vec<f32> = (0..40).map(|t| 2.0 + (t as f32 * 0.9).sin()).collect();
        let trace = Trace::new("wavy", 1.0, mbps);
        let mut sim = MultiSession::new(video.clone(), cfg.clone(), vec![trace.clone()], 1, false);
        let mut cur = SessionCursor::new();
        let mut batch_obs = Tensor::zeros(1, OBS_DIM);
        let mut cur_obs = [0.0f32; OBS_DIM];
        let mut k = 0usize;
        while !sim.all_done() {
            sim.fill_observations(&mut batch_obs);
            cur.encode_obs(&video, &mut cur_obs);
            assert_eq!(batch_obs.row(0), &cur_obs[..], "obs diverged at chunk {k}");
            let level = k % NUM_BITRATES; // exercise every level
            let o = cur.step(&video, &cfg, &trace, level);
            sim.step_all(&[level]);
            assert_eq!(o, sim.outcomes()[0], "outcome diverged at chunk {k}");
            assert_eq!(cur.time_s().to_bits(), sim.time_s(0).to_bits());
            assert_eq!(cur.buffer_s().to_bits(), sim.buffer_s(0).to_bits());
            k += 1;
        }
        assert!(cur.done(&video));
        assert_eq!(k, CHUNK_COUNT_LOCAL);
    }

    const CHUNK_COUNT_LOCAL: usize = crate::video::CHUNK_COUNT;
}
