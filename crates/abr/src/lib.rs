//! `osa-abr` — chunk-level ABR streaming simulator and baselines
//! (DESIGN.md §1 rows 4, 6 and 11).
//!
//! The paper's entire evaluation runs inside a Pensieve-vs-BB adaptive
//! bitrate case study; this crate provides the environment side of it:
//!
//! - [`video`] — an EnvivioDash3-style video model: 48 chunks × 6
//!   bitrate levels, ~4 s chunks, deterministic VBR size table;
//! - [`sim`] — the chunk-level download simulator substituting MahiMahi
//!   (DESIGN.md §2.1): trace-driven link capacity integrated through
//!   [`osa_trace::link`], 80 ms RTT, buffer drain/fill, rebuffering, and
//!   the §3.1 linear QoE metric — both as the pure per-chunk transition
//!   [`sim::step_chunk`] and as the struct-of-arrays [`sim::MultiSession`]
//!   engine whose batched `step_all` advances thousands of concurrent
//!   sessions per `osa-runtime` pool lane, bit-identical at any worker
//!   count;
//! - [`policy`] — the [`policy::AbrPolicy`] batched decision trait with
//!   the Buffer-Based (reservoir/cushion) and Random baselines;
//! - [`env`] — [`env::AbrEnv`], the single-session [`osa_mdp::Env`]
//!   adapter RL training runs against (shares `step_chunk` with the
//!   multi-session engine, so the two are bit-equal by construction);
//! - [`eval`] — policy scoring over a trace set, including the ROADMAP's
//!   normalized score (0 = Random, 1 = BB).
//!
//! # Determinism
//!
//! Session dynamics consume no RNG: given a trace and an action sequence
//! the whole trajectory is a pure `f64` computation. Randomness enters
//! only through policies ([`policy::RandomPolicy`], sampling agents) and
//! [`env::AbrEnv::reset`] — always via an explicit caller-provided
//! [`osa_nn::rng::Rng`].
#![forbid(unsafe_code)]

pub mod env;
pub mod eval;
pub mod policy;
pub mod sim;
pub mod video;

pub use env::AbrEnv;
pub use eval::{evaluate_policy, normalized_score, PolicyScore};
pub use policy::{AbrPolicy, BufferBased, RandomPolicy};
pub use sim::{encode_obs, step_chunk, AbrConfig, ChunkOutcome, MultiSession};
pub use video::VideoModel;

/// Round-trip time the paper's emulation applies to every chunk request.
pub const RTT_MS: u32 = 80;

/// Number of bitrate levels in the video model.
pub const NUM_BITRATES: usize = 6;

/// Length of the throughput / download-time histories in the agent
/// observation (Pensieve's k = 8 past chunks).
pub const HISTORY_LEN: usize = 8;

/// Width of the flattened observation vector [`sim::encode_obs`] emits:
/// two histories, the next-chunk size at each bitrate, and three scalars
/// (buffer, chunks remaining, last bitrate).
pub const OBS_DIM: usize = 2 * HISTORY_LEN + NUM_BITRATES + 3;

/// One-stop import for downstream crates, examples, and tests.
pub mod prelude {
    pub use crate::env::AbrEnv;
    pub use crate::eval::{evaluate_policy, normalized_score, PolicyScore};
    pub use crate::policy::{AbrPolicy, BufferBased, RandomPolicy};
    pub use crate::sim::{
        encode_obs, step_chunk, AbrConfig, ChunkOutcome, MultiSession, SessionCursor,
    };
    pub use crate::video::{VideoModel, BITRATES_KBPS, CHUNK_COUNT};
    pub use crate::{HISTORY_LEN, NUM_BITRATES, OBS_DIM, RTT_MS};
}

#[cfg(test)]
mod tests {
    #[test]
    fn dimensions_are_consistent() {
        assert_eq!(super::RTT_MS, 80);
        assert_eq!(super::NUM_BITRATES, 6);
        assert_eq!(super::OBS_DIM, 25);
    }
}
