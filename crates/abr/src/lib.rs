//! `osa-abr` — chunk-level ABR streaming simulator and baselines
//! (DESIGN.md §1 rows 4, 6 and 11).
//!
//! # Contract
//!
//! This crate will provide the video-streaming environment the paper's case
//! study runs in:
//!
//! - a chunk-level discrete-event simulator substituting MahiMahi
//!   (DESIGN.md §2.1): trace-driven link capacity from [`osa_trace`], 80 ms
//!   RTT, per-chunk download accounting, buffer drain/fill, rebuffering;
//! - a size-table video model mirroring EnvivioDash3: 48 chunks × 5
//!   concatenations, 6 bitrate levels, ~4 s chunks, VBR per-chunk size
//!   variation;
//! - the linear QoE metric of §3.1 (bitrate utility − rebuffer penalty −
//!   smoothness penalty);
//! - default/baseline policies: Buffer-Based (reservoir/cushion), Random,
//!   and the extension baselines Rate-Based, BOLA, and robustMPC.
#![forbid(unsafe_code)]

/// Marks the crate as scaffolded but not yet implemented; removed once the
/// simulator lands.
pub const IMPLEMENTED: bool = false;

/// Round-trip time the paper's emulation applies to every chunk request.
pub const RTT_MS: u32 = 80;

/// Number of bitrate levels in the video model.
pub const NUM_BITRATES: usize = 6;

#[cfg(test)]
mod tests {
    #[test]
    fn scaffold_compiles() {
        assert_eq!(super::RTT_MS, 80);
        assert_eq!(super::NUM_BITRATES, 6);
    }
}
