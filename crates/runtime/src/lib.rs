//! Deterministic parallel runtime for the osa workspace.
//!
//! Every other crate in this repository is pinned by bit-exactness tests:
//! the GEMM kernels promise ascending-`k` f32 accumulation, trace corpora
//! are replayed byte-for-byte in CI, and the A2C quickstart gate retrains
//! twice and compares final parameters with `f32::to_bits`. A parallel
//! runtime is only admissible here if it is *invisible* to all of those
//! checks, which pins the design:
//!
//! - **Determinism contract.** Work is split into chunks whose boundaries
//!   depend only on the problem size, never on the number of workers, and
//!   every output element is written by exactly one lane. Reductions fold
//!   partial results in a fixed binary-tree order ([`ThreadPool::
//!   parallel_reduce`]). Consequently the bits produced by a pool with 1,
//!   2, 4, or 64 workers are identical — worker count is purely a
//!   throughput knob.
//! - **Persistent workers.** [`ThreadPool::new`] spawns its threads once;
//!   dispatch re-uses them via a `Mutex`/`Condvar` epoch hand-off. The
//!   steady-state dispatch path performs **zero heap allocations**, so
//!   pooled hot loops keep the 0-allocs/update invariant enforced by
//!   `crates/bench/tests/zero_alloc*.rs`.
//! - **Caller participation.** The dispatching thread runs lane 0 itself;
//!   a pool of `w` workers therefore owns `w - 1` OS threads. With
//!   `workers == 1` nothing is ever spawned and [`ThreadPool::
//!   parallel_for`] degenerates to a plain inline call with zero
//!   synchronization.
//! - **Graceful nesting.** A `parallel_for` issued from inside a pool
//!   task (for example a GEMM called from an A2C stream that is itself a
//!   pool task) runs inline on the current lane instead of deadlocking on
//!   the dispatch lock.
//! - **Panic hygiene.** A panicking task never poisons the pool: worker
//!   panics are caught, counted, and re-raised on the caller *after* the
//!   epoch has fully drained, so the pool stays usable afterwards.
//!
//! The pool size for library code that does not thread an explicit pool
//! through its API comes from [`global`], which honours the `OSA_THREADS`
//! environment variable (see [`thread_budget`]). Tests and benches that
//! need to sweep worker counts on one machine use [`with_pool`] to
//! override the pool seen by [`with_current`] for a scope.
//!
//! `unsafe` in this workspace is confined to this crate and to the
//! counting allocator in `osa-bench`: the two lifetime erasures below
//! (the task pointer handed to workers, and the disjoint sub-slice split
//! in [`ThreadPool::parallel_for_slice`]) are documented at the site and
//! wrapped in APIs that safe code cannot misuse.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

mod slots;
pub use slots::{LaneGuard, LaneSlots};

/// Upper bound on pool size: protects against a typo in `OSA_THREADS`
/// spawning thousands of threads, while still allowing heavy
/// oversubscription (workers ≫ cores) for torture tests.
pub const MAX_WORKERS: usize = 256;

/// A task dispatched to the pool for one epoch. The `'static` lifetime is
/// a lie told to the type system: `run_epoch` transmutes a stack-borrowed
/// closure in, and guarantees it does not return until every worker is
/// done with the reference.
type Task = &'static (dyn Fn(usize) + Sync);

struct State {
    /// Incremented once per dispatch; workers run exactly one task per
    /// epoch, so a slow worker can never miss or re-run an epoch.
    epoch: u64,
    task: Option<Task>,
    /// Workers still running the current epoch (caller lane excluded).
    active: usize,
    /// Worker lanes that panicked during the current epoch.
    panicked: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled by the caller when a new epoch (or shutdown) is posted.
    start: Condvar,
    /// Signalled by the last worker to finish an epoch.
    done: Condvar,
}

impl Shared {
    /// Lock the state, shrugging off poisoning: the mutex is only ever
    /// held for state-machine bookkeeping, never across user code, so a
    /// panicked task cannot leave the state inconsistent.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

thread_local! {
    /// Set while the current thread is executing a pool task; nested
    /// dispatches check it and run inline instead of deadlocking.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
    /// Scoped pool override installed by [`with_pool`].
    static CURRENT: Cell<Option<*const ThreadPool>> = const { Cell::new(None) };
}

/// Marks the current thread as running a pool task for the duration of
/// `f`, restoring the previous value even if `f` panics.
fn run_lane(task: &(dyn Fn(usize) + Sync), lane: usize) {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            IN_TASK.with(|f| f.set(self.0));
        }
    }
    let _reset = Reset(IN_TASK.with(|f| f.replace(true)));
    task(lane);
}

/// A persistent pool of `workers` deterministic lanes (lane 0 is the
/// dispatching thread itself). See the crate docs for the contract.
pub struct ThreadPool {
    lanes: usize,
    shared: &'static Shared,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool with `workers` lanes, spawning `workers - 1` OS
    /// threads. `workers` is clamped to `1..=MAX_WORKERS`; `workers == 1`
    /// spawns nothing and every dispatch runs inline.
    pub fn new(workers: usize) -> Self {
        let lanes = workers.clamp(1, MAX_WORKERS);
        // The shared block is leaked rather than Arc'd so that worker
        // loops and dispatch share it without reference-count traffic;
        // a process holds a handful of pools for its whole lifetime, so
        // the one-off leak on `Drop` is immaterial (and keeps `Drop`
        // panic-safe: threads that outlive a failed join still hold a
        // valid reference).
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                active: 0,
                panicked: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        }));
        let handles = (1..lanes)
            .map(|lane| {
                std::thread::Builder::new()
                    .name(format!("osa-pool-{lane}"))
                    .spawn(move || worker_loop(shared, lane))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            lanes,
            shared,
            handles,
        }
    }

    /// Number of lanes (including the caller's lane 0).
    pub fn workers(&self) -> usize {
        self.lanes
    }

    /// Run `f(lane, range)` over a partition of `0..n` into at most
    /// `workers()` contiguous ranges. Chunk boundaries depend only on `n`
    /// and the lane count; each index is visited by exactly one lane.
    ///
    /// Runs inline (lane 0, full range, no synchronization) when the pool
    /// has one lane, when `n <= 1`, or when called from inside another
    /// pool task.
    pub fn parallel_for(&self, n: usize, f: impl Fn(usize, Range<usize>) + Sync) {
        if n == 0 {
            return;
        }
        if self.lanes == 1 || n == 1 || IN_TASK.with(|t| t.get()) {
            f(0, 0..n);
            return;
        }
        let lanes = self.lanes;
        let task = move |lane: usize| {
            let range = lane_range(n, lanes, lane);
            if !range.is_empty() {
                f(lane, range);
            }
        };
        self.run_epoch(&task);
    }

    /// Split `data` into `data.len() / stride` groups of `stride`
    /// elements and hand each lane a contiguous run of whole groups as
    /// `f(lane, first_group_index, sub_slice)`. This is the mutable-output
    /// workhorse: GEMM shards output rows (`stride = n`), the trainer
    /// shards streams (`stride = 1`).
    ///
    /// # Panics
    /// If `stride == 0` or `data.len()` is not a multiple of `stride`.
    pub fn parallel_for_slice<T: Send>(
        &self,
        data: &mut [T],
        stride: usize,
        f: impl Fn(usize, usize, &mut [T]) + Sync,
    ) {
        if data.is_empty() {
            return;
        }
        assert!(stride >= 1, "parallel_for_slice: stride must be >= 1");
        assert!(
            data.len().is_multiple_of(stride),
            "parallel_for_slice: len {} not a multiple of stride {stride}",
            data.len()
        );
        let groups = data.len() / stride;
        // Raw base pointer so the Sync closure can manufacture disjoint
        // sub-slices; the wrapper restores Send/Sync judgements that raw
        // pointers drop.
        struct Base<T>(*mut T);
        unsafe impl<T: Send> Sync for Base<T> {}
        impl<T> Base<T> {
            // Method (not field) access, so the 2021-edition closure
            // captures the Sync wrapper rather than the raw pointer.
            fn ptr(&self) -> *mut T {
                self.0
            }
        }
        let base = Base(data.as_mut_ptr());
        self.parallel_for(groups, |lane, range| {
            // SAFETY: `parallel_for` hands each lane a disjoint group
            // range, so `[start, start + len)` never overlaps between
            // lanes and stays within `data` (range.end <= groups). The
            // borrow of `data` outlives the dispatch because
            // `parallel_for` blocks until every lane is done.
            let chunk = unsafe {
                std::slice::from_raw_parts_mut(
                    base.ptr().add(range.start * stride),
                    range.len() * stride,
                )
            };
            f(lane, range.start, chunk);
        });
    }

    /// Map fixed-size chunks of `0..n` through `map` in parallel, then
    /// fold the per-chunk results with `fold` in a **fixed binary-tree
    /// order** that depends only on `n` and `chunk` — never on the worker
    /// count. For non-associative f32 folds this is what makes the result
    /// bit-identical across pool sizes. Returns `None` for `n == 0`.
    ///
    /// Allocates the partial-result buffer; not intended for
    /// zero-allocation hot loops.
    ///
    /// # Panics
    /// If `chunk == 0`.
    pub fn parallel_reduce<T, M, F>(&self, n: usize, chunk: usize, map: M, fold: F) -> Option<T>
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        F: Fn(T, T) -> T,
    {
        assert!(chunk >= 1, "parallel_reduce: chunk must be >= 1");
        if n == 0 {
            return None;
        }
        let chunks = n.div_ceil(chunk);
        let mut partials: Vec<Option<T>> = Vec::with_capacity(chunks);
        partials.resize_with(chunks, || None);
        self.parallel_for_slice(&mut partials, 1, |_, first, slots| {
            for (offset, slot) in slots.iter_mut().enumerate() {
                let c = first + offset;
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(n);
                *slot = Some(map(lo..hi));
            }
        });
        let mut level: Vec<T> = partials
            .into_iter()
            .map(|p| p.expect("every chunk mapped"))
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(fold(a, b)),
                    None => next.push(a),
                }
            }
            level = next;
        }
        level.pop()
    }

    /// Post one epoch: publish the task, run lane 0 on the calling
    /// thread, wait for all workers to drain, then propagate panics.
    /// Allocation-free on the success path.
    fn run_epoch(&self, task: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the task reference is only reachable through
        // `state.task`, which is cleared below before this stack frame —
        // and with it the closure — can go away. Workers that panicked
        // still decrement `active` (see `worker_loop`), and a caller-lane
        // panic is caught so the drain loop below always runs; the
        // reference therefore never dangles.
        let task: Task = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        {
            let mut st = self.shared.lock();
            st.epoch += 1;
            st.task = Some(task);
            st.active = self.lanes - 1;
            st.panicked = 0;
            self.shared.start.notify_all();
        }
        let caller = catch_unwind(AssertUnwindSafe(|| run_lane(task, 0)));
        let panicked = {
            let mut st = self.shared.lock();
            while st.active > 0 {
                st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.task = None;
            st.panicked
        };
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if panicked > 0 {
            panic!("osa-runtime: {panicked} pool worker(s) panicked during parallel_for");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &'static Shared, lane: usize) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(task) = st.task {
                        seen = st.epoch;
                        break task;
                    }
                }
                st = shared.start.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| run_lane(task, lane)));
        let mut st = shared.lock();
        if result.is_err() {
            st.panicked += 1;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_one();
        }
    }
}

/// Balanced contiguous partition of `0..n` into `lanes` ranges: the first
/// `n % lanes` lanes get one extra element. Depends only on `n` and the
/// lane count, so the element→lane mapping is reproducible.
fn lane_range(n: usize, lanes: usize, lane: usize) -> Range<usize> {
    let base = n / lanes;
    let extra = n % lanes;
    let start = lane * base + lane.min(extra);
    let len = base + usize::from(lane < extra);
    start..start + len
}

/// The process-wide thread budget: `OSA_THREADS` if set to a positive
/// integer (clamped to [`MAX_WORKERS`]), otherwise
/// `std::thread::available_parallelism()`. This is what benches record in
/// their `hardware_threads` field, so reports taken under different
/// budgets refuse to compare.
pub fn thread_budget() -> usize {
    match std::env::var("OSA_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_WORKERS),
            _ => fallback_parallelism(),
        },
        Err(_) => fallback_parallelism(),
    }
}

fn fallback_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_WORKERS))
}

/// The lazily created process-wide pool, sized by [`thread_budget`] at
/// first use. Library code reaches it through [`with_current`].
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(thread_budget()))
}

/// Run `f` with `pool` installed as the current pool for this thread:
/// every [`with_current`] call inside `f` (e.g. from `Tensor::matmul`)
/// sees `pool` instead of [`global`]. Restores the previous override on
/// exit, including on panic. This is how tests and benches sweep worker
/// counts without re-plumbing every call site.
pub fn with_pool<R>(pool: &ThreadPool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<*const ThreadPool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CURRENT.with(|c| c.replace(Some(pool as *const ThreadPool))));
    f()
}

/// Hand the current pool — the innermost [`with_pool`] override, or
/// [`global`] — to `f`. Allocation-free.
pub fn with_current<R>(f: impl FnOnce(&ThreadPool) -> R) -> R {
    match CURRENT.with(|c| c.get()) {
        // SAFETY: the pointer was installed by `with_pool` from a live
        // shared reference and is cleared (scope-restored) before that
        // reference expires, so it is valid for the duration of this
        // call.
        Some(ptr) => f(unsafe { &*ptr }),
        None => f(global()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lane_range_partitions_exactly() {
        for n in 0..40 {
            for lanes in 1..9 {
                let mut covered = vec![0u8; n];
                let mut prev_end = 0;
                for lane in 0..lanes {
                    let r = lane_range(n, lanes, lane);
                    assert_eq!(r.start, prev_end, "contiguous: n={n} lanes={lanes}");
                    prev_end = r.end;
                    for i in r {
                        covered[i] += 1;
                    }
                }
                assert_eq!(prev_end, n);
                assert!(covered.iter().all(|&c| c == 1), "n={n} lanes={lanes}");
            }
        }
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        for workers in [1, 2, 3, 5] {
            let pool = ThreadPool::new(workers);
            let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(hits.len(), |_, range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_for_slice_writes_are_disjoint_and_complete() {
        for workers in [1, 2, 4] {
            let pool = ThreadPool::new(workers);
            let mut data = vec![0u32; 7 * 13];
            pool.parallel_for_slice(&mut data, 13, |_, first, chunk| {
                for (offset, v) in chunk.iter_mut().enumerate() {
                    *v = (first * 13 + offset) as u32;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v as usize == i));
        }
    }

    #[test]
    fn reduce_tree_is_identical_across_worker_counts() {
        // Sum a sequence whose f32 addition is order-sensitive.
        let xs: Vec<f32> = (0..997)
            .map(|i| ((i * 2654435761u64 as usize) % 1000) as f32 * 1e-3 + 1e4)
            .collect();
        let reference = ThreadPool::new(1)
            .parallel_reduce(
                xs.len(),
                64,
                |r| r.map(|i| xs[i]).fold(0.0f32, |a, b| a + b),
                |a, b| a + b,
            )
            .unwrap();
        for workers in [2, 3, 8] {
            let pool = ThreadPool::new(workers);
            let got = pool
                .parallel_reduce(
                    xs.len(),
                    64,
                    |r| r.map(|i| xs[i]).fold(0.0f32, |a, b| a + b),
                    |a, b| a + b,
                )
                .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn reduce_handles_empty_and_single() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.parallel_reduce(0, 8, |r| r.len(), |a, b| a + b), None);
        assert_eq!(
            pool.parallel_reduce(1, 8, |r| r.len(), |a, b| a + b),
            Some(1)
        );
    }

    #[test]
    fn with_pool_overrides_and_restores() {
        let pool = ThreadPool::new(3);
        with_current(|p| assert_eq!(p.workers(), global().workers()));
        with_pool(&pool, || {
            with_current(|p| assert_eq!(p.workers(), 3));
            let inner = ThreadPool::new(2);
            with_pool(&inner, || with_current(|p| assert_eq!(p.workers(), 2)));
            with_current(|p| assert_eq!(p.workers(), 3));
        });
        with_current(|p| assert_eq!(p.workers(), global().workers()));
    }

    #[test]
    fn thread_budget_is_positive() {
        assert!(thread_budget() >= 1);
    }
}
