//! Per-lane scratch storage for pool tasks.
//!
//! A pool task often needs mutable scratch (a `Workspace`, a staging
//! buffer) that would be a data race if shared and an allocation if
//! created per dispatch. [`LaneSlots`] pre-builds one value per lane;
//! inside a task each lane borrows *its own* slot through a shared
//! reference. Exclusivity is enforced at runtime with an atomic flag, so
//! the API stays safe even if a caller hands the wrong lane index: the
//! second borrower panics instead of aliasing.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

struct Slot<T> {
    busy: AtomicBool,
    value: UnsafeCell<T>,
}

/// One scratch value per pool lane, borrowable from `&self` inside tasks.
pub struct LaneSlots<T> {
    slots: Vec<Slot<T>>,
}

// SAFETY: a `&LaneSlots<T>` only hands out `&mut T` through `borrow`,
// which takes the `busy` flag with a compare-exchange first — at most one
// live guard per slot, so sending the shared reference across lanes moves
// each `T` to at most one thread at a time (hence `T: Send`, not `Sync`).
unsafe impl<T: Send> Sync for LaneSlots<T> {}

impl<T> LaneSlots<T> {
    /// Build `lanes` slots, initializing slot `i` with `init(i)`.
    pub fn new(lanes: usize, mut init: impl FnMut(usize) -> T) -> Self {
        LaneSlots {
            slots: (0..lanes)
                .map(|i| Slot {
                    busy: AtomicBool::new(false),
                    value: UnsafeCell::new(init(i)),
                })
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Exclusively borrow lane `lane`'s slot. Allocation-free.
    ///
    /// # Panics
    /// If `lane` is out of range or the slot is already borrowed.
    pub fn borrow(&self, lane: usize) -> LaneGuard<'_, T> {
        let slot = &self.slots[lane];
        assert!(
            slot.busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok(),
            "LaneSlots: lane {lane} is already borrowed"
        );
        LaneGuard { slot }
    }

    /// Direct access outside the pool, statically exclusive via `&mut`.
    pub fn get_mut(&mut self, lane: usize) -> &mut T {
        self.slots[lane].value.get_mut()
    }

    /// Tear down into the inner values, in lane order.
    pub fn into_inner(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|s| s.value.into_inner())
            .collect()
    }
}

/// Exclusive borrow of one lane's slot; released on drop.
pub struct LaneGuard<'a, T> {
    slot: &'a Slot<T>,
}

impl<T> Deref for LaneGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the busy flag guarantees this guard is the only live
        // accessor of the slot.
        unsafe { &*self.slot.value.get() }
    }
}

impl<T> DerefMut for LaneGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above — exclusive by the busy flag.
        unsafe { &mut *self.slot.value.get() }
    }
}

impl<T> Drop for LaneGuard<'_, T> {
    fn drop(&mut self) {
        self.slot.busy.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_lane_gets_its_own_value() {
        let slots = LaneSlots::new(3, |i| i * 10);
        {
            let a = slots.borrow(0);
            let b = slots.borrow(2);
            assert_eq!((*a, *b), (0, 20));
        }
        assert_eq!(slots.into_inner(), vec![0, 10, 20]);
    }

    #[test]
    #[should_panic(expected = "already borrowed")]
    fn double_borrow_panics() {
        let slots = LaneSlots::new(2, |_| 0u32);
        let _a = slots.borrow(1);
        let _b = slots.borrow(1);
    }

    #[test]
    fn borrow_is_released_on_drop() {
        let slots = LaneSlots::new(1, |_| String::from("scratch"));
        {
            let mut g = slots.borrow(0);
            g.push_str("-used");
        }
        assert_eq!(&*slots.borrow(0), "scratch-used");
    }
}
