//! Torture tests for the pool's failure modes: panicking tasks,
//! oversubscription, nesting, and reuse after a panic. These pin the
//! "panic hygiene" half of the runtime contract — a misbehaving task may
//! fail its caller, but it must never deadlock the pool, poison it for
//! the next dispatch, or skip work silently.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use osa_runtime::{LaneSlots, ThreadPool};

/// A panic on a worker lane reaches the caller as a panic (not a hang),
/// and the pool keeps working afterwards — no poisoned mutex, no stuck
/// epoch counter.
#[test]
fn worker_panic_propagates_and_pool_survives() {
    let pool = ThreadPool::new(4);
    for round in 0..3 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(64, |_, range| {
                // Index 40 lands on a worker lane (not lane 0) for 4 lanes.
                if range.contains(&40) {
                    panic!("injected failure, round {round}");
                }
            });
        }));
        let msg = *result
            .expect_err("worker panic must propagate")
            .downcast::<String>()
            .expect("panic payload");
        assert!(
            msg.contains("pool worker(s) panicked"),
            "unexpected payload: {msg}"
        );
    }
    // The pool is still fully functional after three failed epochs.
    let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
    pool.parallel_for(hits.len(), |_, range| {
        for i in range {
            hits[i].fetch_add(1, Ordering::Relaxed);
        }
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

/// A panic on the caller's own lane (lane 0) propagates with the original
/// payload, after the workers have drained.
#[test]
fn caller_lane_panic_keeps_original_payload() {
    let pool = ThreadPool::new(3);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.parallel_for(30, |lane, _| {
            if lane == 0 {
                panic!("lane zero says no");
            }
        });
    }));
    let msg = *result.expect_err("must panic").downcast::<&str>().unwrap();
    assert_eq!(msg, "lane zero says no");
    pool.parallel_for(8, |_, _| {}); // still usable
}

/// Heavy oversubscription (many more workers than this container's
/// cores) must neither deadlock nor change results.
#[test]
fn oversubscribed_pool_matches_inline_results() {
    let inline = ThreadPool::new(1);
    let wide = ThreadPool::new(32);
    let sum = |pool: &ThreadPool| {
        pool.parallel_reduce(
            10_000,
            97,
            |r| r.map(|i| (i as f32).sqrt()).fold(0.0f32, |a, b| a + b),
            |a, b| a + b,
        )
        .unwrap()
    };
    assert_eq!(sum(&inline).to_bits(), sum(&wide).to_bits());
}

/// `parallel_for` from inside a pool task runs inline on the current
/// lane: same results, no deadlock on the dispatch lock.
#[test]
fn nested_parallel_for_degrades_to_inline() {
    let pool = ThreadPool::new(4);
    let outer_hits = AtomicUsize::new(0);
    let inner_hits = AtomicUsize::new(0);
    pool.parallel_for(8, |_, outer| {
        outer_hits.fetch_add(outer.len(), Ordering::Relaxed);
        // Nested dispatch on the same pool: must run inline as lane 0
        // over the full inner range.
        pool.parallel_for(5, |lane, inner| {
            assert_eq!(lane, 0, "nested dispatch must be inline");
            assert_eq!(inner, 0..5, "nested dispatch must not be chunked");
            inner_hits.fetch_add(inner.len(), Ordering::Relaxed);
        });
    });
    assert_eq!(outer_hits.load(Ordering::Relaxed), 8);
    // One full inner pass per outer chunk; 8 outer items over 4 lanes
    // can be chunked 4 ways at most, but every chunk runs the inner loop
    // once, so the count is 5 × (number of non-empty outer chunks).
    let inner = inner_hits.load(Ordering::Relaxed);
    assert!(
        inner.is_multiple_of(5) && (5..=40).contains(&inner),
        "inner={inner}"
    );
}

/// Per-lane scratch slots hand every lane its own buffer with no
/// cross-lane aliasing, and release cleanly after a panicked epoch.
#[test]
fn lane_slots_survive_task_panics() {
    let pool = ThreadPool::new(4);
    let slots = LaneSlots::new(4, |_| Vec::<usize>::new());
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.parallel_for(16, |lane, range| {
            let mut scratch = slots.borrow(lane);
            scratch.extend(range.clone());
            if range.contains(&7) {
                panic!("mid-epoch failure");
            }
        });
    }));
    assert!(result.is_err());
    // Guards were dropped during unwinding: every slot is borrowable
    // again and together they still cover each visited index at most once.
    let mut seen = [0u8; 16];
    for lane in 0..4 {
        for &i in slots.borrow(lane).iter() {
            seen[i] += 1;
        }
    }
    assert!(seen.iter().all(|&c| c <= 1));
}
