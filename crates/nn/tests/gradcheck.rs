//! Numerical-vs-analytic gradient checks for every layer and loss
//! (acceptance criterion: max relative error < 1e-3).
//!
//! Method: central differences, `(L(θ+ε) − L(θ−ε)) / 2ε`, with ε = 1e-2 —
//! large enough that `f32` forward-pass rounding does not swamp the
//! difference, small enough that truncation error stays below tolerance
//! on these O(1)-scale problems. Agreement is judged by
//! `|a − n| ≤ rtol·(|a| + |n|) + atol`, the symmetric allclose form, with
//! rtol = 1e-3.

use osa_nn::prelude::*;

const EPS: f32 = 1e-2;
const RTOL: f32 = 1e-3;
const ATOL: f32 = 1e-4;

fn close(analytic: f32, numeric: f32) -> bool {
    (analytic - numeric).abs() <= RTOL * (analytic.abs() + numeric.abs()) + ATOL
}

/// A scalar objective over (net, input); `grad` must return the analytic
/// gradients for the same point by running forward + backward.
trait Objective {
    fn loss(&self, net: &mut Sequential, x: &Tensor) -> f32;
    /// Returns dL/d(input); parameter gradients are left stored in `net`.
    fn input_grad(&self, net: &mut Sequential, x: &Tensor) -> Tensor;
}

struct MseTo(Tensor);

impl Objective for MseTo {
    fn loss(&self, net: &mut Sequential, x: &Tensor) -> f32 {
        loss::mse(&net.forward(x), &self.0).0
    }
    fn input_grad(&self, net: &mut Sequential, x: &Tensor) -> Tensor {
        let y = net.forward(x);
        let (_, g) = loss::mse(&y, &self.0);
        net.backward(&g)
    }
}

struct CrossEntropyTo(Tensor);

impl Objective for CrossEntropyTo {
    fn loss(&self, net: &mut Sequential, x: &Tensor) -> f32 {
        loss::softmax_cross_entropy(&net.forward(x), &self.0).0
    }
    fn input_grad(&self, net: &mut Sequential, x: &Tensor) -> Tensor {
        let y = net.forward(x);
        let (_, g) = loss::softmax_cross_entropy(&y, &self.0);
        net.backward(&g)
    }
}

/// Check every parameter gradient and the input gradient of `net` against
/// central differences of the objective.
fn check_all_grads(net: &mut Sequential, x: &Tensor, objective: &dyn Objective, label: &str) {
    // Analytic pass: stores param grads in the net, returns input grad.
    let analytic_dx = objective.input_grad(net, x);

    // Collect analytic parameter gradients before we start perturbing.
    let analytic_params: Vec<Vec<f32>> = net
        .layers_params_snapshot()
        .into_iter()
        .map(|(_, g)| g)
        .collect();

    // Numeric parameter gradients.
    let mut slot = 0;
    while let Some(n_elems) = net.param_len(slot) {
        for (i, &analytic) in analytic_params[slot][..n_elems].iter().enumerate() {
            let orig = net.param_get(slot, i);
            net.param_set(slot, i, orig + EPS);
            let lp = objective.loss(net, x);
            net.param_set(slot, i, orig - EPS);
            let lm = objective.loss(net, x);
            net.param_set(slot, i, orig);
            let numeric = (lp - lm) / (2.0 * EPS);
            assert!(
                close(analytic, numeric),
                "{label}: param slot {slot} elem {i}: analytic {analytic} vs numeric {numeric}"
            );
        }
        slot += 1;
    }

    // Numeric input gradients.
    let mut xp = x.clone();
    for i in 0..x.len() {
        let orig = x.data()[i];
        xp.data_mut()[i] = orig + EPS;
        let lp = objective.loss(net, &xp);
        xp.data_mut()[i] = orig - EPS;
        let lm = objective.loss(net, &xp);
        xp.data_mut()[i] = orig;
        let numeric = (lp - lm) / (2.0 * EPS);
        let analytic = analytic_dx.data()[i];
        assert!(
            close(analytic, numeric),
            "{label}: input elem {i}: analytic {analytic} vs numeric {numeric}"
        );
    }
}

/// Test-only param introspection helpers for `Sequential`.
trait ParamAccess {
    fn layers_params_snapshot(&mut self) -> Vec<(Vec<f32>, Vec<f32>)>;
    fn param_len(&mut self, slot: usize) -> Option<usize>;
    fn param_get(&mut self, slot: usize, i: usize) -> f32;
    fn param_set(&mut self, slot: usize, i: usize, v: f32);
}

impl ParamAccess for Sequential {
    fn layers_params_snapshot(&mut self) -> Vec<(Vec<f32>, Vec<f32>)> {
        self.params_flat()
            .into_iter()
            .map(|pg| (pg.value.data().to_vec(), pg.grad.data().to_vec()))
            .collect()
    }
    fn param_len(&mut self, slot: usize) -> Option<usize> {
        self.params_flat()
            .into_iter()
            .nth(slot)
            .map(|pg| pg.value.len())
    }
    fn param_get(&mut self, slot: usize, i: usize) -> f32 {
        self.params_flat()
            .into_iter()
            .nth(slot)
            .expect("slot in range")
            .value
            .data()[i]
    }
    fn param_set(&mut self, slot: usize, i: usize, v: f32) {
        self.params_flat()
            .into_iter()
            .nth(slot)
            .expect("slot in range")
            .value
            .data_mut()[i] = v;
    }
}

fn random_tensor(rows: usize, cols: usize, scale: f32, rng: &mut Rng) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| rng.range_f32(-scale, scale))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Random probability rows bounded away from zero, for entropy checks.
fn random_prob_rows(rows: usize, cols: usize, rng: &mut Rng) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    for r in 0..rows {
        let mut sum = 0.0;
        for c in 0..cols {
            let v = 0.2 + rng.next_f32();
            t.set(r, c, v);
            sum += v;
        }
        for c in 0..cols {
            t.set(r, c, t.get(r, c) / sum);
        }
    }
    t
}

/// ReLU kinks break central differences; nudge net + input (deterministic
/// seed scan) until no pre-activation is near zero.
fn relu_safe_case(
    build: &dyn Fn(&mut Rng) -> Sequential,
    rows: usize,
    in_dim: usize,
    probe_layers: usize,
) -> (Sequential, Tensor) {
    for seed in 0..1000u64 {
        let mut rng = Rng::seed_from_u64(1000 + seed);
        let mut net = build(&mut rng);
        let x = random_tensor(rows, in_dim, 1.0, &mut rng);
        // Probe pre-activations by running prefixes of the net: a kink is
        // near zero iff some intermediate output magnitude is tiny.
        let mut safe = true;
        let mut h = x.clone();
        for li in 0..probe_layers {
            h = net.forward_one(li, &h);
            if h.data().iter().any(|v| v.abs() < 0.05) {
                safe = false;
                break;
            }
        }
        if safe {
            return (net, x);
        }
    }
    panic!("no kink-free seed found");
}

/// Test-only single-layer forward for kink probing.
trait ForwardOne {
    fn forward_one(&mut self, idx: usize, x: &Tensor) -> Tensor;
}

impl ForwardOne for Sequential {
    fn forward_one(&mut self, idx: usize, x: &Tensor) -> Tensor {
        self.layer_forward(idx, x)
    }
}

#[test]
fn dense_gradients_match_numeric() {
    let mut rng = Rng::seed_from_u64(10);
    let mut net = Sequential::new().with(Dense::new(3, 4, Init::XavierUniform, &mut rng));
    let x = random_tensor(2, 3, 1.0, &mut rng);
    let t = random_tensor(2, 4, 1.0, &mut rng);
    check_all_grads(&mut net, &x, &MseTo(t), "dense+mse");
}

#[test]
fn dense_relu_dense_gradients_match_numeric() {
    let (mut net, x) = relu_safe_case(
        &|rng| {
            Sequential::new()
                .with(Dense::new(3, 5, Init::HeUniform, rng))
                .with(ReLU::new())
                .with(Dense::new(5, 2, Init::XavierUniform, rng))
        },
        2,
        3,
        1, // probe the first Dense output (the ReLU input)
    );
    let mut rng = Rng::seed_from_u64(11);
    let t = random_tensor(2, 2, 1.0, &mut rng);
    check_all_grads(&mut net, &x, &MseTo(t), "dense+relu+dense+mse");
}

#[test]
fn conv1d_gradients_match_numeric() {
    let mut rng = Rng::seed_from_u64(12);
    let conv = Conv1d::new(2, 6, 3, 3, Init::XavierUniform, &mut rng);
    let out_dim = conv.out_dim();
    let mut net = Sequential::new().with(conv);
    let x = random_tensor(2, 12, 1.0, &mut rng);
    let t = random_tensor(2, out_dim, 1.0, &mut rng);
    check_all_grads(&mut net, &x, &MseTo(t), "conv1d+mse");
}

#[test]
fn conv1d_relu_stack_gradients_match_numeric() {
    let (mut net, x) = relu_safe_case(
        &|rng| {
            Sequential::new()
                .with(Conv1d::new(1, 8, 4, 4, Init::HeUniform, rng))
                .with(ReLU::new())
                .with(Dense::new(20, 3, Init::XavierUniform, rng))
        },
        1,
        8,
        1, // probe the Conv1d output (the ReLU input)
    );
    let mut rng = Rng::seed_from_u64(13);
    let t = random_tensor(1, 3, 1.0, &mut rng);
    check_all_grads(&mut net, &x, &MseTo(t), "conv1d+relu+dense+mse");
}

#[test]
fn softmax_layer_gradients_match_numeric() {
    let mut rng = Rng::seed_from_u64(14);
    let mut net = Sequential::new()
        .with(Dense::new(3, 4, Init::XavierUniform, &mut rng))
        .with(Softmax::new());
    let x = random_tensor(2, 3, 1.0, &mut rng);
    let t = random_prob_rows(2, 4, &mut rng);
    check_all_grads(&mut net, &x, &MseTo(t), "dense+softmax+mse");
}

#[test]
fn cross_entropy_through_net_matches_numeric() {
    let mut rng = Rng::seed_from_u64(15);
    let mut net = Sequential::new().with(Dense::new(4, 3, Init::XavierUniform, &mut rng));
    let x = random_tensor(3, 4, 1.0, &mut rng);
    let t = random_prob_rows(3, 3, &mut rng);
    check_all_grads(&mut net, &x, &CrossEntropyTo(t), "dense+cross_entropy");
}

#[test]
fn mse_input_gradient_matches_numeric() {
    let mut rng = Rng::seed_from_u64(16);
    let pred = random_tensor(3, 4, 2.0, &mut rng);
    let target = random_tensor(3, 4, 2.0, &mut rng);
    let (_, analytic) = loss::mse(&pred, &target);
    let mut p = pred.clone();
    for i in 0..p.len() {
        let orig = p.data()[i];
        p.data_mut()[i] = orig + EPS;
        let lp = loss::mse(&p, &target).0;
        p.data_mut()[i] = orig - EPS;
        let lm = loss::mse(&p, &target).0;
        p.data_mut()[i] = orig;
        let numeric = (lp - lm) / (2.0 * EPS);
        assert!(
            close(analytic.data()[i], numeric),
            "mse elem {i}: {} vs {numeric}",
            analytic.data()[i]
        );
    }
}

#[test]
fn cross_entropy_logit_gradient_matches_numeric() {
    let mut rng = Rng::seed_from_u64(17);
    let logits = random_tensor(3, 5, 2.0, &mut rng);
    let targets = random_prob_rows(3, 5, &mut rng);
    let (_, analytic) = loss::softmax_cross_entropy(&logits, &targets);
    let mut l = logits.clone();
    for i in 0..l.len() {
        let orig = l.data()[i];
        l.data_mut()[i] = orig + EPS;
        let lp = loss::softmax_cross_entropy(&l, &targets).0;
        l.data_mut()[i] = orig - EPS;
        let lm = loss::softmax_cross_entropy(&l, &targets).0;
        l.data_mut()[i] = orig;
        let numeric = (lp - lm) / (2.0 * EPS);
        assert!(
            close(analytic.data()[i], numeric),
            "cross-entropy elem {i}: {} vs {numeric}",
            analytic.data()[i]
        );
    }
}

#[test]
fn entropy_gradient_matches_numeric() {
    let mut rng = Rng::seed_from_u64(18);
    // Keep probabilities well inside (0, 1): ln is steep near 0 and the
    // clamp at 1e-12 would break differentiability.
    let probs = random_prob_rows(3, 4, &mut rng);
    let (_, analytic) = loss::entropy(&probs);
    let mut p = probs.clone();
    for i in 0..p.len() {
        let orig = p.data()[i];
        p.data_mut()[i] = orig + EPS;
        let lp = loss::entropy(&p).0;
        p.data_mut()[i] = orig - EPS;
        let lm = loss::entropy(&p).0;
        p.data_mut()[i] = orig;
        let numeric = (lp - lm) / (2.0 * EPS);
        assert!(
            close(analytic.data()[i], numeric),
            "entropy elem {i}: {} vs {numeric}",
            analytic.data()[i]
        );
    }
}

#[test]
fn branches_gradients_match_numeric() {
    // Identity-activation parts: the ReLU-fused paths are covered by the
    // dense/conv cases above, while this pins the split/concat routing
    // (column gather on forward, scatter on backward) itself.
    let mut rng = Rng::seed_from_u64(14);
    let conv = Conv1d::new(1, 6, 3, 3, Init::XavierUniform, &mut rng);
    let dense = Dense::new(2, 4, Init::XavierUniform, &mut rng);
    let merged = conv.out_dim() + dense.out_dim();
    let mut net = Sequential::new()
        .with(Branches::new(vec![conv.into(), dense.into()]))
        .with(Dense::new(merged, 3, Init::XavierUniform, &mut rng));
    let x = random_tensor(2, 8, 1.0, &mut rng);
    let t = random_tensor(2, 3, 1.0, &mut rng);
    check_all_grads(&mut net, &x, &MseTo(t), "branches+dense+mse");
}
