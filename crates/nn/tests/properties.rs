//! Randomized property-style invariant tests.
//!
//! The offline build has no `proptest` (DESIGN.md §5 substitution), so
//! these tests hand-roll the same idea: generate a few hundred random
//! cases from the workspace PRNG and assert invariants on each. Seeds are
//! fixed, so failures reproduce exactly.

use osa_nn::prelude::*;

const CASES: usize = 200;

fn random_tensor(rows: usize, cols: usize, scale: f32, rng: &mut Rng) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| rng.range_f32(-scale, scale))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Softmax rows are probability distributions: entries in (0, 1], rows sum
/// to 1, even for extreme logits.
#[test]
fn softmax_rows_always_normalize() {
    let mut rng = Rng::seed_from_u64(100);
    for case in 0..CASES {
        let rows = 1 + rng.below(4);
        let cols = 2 + rng.below(8);
        // Mix moderate and extreme scales to stress the max-subtraction.
        let scale = if case % 3 == 0 { 1e4 } else { 5.0 };
        let x = random_tensor(rows, cols, scale, &mut rng);
        let y = Softmax::new().forward(&x);
        assert!(y.is_finite(), "case {case}: non-finite softmax");
        for r in 0..rows {
            let row = y.row(r);
            assert!(
                row.iter().all(|p| (0.0..=1.0).contains(p)),
                "case {case}: entry out of [0,1]"
            );
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "case {case}: row sums to {sum}");
        }
    }
}

/// ReLU output is non-negative and fixes positive inputs.
#[test]
fn relu_nonnegative_and_identity_on_positives() {
    let mut rng = Rng::seed_from_u64(101);
    for case in 0..CASES {
        let rows = 1 + rng.below(4);
        let cols = 1 + rng.below(16);
        let x = random_tensor(rows, cols, 10.0, &mut rng);
        let y = ReLU::new().forward(&x);
        for (xi, yi) in x.data().iter().zip(y.data()) {
            assert!(*yi >= 0.0, "case {case}: negative ReLU output");
            if *xi > 0.0 {
                assert_eq!(*yi, *xi, "case {case}: positive input altered");
            } else {
                assert_eq!(*yi, 0.0, "case {case}: non-positive input not zeroed");
            }
        }
    }
}

/// Adam steps stay finite under wild gradients (huge, tiny, zero, mixed
/// sign) — the invariant the acceptance criteria name.
#[test]
fn adam_steps_stay_finite_under_extreme_gradients() {
    let mut rng = Rng::seed_from_u64(102);
    for case in 0..50 {
        let n = 1 + rng.below(32);
        let mut value = random_tensor(1, n, 1.0, &mut rng);
        let mut opt = Adam::new(0.01);
        for step in 0..100 {
            let scale: f32 = match step % 4 {
                0 => 1e6,
                1 => 1e-6,
                2 => 0.0,
                _ => 1.0,
            };
            let grad = random_tensor(1, n, scale.max(f32::MIN_POSITIVE), &mut rng);
            opt.begin_step();
            opt.update(0, &mut value, &grad);
            assert!(
                value.is_finite(),
                "case {case} step {step}: non-finite parameter"
            );
        }
    }
}

/// RMSProp shares the finiteness invariant.
#[test]
fn rmsprop_steps_stay_finite_under_extreme_gradients() {
    let mut rng = Rng::seed_from_u64(103);
    for case in 0..50 {
        let n = 1 + rng.below(32);
        let mut value = random_tensor(1, n, 1.0, &mut rng);
        let mut opt = RmsProp::new(0.01);
        for step in 0..100 {
            let grad = random_tensor(1, n, if step % 2 == 0 { 1e6 } else { 1e-3 }, &mut rng);
            opt.update(0, &mut value, &grad);
            assert!(
                value.is_finite(),
                "case {case} step {step}: non-finite parameter"
            );
        }
    }
}

/// Uniform init schemes respect their theoretical bound for arbitrary fan
/// configurations.
#[test]
fn uniform_init_respects_bounds() {
    let mut rng = Rng::seed_from_u64(104);
    for case in 0..CASES {
        let fan_in = 1 + rng.below(256);
        let fan_out = 1 + rng.below(256);
        for init in [Init::XavierUniform, Init::HeUniform] {
            let t = osa_nn::init::init_tensor(init, 4, 8, fan_in, fan_out, &mut rng);
            let limit = osa_nn::init::uniform_limit(init, fan_in, fan_out).unwrap();
            assert!(
                t.data().iter().all(|x| x.abs() <= limit),
                "case {case}: {init:?} exceeded ±{limit}"
            );
        }
    }
}

/// matmul agrees with a naive triple loop (the i-k-j ordering is an
/// optimization, not a semantic change).
#[test]
fn matmul_matches_naive_reference() {
    let mut rng = Rng::seed_from_u64(105);
    for case in 0..CASES {
        let (m, k, n) = (1 + rng.below(6), 1 + rng.below(6), 1 + rng.below(6));
        let a = random_tensor(m, k, 2.0, &mut rng);
        let b = random_tensor(k, n, 2.0, &mut rng);
        let fast = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.get(i, p) * b.get(p, j);
                }
                assert!(
                    (fast.get(i, j) - acc).abs() <= 1e-4 * (1.0 + acc.abs()),
                    "case {case}: ({i},{j}) {} vs naive {acc}",
                    fast.get(i, j)
                );
            }
        }
    }
}

/// Entropy is maximized by the uniform distribution and non-negative
/// everywhere.
#[test]
fn entropy_bounds() {
    let mut rng = Rng::seed_from_u64(106);
    for case in 0..CASES {
        let cols = 2 + rng.below(8);
        // Random distribution via normalized positives.
        let mut p = Tensor::zeros(1, cols);
        let mut sum = 0.0;
        for c in 0..cols {
            let v = 1e-3 + rng.next_f32();
            p.set(0, c, v);
            sum += v;
        }
        for c in 0..cols {
            p.set(0, c, p.get(0, c) / sum);
        }
        let (h, _) = loss::entropy(&p);
        let hmax = (cols as f32).ln();
        assert!(h >= 0.0, "case {case}: negative entropy {h}");
        assert!(h <= hmax + 1e-4, "case {case}: entropy {h} > ln({cols})");
    }
    // And the maximum is attained at uniform.
    let uniform = Tensor::from_vec(1, 6, vec![1.0 / 6.0; 6]);
    let (h, _) = loss::entropy(&uniform);
    assert!((h - (6.0f32).ln()).abs() < 1e-5);
}

/// Cross-entropy is bounded below by the target's own entropy (Gibbs), so
/// in particular it is non-negative.
#[test]
fn cross_entropy_respects_gibbs_inequality() {
    let mut rng = Rng::seed_from_u64(107);
    for case in 0..CASES {
        let cols = 2 + rng.below(6);
        let logits = random_tensor(1, cols, 5.0, &mut rng);
        let mut target = Tensor::zeros(1, cols);
        let hot = rng.below(cols);
        target.set(0, hot, 1.0);
        let (ce, _) = loss::softmax_cross_entropy(&logits, &target);
        assert!(ce >= 0.0, "case {case}: negative cross-entropy {ce}");
    }
}

/// Training dynamics sanity: a single Dense layer fits a random linear map
/// (existence of a perfect solution ⇒ loss must approach 0).
#[test]
fn dense_fits_linear_targets() {
    let mut rng = Rng::seed_from_u64(108);
    for case in 0..5 {
        let w_true = random_tensor(3, 2, 1.0, &mut rng);
        let x = random_tensor(16, 3, 1.0, &mut rng);
        let t = x.matmul(&w_true);
        let mut net = Sequential::new().with(Dense::new(3, 2, Init::XavierUniform, &mut rng));
        let mut opt = Adam::new(0.05);
        for _ in 0..300 {
            let y = net.forward(&x);
            let (_, g) = loss::mse(&y, &t);
            net.backward(&g);
            net.step(&mut opt);
        }
        let final_loss = loss::mse(&net.forward(&x), &t).0;
        assert!(final_loss < 1e-3, "case {case}: loss stuck at {final_loss}");
    }
}
