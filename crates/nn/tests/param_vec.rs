//! Tests for the flat parameter/gradient vector API and global-norm
//! gradient clipping on [`Sequential`] — the surface the `osa-mdp` A3C
//! trainer uses to sync worker replicas with the shared parameter server.
//!
//! The norm/clip tests are backed by central differences: the analytic
//! global gradient norm must match the norm of a numerically estimated
//! gradient, so a bookkeeping bug in the flat traversal (skipped slot,
//! double-counted tensor) cannot pass.

use osa_nn::prelude::*;

const EPS: f32 = 1e-2;

fn tiny_net(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from_u64(seed);
    Sequential::new()
        .with(Dense::new(4, 6, Init::XavierUniform, &mut rng))
        .with(Dense::new(6, 3, Init::XavierUniform, &mut rng))
}

fn random_tensor(rows: usize, cols: usize, rng: &mut Rng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Run forward + MSE backward so the net holds a real gradient.
fn populate_grads(net: &mut Sequential, x: &Tensor, t: &Tensor) -> f32 {
    let y = net.forward(x);
    let (l, g) = loss::mse(&y, t);
    net.backward(&g);
    l
}

#[test]
fn params_vec_round_trips_bit_exact() {
    let mut net = tiny_net(1);
    let flat = net.params_to_vec();
    assert_eq!(flat.len(), net.num_params());

    let mut other = tiny_net(2);
    assert_ne!(other.params_to_vec(), flat, "distinct seeds must differ");
    other.set_params_from_vec(&flat);
    assert_eq!(other.params_to_vec(), flat);

    // Identical parameters ⇒ identical forward pass, bit for bit.
    let mut rng = Rng::seed_from_u64(3);
    let x = random_tensor(5, 4, &mut rng);
    assert_eq!(net.forward(&x), other.forward(&x));
}

#[test]
fn grads_vec_round_trips_and_applies_through_step() {
    let mut rng = Rng::seed_from_u64(4);
    let x = random_tensor(3, 4, &mut rng);
    let t = random_tensor(3, 3, &mut rng);

    // Worker replica computes the gradient...
    let mut worker = tiny_net(5);
    populate_grads(&mut worker, &x, &t);
    let grads = worker.grads_to_vec();
    assert_eq!(grads.len(), worker.num_params());

    // ...the server applies it without ever running backward itself.
    let mut server = tiny_net(5);
    server.set_grads_from_vec(&grads);
    assert_eq!(server.grads_to_vec(), grads);
    let before = server.params_to_vec();
    server.step(&mut Sgd::new(0.1));
    let after = server.params_to_vec();
    for ((b, a), g) in before.iter().zip(&after).zip(&grads) {
        assert!((a - (b - 0.1 * g)).abs() < 1e-6);
    }
}

#[test]
#[should_panic(expected = "parameter vector too short")]
fn set_params_rejects_wrong_length() {
    let mut net = tiny_net(6);
    let n = net.num_params();
    net.set_params_from_vec(&vec![0.0; n - 1]);
}

#[test]
fn grad_global_norm_matches_central_differences() {
    let mut net = tiny_net(7);
    let mut rng = Rng::seed_from_u64(8);
    let x = random_tensor(2, 4, &mut rng);
    let t = random_tensor(2, 3, &mut rng);
    populate_grads(&mut net, &x, &t);
    let analytic_norm = net.grad_global_norm();

    // Numeric gradient of the same loss w.r.t. every parameter, via the
    // flat vector API itself (which the round-trip tests above pin down).
    let theta = net.params_to_vec();
    let mut numeric_sq = 0.0f64;
    for i in 0..theta.len() {
        let mut tp = theta.clone();
        tp[i] = theta[i] + EPS;
        net.set_params_from_vec(&tp);
        let lp = loss::mse(&net.forward(&x), &t).0;
        tp[i] = theta[i] - EPS;
        net.set_params_from_vec(&tp);
        let lm = loss::mse(&net.forward(&x), &t).0;
        let g = ((lp - lm) / (2.0 * EPS)) as f64;
        numeric_sq += g * g;
    }
    net.set_params_from_vec(&theta);
    let numeric_norm = numeric_sq.sqrt() as f32;

    let rel = (analytic_norm - numeric_norm).abs() / numeric_norm.max(1e-6);
    assert!(
        rel < 1e-2,
        "global norm mismatch: analytic {analytic_norm} vs numeric {numeric_norm}"
    );
}

#[test]
fn clip_caps_norm_and_preserves_direction() {
    let mut net = tiny_net(9);
    let mut rng = Rng::seed_from_u64(10);
    let x = random_tensor(2, 4, &mut rng);
    // A far-away target makes the gradient large enough to clip.
    let t = random_tensor(2, 3, &mut rng).map(|v| v * 100.0);
    populate_grads(&mut net, &x, &t);

    let before = net.grads_to_vec();
    let norm_before = net.grad_global_norm();
    assert!(norm_before > 1.0, "test setup: gradient too small to clip");

    let reported = net.clip_grad_global_norm(1.0);
    assert_eq!(reported, norm_before, "clip must report the pre-clip norm");
    let norm_after = net.grad_global_norm();
    assert!((norm_after - 1.0).abs() < 1e-4, "clipped norm {norm_after}");

    // Direction preserved: every component scaled by the same factor.
    let after = net.grads_to_vec();
    let scale = 1.0 / norm_before;
    for (b, a) in before.iter().zip(&after) {
        assert!((a - b * scale).abs() < 1e-6);
    }
}

#[test]
fn clip_is_noop_below_threshold() {
    let mut net = tiny_net(11);
    let mut rng = Rng::seed_from_u64(12);
    let x = random_tensor(2, 4, &mut rng);
    let t = random_tensor(2, 3, &mut rng);
    populate_grads(&mut net, &x, &t);
    let before = net.grads_to_vec();
    let norm = net.grad_global_norm();
    net.clip_grad_global_norm(norm + 1.0);
    assert_eq!(
        net.grads_to_vec(),
        before,
        "no-op clip must not touch grads"
    );
}
