//! Serialization round-trip: save → load must reproduce forward outputs
//! bit-for-bit for models containing every layer type.
//!
//! Randomized property-style coverage (the offline stand-in for proptest):
//! many random architectures and weight draws, each checked for exact
//! equality of specs and of forward-pass bits.

use osa_nn::prelude::*;

fn random_input(rows: usize, cols: usize, rng: &mut Rng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.range_f32(-2.0, 2.0)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// A network exercising every serializable layer type, with randomized
/// geometry.
fn random_full_net(rng: &mut Rng) -> (Sequential, usize) {
    let channels = 1 + rng.below(3);
    let length = 6 + rng.below(5);
    let kernel = 2 + rng.below(3);
    let filters = 1 + rng.below(6);
    let conv = Conv1d::new(channels, length, filters, kernel, Init::HeUniform, rng);
    let conv_out = conv.out_dim();
    let in_dim = conv.in_dim();
    let hidden = 1 + rng.below(12);
    let classes = 2 + rng.below(5);
    let net = Sequential::new()
        .with(conv)
        .with(ReLU::new())
        .with(Dense::new(conv_out, hidden, Init::HeNormal, rng))
        .with(ReLU::new())
        .with(Dense::new(hidden, classes, Init::XavierUniform, rng))
        .with(Softmax::new());
    (net, in_dim)
}

#[test]
fn json_roundtrip_preserves_forward_bits_for_random_models() {
    for seed in 0..50u64 {
        let mut rng = Rng::seed_from_u64(900 + seed);
        let (mut net, in_dim) = random_full_net(&mut rng);

        let text = net.to_json();
        let mut loaded = Sequential::from_json(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: load failed: {e}"));

        assert_eq!(
            net.to_spec(),
            loaded.to_spec(),
            "seed {seed}: specs differ after round-trip"
        );

        for _ in 0..3 {
            let batch = 1 + rng.below(4);
            let x = random_input(batch, in_dim, &mut rng);
            let y1 = net.forward(&x);
            let y2 = loaded.forward(&x);
            assert_eq!(
                (y1.rows(), y1.cols()),
                (y2.rows(), y2.cols()),
                "seed {seed}: shape drift"
            );
            for (a, b) in y1.data().iter().zip(y2.data()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "seed {seed}: outputs differ bitwise: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn double_roundtrip_is_stable() {
    // JSON → model → JSON must be a fixed point (same canonical text).
    let mut rng = Rng::seed_from_u64(77);
    let (net, _) = random_full_net(&mut rng);
    let once = net.to_json();
    let twice = Sequential::from_json(&once).unwrap().to_json();
    assert_eq!(once, twice);
}

#[test]
fn file_roundtrip() {
    let mut rng = Rng::seed_from_u64(88);
    let (mut net, in_dim) = random_full_net(&mut rng);
    let path = std::env::temp_dir().join(format!("osa_nn_roundtrip_{}.json", std::process::id()));
    net.save(&path).expect("save");
    let mut loaded = Sequential::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let x = random_input(2, in_dim, &mut rng);
    let y1 = net.forward(&x);
    let y2 = loaded.forward(&x);
    for (a, b) in y1.data().iter().zip(y2.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn trained_weights_survive_roundtrip() {
    // Round-tripping after training (weights far from init) is the case
    // the bench harness's model cache actually depends on.
    let mut rng = Rng::seed_from_u64(99);
    let mut net = Sequential::new()
        .with(Dense::new(2, 8, Init::HeUniform, &mut rng))
        .with(ReLU::new())
        .with(Dense::new(8, 2, Init::XavierUniform, &mut rng));
    let x = Tensor::from_rows(&[
        vec![0.0, 0.0],
        vec![0.0, 1.0],
        vec![1.0, 0.0],
        vec![1.0, 1.0],
    ]);
    let t = Tensor::from_rows(&[
        vec![1.0, 0.0],
        vec![0.0, 1.0],
        vec![0.0, 1.0],
        vec![1.0, 0.0],
    ]);
    let mut opt = Adam::new(0.05);
    for _ in 0..100 {
        let y = net.forward(&x);
        let (_, g) = loss::softmax_cross_entropy(&y, &t);
        net.backward(&g);
        net.step(&mut opt);
    }
    let mut loaded = Sequential::from_json(&net.to_json()).unwrap();
    let y1 = net.forward(&x);
    let y2 = loaded.forward(&x);
    for (a, b) in y1.data().iter().zip(y2.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn load_rejects_corrupted_documents() {
    let mut rng = Rng::seed_from_u64(111);
    let (net, _) = random_full_net(&mut rng);
    let good = net.to_json();
    // Truncations at arbitrary places must error, never panic or
    // mis-load.
    for cut in [1, good.len() / 3, good.len() - 2] {
        assert!(Sequential::from_json(&good[..cut]).is_err(), "cut {cut}");
    }
}
