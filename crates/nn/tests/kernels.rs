//! Bit-exactness contracts for the blocked GEMM kernels and fused
//! epilogues.
//!
//! The lane-group kernels in `tensor.rs` (`matmul_into`, `tmatmul_into`,
//! `matmul_t_into`, `matmul_bias_act_into`) are only allowed to change
//! *when* arithmetic happens, never *what* arithmetic happens: every
//! output element accumulates product `p` into lane `p % KLANES`
//! (ascending `p` within each lane, lanes starting from `+0.0`) and
//! folds the eight lanes with the fixed `fold8` tree. That fold order is
//! the kernel's public contract — blocking, B-panel packing, buffer
//! reuse, activation fusion, streaming-path selection, and thread count
//! are all invisible to every seeded test in the workspace. These
//! property-style tests (hand-rolled, no `proptest` offline) pin the
//! contract with `f32::to_bits` equality across random shapes —
//! including the degenerate `1×N` row-vector and `N×1` column-vector
//! cases that bypass whole blocks of the register kernel, shapes big
//! enough to engage B-panel packing, and `k ≥ 768` shapes that take the
//! streaming zero-skip path.

use osa_nn::prelude::*;
use osa_nn::tensor::{fold8, Act, KLANES};

const CASES: usize = 100;

fn random_tensor(rows: usize, cols: usize, rng: &mut Rng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.range_f32(-2.0, 2.0)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Like [`random_tensor`] but with roughly a third of entries exactly
/// `0.0` — exercises the streaming path's zero-skip compaction, which
/// must be bit-neutral.
fn sparse_tensor(rows: usize, cols: usize, rng: &mut Rng) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| {
            if rng.below(3) == 0 {
                0.0
            } else {
                rng.range_f32(-2.0, 2.0)
            }
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Random GEMM dimensions, forcing the degenerate edges every 4th case.
fn random_dims(case: usize, rng: &mut Rng) -> (usize, usize, usize) {
    // Up to 20 so full register tiles, partial tiles, and leftover
    // rows/columns all occur.
    let (mut m, mut k, mut n) = (1 + rng.below(20), 1 + rng.below(20), 1 + rng.below(20));
    match case % 4 {
        0 => m = 1, // (1×k)·(k×n): a single output row
        1 => n = 1, // (m×k)·(k×1): a single output column
        2 => k = 1, // outer product: one accumulation step per element
        _ => {}
    }
    (m, k, n)
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str, case: usize) {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "{what} shape, case {case}"
    );
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}, case {case}, elem {i}: {x} vs {y}"
        );
    }
}

/// The contract reduction: product `p` lands in lane `p % KLANES`
/// (ascending `p` per lane, lanes start at `+0.0`), folded with the
/// fixed [`fold8`] tree. Every kernel path must match this bit-for-bit.
fn lane8_dot(products: impl Iterator<Item = f32>) -> f32 {
    let mut lanes = [0.0f32; KLANES];
    for (p, prod) in products.enumerate() {
        lanes[p % KLANES] += prod;
    }
    fold8(lanes)
}

/// Naive reference: per output element, the contract lane-fold reduction.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let dot = lane8_dot((0..a.cols()).map(|p| a.get(i, p) * b.get(p, j)));
            *out.row_mut(i).get_mut(j).unwrap() = dot;
        }
    }
    out
}

/// Naive `aᵀ·b`: shapes `(k,m)ᵀ·(k,n) → (m,n)`, contract lane-fold.
fn naive_tmatmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.cols(), b.cols());
    for i in 0..a.cols() {
        for j in 0..b.cols() {
            let dot = lane8_dot((0..a.rows()).map(|p| a.get(p, i) * b.get(p, j)));
            *out.row_mut(i).get_mut(j).unwrap() = dot;
        }
    }
    out
}

/// Naive `a·bᵀ`: shapes `(m,k)·(n,k)ᵀ → (m,n)`, contract lane-fold.
fn naive_matmul_t(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let dot = lane8_dot((0..a.cols()).map(|p| a.get(i, p) * b.get(j, p)));
            *out.row_mut(i).get_mut(j).unwrap() = dot;
        }
    }
    out
}

#[test]
#[should_panic(expected = "ragged rows")]
fn from_rows_rejects_ragged_rows() {
    let _ = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
}

#[test]
fn blocked_matmul_is_bit_identical_to_the_naive_loop() {
    let mut rng = Rng::seed_from_u64(400);
    for case in 0..CASES {
        let (m, k, n) = random_dims(case, &mut rng);
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        assert_bits_eq(&a.matmul(&b), &naive_matmul(&a, &b), "matmul", case);
    }
}

#[test]
fn blocked_tmatmul_is_bit_identical_to_the_naive_loop() {
    let mut rng = Rng::seed_from_u64(401);
    for case in 0..CASES {
        let (m, k, n) = random_dims(case, &mut rng);
        let a = random_tensor(k, m, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        assert_bits_eq(&a.tmatmul(&b), &naive_tmatmul(&a, &b), "tmatmul", case);
    }
}

#[test]
fn blocked_matmul_t_is_bit_identical_to_the_naive_loop() {
    let mut rng = Rng::seed_from_u64(402);
    for case in 0..CASES {
        let (m, k, n) = random_dims(case, &mut rng);
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(n, k, &mut rng);
        assert_bits_eq(&a.matmul_t(&b), &naive_matmul_t(&a, &b), "matmul_t", case);
    }
}

/// The packed-panel path (rows ≥ 4, full `NR`-wide panels) against the
/// naive reference, at shapes chosen so the B panel, its column fringe,
/// the `MR`-row pairs, and the single-row tail are all live at once —
/// e.g. 9×21·13: packing on, one full panel + 5 fringe columns, four
/// row pairs + one leftover row, 21 = 2 full lane groups + 5-step tail.
#[test]
fn packed_panel_path_is_bit_identical_to_the_naive_loop() {
    let mut rng = Rng::seed_from_u64(406);
    let shapes = [
        (9usize, 21usize, 13usize), // panel + fringe + row tail + k tail
        (4, 8, 8),                  // minimal packing: exactly one panel
        (5, 16, 9),                 // one panel + 1 fringe column
        (32, 40, 24),               // several panels, even everything
        (4, 7, 17),                 // k below one lane group
        (3, 24, 16),                // below PACK_MIN_ROWS: unpacked tiles
    ];
    for (case, &(m, k, n)) in shapes.iter().enumerate() {
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        assert_bits_eq(&a.matmul(&b), &naive_matmul(&a, &b), "packed matmul", case);
    }
}

/// Row-vector (`1×N`) and column-vector (`N×1`) edges against the packed
/// kernel specifically: `n` wide enough for full B panels while `m = 1`
/// skips packing, and `n = 1` takes the pure edge-column dot path — each
/// threaded through one dirty reused buffer.
#[test]
fn edge_shapes_hit_the_packed_kernel_paths() {
    let mut rng = Rng::seed_from_u64(407);
    let mut out = Tensor::from_vec(3, 3, vec![f32::NAN; 9]); // poisoned start
    for case in 0..CASES {
        let k = 1 + rng.below(40);
        let n = 8 + rng.below(24); // ≥ NR: full panels exist
        let row = random_tensor(1, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        row.matmul_into(&b, &mut out);
        assert_bits_eq(&out, &naive_matmul(&row, &b), "1xN matmul", case);

        let m = 4 + rng.below(24); // ≥ PACK_MIN_ROWS rows, single column
        let a = random_tensor(m, k, &mut rng);
        let col = random_tensor(k, 1, &mut rng);
        a.matmul_into(&col, &mut out);
        assert_bits_eq(&out, &naive_matmul(&a, &col), "Nx1 matmul", case);
    }
}

/// The streaming path (`k ≥ 768`, `n ≥ 8`) with its branchless zero-skip
/// compaction must match the naive lane-fold reference bit-for-bit even
/// when the left operand is ~1/3 exact zeros — skipping a `±0.0`
/// product never changes an accumulator bit because lanes start at
/// `+0.0` and can never become `-0.0`.
#[test]
fn streaming_path_zero_skip_is_bit_neutral() {
    let mut rng = Rng::seed_from_u64(408);
    for (case, &(m, k, n)) in [(1usize, 800usize, 24usize), (3, 768, 8), (2, 1000, 13)]
        .iter()
        .enumerate()
    {
        let a = sparse_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        assert_bits_eq(&a.matmul(&b), &naive_matmul(&a, &b), "stream matmul", case);
    }
}

/// The `_into` kernels must fully overwrite a reused buffer: one dirty
/// `Tensor` is threaded through all 100 cases with shapes that never
/// match its previous contents, and each result must equal a fresh
/// allocation bit-for-bit.
#[test]
fn into_kernels_overwrite_dirty_reused_buffers() {
    let mut rng = Rng::seed_from_u64(403);
    let mut out = Tensor::from_vec(5, 7, vec![f32::NAN; 35]); // poisoned start
    for case in 0..CASES {
        let (m, k, n) = random_dims(case, &mut rng);
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        a.matmul_into(&b, &mut out);
        assert_bits_eq(&out, &a.matmul(&b), "matmul_into reuse", case);

        let bt = random_tensor(n, k, &mut rng);
        a.matmul_t_into(&bt, &mut out);
        assert_bits_eq(&out, &a.matmul_t(&bt), "matmul_t_into reuse", case);

        let at = random_tensor(k, m, &mut rng);
        at.tmatmul_into(&b, &mut out);
        assert_bits_eq(&out, &at.tmatmul(&b), "tmatmul_into reuse", case);
    }
}

/// Dirty-buffer reuse specifically through the packed-panel path: every
/// case has rows ≥ `PACK_MIN_ROWS` and `n ≥ NR` so the arena-packed
/// kernel (not just the blocked fallback) proves it overwrites rather
/// than accumulates into stale contents.
#[test]
fn packed_kernel_overwrites_dirty_reused_buffers() {
    let mut rng = Rng::seed_from_u64(409);
    let mut out = Tensor::from_vec(6, 6, vec![f32::NAN; 36]); // poisoned start
    for case in 0..CASES {
        let m = 4 + rng.below(16);
        let k = 1 + rng.below(32);
        let n = 8 + rng.below(16);
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        a.matmul_into(&b, &mut out);
        assert_bits_eq(&out, &naive_matmul(&a, &b), "packed reuse", case);
    }
}

/// Fused bias + activation epilogue == matmul, then broadcast bias add,
/// then elementwise activation — bit-for-bit, for both epilogues.
#[test]
fn fused_bias_act_matches_the_unfused_sequence() {
    let mut rng = Rng::seed_from_u64(404);
    let mut out = Tensor::default();
    for case in 0..CASES {
        let (m, k, n) = random_dims(case, &mut rng);
        let a = random_tensor(m, k, &mut rng);
        let w = random_tensor(k, n, &mut rng);
        let bias = random_tensor(1, n, &mut rng);
        let act = if case % 2 == 0 {
            Act::Relu
        } else {
            Act::Identity
        };

        let mut reference = a.matmul(&w);
        for r in 0..m {
            for (o, &bv) in reference.row_mut(r).iter_mut().zip(bias.row(0)) {
                *o = act.apply(*o + bv);
            }
        }
        a.matmul_bias_act_into(&w, &bias, act, &mut out);
        assert_bits_eq(&out, &reference, "fused bias+act", case);
    }
}

/// The kernels must be bit-identical for every pool size. Shapes here are
/// drawn large enough (`m·k·n` up to ~190k multiply-adds) that many cases
/// cross the internal parallel threshold and genuinely shard rows across
/// workers, while the `m = 1` / `n = 1` / `k = 1` edges every 4th case
/// keep exercising the inline path under an active pool. Each sweep
/// compares against the naive lane-fold reference, and a dirty shared
/// output buffer is threaded through like the reuse test above.
#[test]
fn kernels_are_bit_identical_across_worker_counts() {
    for &workers in &[1usize, 2, 4, 8] {
        let pool = osa_runtime::ThreadPool::new(workers);
        osa_runtime::with_pool(&pool, || {
            let mut rng = Rng::seed_from_u64(405);
            let mut out = Tensor::from_vec(5, 7, vec![f32::NAN; 35]); // poisoned start
            for case in 0..40 {
                let (mut m, mut k, mut n) =
                    (2 + rng.below(48), 2 + rng.below(64), 2 + rng.below(48));
                match case % 4 {
                    0 => m = 1,
                    1 => n = 1,
                    2 => k = 1,
                    _ => {}
                }
                let what = format!("pool{workers}");
                let a = random_tensor(m, k, &mut rng);
                let b = random_tensor(k, n, &mut rng);
                a.matmul_into(&b, &mut out);
                assert_bits_eq(&out, &naive_matmul(&a, &b), &format!("{what} matmul"), case);

                let bt = random_tensor(n, k, &mut rng);
                a.matmul_t_into(&bt, &mut out);
                assert_bits_eq(
                    &out,
                    &naive_matmul_t(&a, &bt),
                    &format!("{what} matmul_t"),
                    case,
                );

                let at = random_tensor(k, m, &mut rng);
                at.tmatmul_into(&b, &mut out);
                assert_bits_eq(
                    &out,
                    &naive_tmatmul(&at, &b),
                    &format!("{what} tmatmul"),
                    case,
                );
            }
        });
    }
}

/// A `Dense` with a fused ReLU must be indistinguishable from the same
/// `Dense` followed by a standalone `ReLU` layer — the refactor that
/// removed the separate layers from `ActorCritic::mlp` and the bench
/// actor relies on this.
#[test]
fn fused_dense_forward_matches_dense_then_relu_layer() {
    for seed in 0..20u64 {
        let mut rng_a = Rng::seed_from_u64(500 + seed);
        let mut rng_b = Rng::seed_from_u64(500 + seed);
        let mut shape_rng = Rng::seed_from_u64(600 + seed);
        let (m, k, n) = random_dims(seed as usize, &mut shape_rng);
        let mut fused = Dense::new(k, n, Init::HeUniform, &mut rng_a).with_act(Act::Relu);
        let mut plain = Dense::new(k, n, Init::HeUniform, &mut rng_b);
        let x = random_tensor(m, k, &mut shape_rng);
        let fused_y = fused.forward(&x);
        let plain_y = ReLU::new().forward(&plain.forward(&x));
        assert_bits_eq(&fused_y, &plain_y, "fused Dense", seed as usize);
    }
}
