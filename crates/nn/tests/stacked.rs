//! Contracts of the stacked-ensemble forward (`osa_nn::stacked`):
//!
//! 1. For Dense-only replicas the stacked path reproduces each replica's
//!    own `Sequential` forward **bit-for-bit** (same GEMM kernel, same
//!    bias/activation epilogue).
//! 2. For conv/branched towers (Pensieve-shaped) it matches to rounding
//!    (`Conv1d` seeds its accumulator with the bias; the dense lowering
//!    adds the bias in the epilogue).
//! 3. The stacked result itself is bit-identical across pool sizes
//!    {1, 2, 4, 8} and across batch regroupings — each output row depends
//!    only on its replica and its input row.

use osa_nn::prelude::*;
use osa_runtime::{with_pool, ThreadPool};

fn random_tensor(rows: usize, cols: usize, rng: &mut Rng) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    for v in t.data_mut() {
        *v = rng.range_f32(-1.0, 1.0);
    }
    t
}

fn mlp(in_dim: usize, hidden: usize, out_dim: usize, rng: &mut Rng) -> Sequential {
    Sequential::new()
        .with(Dense::new(in_dim, hidden, Init::HeUniform, rng).with_act(Act::Relu))
        .with(Dense::new(hidden, out_dim, Init::XavierUniform, rng))
}

fn tower(filters: usize, merge: usize, out_dim: usize, rng: &mut Rng) -> Sequential {
    let conv = |len: usize, rng: &mut Rng| {
        Conv1d::new(1, len, filters, 4, Init::HeUniform, rng).with_act(Act::Relu)
    };
    let branches = Branches::new(vec![
        Branch::from(conv(8, rng)),
        Branch::from(conv(8, rng)),
        Branch::from(conv(6, rng)),
        Branch::from(Dense::new(3, filters, Init::HeUniform, rng).with_act(Act::Relu)),
    ]);
    let merge_in = branches.out_dim();
    Sequential::new()
        .with(branches)
        .with(Dense::new(merge_in, merge, Init::HeUniform, rng).with_act(Act::Relu))
        .with(Dense::new(merge, out_dim, Init::XavierUniform, rng))
}

#[test]
fn dense_replicas_match_bit_for_bit() {
    let mut rng = Rng::seed_from_u64(31);
    let mut nets: Vec<Sequential> = (0..5).map(|_| mlp(12, 16, 4, &mut rng)).collect();
    let stacked = {
        let refs: Vec<&Sequential> = nets.iter().collect();
        StackedNet::from_nets(&refs).unwrap()
    };
    assert_eq!(stacked.replicas(), 5);
    assert_eq!((stacked.in_dim(), stacked.out_dim()), (12, 4));

    let x = random_tensor(3, 12, &mut rng);
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(0, 0);
    stacked.forward_into(&x, &mut ws, &mut out);
    assert_eq!((out.rows(), out.cols()), (15, 4));

    for (r, net) in nets.iter_mut().enumerate() {
        let y = net.forward(&x);
        for s in 0..3 {
            for (a, b) in out.row(r * 3 + s).iter().zip(y.row(s)) {
                assert_eq!(a.to_bits(), b.to_bits(), "replica {r} row {s}");
            }
        }
    }
}

#[test]
fn pensieve_shaped_towers_match_within_rounding() {
    let mut rng = Rng::seed_from_u64(7);
    let mut nets: Vec<Sequential> = (0..5).map(|_| tower(4, 16, 6, &mut rng)).collect();
    let stacked = {
        let refs: Vec<&Sequential> = nets.iter().collect();
        StackedNet::from_nets(&refs).unwrap()
    };
    let x = random_tensor(2, 25, &mut rng);
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(0, 0);
    stacked.forward_into(&x, &mut ws, &mut out);
    for (r, net) in nets.iter_mut().enumerate() {
        let y = net.forward(&x);
        for s in 0..2 {
            for (j, (&a, &b)) in out.row(r * 2 + s).iter().zip(y.row(s)).enumerate() {
                let scale = b.abs().max(1.0);
                assert!(
                    (a - b).abs() <= 1e-5 * scale,
                    "replica {r} row {s} col {j}: stacked {a} vs sequential {b}"
                );
            }
        }
    }
}

#[test]
fn stacked_forward_is_bit_identical_across_pools() {
    let mut rng = Rng::seed_from_u64(99);
    // Big enough that m·k·n clears the parallel threshold, so the pool
    // sweep genuinely exercises sharded dispatch.
    let nets: Vec<Sequential> = (0..5).map(|_| mlp(64, 48, 32, &mut rng)).collect();
    let refs: Vec<&Sequential> = nets.iter().collect();
    let stacked = StackedNet::from_nets(&refs).unwrap();
    let x = random_tensor(16, 64, &mut rng);

    let reference = {
        let pool = ThreadPool::new(1);
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(0, 0);
        with_pool(&pool, || stacked.forward_into(&x, &mut ws, &mut out));
        out
    };
    for workers in [2, 4, 8] {
        let pool = ThreadPool::new(workers);
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(0, 0);
        with_pool(&pool, || stacked.forward_into(&x, &mut ws, &mut out));
        for (a, b) in out.data().iter().zip(reference.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
        }
    }
}

#[test]
fn batch_rows_are_independent() {
    // Row s of a batch-4 stacked forward must equal the batch-1 forward
    // of row s alone — per-row arithmetic never depends on the batch.
    let mut rng = Rng::seed_from_u64(55);
    let nets: Vec<Sequential> = (0..3).map(|_| tower(4, 16, 6, &mut rng)).collect();
    let refs: Vec<&Sequential> = nets.iter().collect();
    let stacked = StackedNet::from_nets(&refs).unwrap();
    let x = random_tensor(4, 25, &mut rng);

    let mut ws = Workspace::new();
    let mut batched = Tensor::zeros(0, 0);
    stacked.forward_into(&x, &mut ws, &mut batched);

    for s in 0..4 {
        let mut one = Tensor::zeros(1, 25);
        one.row_mut(0).copy_from_slice(x.row(s));
        let mut out = Tensor::zeros(0, 0);
        stacked.forward_into(&one, &mut ws, &mut out);
        for r in 0..3 {
            for (a, b) in out.row(r).iter().zip(batched.row(r * 4 + s)) {
                assert_eq!(a.to_bits(), b.to_bits(), "replica {r} row {s}");
            }
        }
    }
}

#[test]
fn architecture_mismatches_are_rejected() {
    let mut rng = Rng::seed_from_u64(1);
    let a = mlp(8, 16, 4, &mut rng);
    let b = mlp(8, 12, 4, &mut rng); // different hidden width
    assert!(StackedNet::from_nets(&[&a, &b]).is_err());
    let c = Sequential::new().with(Dense::new(8, 4, Init::HeUniform, &mut rng));
    assert!(StackedNet::from_nets(&[&a, &c]).is_err());
    assert!(StackedNet::from_specs(&[]).is_err());
    // Standalone activation layers are not stackable.
    let d = Sequential::new()
        .with(Dense::new(8, 4, Init::HeUniform, &mut rng))
        .with(ReLU::new());
    assert!(StackedNet::from_nets(&[&d, &d]).is_err());
}
