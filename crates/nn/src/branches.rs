//! [`Branches`]: parallel per-feature sub-layers over disjoint column
//! ranges of one input row.
//!
//! Pensieve's actor/critic networks (SIGCOMM '17, §4.2) do not feed the
//! whole state vector through one stack: each feature group (throughput
//! history, download-time history, next-chunk sizes, scalars) gets its
//! own Conv1d or Dense head, and the flattened head outputs are
//! concatenated before the shared dense merge layer. `Branches` models
//! exactly that split-apply-concat step as a single [`Layer`], so the
//! branched architecture composes with [`crate::net::Sequential`] — and
//! therefore with the optimizer slot numbering, the workspace-threaded
//! zero-alloc path, and JSON persistence — without any special casing
//! downstream.
//!
//! Input rows are the concatenation of each part's expected input
//! (`Σ in_dim`, in part order); output rows concatenate each part's
//! output (`Σ out_dim`, same order). Parts run sequentially over
//! workspace scratch: gather the part's column slice, forward/backward
//! through the part, scatter into the joint result.

use crate::conv::Conv1d;
use crate::layer::{Dense, Layer, ParamGrad};
use crate::serialize::LayerSpec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// One parallel head inside a [`Branches`] layer. Only parameterized
/// feed-forward layers with fixed geometry make sense here, so the enum
/// is closed over [`Dense`] and [`Conv1d`] rather than boxing `dyn Layer`
/// (which could not report its input width).
pub enum Branch {
    Dense(Dense),
    Conv1d(Conv1d),
}

impl Branch {
    /// Input columns this head consumes.
    pub fn in_dim(&self) -> usize {
        match self {
            Branch::Dense(d) => d.in_dim(),
            Branch::Conv1d(c) => c.in_dim(),
        }
    }

    /// Output columns this head produces.
    pub fn out_dim(&self) -> usize {
        match self {
            Branch::Dense(d) => d.out_dim(),
            Branch::Conv1d(c) => c.out_dim(),
        }
    }

    fn as_layer_mut(&mut self) -> &mut dyn Layer {
        match self {
            Branch::Dense(d) => d,
            Branch::Conv1d(c) => c,
        }
    }

    fn spec(&self) -> LayerSpec {
        match self {
            Branch::Dense(d) => d.spec(),
            Branch::Conv1d(c) => c.spec(),
        }
    }

    /// Rebuild one head from its serialized spec. Panics on layer types
    /// that cannot be a branch; the JSON loader rejects those earlier
    /// with a proper schema error.
    pub fn from_spec(spec: &LayerSpec) -> Branch {
        match spec {
            LayerSpec::Dense { w, b, act } => {
                Branch::Dense(Dense::from_params(w.clone(), b.clone()).with_act(*act))
            }
            LayerSpec::Conv1d {
                in_channels,
                length,
                out_channels,
                kernel,
                w,
                b,
                act,
            } => Branch::Conv1d(
                Conv1d::from_params(
                    *in_channels,
                    *length,
                    *out_channels,
                    *kernel,
                    w.clone(),
                    b.clone(),
                )
                .with_act(*act),
            ),
            other => panic!("{other:?} cannot be a branch"),
        }
    }
}

impl From<Dense> for Branch {
    fn from(d: Dense) -> Self {
        Branch::Dense(d)
    }
}

impl From<Conv1d> for Branch {
    fn from(c: Conv1d) -> Self {
        Branch::Conv1d(c)
    }
}

/// Split-apply-concat over parallel heads; see the module docs.
pub struct Branches {
    parts: Vec<Branch>,
}

impl Branches {
    /// Build from heads in column order. Panics on an empty list — a
    /// zero-width layer has no meaningful geometry.
    pub fn new(parts: Vec<Branch>) -> Self {
        assert!(!parts.is_empty(), "Branches needs at least one part");
        Branches { parts }
    }

    /// Rebuild from serialized part specs (see [`LayerSpec::Branches`]).
    pub fn from_specs(specs: &[LayerSpec]) -> Self {
        Branches::new(specs.iter().map(Branch::from_spec).collect())
    }

    /// Total input width: `Σ part.in_dim()`.
    pub fn in_dim(&self) -> usize {
        self.parts.iter().map(Branch::in_dim).sum()
    }

    /// Total output width: `Σ part.out_dim()`.
    pub fn out_dim(&self) -> usize {
        self.parts.iter().map(Branch::out_dim).sum()
    }

    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }
}

impl Layer for Branches {
    fn forward_ws(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(input.cols(), self.in_dim(), "Branches input width mismatch");
        let rows = input.rows();
        // Every column range of the scratch output is written by exactly
        // one part below.
        let mut out = ws.take(rows, self.out_dim());
        let (mut in_off, mut out_off) = (0, 0);
        for part in &mut self.parts {
            let (di, dq) = (part.in_dim(), part.out_dim());
            let mut xs = ws.take(rows, di);
            for r in 0..rows {
                xs.row_mut(r)
                    .copy_from_slice(&input.row(r)[in_off..in_off + di]);
            }
            let ys = part.as_layer_mut().forward_ws(&xs, ws);
            for r in 0..rows {
                out.row_mut(r)[out_off..out_off + dq].copy_from_slice(ys.row(r));
            }
            ws.recycle(xs);
            ws.recycle(ys);
            in_off += di;
            out_off += dq;
        }
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(grad_out.cols(), self.out_dim(), "Branches grad width");
        let rows = grad_out.rows();
        let mut grad_in = ws.take(rows, self.in_dim());
        let (mut in_off, mut out_off) = (0, 0);
        for part in &mut self.parts {
            let (di, dq) = (part.in_dim(), part.out_dim());
            let mut gs = ws.take(rows, dq);
            for r in 0..rows {
                gs.row_mut(r)
                    .copy_from_slice(&grad_out.row(r)[out_off..out_off + dq]);
            }
            let gi = part.as_layer_mut().backward_ws(&gs, ws);
            for r in 0..rows {
                grad_in.row_mut(r)[in_off..in_off + di].copy_from_slice(gi.row(r));
            }
            ws.recycle(gs);
            ws.recycle(gi);
            in_off += di;
            out_off += dq;
        }
        grad_in
    }

    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        self.parts
            .iter_mut()
            .flat_map(|p| p.as_layer_mut().params())
            .collect()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamGrad<'_>)) {
        for part in &mut self.parts {
            part.as_layer_mut().visit_params(f);
        }
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Branches {
            parts: self.parts.iter().map(Branch::spec).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::net::Sequential;
    use crate::rng::Rng;
    use crate::tensor::Act;

    /// Two dense parts with hand-picked weights: part 0 doubles its
    /// column, part 1 sums its two columns with bias 1.
    fn tiny() -> Branches {
        let d0 = Dense::from_params(Tensor::from_rows(&[vec![2.0]]), Tensor::vector(vec![0.0]));
        let d1 = Dense::from_params(
            Tensor::from_rows(&[vec![1.0], vec![1.0]]),
            Tensor::vector(vec![1.0]),
        );
        Branches::new(vec![d0.into(), d1.into()])
    }

    #[test]
    fn forward_concatenates_part_outputs() {
        let mut b = tiny();
        assert_eq!((b.in_dim(), b.out_dim()), (3, 2));
        let y = b.forward(&Tensor::from_rows(&[
            vec![1.0, 10.0, 20.0],
            vec![-1.0, 0.5, 0.5],
        ]));
        assert_eq!(y.row(0), &[2.0, 31.0]);
        assert_eq!(y.row(1), &[-2.0, 2.0]);
    }

    #[test]
    fn backward_routes_gradients_to_the_owning_part() {
        let mut b = tiny();
        b.forward(&Tensor::from_rows(&[vec![1.0, 10.0, 20.0]]));
        let dx = b.backward(&Tensor::from_rows(&[vec![1.0, 3.0]]));
        // d/dx0 = 2 (part 0 weight); d/dx1 = d/dx2 = 3 (part 1 weights).
        assert_eq!(dx.row(0), &[2.0, 3.0, 3.0]);
    }

    #[test]
    fn mixed_conv_dense_branches_match_separate_layers() {
        let mut rng = Rng::seed_from_u64(11);
        let conv = Conv1d::new(1, 6, 3, 4, Init::HeUniform, &mut rng).with_act(Act::Relu);
        let dense = Dense::new(2, 4, Init::HeUniform, &mut rng).with_act(Act::Relu);
        // Clone the parts through their specs so the branched net and the
        // separate layers share identical weights.
        let mut conv_solo = match Branch::from_spec(&conv.spec()) {
            Branch::Conv1d(c) => c,
            _ => unreachable!(),
        };
        let mut dense_solo = match Branch::from_spec(&dense.spec()) {
            Branch::Dense(d) => d,
            _ => unreachable!(),
        };
        let mut b = Branches::new(vec![conv.into(), dense.into()]);

        let mut rng = Rng::seed_from_u64(12);
        let x_data: Vec<f32> = (0..2 * 8).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let x = Tensor::from_vec(2, 8, x_data);
        let y = b.forward(&x);

        let mut xc = Tensor::zeros(2, 6);
        let mut xd = Tensor::zeros(2, 2);
        for r in 0..2 {
            xc.row_mut(r).copy_from_slice(&x.row(r)[..6]);
            xd.row_mut(r).copy_from_slice(&x.row(r)[6..]);
        }
        let yc = conv_solo.forward(&xc);
        let yd = dense_solo.forward(&xd);
        for r in 0..2 {
            assert_eq!(&y.row(r)[..yc.cols()], yc.row(r));
            assert_eq!(&y.row(r)[yc.cols()..], yd.row(r));
        }
    }

    #[test]
    fn spec_roundtrip_preserves_forward_inside_sequential() {
        let mut rng = Rng::seed_from_u64(3);
        let mut net = Sequential::new()
            .with(Branches::new(vec![
                Conv1d::new(1, 8, 4, 4, Init::HeUniform, &mut rng)
                    .with_act(Act::Relu)
                    .into(),
                Dense::new(3, 4, Init::HeUniform, &mut rng)
                    .with_act(Act::Relu)
                    .into(),
            ]))
            .with(Dense::new(4 * 5 + 4, 5, Init::XavierUniform, &mut rng));
        let x = Tensor::from_vec(1, 11, (0..11).map(|i| 0.1 * i as f32).collect());
        let y1 = net.forward(&x);
        let mut rebuilt = Sequential::from_json(&net.to_json()).unwrap();
        let y2 = rebuilt.forward(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn empty_branches_rejected() {
        Branches::new(Vec::new());
    }
}
