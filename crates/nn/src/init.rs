//! Weight initialization schemes (Xavier/Glorot and He/Kaiming).
//!
//! Fans are passed explicitly rather than derived from the tensor shape:
//! a `Conv1d` weight is stored as `(out_channels × in_channels·kernel)`,
//! so its fan-in is `in_channels·kernel`, not a matrix dimension.

use crate::rng::Rng;
use crate::tensor::Tensor;

/// Initialization scheme for layer weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Init {
    /// Uniform on ±√(6 / (fan_in + fan_out)) — good default for
    /// linear/softmax outputs (Glorot & Bengio 2010).
    XavierUniform,
    /// Uniform on ±√(6 / fan_in) — good default before ReLU
    /// (He et al. 2015).
    HeUniform,
    /// Normal with σ = √(2 / fan_in).
    HeNormal,
    /// All zeros — biases.
    Zeros,
}

/// Sample a `(rows × cols)` tensor under the given scheme and fans.
pub fn init_tensor(
    init: Init,
    rows: usize,
    cols: usize,
    fan_in: usize,
    fan_out: usize,
    rng: &mut Rng,
) -> Tensor {
    match init {
        Init::XavierUniform => {
            let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
            uniform(rows, cols, limit, rng)
        }
        Init::HeUniform => {
            let limit = (6.0 / fan_in as f32).sqrt();
            uniform(rows, cols, limit, rng)
        }
        Init::HeNormal => {
            let std = (2.0 / fan_in as f32).sqrt();
            let data = (0..rows * cols).map(|_| rng.normal(0.0, std)).collect();
            Tensor::from_vec(rows, cols, data)
        }
        Init::Zeros => Tensor::zeros(rows, cols),
    }
}

/// The ±limit bound `init_tensor` draws from for the uniform schemes;
/// exposed so property tests can assert it.
pub fn uniform_limit(init: Init, fan_in: usize, fan_out: usize) -> Option<f32> {
    match init {
        Init::XavierUniform => Some((6.0 / (fan_in + fan_out) as f32).sqrt()),
        Init::HeUniform => Some((6.0 / fan_in as f32).sqrt()),
        Init::HeNormal | Init::Zeros => None,
    }
}

fn uniform(rows: usize, cols: usize, limit: f32, rng: &mut Rng) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| rng.range_f32(-limit, limit))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Rng::seed_from_u64(1);
        let t = init_tensor(Init::XavierUniform, 16, 16, 16, 16, &mut rng);
        let limit = uniform_limit(Init::XavierUniform, 16, 16).unwrap();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let mut rng = Rng::seed_from_u64(2);
        let t = init_tensor(Init::HeNormal, 100, 100, 50, 100, &mut rng);
        let var = t.data().iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / t.len() as f64;
        let expected = 2.0 / 50.0;
        assert!((var - expected).abs() < 0.2 * expected, "var {var}");
    }

    #[test]
    fn zeros_is_zeros() {
        let mut rng = Rng::seed_from_u64(3);
        let t = init_tensor(Init::Zeros, 3, 4, 3, 4, &mut rng);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }
}
