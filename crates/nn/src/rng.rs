//! Deterministic pseudo-random number generation for the whole workspace.
//!
//! The build environment is offline, so the `rand` crate is unavailable;
//! this module fills its role (DESIGN.md §5). The generator is
//! xoshiro256\*\* (Blackman & Vigna), seeded through SplitMix64 so that any
//! u64 — including 0 — expands to a full 256-bit state. Every stochastic
//! component in the workspace (weight init, policy sampling, trace
//! generation) takes `&mut Rng` explicitly; there is no global RNG, so a
//! single u64 seed reproduces experiments bit-for-bit.

/// A small, fast, seedable PRNG (xoshiro256\*\*).
///
/// Not cryptographically secure — it drives simulations and weight
/// initialization, nothing adversarial.
#[derive(Clone, Debug)]
pub struct Rng {
    state: [u64; 4],
}

/// SplitMix64 step, used only to expand seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Build a generator from a u64 seed. Distinct seeds give independent
    /// streams; the same seed always gives the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Rng { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`, built from the top 24 bits.
    pub fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`, built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)` (returns `lo` when `lo == hi`).
    ///
    /// `lo + (hi - lo) * u` with `u < 1` can still round up to exactly
    /// `hi` — e.g. when `hi == lo.next_up()`, every `u ≥ 0.5` lands on
    /// `hi` under round-to-nearest — so the result is clamped to the
    /// largest float below `hi` to keep the documented half-open
    /// contract. Trace generators divide by `hi - x` in places, so an
    /// exact `hi` here would surface as a non-finite bandwidth sample.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo <= hi);
        let x = lo + (hi - lo) * self.next_f32();
        if x >= hi {
            // max() keeps the degenerate lo == hi case at lo.
            hi.next_down().max(lo)
        } else {
            x
        }
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= n.wrapping_neg() % n {
                return hi as usize;
            }
        }
    }

    /// Standard normal sample via Box–Muller (fresh pair each call; the
    /// second value is discarded to keep the state trajectory simple).
    pub fn next_standard_normal(&mut self) -> f32 {
        // Avoid ln(0) by flipping u1 into (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos()) as f32
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.next_standard_normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Rng::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn unit_interval_bounds_and_mean() {
        let mut r = Rng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    /// Regression: `range_f32` documents `[lo, hi)`, but the naive
    /// `lo + (hi - lo) * u` rounds up to exactly `hi` for adversarial
    /// magnitude pairs. With `hi == lo.next_up()` every `u ≥ 0.5` used to
    /// land on `hi`; with a huge span the final multiply-add rounds onto
    /// `hi` as well.
    #[test]
    fn range_f32_excludes_hi_for_adversarial_pairs() {
        let adversarial: [(f32, f32); 6] = [
            (1.0e31, 1.0e31f32.next_up()),
            (-1.0e31f32.next_up(), -1.0e31),
            (16_777_216.0, 16_777_218.0), // 2^24: hi - lo spans 1 ULP
            (f32::MIN, f32::MAX),
            (0.0, f32::MIN_POSITIVE),
            (-1.0, 1.0),
        ];
        for (lo, hi) in adversarial {
            let mut r = Rng::seed_from_u64(17);
            for i in 0..10_000 {
                let x = r.range_f32(lo, hi);
                assert!(x >= lo, "draw {i}: {x} < lo {lo}");
                assert!(x < hi, "draw {i}: {x} >= hi {hi} (lo {lo})");
                assert!(x.is_finite(), "draw {i}: non-finite {x}");
            }
        }
    }

    #[test]
    fn range_f32_degenerate_interval_returns_lo() {
        let mut r = Rng::seed_from_u64(19);
        for _ in 0..100 {
            assert_eq!(r.range_f32(3.5, 3.5), 3.5);
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from_u64(11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(13);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
