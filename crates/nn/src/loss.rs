//! Loss functions: each returns `(scalar loss, gradient w.r.t. its input)`.
//!
//! All reductions average over the batch (and, for MSE, over output
//! elements), so the gradients handed back into `Sequential::backward`
//! produce batch-averaged parameter gradients. Scalar accumulation happens
//! in `f64` so the numerical gradient checks aren't drowned in `f32`
//! rounding noise.

use crate::tensor::Tensor;

/// Mean squared error over all elements: `Σ (p − t)² / (rows·cols)`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    let mut grad = Tensor::zeros(pred.rows(), pred.cols());
    let loss = mse_into(pred, target, &mut grad);
    (loss, grad)
}

/// [`mse`] writing the gradient into a caller-owned buffer — the
/// zero-alloc variant for steady-state training loops.
pub fn mse_into(pred: &Tensor, target: &Tensor, grad: &mut Tensor) -> f32 {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse shape mismatch"
    );
    let n = pred.len() as f64;
    let mut loss = 0.0f64;
    grad.resize_shape(pred.rows(), pred.cols());
    for ((g, &p), &t) in grad
        .data_mut()
        .iter_mut()
        .zip(pred.data())
        .zip(target.data())
    {
        let d = (p - t) as f64;
        loss += d * d;
        *g = (2.0 * d / n) as f32;
    }
    (loss / n) as f32
}

/// Softmax cross-entropy on *logits*, fused for numerical stability.
///
/// `targets` holds one probability distribution per row (one-hot for plain
/// classification, arbitrary for distillation/advantage-weighted targets).
/// Loss is averaged over rows; the gradient is the classic
/// `(softmax(logits) − target) / batch`.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        (logits.rows(), logits.cols()),
        (targets.rows(), targets.cols()),
        "cross-entropy shape mismatch"
    );
    let batch = logits.rows();
    let mut loss = 0.0f64;
    let mut grad = Tensor::zeros(batch, logits.cols());
    for r in 0..batch {
        let lr = logits.row(r);
        let tr = targets.row(r);
        let max = lr.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let sum_exp: f64 = lr.iter().map(|&l| ((l - max) as f64).exp()).sum();
        let lse = max as f64 + sum_exp.ln();
        let gr = grad.row_mut(r);
        for ((g, &l), &t) in gr.iter_mut().zip(lr).zip(tr) {
            let p = ((l as f64 - lse).exp()) as f32;
            *g = (p - t) / batch as f32;
            loss += t as f64 * (lse - l as f64);
        }
    }
    ((loss / batch as f64) as f32, grad)
}

/// Mean per-row Shannon entropy of probability rows, `−Σ p ln p`, with the
/// gradient w.r.t. the probabilities.
///
/// This is the A3C exploration bonus: the trainer *adds* `β·H` to the
/// objective, i.e. subtracts it from the loss, so callers negate the
/// returned gradient (or scale by `−β`) when composing. Probabilities are
/// clamped at `1e-12` so rows touching 0 stay differentiable.
pub fn entropy(probs: &Tensor) -> (f32, Tensor) {
    let batch = probs.rows() as f64;
    let mut total = 0.0f64;
    let mut grad = Tensor::zeros(probs.rows(), probs.cols());
    for (i, &p) in probs.data().iter().enumerate() {
        let p = (p as f64).max(1e-12);
        total -= p * p.ln();
        // d(−p ln p)/dp = −(ln p + 1)
        grad.data_mut()[i] = (-(p.ln() + 1.0) / batch) as f32;
    }
    ((total / batch) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_when_equal() {
        let a = Tensor::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let p = Tensor::vector(vec![1.0, 2.0]);
        let t = Tensor::vector(vec![0.0, 0.0]);
        let (l, g) = mse(&p, &t);
        assert!((l - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(g.data(), &[1.0, 2.0]); // 2 d / 2
    }

    #[test]
    fn cross_entropy_matches_neg_log_prob_for_one_hot() {
        let logits = Tensor::from_rows(&[vec![2.0, 0.5, -1.0]]);
        let target = Tensor::from_rows(&[vec![0.0, 1.0, 0.0]]);
        let (l, _) = softmax_cross_entropy(&logits, &target);
        // Reference softmax.
        let exps: Vec<f64> = [2.0f64, 0.5, -1.0].iter().map(|x| x.exp()).collect();
        let z: f64 = exps.iter().sum();
        let expected = -(exps[1] / z).ln();
        assert!((l as f64 - expected).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_is_stable_for_huge_logits() {
        let logits = Tensor::from_rows(&[vec![1e4, -1e4, 0.0]]);
        let target = Tensor::from_rows(&[vec![1.0, 0.0, 0.0]]);
        let (l, g) = softmax_cross_entropy(&logits, &target);
        assert!(l.is_finite());
        assert!(g.is_finite());
        assert!(l.abs() < 1e-3); // the target class dominates entirely
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        // Both softmax and a proper target distribution sum to 1, so the
        // logit gradient must sum to 0 per row.
        let logits = Tensor::from_rows(&[vec![0.1, -0.7, 1.3, 0.0]]);
        let target = Tensor::from_rows(&[vec![0.25; 4]]);
        let (_, g) = softmax_cross_entropy(&logits, &target);
        let sum: f32 = g.row(0).iter().sum();
        assert!(sum.abs() < 1e-6);
    }

    #[test]
    fn entropy_of_uniform_is_ln_n() {
        let p = Tensor::from_rows(&[vec![0.25; 4]]);
        let (h, _) = entropy(&p);
        assert!((h - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn entropy_of_deterministic_is_zero() {
        let p = Tensor::from_rows(&[vec![1.0, 0.0, 0.0]]);
        let (h, g) = entropy(&p);
        assert!(h.abs() < 1e-5);
        assert!(g.is_finite());
    }
}
