//! [`QuantStacked`]: int8 post-training quantization of a lowered
//! ensemble — train f32, serve quantized.
//!
//! The serving path's batch-1 forward is memory-bound on f32 weights
//! (the Pensieve actor streams ~0.9 MB per decision); storing weights as
//! `i8` cuts that traffic 4×. This module quantizes a [`StackedNet`]
//! (the lowered, replica-stacked form every serving surface already
//! uses) with the classic post-training recipe:
//!
//! - **per-output-channel symmetric weights**: each output channel `j`
//!   of each replica gets its own scale `w_scale = max|w_:,j| / 127`,
//!   `wq = round(w / w_scale)` clamped to `[-127, 127]`;
//! - **per-tensor activation scales**: each layer's input scale
//!   `in_scale = max|x| / 127` is recorded by running the f32 net over a
//!   calibration split (the caller passes validation observations);
//! - **i32 accumulation**: the kernel computes
//!   `acc = Σ_p xq[p] · wq[p]` in `i32`. Integer addition is
//!   associative, so the accumulated value is **exactly** the same for
//!   any vectorization, blocking, or worker count — a determinism
//!   guarantee even stronger than the f32 kernels' fixed lane-fold
//!   order (`tensor::KLANES`), and the reason the quantized path needs
//!   no fold-order contract of its own;
//! - **f32 dequant epilogue**: `y = act(acc · w_scale · in_scale + b)`
//!   with the f32 bias added after the sum, mirroring the stacked f32
//!   epilogue.
//!
//! Quantized activations are stored widened to `i16` (values still in
//! `[-127, 127]`): the measured `i16 × i8 → i32` dot is ~40% faster
//! than `i8 × i8` here because the kernel skips one sign-extension per
//! operand load, and `k ≤ 16·2¹⁶` rows cannot overflow (`127·127·k`
//! stays far below `i32::MAX` for every geometry this engine builds).
//!
//! Rounding is ties-to-even (banker's rounding) everywhere — the rule
//! is part of the contract because switch-fidelity tests pin decisions
//! across precisions, and it is chosen deliberately for the hot path:
//! ties-to-even is the hardware's native FP rounding mode, which lets
//! the activation-quantize pass extract rounded integers with the
//! [`ROUND_MAGIC`] bit trick instead of a scalar float→int cast per
//! element. `f32::round`'s half-away-from-zero semantics would cost a
//! libm call per element (measured ~2× on the whole quantized forward —
//! activation quantization is a per-layer, per-element pass).

use crate::stacked::StackedNet;
use crate::tensor::{par_rows, Act, Tensor};
use crate::workspace::Workspace;

/// Symmetric int8 quantization of one value: `round_ties_even(x /
/// scale)` clamped to `[-127, 127]`. `scale` must be positive and
/// finite. See the module docs for why ties-to-even is the contract.
#[inline]
pub fn quantize_symmetric(x: f32, scale: f32) -> i8 {
    let q = (x / scale).round_ties_even();
    q.clamp(-127.0, 127.0) as i8
}

/// Reduction depth at which the transposed-dot kernel overtakes the
/// broadcast kernel. Short reductions (the stacked branch layer's
/// k = 25) drown in per-dot loop overhead, so they run row-broadcast
/// axpy instead; deep reductions (the merge layer's k = 1792) vectorize
/// best as a straight `i16 × i8` streaming dot. The threshold also
/// guards the Wide kernel's exactness bound: it accumulates integer
/// values in f32, which is exact while every partial sum stays below
/// 2²⁴, i.e. while `in_dim · 127² < 2²⁴` (`in_dim ≤ 1040`).
const DEEP_MIN_K: usize = 256;

/// How one quantized layer stores weights and runs its kernel. Both
/// layouts produce the **same exact integer sums** — the choice is
/// purely about which loop shape vectorizes for the layer's geometry.
enum QuantLayout {
    /// `(replica, out, in)` — each output channel's weights contiguous,
    /// served by the streaming [`dot_q`]. Chosen when
    /// `in_dim >= DEEP_MIN_K`.
    Deep,
    /// `(replica, in, out)` — each input row's weights contiguous,
    /// served by the broadcast axpy kernel: each activation is
    /// broadcast across its whole weight row and accumulated straight
    /// into the f32 output row. Every product and partial sum is an
    /// integer below 2²⁴ (guarded by [`DEEP_MIN_K`]), so the f32
    /// accumulation is exact and order-free, the same determinism
    /// guarantee as i32. Zero activations are skipped outright — an
    /// exact shortcut that pays off on post-ReLU rows.
    Wide,
}

/// One quantized lowered layer.
struct QuantLayer {
    in_dim: usize,
    out_dim: usize,
    act: Act,
    /// Per-tensor input activation scale for this layer (from
    /// calibration).
    in_scale: f32,
    /// Quantized weights in the layout `layout` prescribes.
    wq: Vec<i8>,
    layout: QuantLayout,
    /// `replicas · out_dim` dequantization factors
    /// `w_scale[r][j] · in_scale`.
    deq: Vec<f32>,
    /// `replicas × out_dim` f32 bias.
    b: Tensor,
}

/// Reusable buffers for [`QuantStacked::forward_into`] — allocation-free
/// once warm, like [`Workspace`] for the f32 path.
#[derive(Default)]
pub struct QuantScratch {
    /// Quantized activations for the current layer, `rows × in_dim`,
    /// i8 values widened to `i16` (see the module docs).
    xq: Vec<i16>,
    /// f32 activations flowing between layers.
    cur: Tensor,
    next: Tensor,
}

impl QuantScratch {
    pub fn new() -> Self {
        QuantScratch::default()
    }
}

/// An int8-quantized [`StackedNet`]: same replica-major layout, same
/// `forward_into` shape contract, ~4× smaller weights.
pub struct QuantStacked {
    replicas: usize,
    layers: Vec<QuantLayer>,
}

impl QuantStacked {
    /// Quantize `net`, calibrating per-layer activation scales by
    /// running the f32 forward over `calib` (`rows × in_dim`,
    /// validation-split observations).
    ///
    /// Deterministic: scales are max-abs reductions (order-free) over a
    /// deterministic f32 forward, so identical inputs give bit-identical
    /// quantized nets on every run and worker count.
    pub fn from_stacked(net: &StackedNet, calib: &Tensor, ws: &mut Workspace) -> QuantStacked {
        assert!(calib.rows() > 0, "calibration split must be non-empty");
        assert_eq!(calib.cols(), net.in_dim(), "calibration width mismatch");
        let replicas = net.replicas();
        let batch = calib.rows();
        // Replicate the calibration rows replica-major, then walk the
        // f32 layers, recording each layer's input max-abs.
        let mut cur = ws.take(replicas * batch, net.in_dim());
        for rep in 0..replicas {
            for s in 0..batch {
                cur.row_mut(rep * batch + s).copy_from_slice(calib.row(s));
            }
        }
        let mut layers = Vec::with_capacity(net.layers_internal().len());
        for layer in net.layers_internal() {
            let in_scale = activation_scale(cur.data());
            let mut next = ws.take(replicas * batch, layer.out_dim);
            layer.forward(batch, &cur, &mut next);
            ws.recycle(std::mem::replace(&mut cur, next));
            layers.push(quantize_layer(layer, replicas, in_scale));
        }
        ws.recycle(cur);
        QuantStacked { replicas, layers }
    }

    pub fn replicas(&self) -> usize {
        self.replicas
    }

    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty net").out_dim
    }

    /// The calibrated per-layer input activation scales, first layer
    /// first.
    pub fn activation_scales(&self) -> Vec<f32> {
        self.layers.iter().map(|l| l.in_scale).collect()
    }

    /// Bytes of quantized weight storage (the serving working set the
    /// int8 path streams instead of f32 weights).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.wq.len()).sum()
    }

    /// Forward `x` (`batch × in_dim`) through every replica:
    /// `out` becomes `(replicas·batch) × out_dim`, replica-major —
    /// the same shape contract as [`StackedNet::forward_into`].
    /// Allocation-free once `scratch` and `out` are warm.
    pub fn forward_into(&self, x: &Tensor, scratch: &mut QuantScratch, out: &mut Tensor) {
        assert_eq!(x.cols(), self.in_dim(), "quant input width mismatch");
        let (r, batch) = (self.replicas, x.rows());
        let m = r * batch;
        scratch.cur.resize_shape(m, self.in_dim());
        for rep in 0..r {
            for s in 0..batch {
                scratch
                    .cur
                    .row_mut(rep * batch + s)
                    .copy_from_slice(x.row(s));
            }
        }
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            if li == last {
                layer.forward(batch, &scratch.cur, &mut scratch.xq, out);
            } else {
                layer.forward(batch, &scratch.cur, &mut scratch.xq, &mut scratch.next);
                std::mem::swap(&mut scratch.cur, &mut scratch.next);
            }
        }
    }
}

/// Per-tensor activation scale: `max|x| / 127`, with an all-zero (or
/// empty) tensor falling back to scale 1.0.
fn activation_scale(xs: &[f32]) -> f32 {
    let maxabs = xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if maxabs > 0.0 {
        maxabs / 127.0
    } else {
        1.0
    }
}

/// Quantize one lowered layer: per-output-channel symmetric weight
/// scales within each replica block, `i8` storage in the layout the
/// layer's kernel wants, fused dequant factors.
fn quantize_layer(
    layer: &crate::stacked::StackedLayer,
    replicas: usize,
    in_scale: f32,
) -> QuantLayer {
    let (ind, outd) = (layer.in_dim, layer.out_dim);
    let mut deq = vec![0.0f32; replicas * outd];
    let mut scales = vec![0.0f32; replicas * outd];
    for rep in 0..replicas {
        for j in 0..outd {
            let mut maxabs = 0.0f32;
            for i in 0..ind {
                maxabs = maxabs.max(layer.w.get(rep * ind + i, j).abs());
            }
            let w_scale = if maxabs > 0.0 { maxabs / 127.0 } else { 1.0 };
            scales[rep * outd + j] = w_scale;
            deq[rep * outd + j] = w_scale * in_scale;
        }
    }
    let (layout, wq) = if ind >= DEEP_MIN_K {
        let mut wq = vec![0i8; replicas * outd * ind];
        for rep in 0..replicas {
            for j in 0..outd {
                let block = &mut wq[(rep * outd + j) * ind..(rep * outd + j + 1) * ind];
                for (i, q) in block.iter_mut().enumerate() {
                    *q = quantize_symmetric(layer.w.get(rep * ind + i, j), scales[rep * outd + j]);
                }
            }
        }
        (QuantLayout::Deep, wq)
    } else {
        let mut wq = vec![0i8; replicas * ind * outd];
        for rep in 0..replicas {
            for i in 0..ind {
                let row = &mut wq[(rep * ind + i) * outd..(rep * ind + i + 1) * outd];
                for (j, q) in row.iter_mut().enumerate() {
                    *q = quantize_symmetric(layer.w.get(rep * ind + i, j), scales[rep * outd + j]);
                }
            }
        }
        (QuantLayout::Wide, wq)
    };
    QuantLayer {
        in_dim: ind,
        out_dim: outd,
        act: layer.act,
        in_scale,
        wq,
        layout,
        deq,
        b: layer.b.clone(),
    }
}

/// `i16 × i8 → i32` dot product. Plain iterator form — the LLVM loop
/// vectorizer turns this into wide sign-extend + multiply-accumulate;
/// measured faster than manual lane blocking here. Any vectorization is
/// fine: i32 addition is associative, so the result is exact and
/// order-free.
#[inline(always)]
fn dot_q(a: &[i16], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// 1.5 · 2²³. Adding it to an f32 whose magnitude is ≤ 2²² forces the
/// hardware's round-to-nearest-even into the low mantissa bits, so the
/// rounded integer can be read back with bit masking — no float→int
/// cast. The cast is the expensive part: Rust's saturating `as i16`
/// compiles to a scalar per-element sequence the loop vectorizer
/// refuses, measured ~12× slower than this bit extraction on the
/// activation-quantize pass. The result is **exactly**
/// `round_ties_even` for every finite input in range, so the module's
/// rounding contract is unchanged.
const ROUND_MAGIC: f32 = 12_582_912.0;

impl QuantLayer {
    /// `out = act(dequant(xq · Wq) + b)` for every stacked row;
    /// `x` is `(R·batch) × in_dim` replica-major f32.
    fn forward(&self, batch: usize, x: &Tensor, xq: &mut Vec<i16>, out: &mut Tensor) {
        let (ind, outd) = (self.in_dim, self.out_dim);
        let m = x.rows();
        debug_assert_eq!(x.cols(), ind);
        // Quantize this layer's input activations once, up front: clamp,
        // then round via ROUND_MAGIC bit extraction. The 23-bit mantissa
        // field of `clamped + 1.5·2²³` holds `2²² + round(clamped)`.
        xq.resize(m * ind, 0);
        let inv = 1.0 / self.in_scale;
        for (q, &v) in xq.iter_mut().zip(x.data()) {
            let r = (v * inv).clamp(-127.0, 127.0) + ROUND_MAGIC;
            *q = ((r.to_bits() & 0x7F_FFFF) as i32 - (1 << 22)) as i16;
        }
        out.resize_shape(m, outd);
        let (xq, wq, deq, b, act) = (&*xq, &self.wq, &self.deq, &self.b, self.act);
        // Row sharding is free to vary: every output element is an exact
        // i32 sum plus a per-element epilogue, so any split is
        // bit-identical.
        par_rows(out.data_mut(), m, outd, m * ind * outd, |rows, o| {
            for (dr, orow) in o.chunks_exact_mut(outd).enumerate() {
                let row = rows.start + dr;
                let rep = row / batch;
                let xrow = &xq[row * ind..(row + 1) * ind];
                let brow = b.row(rep);
                match self.layout {
                    QuantLayout::Deep => {
                        for (j, ov) in orow.iter_mut().enumerate() {
                            let wrow = &wq[(rep * outd + j) * ind..(rep * outd + j + 1) * ind];
                            let acc = dot_q(xrow, wrow);
                            *ov = act.apply(acc as f32 * deq[rep * outd + j] + brow[j]);
                        }
                    }
                    QuantLayout::Wide => {
                        // Broadcast axpy with integer-valued f32
                        // accumulation in the output row itself — exact
                        // below 2²⁴ (see QuantLayout::Wide), so no i32
                        // scratch row is needed.
                        orow.fill(0.0);
                        let wrep = &wq[rep * ind * outd..(rep + 1) * ind * outd];
                        for (p, &xv) in xrow.iter().enumerate() {
                            // Exact skip: a zero activation adds
                            // nothing, and post-ReLU rows are rich in
                            // zeros.
                            if xv == 0 {
                                continue;
                            }
                            let xv = xv as f32;
                            let wrow = &wrep[p * outd..(p + 1) * outd];
                            for (o, &w) in orow.iter_mut().zip(wrow) {
                                *o += xv * w as f32;
                            }
                        }
                        let drep = &deq[rep * outd..(rep + 1) * outd];
                        for ((o, &d), &bv) in orow.iter_mut().zip(drep).zip(brow) {
                            *o = act.apply(*o * d + bv);
                        }
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layer::Dense;
    use crate::net::Sequential;
    use crate::rng::Rng;

    fn small_net(seed: u64) -> Sequential {
        let mut rng = Rng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(12, 16, Init::HeUniform, &mut rng).with_act(Act::Relu));
        net.push(Dense::new(16, 4, Init::HeUniform, &mut rng));
        net
    }

    fn calib_rows(seed: u64, rows: usize, cols: usize) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor::from_rows(
            &(0..rows)
                .map(|_| (0..cols).map(|_| rng.next_f32() * 2.0 - 1.0).collect())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn quantized_forward_tracks_f32_within_quant_error() {
        let nets: Vec<Sequential> = (0..3).map(small_net).collect();
        let refs: Vec<&Sequential> = nets.iter().collect();
        let stacked = StackedNet::from_nets(&refs).expect("stack");
        let mut ws = Workspace::new();
        let calib = calib_rows(7, 32, 12);
        let q = QuantStacked::from_stacked(&stacked, &calib, &mut ws);
        let x = calib_rows(8, 5, 12);
        let mut yf = Tensor::zeros(0, 0);
        stacked.forward_into(&x, &mut ws, &mut yf);
        let mut scratch = QuantScratch::new();
        let mut yq = Tensor::zeros(0, 0);
        q.forward_into(&x, &mut scratch, &mut yq);
        assert_eq!((yq.rows(), yq.cols()), (yf.rows(), yf.cols()));
        let scale = yf.data().iter().fold(1.0f32, |m, &v| m.max(v.abs()));
        for (&a, &b) in yq.data().iter().zip(yf.data()) {
            assert!(
                (a - b).abs() <= 0.05 * scale,
                "quantized output drifted: {a} vs {b} (scale {scale})"
            );
        }
    }

    #[test]
    fn per_channel_scales_make_row_scaling_exact() {
        // Scaling one output channel's weights by a power of two scales
        // its quantized output exactly — per-channel scales absorb it.
        let mut rng = Rng::seed_from_u64(3);
        let w: Vec<Vec<f32>> = (0..6)
            .map(|_| (0..8).map(|_| rng.next_f32() - 0.5).collect())
            .collect();
        let mut w2 = w.clone();
        for v in &mut w2[2] {
            *v *= 4.0;
        }
        let build = |wrows: &[Vec<f32>]| {
            let mut net = Sequential::new();
            let mut wt = Tensor::zeros(8, 6);
            for (j, row) in wrows.iter().enumerate() {
                for (i, &v) in row.iter().enumerate() {
                    wt.set(i, j, v);
                }
            }
            net.push(Dense::from_params(wt, Tensor::zeros(1, 6)));
            net
        };
        let (n1, n2) = (build(&w), build(&w2));
        let s1 = StackedNet::from_nets(&[&n1]).expect("stack");
        let s2 = StackedNet::from_nets(&[&n2]).expect("stack");
        let mut ws = Workspace::new();
        let calib = calib_rows(9, 16, 8);
        let q1 = QuantStacked::from_stacked(&s1, &calib, &mut ws);
        let q2 = QuantStacked::from_stacked(&s2, &calib, &mut ws);
        let x = calib_rows(10, 3, 8);
        let (mut y1, mut y2) = (Tensor::zeros(0, 0), Tensor::zeros(0, 0));
        let mut scratch = QuantScratch::new();
        q1.forward_into(&x, &mut scratch, &mut y1);
        q2.forward_into(&x, &mut scratch, &mut y2);
        for r in 0..y1.rows() {
            for c in 0..y1.cols() {
                let (a, b) = (y1.get(r, c), y2.get(r, c));
                let expect = if c == 2 { a * 4.0 } else { a };
                assert_eq!(
                    expect.to_bits(),
                    b.to_bits(),
                    "channel {c}: {a} scaled vs {b}"
                );
            }
        }
    }

    #[test]
    fn saturation_clamps_to_i8_range() {
        assert_eq!(quantize_symmetric(1e6, 1.0), 127);
        assert_eq!(quantize_symmetric(-1e6, 1.0), -127);
        assert_eq!(quantize_symmetric(126.5, 1.0), 126); // ties to even
        assert_eq!(quantize_symmetric(-126.5, 1.0), -126);
        assert_eq!(quantize_symmetric(126.75, 1.0), 127);
        assert_eq!(quantize_symmetric(127.5, 1.0), 127); // clamp after round
        assert_eq!(quantize_symmetric(0.0, 1.0), 0);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_a_step() {
        let mut rng = Rng::seed_from_u64(21);
        for _ in 0..200 {
            let x = (rng.next_f32() - 0.5) * 10.0;
            let scale = 10.0 / 127.0 * 0.5; // covers |x| ≤ 5 exactly
            let q = quantize_symmetric(x, scale);
            let back = q as f32 * scale;
            assert!(
                (x - back).abs() <= scale * 0.5 + 1e-6,
                "round trip {x} -> {q} -> {back} (step {scale})"
            );
        }
    }

    #[test]
    fn calibrated_scales_are_deterministic_across_seeds_and_repeats() {
        for seed in 0..50u64 {
            let nets: Vec<Sequential> = (0..2).map(|i| small_net(seed * 100 + i)).collect();
            let refs: Vec<&Sequential> = nets.iter().collect();
            let stacked = StackedNet::from_nets(&refs).expect("stack");
            let mut ws = Workspace::new();
            let calib = calib_rows(seed, 24, 12);
            let a = QuantStacked::from_stacked(&stacked, &calib, &mut ws);
            let b = QuantStacked::from_stacked(&stacked, &calib, &mut ws);
            let (sa, sb) = (a.activation_scales(), b.activation_scales());
            assert_eq!(sa.len(), sb.len());
            for (x, y) in sa.iter().zip(&sb) {
                assert_eq!(x.to_bits(), y.to_bits(), "seed {seed}");
            }
            assert!(sa.iter().all(|s| s.is_finite() && *s > 0.0));
        }
    }
}
