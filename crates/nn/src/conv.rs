//! 1-D convolution over fixed-geometry flattened inputs.
//!
//! Pensieve's actor/critic networks run small Conv1d branches over short
//! feature histories (e.g. the last 8 throughput samples). Because every
//! layer in this engine maps `(batch × in_dim)` matrices, `Conv1d` fixes
//! its signal geometry `(in_channels, length)` at construction and
//! interprets each input row as the channel-major flattening
//! `[c0 t0 … c0 t(L-1), c1 t0 …]`. Output rows are the same layout with
//! `out_channels` channels of length `length − kernel + 1` (valid
//! convolution, stride 1, no padding — what Pensieve uses).

use crate::init::{init_tensor, Init};
use crate::layer::{cache_slot, Layer, ParamGrad};
use crate::rng::Rng;
use crate::serialize::LayerSpec;
use crate::tensor::{Act, Tensor};
use crate::workspace::Workspace;

/// Valid (no-padding), stride-1 1-D convolution.
///
/// Weights are stored as `(out_channels × in_channels·kernel)`; bias is one
/// scalar per output channel. Like [`crate::layer::Dense`], an elementwise
/// activation can be fused into the forward pass with
/// [`Conv1d::with_act`].
pub struct Conv1d {
    in_channels: usize,
    length: usize,
    out_channels: usize,
    kernel: usize,
    w: Tensor,
    b: Tensor,
    act: Act,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
    /// Post-activation output, cached only when `act` is not `Identity`.
    cached_output: Option<Tensor>,
}

impl Conv1d {
    pub fn new(
        in_channels: usize,
        length: usize,
        out_channels: usize,
        kernel: usize,
        init: Init,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            kernel >= 1 && kernel <= length,
            "kernel must fit the signal"
        );
        let fan_in = in_channels * kernel;
        let fan_out = out_channels * kernel;
        let w = init_tensor(init, out_channels, fan_in, fan_in, fan_out, rng);
        Conv1d {
            in_channels,
            length,
            out_channels,
            kernel,
            grad_w: Tensor::zeros(out_channels, fan_in),
            grad_b: Tensor::zeros(1, out_channels),
            b: Tensor::zeros(1, out_channels),
            w,
            act: Act::Identity,
            cached_input: None,
            cached_output: None,
        }
    }

    /// Fuse an elementwise activation into the forward pass.
    pub fn with_act(mut self, act: Act) -> Self {
        self.act = act;
        self
    }

    pub fn act(&self) -> Act {
        self.act
    }

    /// Rebuild from saved parameters (see [`LayerSpec::Conv1d`]).
    pub fn from_params(
        in_channels: usize,
        length: usize,
        out_channels: usize,
        kernel: usize,
        w: Tensor,
        b: Tensor,
    ) -> Self {
        assert!(
            kernel >= 1 && kernel <= length,
            "kernel must fit the signal"
        );
        assert_eq!(w.rows(), out_channels, "weight rows must be out_channels");
        assert_eq!(
            w.cols(),
            in_channels * kernel,
            "weight cols must be in_channels*kernel"
        );
        assert_eq!((b.rows(), b.cols()), (1, out_channels), "bias shape");
        Conv1d {
            in_channels,
            length,
            out_channels,
            kernel,
            grad_w: Tensor::zeros(out_channels, in_channels * kernel),
            grad_b: Tensor::zeros(1, out_channels),
            act: Act::Identity,
            cached_input: None,
            cached_output: None,
            w,
            b,
        }
    }

    /// Output signal length: `length − kernel + 1`.
    pub fn out_len(&self) -> usize {
        self.length - self.kernel + 1
    }

    /// Flattened input width this layer expects.
    pub fn in_dim(&self) -> usize {
        self.in_channels * self.length
    }

    /// Flattened output width this layer produces.
    pub fn out_dim(&self) -> usize {
        self.out_channels * self.out_len()
    }

    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    pub fn bias(&self) -> &Tensor {
        &self.b
    }
}

impl Layer for Conv1d {
    fn forward_ws(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(
            input.cols(),
            self.in_dim(),
            "Conv1d expects rows of width in_channels*length"
        );
        let out_len = self.out_len();
        let (k, l) = (self.kernel, self.length);
        let (in_ch, out_ch, out_dim) = (self.in_channels, self.out_channels, self.out_dim());
        let rows = input.rows();
        let patch = in_ch * k;
        // Tiny batches (the per-chunk decision path) skip the im2row
        // staging below and dot each receptive field directly — the same
        // product enumeration through the same lane-fold primitive, so
        // the bits are identical to the GEMM route.
        if rows < crate::tensor::PACK_MIN_ROWS {
            let mut out = ws.take(rows, out_dim);
            let mut gather = ws.take(1, patch);
            for r in 0..rows {
                let x = input.row(r);
                let orow = out.row_mut(r);
                for t in 0..out_len {
                    let field: &[f32] = if in_ch == 1 {
                        &x[t..t + k]
                    } else {
                        let g = gather.row_mut(0);
                        for ic in 0..in_ch {
                            g[ic * k..(ic + 1) * k].copy_from_slice(&x[ic * l + t..ic * l + t + k]);
                        }
                        gather.row(0)
                    };
                    for oc in 0..out_ch {
                        let acc = crate::tensor::dot_lane8(field, self.w.row(oc));
                        orow[oc * out_len + t] = self.act.apply(acc + self.b.get(0, oc));
                    }
                }
            }
            ws.recycle(gather);
            cache_slot(&mut self.cached_input, input);
            if self.act != Act::Identity {
                cache_slot(&mut self.cached_output, &out);
            }
            return out;
        }
        // im2row: one row per (batch row, output position) holding the
        // receptive field `[x[ic·l+t .. +k] for ic]`, so the convolution
        // becomes `X̃ · Wᵀ` through the shared lane8 GEMM — the whole
        // tree has exactly one accumulation order (see `tensor::KLANES`),
        // and batch sharding/threading is inherited from the kernel.
        let m = rows * out_len;
        let mut xim = ws.take(m, patch);
        for r in 0..rows {
            let x = input.row(r);
            for t in 0..out_len {
                let dst = xim.row_mut(r * out_len + t);
                for ic in 0..in_ch {
                    dst[ic * k..(ic + 1) * k].copy_from_slice(&x[ic * l + t..ic * l + t + k]);
                }
            }
        }
        let mut prod = ws.take(m, out_ch);
        xim.matmul_t_into(&self.w, &mut prod);
        // Scatter epilogue: GEMM rows are time-major `(t, oc)` while the
        // flattened layout is channel-major `oc·out_len + t`; bias and
        // activation are fused into the same pass. Every element of the
        // scratch output is written here.
        let mut out = ws.take(rows, out_dim);
        let (b, act) = (&self.b, self.act);
        for r in 0..rows {
            let orow = out.row_mut(r);
            for t in 0..out_len {
                let prow = prod.row(r * out_len + t);
                for (oc, (&pv, &bv)) in prow.iter().zip(b.data()).enumerate() {
                    orow[oc * out_len + t] = act.apply(pv + bv);
                }
            }
        }
        ws.recycle(prod);
        ws.recycle(xim);
        cache_slot(&mut self.cached_input, input);
        if self.act != Act::Identity {
            cache_slot(&mut self.cached_output, &out);
        }
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Conv1d::backward before forward");
        let out_len = self.out_len();
        let (k, l) = (self.kernel, self.length);
        assert_eq!(grad_out.cols(), self.out_dim(), "Conv1d grad width");
        assert_eq!(grad_out.rows(), x.rows(), "Conv1d grad batch");

        // Mask the upstream gradient back through the fused activation.
        let mut masked: Option<Tensor> = None;
        let gz: &Tensor = match self.act {
            Act::Identity => grad_out,
            Act::Relu => {
                let y = self
                    .cached_output
                    .as_ref()
                    .expect("Conv1d::backward before forward");
                let mut g = ws.take(grad_out.rows(), grad_out.cols());
                for ((o, &gv), &yv) in g.data_mut().iter_mut().zip(grad_out.data()).zip(y.data()) {
                    *o = gv * if yv > 0.0 { 1.0 } else { 0.0 };
                }
                masked.insert(g)
            }
        };

        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
        let mut grad_in = ws.take(x.rows(), self.in_dim());
        grad_in.fill(0.0);

        for r in 0..x.rows() {
            let xr = x.row(r);
            let gr = gz.row(r);
            for oc in 0..self.out_channels {
                let gslice = &gr[oc * out_len..(oc + 1) * out_len];
                let gsum: f32 = gslice.iter().sum();
                *self
                    .grad_b
                    .row_mut(0)
                    .get_mut(oc)
                    .expect("bias index in range") += gsum;
                let wrow = self.w.row(oc);
                let gwrow = self.grad_w.row_mut(oc);
                let girow = grad_in.row_mut(r);
                for (t, &g) in gslice.iter().enumerate() {
                    if g == 0.0 {
                        continue;
                    }
                    for ic in 0..self.in_channels {
                        for dk in 0..k {
                            gwrow[ic * k + dk] += g * xr[ic * l + t + dk];
                            girow[ic * l + t + dk] += g * wrow[ic * k + dk];
                        }
                    }
                }
            }
        }
        if let Some(g) = masked {
            ws.recycle(g);
        }
        grad_in
    }

    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            ParamGrad {
                value: &mut self.w,
                grad: &mut self.grad_w,
            },
            ParamGrad {
                value: &mut self.b,
                grad: &mut self.grad_b,
            },
        ]
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamGrad<'_>)) {
        f(ParamGrad {
            value: &mut self.w,
            grad: &mut self.grad_w,
        });
        f(ParamGrad {
            value: &mut self.b,
            grad: &mut self.grad_b,
        });
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Conv1d {
            in_channels: self.in_channels,
            length: self.length,
            out_channels: self.out_channels,
            kernel: self.kernel,
            w: self.w.clone(),
            b: self.b.clone(),
            act: self.act,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-checkable single-channel case: kernel [1, 2] over [1, 2, 3, 4].
    #[test]
    fn forward_known_values() {
        let w = Tensor::from_rows(&[vec![1.0, 2.0]]);
        let b = Tensor::vector(vec![0.5]);
        let mut c = Conv1d::from_params(1, 4, 1, 2, w, b);
        let y = c.forward(&Tensor::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]));
        // [1+4, 2+6, 3+8] + 0.5
        assert_eq!(y.data(), &[5.5, 8.5, 11.5]);
    }

    /// Two input channels sum their contributions.
    #[test]
    fn forward_multi_channel() {
        let w = Tensor::from_rows(&[vec![1.0, 0.0, 0.0, 1.0]]); // ch0 kernel [1,0], ch1 kernel [0,1]
        let b = Tensor::vector(vec![0.0]);
        let mut c = Conv1d::from_params(2, 3, 1, 2, w, b);
        // ch0 = [1,2,3], ch1 = [10,20,30]
        let y = c.forward(&Tensor::from_rows(&[vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]]));
        // out[t] = ch0[t]*1 + ch1[t+1]*1
        assert_eq!(y.data(), &[21.0, 32.0]);
    }

    #[test]
    fn kernel_equal_to_length_degenerates_to_dense() {
        let w = Tensor::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Tensor::vector(vec![0.0]);
        let mut c = Conv1d::from_params(1, 3, 1, 3, w, b);
        let y = c.forward(&Tensor::from_rows(&[vec![4.0, 5.0, 6.0]]));
        assert_eq!(y.data(), &[32.0]);
        assert_eq!(c.out_len(), 1);
    }

    /// The tiny-batch direct path and the im2row GEMM path are the same
    /// lane-fold arithmetic: running rows one at a time must reproduce
    /// the batched result bit-for-bit.
    #[test]
    fn direct_and_im2row_paths_are_bit_identical() {
        let mut rng = Rng::seed_from_u64(11);
        let mut c = Conv1d::new(3, 9, 7, 4, Init::HeUniform, &mut rng).with_act(Act::Relu);
        let x: Vec<Vec<f32>> = (0..6)
            .map(|r| {
                (0..27)
                    .map(|i| ((r * 31 + i * 17) % 23) as f32 / 7.0 - 1.5)
                    .collect()
            })
            .collect();
        let batched = c.forward(&Tensor::from_rows(&x));
        for (r, row) in x.iter().enumerate() {
            let single = c.forward(&Tensor::from_rows(std::slice::from_ref(row)));
            for (a, b) in single.data().iter().zip(batched.row(r)) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn shapes_roundtrip() {
        let mut rng = Rng::seed_from_u64(5);
        let mut c = Conv1d::new(3, 8, 16, 4, Init::HeUniform, &mut rng);
        assert_eq!(c.in_dim(), 24);
        assert_eq!(c.out_dim(), 16 * 5);
        let x = Tensor::zeros(7, 24);
        let y = c.forward(&x);
        assert_eq!((y.rows(), y.cols()), (7, 80));
        let dx = c.backward(&Tensor::zeros(7, 80));
        assert_eq!((dx.rows(), dx.cols()), (7, 24));
    }
}
