//! `osa-nn` — a pure-Rust neural-network engine (DESIGN.md §1 row 1).
//!
//! This is the root of the workspace's dependency DAG: the A3C actor/critic
//! networks (`osa-mdp`, `osa-pensieve`), the agent/value ensembles behind
//! the U_π and U_V uncertainty signals (`osa-core`), and the congestion
//! controller (`osa-cc`) are all built from these pieces. No tch/torch —
//! every forward and backward pass is hand-written and verified against
//! central-difference numerical gradients (`tests/gradcheck.rs`).
//!
//! The build environment is offline, so this crate also hosts the two
//! pieces of infrastructure DESIGN.md §5 assigned to external crates:
//! [`rng`] (in place of `rand`) and [`json`] (in place of `serde_json`).
//!
//! # Layout
//!
//! - [`tensor`] — a row-major `Vec<f32>` matrix type for 1-D/2-D data;
//! - [`layer`] — the [`Layer`] trait plus `Dense`, `ReLU`, `Softmax`;
//! - [`conv`] — `Conv1d` over fixed-geometry flattened inputs;
//! - [`branches`] — parallel per-feature heads (split-apply-concat) for
//!   Pensieve-style branched actor/critic networks;
//! - [`loss`] — MSE, softmax cross-entropy (on logits), entropy bonus;
//! - [`optim`] — `Sgd`, `RmsProp`, `Adam` behind the [`Optimizer`] trait;
//! - [`init`] — Xavier/He initialization from an explicit seeded RNG;
//! - [`net`] — the [`Sequential`] container tying it together;
//! - [`workspace`] — the [`Workspace`] scratch-buffer arena behind the
//!   allocation-free `*_ws` training path;
//! - [`serialize`] — versioned JSON persistence ([`NetSpec`]) with exact
//!   round-tripping of weights;
//! - [`stacked`] — ensemble inference as one grouped GEMM per layer
//!   ([`StackedNet`]), backing the OSAP uncertainty signals;
//! - [`rng`] — seeded xoshiro256\*\* PRNG shared by the whole workspace;
//! - [`json`] — minimal JSON codec backing [`serialize`].
//!
//! # Conventions
//!
//! Every layer maps a batch matrix of shape `(batch, in_dim)` to
//! `(batch, out_dim)`; `Conv1d` interprets each row as a channel-major
//! flattened `(channels, length)` signal. `backward` consumes
//! `dL/d(output)` and returns `dL/d(input)`, *overwriting* (not
//! accumulating) the stored parameter gradients. Loss functions average
//! over the batch, so parameter gradients come out batch-averaged. All
//! randomness flows through an explicit [`rng::Rng`], so a u64 seed
//! reproduces training bit-for-bit.
//!
//! # Example
//!
//! ```
//! use osa_nn::prelude::*;
//!
//! let mut rng = Rng::seed_from_u64(7);
//! let mut net = Sequential::new()
//!     .with(Dense::new(2, 8, Init::HeUniform, &mut rng))
//!     .with(ReLU::new())
//!     .with(Dense::new(8, 2, Init::XavierUniform, &mut rng));
//! let x = Tensor::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
//! let logits = net.forward(&x);
//! assert_eq!((logits.rows(), logits.cols()), (2, 2));
//! ```
#![forbid(unsafe_code)]

pub mod branches;
pub mod conv;
pub mod init;
pub mod json;
pub mod layer;
pub mod loss;
pub mod net;
pub mod optim;
pub mod quant;
pub mod rng;
pub mod serialize;
pub mod stacked;
pub mod tensor;
pub mod workspace;

pub use branches::{Branch, Branches};
pub use conv::Conv1d;
pub use init::Init;
pub use layer::{Dense, Layer, ParamGrad, ReLU, Softmax};
pub use net::Sequential;
pub use optim::{Adam, Optimizer, RmsProp, Sgd};
pub use rng::Rng;
pub use serialize::{LayerSpec, LoadError, NetSpec};
pub use stacked::{StackError, StackedNet};
pub use tensor::{Act, Tensor};
pub use workspace::Workspace;

/// One-stop import for downstream crates, examples, and tests.
pub mod prelude {
    pub use crate::branches::{Branch, Branches};
    pub use crate::conv::Conv1d;
    pub use crate::init::Init;
    pub use crate::layer::{Dense, Layer, ParamGrad, ReLU, Softmax};
    pub use crate::loss;
    pub use crate::net::Sequential;
    pub use crate::optim::{Adam, Optimizer, RmsProp, Sgd};
    pub use crate::quant::{QuantScratch, QuantStacked};
    pub use crate::rng::Rng;
    pub use crate::serialize::{LayerSpec, LoadError, NetSpec};
    pub use crate::stacked::{StackError, StackedNet};
    pub use crate::tensor::{Act, Tensor};
    pub use crate::workspace::Workspace;
}
