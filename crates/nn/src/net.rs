//! [`Sequential`]: an ordered stack of layers with a shared
//! forward/backward/step interface and spec-based persistence.

use std::path::Path;

use crate::conv::Conv1d;
use crate::layer::{Dense, Layer, ParamGrad, ReLU, Softmax};
use crate::optim::Optimizer;
use crate::serialize::{LayerSpec, LoadError, NetSpec};
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// A feed-forward chain of layers.
///
/// Parameter slots are numbered by (layer index, parameter index) in
/// traversal order; the numbering is stable for a fixed architecture, which
/// is what lets slot-keyed optimizers ([`crate::optim`]) keep per-parameter
/// state across steps.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Builder-style push.
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Run the batch through every layer, caching intermediates for
    /// `backward`. Allocating wrapper over [`Sequential::forward_ws`].
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.forward_ws(input, &mut Workspace::new())
    }

    /// Workspace-threaded forward pass: every intermediate activation is
    /// drawn from (and recycled back into) `ws`, so a warmed-up training
    /// loop allocates nothing. The returned tensor belongs to the caller,
    /// who recycles it into `ws` when done with it.
    pub fn forward_ws(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut iter = self.layers.iter_mut();
        let Some(first) = iter.next() else {
            return ws.take_copy(input);
        };
        let mut x = first.forward_ws(input, ws);
        for layer in iter {
            let y = layer.forward_ws(&x, ws);
            ws.recycle(x);
            x = y;
        }
        x
    }

    /// Propagate `dL/d(output)` back through every layer; parameter
    /// gradients end up stored in the layers, and `dL/d(input)` is
    /// returned. Allocating wrapper over [`Sequential::backward_ws`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// Workspace-threaded backward pass; the returned input gradient
    /// belongs to the caller, who recycles it into `ws` when done.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut iter = self.layers.iter_mut().rev();
        let Some(first) = iter.next() else {
            return ws.take_copy(grad_out);
        };
        let mut g = first.backward_ws(grad_out, ws);
        for layer in iter {
            let h = layer.backward_ws(&g, ws);
            ws.recycle(g);
            g = h;
        }
        g
    }

    /// Visit every parameter/gradient pair in slot order — the same stable
    /// numbering `step` uses — without allocating per-layer vectors.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(ParamGrad<'_>)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Apply one optimizer step to every parameter using the gradients
    /// stored by the last `backward`.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        opt.begin_step();
        let mut slot = 0;
        self.visit_params(&mut |pg| {
            opt.update(slot, pg.value, pg.grad);
            slot += 1;
        });
    }

    /// All parameter/gradient pairs in slot order — the same numbering
    /// `step` uses. Gradient checks and custom training loops use this to
    /// inspect or perturb individual parameters.
    pub fn params_flat(&mut self) -> Vec<crate::layer::ParamGrad<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Forward through a single layer by index (caching for backward as
    /// usual). Lets tests and branched architectures drive layers
    /// individually.
    pub fn layer_forward(&mut self, idx: usize, input: &Tensor) -> Tensor {
        self.layers[idx].forward(input)
    }

    /// Total number of trainable scalars.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |pg| n += pg.value.len());
        n
    }

    /// True iff every parameter is finite.
    pub fn params_finite(&mut self) -> bool {
        let mut finite = true;
        self.visit_params(&mut |pg| finite &= pg.value.is_finite());
        finite
    }

    // -- parameter/gradient vectors ------------------------------------------
    //
    // The A3C-style trainer in `osa-mdp` (and later the ensembles in
    // `osa-core`) syncs weights between a shared parameter server and
    // per-worker replicas many times per second; JSON round-trips would
    // dominate the training loop. These flat-vector views copy raw `f32`s
    // in slot order — the same stable numbering `step` uses — so a
    // snapshot taken from one net applies to any architecturally identical
    // net.

    /// Copy every parameter into one contiguous vector, in slot order.
    pub fn params_to_vec(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.copy_params_into(&mut out);
        out
    }

    /// Refill `out` with every parameter in slot order, reusing its
    /// capacity — the zero-alloc counterpart of
    /// [`Sequential::params_to_vec`] for per-step parameter-server syncs.
    pub fn copy_params_into(&mut self, out: &mut Vec<f32>) {
        out.clear();
        self.visit_params(&mut |pg| out.extend_from_slice(pg.value.data()));
    }

    /// Overwrite every parameter from a flat vector produced by
    /// [`Sequential::params_to_vec`] on an architecturally identical net.
    /// Panics if the total length does not match.
    pub fn set_params_from_vec(&mut self, flat: &[f32]) {
        let mut off = 0;
        self.visit_params(&mut |pg| {
            let n = pg.value.len();
            assert!(off + n <= flat.len(), "parameter vector too short");
            pg.value.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "parameter vector too long");
    }

    /// Copy every stored gradient into one contiguous vector, in slot
    /// order. Meaningful after a `backward` pass.
    pub fn grads_to_vec(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.copy_grads_into(&mut out);
        out
    }

    /// Refill `out` with every stored gradient in slot order, reusing its
    /// capacity — the zero-alloc counterpart of
    /// [`Sequential::grads_to_vec`].
    pub fn copy_grads_into(&mut self, out: &mut Vec<f32>) {
        out.clear();
        self.visit_params(&mut |pg| out.extend_from_slice(pg.grad.data()));
    }

    /// Overwrite every stored gradient from a flat vector, so a gradient
    /// computed on a worker replica can be applied to the shared net via
    /// [`Sequential::step`]. Panics if the total length does not match.
    pub fn set_grads_from_vec(&mut self, flat: &[f32]) {
        let mut off = 0;
        self.visit_params(&mut |pg| {
            let n = pg.grad.len();
            assert!(off + n <= flat.len(), "gradient vector too short");
            pg.grad.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "gradient vector too long");
    }

    /// L2 norm of the concatenation of every stored gradient, accumulated
    /// in `f64` so large nets don't lose precision.
    pub fn grad_global_norm(&mut self) -> f32 {
        let mut sq = 0.0f64;
        self.visit_params(&mut |pg| {
            for &g in pg.grad.data() {
                sq += (g as f64) * (g as f64);
            }
        });
        sq.sqrt() as f32
    }

    /// Scale every stored gradient so the global L2 norm is at most
    /// `max_norm` (a no-op when it already is). Returns the pre-clip norm.
    ///
    /// This is the standard global-norm clip A3C/A2C training uses to keep
    /// a single noisy rollout from destroying the shared parameters; it
    /// preserves the gradient's direction, unlike per-element clamping.
    pub fn clip_grad_global_norm(&mut self, max_norm: f32) -> f32 {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let norm = self.grad_global_norm();
        if norm > max_norm {
            let scale = max_norm / norm;
            self.visit_params(&mut |pg| pg.grad.scale(scale));
        }
        norm
    }

    // -- persistence ---------------------------------------------------------

    pub fn to_spec(&self) -> NetSpec {
        NetSpec::new(self.layers.iter().map(|l| l.spec()).collect())
    }

    pub fn from_spec(spec: &NetSpec) -> Self {
        let mut net = Sequential::new();
        for layer in &spec.layers {
            match layer {
                LayerSpec::Dense { w, b, act } => {
                    net.push(Dense::from_params(w.clone(), b.clone()).with_act(*act))
                }
                LayerSpec::Conv1d {
                    in_channels,
                    length,
                    out_channels,
                    kernel,
                    w,
                    b,
                    act,
                } => net.push(
                    Conv1d::from_params(
                        *in_channels,
                        *length,
                        *out_channels,
                        *kernel,
                        w.clone(),
                        b.clone(),
                    )
                    .with_act(*act),
                ),
                LayerSpec::ReLU => net.push(ReLU::new()),
                LayerSpec::Softmax => net.push(Softmax::new()),
                LayerSpec::Branches { parts } => {
                    net.push(crate::branches::Branches::from_specs(parts))
                }
            }
        }
        net
    }

    pub fn to_json(&self) -> String {
        self.to_spec().to_json()
    }

    pub fn from_json(text: &str) -> Result<Self, LoadError> {
        Ok(Self::from_spec(&NetSpec::from_json(text)?))
    }

    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.to_spec().save(path)
    }

    pub fn load(path: impl AsRef<Path>) -> Result<Self, LoadError> {
        Ok(Self::from_spec(&NetSpec::load(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::loss;
    use crate::optim::Adam;
    use crate::rng::Rng;

    fn tiny_net(seed: u64) -> Sequential {
        let mut rng = Rng::seed_from_u64(seed);
        Sequential::new()
            .with(Dense::new(3, 8, Init::HeUniform, &mut rng))
            .with(ReLU::new())
            .with(Dense::new(8, 2, Init::XavierUniform, &mut rng))
    }

    #[test]
    fn forward_shapes() {
        let mut net = tiny_net(1);
        let y = net.forward(&Tensor::zeros(5, 3));
        assert_eq!((y.rows(), y.cols()), (5, 2));
    }

    #[test]
    fn num_params_counts_all_tensors() {
        let mut net = tiny_net(1);
        assert_eq!(net.num_params(), 3 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn training_reduces_regression_loss() {
        let mut net = tiny_net(2);
        let mut opt = Adam::new(0.01);
        let x = Tensor::from_rows(&[
            vec![0.0, 0.0, 1.0],
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0],
        ]);
        let t = Tensor::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
        ]);
        let initial = loss::mse(&net.forward(&x), &t).0;
        for _ in 0..200 {
            let y = net.forward(&x);
            let (_, grad) = loss::mse(&y, &t);
            net.backward(&grad);
            net.step(&mut opt);
        }
        let trained = loss::mse(&net.forward(&x), &t).0;
        assert!(
            trained < initial / 10.0,
            "loss did not drop: {initial} -> {trained}"
        );
        assert!(net.params_finite());
    }

    #[test]
    fn spec_rebuild_preserves_forward() {
        let mut net = tiny_net(3);
        let x = Tensor::from_rows(&[vec![0.2, -0.4, 0.6]]);
        let y1 = net.forward(&x);
        let mut rebuilt = Sequential::from_spec(&net.to_spec());
        let y2 = rebuilt.forward(&x);
        assert_eq!(y1, y2);
    }
}
