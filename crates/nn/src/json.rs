//! A minimal JSON codec (the offline stand-in for `serde_json`,
//! DESIGN.md §5).
//!
//! Covers exactly what the workspace needs: objects, arrays, strings with
//! the standard escapes, finite numbers, booleans and null. Numbers are
//! carried as `f64`; since every `f32` converts to `f64` exactly and Rust's
//! float `Display` prints the shortest digits that round-trip, an `f32`
//! written by [`Value::to_json`] parses back bit-for-bit — which the model
//! save/load round-trip tests rely on.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use a `BTreeMap`, so serialization order is
/// deterministic (sorted keys) and output is diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub msg: String,
    pub pos: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Serialization failure: JSON has no representation for NaN or ±∞.
///
/// Carries the offending value so callers (e.g. the bench harness) can
/// report *which* metric went non-finite instead of losing the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct NonFiniteError(pub f64);

impl fmt::Display for NonFiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON cannot represent the non-finite number {}", self.0)
    }
}

impl std::error::Error for NonFiniteError {}

impl Value {
    /// Serialize compactly (no insignificant whitespace).
    ///
    /// Convenience wrapper over [`Value::try_to_json`] for documents known
    /// to be finite (model weights are guarded upstream). Panics on NaN or
    /// ±∞; code serializing *measured* values (rewards, bench metrics)
    /// must use [`Value::try_to_json`] or sanitize first.
    pub fn to_json(&self) -> String {
        self.try_to_json()
            .expect("document contains a non-finite number; use try_to_json")
    }

    /// Serialize compactly, returning an error instead of panicking when
    /// the document contains a number JSON cannot represent.
    pub fn try_to_json(&self) -> Result<String, NonFiniteError> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    fn write(&self, out: &mut String) -> Result<(), NonFiniteError> {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if !n.is_finite() {
                    return Err(NonFiniteError(*n));
                }
                // Integral values print without a fraction; Display
                // otherwise emits shortest-round-trip digits. Negative
                // zero must keep its sign for bit-exact round-trips.
                if *n == 0.0 && n.is_sign_negative() {
                    out.push_str("-0.0");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    // -- typed accessors used by the deserializers --------------------------

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f32(&self) -> Option<f32> {
        self.as_f64().map(|n| n as f32)
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Convenience constructor for object values.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            pos: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's documents; reject them plainly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction: it came from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = obj(vec![
            ("name", Value::Str("osa".into())),
            (
                "layers",
                Value::Arr(vec![Value::Num(1.5), Value::Null, Value::Bool(true)]),
            ),
            ("empty", Value::Arr(vec![])),
        ]);
        let text = doc.to_json();
        assert_eq!(Value::parse(&text).unwrap(), doc);
    }

    #[test]
    fn f32_values_roundtrip_exactly() {
        let cases = [
            0.1f32,
            -3.402_823_5e38,
            1.175_494_4e-38,
            std::f32::consts::PI,
            1.0 / 3.0,
            -0.0,
        ];
        for &x in &cases {
            let text = Value::Num(x as f64).to_json();
            let back = Value::parse(&text).unwrap().as_f32().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "a \"quoted\"\\ line\nwith\ttabs and unicode: π";
        let text = Value::Str(s.into()).to_json();
        assert_eq!(Value::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"abc", "{}x"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(42.0).to_json(), "42");
        assert_eq!(Value::Num(-0.5).to_json(), "-0.5");
    }

    /// Regression: a single NaN metric must surface as an error, not a
    /// panic that loses every other result in the document.
    #[test]
    fn non_finite_numbers_error_instead_of_panicking() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = obj(vec![
                ("good_metric", Value::Num(1.5)),
                ("reward", Value::Num(bad)),
            ]);
            let err = doc.try_to_json().expect_err("accepted non-finite");
            if bad.is_nan() {
                assert!(err.0.is_nan());
            } else {
                assert_eq!(err.0, bad);
            }
        }
    }

    #[test]
    fn try_to_json_matches_to_json_on_finite_documents() {
        let doc = obj(vec![
            ("a", Value::Num(0.1)),
            (
                "b",
                Value::Arr(vec![Value::Num(-0.0), Value::Str("x".into())]),
            ),
        ]);
        assert_eq!(doc.try_to_json().unwrap(), doc.to_json());
    }
}
