//! Model persistence: networks ↔ JSON, exactly round-tripping weights.
//!
//! The bench harness caches trained agents and ensembles on disk so figure
//! re-runs are incremental; that only works if `save → load` reproduces
//! forward passes bit-for-bit, which the round-trip tests enforce. The
//! format is a versioned [`NetSpec`] document written through the in-tree
//! [`crate::json`] codec.

use std::io;
use std::path::Path;

use crate::json::{obj, JsonError, Value};
use crate::tensor::{Act, Tensor};

/// Current on-disk format version; bump on breaking layout changes.
pub const FORMAT_VERSION: u32 = 1;

/// Serializable snapshot of one layer: its type tag, geometry, and
/// parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum LayerSpec {
    Dense {
        w: Tensor,
        b: Tensor,
        act: Act,
    },
    Conv1d {
        in_channels: usize,
        length: usize,
        out_channels: usize,
        kernel: usize,
        w: Tensor,
        b: Tensor,
        act: Act,
    },
    ReLU,
    Softmax,
    /// Parallel per-feature heads over disjoint input column ranges
    /// (see [`crate::branches::Branches`]). Parts must be `Dense` or
    /// `Conv1d`; the loader rejects anything else.
    Branches {
        parts: Vec<LayerSpec>,
    },
}

/// Activation tag for fused layers. `Identity` is omitted from the JSON so
/// documents written before fused activations existed parse unchanged, and
/// unfused nets keep producing byte-identical files.
fn act_to_json(act: Act) -> Option<(&'static str, Value)> {
    match act {
        Act::Identity => None,
        Act::Relu => Some(("act", Value::Str("relu".into()))),
    }
}

fn act_from_json(v: &Value) -> Result<Act, LoadError> {
    match v.get("act") {
        None => Ok(Act::Identity),
        Some(a) => match a.as_str() {
            Some("relu") => Ok(Act::Relu),
            Some(other) => Err(schema(format!("unknown activation '{other}'"))),
            None => Err(schema("'act' must be a string")),
        },
    }
}

/// Serializable snapshot of a [`crate::net::Sequential`] network.
#[derive(Clone, Debug, PartialEq)]
pub struct NetSpec {
    pub version: u32,
    pub layers: Vec<LayerSpec>,
}

/// Error deserializing a model document.
#[derive(Debug)]
pub enum LoadError {
    Json(JsonError),
    /// Structurally valid JSON that is not a valid model document.
    Schema(String),
    Io(io::Error),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Json(e) => write!(f, "{e}"),
            LoadError::Schema(msg) => write!(f, "model schema error: {msg}"),
            LoadError::Io(e) => write!(f, "model i/o error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<JsonError> for LoadError {
    fn from(e: JsonError) -> Self {
        LoadError::Json(e)
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn schema(msg: impl Into<String>) -> LoadError {
    LoadError::Schema(msg.into())
}

/// Tensor → `{"rows": r, "cols": c, "data": [...]}`.
pub fn tensor_to_json(t: &Tensor) -> Value {
    Value::Obj(
        [
            ("rows".to_string(), Value::Num(t.rows() as f64)),
            ("cols".to_string(), Value::Num(t.cols() as f64)),
            (
                "data".to_string(),
                Value::Arr(t.data().iter().map(|&x| Value::Num(x as f64)).collect()),
            ),
        ]
        .into_iter()
        .collect(),
    )
}

/// Inverse of [`tensor_to_json`], validating shape consistency.
pub fn tensor_from_json(v: &Value) -> Result<Tensor, LoadError> {
    let rows = v
        .get("rows")
        .and_then(Value::as_usize)
        .ok_or_else(|| schema("tensor missing 'rows'"))?;
    let cols = v
        .get("cols")
        .and_then(Value::as_usize)
        .ok_or_else(|| schema("tensor missing 'cols'"))?;
    let data = v
        .get("data")
        .and_then(Value::as_arr)
        .ok_or_else(|| schema("tensor missing 'data'"))?;
    if data.len() != rows * cols {
        return Err(schema(format!(
            "tensor data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        )));
    }
    let mut buf = Vec::with_capacity(data.len());
    for item in data {
        buf.push(
            item.as_f32()
                .ok_or_else(|| schema("non-numeric tensor element"))?,
        );
    }
    Ok(Tensor::from_vec(rows, cols, buf))
}

fn layer_to_json(spec: &LayerSpec) -> Value {
    match spec {
        LayerSpec::Dense { w, b, act } => {
            let mut fields = vec![
                ("type", Value::Str("dense".into())),
                ("w", tensor_to_json(w)),
                ("b", tensor_to_json(b)),
            ];
            fields.extend(act_to_json(*act));
            obj(fields)
        }
        LayerSpec::Conv1d {
            in_channels,
            length,
            out_channels,
            kernel,
            w,
            b,
            act,
        } => {
            let mut fields = vec![
                ("type", Value::Str("conv1d".into())),
                ("in_channels", Value::Num(*in_channels as f64)),
                ("length", Value::Num(*length as f64)),
                ("out_channels", Value::Num(*out_channels as f64)),
                ("kernel", Value::Num(*kernel as f64)),
                ("w", tensor_to_json(w)),
                ("b", tensor_to_json(b)),
            ];
            fields.extend(act_to_json(*act));
            obj(fields)
        }
        LayerSpec::ReLU => obj(vec![("type", Value::Str("relu".into()))]),
        LayerSpec::Softmax => obj(vec![("type", Value::Str("softmax".into()))]),
        LayerSpec::Branches { parts } => obj(vec![
            ("type", Value::Str("branches".into())),
            (
                "parts",
                Value::Arr(parts.iter().map(layer_to_json).collect()),
            ),
        ]),
    }
}

fn layer_from_json(v: &Value) -> Result<LayerSpec, LoadError> {
    let ty = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| schema("layer missing 'type'"))?;
    let field = |name: &str| {
        v.get(name)
            .ok_or_else(|| schema(format!("{ty} layer missing '{name}'")))
    };
    let dim = |name: &str| -> Result<usize, LoadError> {
        field(name)?.as_usize().ok_or_else(|| {
            schema(format!(
                "{ty} layer '{name}' must be a non-negative integer"
            ))
        })
    };
    match ty {
        "dense" => {
            let w = tensor_from_json(field("w")?)?;
            let b = tensor_from_json(field("b")?)?;
            let act = act_from_json(v)?;
            if b.rows() != 1 || b.cols() != w.cols() {
                return Err(schema("dense bias shape does not match weights"));
            }
            Ok(LayerSpec::Dense { w, b, act })
        }
        "conv1d" => {
            let in_channels = dim("in_channels")?;
            let length = dim("length")?;
            let out_channels = dim("out_channels")?;
            let kernel = dim("kernel")?;
            let w = tensor_from_json(field("w")?)?;
            let b = tensor_from_json(field("b")?)?;
            let act = act_from_json(v)?;
            if kernel == 0 || kernel > length {
                return Err(schema("conv1d kernel must fit the signal"));
            }
            if w.rows() != out_channels || w.cols() != in_channels * kernel {
                return Err(schema("conv1d weight shape does not match geometry"));
            }
            if b.rows() != 1 || b.cols() != out_channels {
                return Err(schema("conv1d bias shape does not match out_channels"));
            }
            Ok(LayerSpec::Conv1d {
                in_channels,
                length,
                out_channels,
                kernel,
                w,
                b,
                act,
            })
        }
        "relu" => Ok(LayerSpec::ReLU),
        "softmax" => Ok(LayerSpec::Softmax),
        "branches" => {
            let parts = field("parts")?
                .as_arr()
                .ok_or_else(|| schema("branches 'parts' must be an array"))?;
            if parts.is_empty() {
                return Err(schema("branches needs at least one part"));
            }
            let parts = parts
                .iter()
                .map(layer_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            if !parts
                .iter()
                .all(|p| matches!(p, LayerSpec::Dense { .. } | LayerSpec::Conv1d { .. }))
            {
                return Err(schema("branches parts must be dense or conv1d layers"));
            }
            Ok(LayerSpec::Branches { parts })
        }
        other => Err(schema(format!("unknown layer type '{other}'"))),
    }
}

impl NetSpec {
    pub fn new(layers: Vec<LayerSpec>) -> Self {
        NetSpec {
            version: FORMAT_VERSION,
            layers,
        }
    }

    pub fn to_json(&self) -> String {
        obj(vec![
            ("format_version", Value::Num(self.version as f64)),
            (
                "layers",
                Value::Arr(self.layers.iter().map(layer_to_json).collect()),
            ),
        ])
        .to_json()
    }

    pub fn from_json(text: &str) -> Result<NetSpec, LoadError> {
        let doc = Value::parse(text)?;
        let version = doc
            .get("format_version")
            .and_then(Value::as_usize)
            .ok_or_else(|| schema("missing 'format_version'"))? as u32;
        if version != FORMAT_VERSION {
            return Err(schema(format!(
                "unsupported format_version {version} (supported: {FORMAT_VERSION})"
            )));
        }
        let layers = doc
            .get("layers")
            .and_then(Value::as_arr)
            .ok_or_else(|| schema("missing 'layers'"))?;
        let layers = layers
            .iter()
            .map(layer_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(NetSpec { version, layers })
    }

    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    pub fn load(path: impl AsRef<Path>) -> Result<NetSpec, LoadError> {
        let text = std::fs::read_to_string(path)?;
        NetSpec::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> NetSpec {
        NetSpec::new(vec![
            LayerSpec::Conv1d {
                in_channels: 1,
                length: 4,
                out_channels: 2,
                kernel: 2,
                w: Tensor::from_rows(&[vec![0.1, -0.2], vec![0.3, 0.4]]),
                b: Tensor::vector(vec![0.0, 1.0]),
                act: Act::Relu,
            },
            LayerSpec::ReLU,
            LayerSpec::Dense {
                w: Tensor::from_rows(&[
                    vec![1.0],
                    vec![2.0],
                    vec![3.0],
                    vec![4.0],
                    vec![5.0],
                    vec![6.0],
                ]),
                b: Tensor::vector(vec![-0.5]),
                act: Act::Identity,
            },
            LayerSpec::Softmax,
        ])
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = sample_spec();
        let text = spec.to_json();
        let back = NetSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = sample_spec()
            .to_json()
            .replace("\"format_version\":1", "\"format_version\":99");
        assert!(matches!(
            NetSpec::from_json(&text),
            Err(LoadError::Schema(_))
        ));
    }

    #[test]
    fn shape_lies_are_rejected() {
        // Claim 3 columns for a 2-element bias.
        let text = r#"{"format_version":1,"layers":[{"type":"dense",
            "w":{"rows":1,"cols":2,"data":[1,2]},
            "b":{"rows":1,"cols":3,"data":[0,0]}}]}"#;
        assert!(NetSpec::from_json(text).is_err());
    }

    #[test]
    fn unknown_layer_type_is_rejected() {
        let text = r#"{"format_version":1,"layers":[{"type":"lstm"}]}"#;
        assert!(matches!(
            NetSpec::from_json(text),
            Err(LoadError::Schema(msg)) if msg.contains("lstm")
        ));
    }

    #[test]
    fn malformed_json_is_a_json_error() {
        assert!(matches!(
            NetSpec::from_json("{not json"),
            Err(LoadError::Json(_))
        ));
    }
}
