//! The [`Layer`] trait and the dense/activation layers.
//!
//! A layer maps a batch matrix `(batch × in_dim)` to `(batch × out_dim)`.
//! `forward` caches whatever the backward pass needs; `backward` consumes
//! `dL/d(output)` and returns `dL/d(input)`, overwriting the stored
//! parameter gradients. Gradients carry whatever scaling the upstream
//! gradient carries — the loss functions in [`crate::loss`] average over
//! the batch, so parameter gradients come out batch-averaged.

use crate::init::{init_tensor, Init};
use crate::rng::Rng;
use crate::serialize::LayerSpec;
use crate::tensor::{Act, Tensor};
use crate::workspace::Workspace;

/// A mutable view of one parameter tensor paired with its gradient.
pub struct ParamGrad<'a> {
    pub value: &'a mut Tensor,
    pub grad: &'a mut Tensor,
}

/// A differentiable batch-to-batch transformation.
///
/// The workspace-threaded methods (`forward_ws`/`backward_ws`) are the
/// primary implementation surface: they draw every intermediate buffer
/// from a caller-owned [`Workspace`], so a warmed-up training loop runs
/// without heap allocation. The plain `forward`/`backward` methods are
/// provided convenience wrappers over a throwaway workspace — identical
/// results, allocating — kept so existing call sites and tests continue to
/// work unchanged.
///
/// Layers must be `Send`: the A3C-style trainer in `osa-mdp` moves whole
/// [`crate::net::Sequential`] replicas into worker threads and keeps the
/// shared copy behind a mutex. Every layer here owns plain buffers, so the
/// bound costs nothing.
pub trait Layer: Send {
    /// Compute outputs into a workspace-drawn buffer and cache what
    /// `backward_ws` will need. The returned tensor belongs to the caller,
    /// who recycles it into `ws` when done.
    fn forward_ws(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor;

    /// Given `dL/d(output)`, store `dL/d(params)` and return `dL/d(input)`
    /// in a workspace-drawn buffer.
    ///
    /// Must be called after a forward pass; panics otherwise.
    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor;

    /// Allocating wrapper over [`Layer::forward_ws`].
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.forward_ws(input, &mut Workspace::new())
    }

    /// Allocating wrapper over [`Layer::backward_ws`].
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// Parameter/gradient pairs, in a stable order. Parameter-free layers
    /// return an empty vec.
    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        Vec::new()
    }

    /// Visit parameter/gradient pairs in the same stable order as
    /// [`Layer::params`], without building a `Vec`. Layers with parameters
    /// override this; the default covers parameter-free layers (an empty
    /// `params()` vec never allocates).
    fn visit_params(&mut self, f: &mut dyn FnMut(ParamGrad<'_>)) {
        for pg in self.params() {
            f(pg);
        }
    }

    /// Snapshot for serialization.
    fn spec(&self) -> LayerSpec;
}

/// Refill an `Option<Tensor>` cache slot from `src`, reusing the existing
/// allocation after the first call.
pub(crate) fn cache_slot(slot: &mut Option<Tensor>, src: &Tensor) {
    match slot {
        Some(t) => t.copy_from(src),
        None => *slot = Some(src.clone()),
    }
}

/// Fully connected layer: `y = act(x·W + b)` with `W: (in × out)`,
/// `b: (1 × out)`.
///
/// The activation defaults to [`Act::Identity`]; [`Dense::with_act`] fuses
/// an elementwise activation into the GEMM epilogue, which is bit-identical
/// to (and cheaper than) following the layer with a standalone [`ReLU`].
pub struct Dense {
    w: Tensor,
    b: Tensor,
    act: Act,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
    /// Post-activation output, cached only when `act` is not `Identity`
    /// (the backward mask needs it).
    cached_output: Option<Tensor>,
}

impl Dense {
    pub fn new(in_dim: usize, out_dim: usize, init: Init, rng: &mut Rng) -> Self {
        let w = init_tensor(init, in_dim, out_dim, in_dim, out_dim, rng);
        Dense {
            grad_w: Tensor::zeros(in_dim, out_dim),
            grad_b: Tensor::zeros(1, out_dim),
            b: Tensor::zeros(1, out_dim),
            w,
            act: Act::Identity,
            cached_input: None,
            cached_output: None,
        }
    }

    /// Rebuild from saved parameters (see [`LayerSpec::Dense`]).
    pub fn from_params(w: Tensor, b: Tensor) -> Self {
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), w.cols(), "bias width must match weight cols");
        Dense {
            grad_w: Tensor::zeros(w.rows(), w.cols()),
            grad_b: Tensor::zeros(1, b.cols()),
            act: Act::Identity,
            cached_input: None,
            cached_output: None,
            w,
            b,
        }
    }

    /// Fuse an elementwise activation into the forward pass.
    pub fn with_act(mut self, act: Act) -> Self {
        self.act = act;
        self
    }

    pub fn act(&self) -> Act {
        self.act
    }

    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    pub fn bias(&self) -> &Tensor {
        &self.b
    }
}

impl Layer for Dense {
    fn forward_ws(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(input.cols(), self.w.rows(), "Dense input width mismatch");
        let mut out = ws.take(input.rows(), self.w.cols());
        input.matmul_bias_act_into(&self.w, &self.b, self.act, &mut out);
        cache_slot(&mut self.cached_input, input);
        if self.act != Act::Identity {
            cache_slot(&mut self.cached_output, &out);
        }
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Dense::backward before forward");
        // Push the upstream gradient back through the fused activation
        // first: relu'(z) is 1 exactly where the cached output is positive.
        let mut masked: Option<Tensor> = None;
        let gz: &Tensor = match self.act {
            Act::Identity => grad_out,
            Act::Relu => {
                let y = self
                    .cached_output
                    .as_ref()
                    .expect("Dense::backward before forward");
                let mut g = ws.take(grad_out.rows(), grad_out.cols());
                for ((o, &gv), &yv) in g.data_mut().iter_mut().zip(grad_out.data()).zip(y.data()) {
                    *o = gv * if yv > 0.0 { 1.0 } else { 0.0 };
                }
                masked.insert(g)
            }
        };
        x.tmatmul_into(gz, &mut self.grad_w);
        gz.col_sum_into(&mut self.grad_b);
        // Stage wᵀ in scratch so the input gradient runs on the blocked
        // `matmul` kernel (vector accumulators) rather than the serial-dot
        // `matmul_t` kernel; the per-element accumulation order is the
        // same, so the result is bit-identical — the transpose is cheap
        // data movement next to the (batch × out × in) GEMM it unlocks.
        let mut wt = ws.take(self.w.cols(), self.w.rows());
        self.w.transpose_into(&mut wt);
        let mut out = ws.take(grad_out.rows(), self.w.rows());
        gz.matmul_into(&wt, &mut out);
        ws.recycle(wt);
        if let Some(g) = masked {
            ws.recycle(g);
        }
        out
    }

    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            ParamGrad {
                value: &mut self.w,
                grad: &mut self.grad_w,
            },
            ParamGrad {
                value: &mut self.b,
                grad: &mut self.grad_b,
            },
        ]
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamGrad<'_>)) {
        f(ParamGrad {
            value: &mut self.w,
            grad: &mut self.grad_w,
        });
        f(ParamGrad {
            value: &mut self.b,
            grad: &mut self.grad_b,
        });
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Dense {
            w: self.w.clone(),
            b: self.b.clone(),
            act: self.act,
        }
    }
}

/// Rectified linear unit, elementwise `max(0, x)`.
#[derive(Default)]
pub struct ReLU {
    cached_input: Option<Tensor>,
}

impl ReLU {
    pub fn new() -> Self {
        ReLU::default()
    }
}

impl Layer for ReLU {
    fn forward_ws(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        cache_slot(&mut self.cached_input, input);
        let mut out = ws.take(input.rows(), input.cols());
        for (o, &x) in out.data_mut().iter_mut().zip(input.data()) {
            *o = x.max(0.0);
        }
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("ReLU::backward before forward");
        let mut out = ws.take(grad_out.rows(), grad_out.cols());
        for ((o, &g), &xv) in out.data_mut().iter_mut().zip(grad_out.data()).zip(x.data()) {
            *o = g * if xv > 0.0 { 1.0 } else { 0.0 };
        }
        out
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::ReLU
    }
}

/// Row-wise softmax with the max-subtraction trick.
///
/// For training a classifier/actor head, prefer feeding *logits* to
/// [`crate::loss::softmax_cross_entropy`], which fuses the two for
/// stability; this layer exists for inference-time probability outputs and
/// for nets whose downstream loss consumes probabilities (e.g. the entropy
/// bonus).
#[derive(Default)]
pub struct Softmax {
    cached_output: Option<Tensor>,
}

impl Softmax {
    pub fn new() -> Self {
        Softmax::default()
    }
}

impl Layer for Softmax {
    fn forward_ws(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut out = ws.take_copy(input);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        cache_slot(&mut self.cached_output, &out);
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            .expect("Softmax::backward before forward");
        // dx_i = y_i * (g_i - Σ_j g_j y_j), per row; every element of the
        // scratch buffer is overwritten below.
        let mut out = ws.take(y.rows(), y.cols());
        for r in 0..y.rows() {
            let yr = y.row(r);
            let gr = grad_out.row(r);
            let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
            let or = out.row_mut(r);
            for ((o, &yi), &gi) in or.iter_mut().zip(yr).zip(gr) {
                *o = yi * (gi - dot);
            }
        }
        out
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Softmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_known_values() {
        let w = Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        let b = Tensor::vector(vec![0.5, -0.5]);
        let mut d = Dense::from_params(w, b);
        let y = d.forward(&Tensor::from_rows(&[vec![3.0, 4.0]]));
        assert_eq!(y.data(), &[3.5, 7.5]);
    }

    #[test]
    fn relu_clamps_and_masks_gradient() {
        let mut r = ReLU::new();
        let y = r.forward(&Tensor::vector(vec![-1.0, 0.0, 2.0]));
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let dx = r.backward(&Tensor::vector(vec![5.0, 5.0, 5.0]));
        assert_eq!(dx.data(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn softmax_rows_normalize() {
        let mut s = Softmax::new();
        let y = s.forward(&Tensor::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![1000.0, 1000.0, 1000.0],
        ]));
        for r in 0..2 {
            let sum: f32 = y.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // The large-logit row must not overflow to NaN.
        assert!(y.is_finite());
        assert!((y.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_gradient_sums_to_zero_per_row() {
        // Softmax outputs sum to 1, so the input gradient must sum to 0
        // along each row for any upstream gradient.
        let mut s = Softmax::new();
        s.forward(&Tensor::from_rows(&[vec![0.3, -1.2, 2.0, 0.0]]));
        let dx = s.backward(&Tensor::from_rows(&[vec![1.0, -2.0, 0.5, 3.0]]));
        let sum: f32 = dx.row(0).iter().sum();
        assert!(sum.abs() < 1e-6, "row gradient sum {sum}");
    }
}
