//! The [`Layer`] trait and the dense/activation layers.
//!
//! A layer maps a batch matrix `(batch × in_dim)` to `(batch × out_dim)`.
//! `forward` caches whatever the backward pass needs; `backward` consumes
//! `dL/d(output)` and returns `dL/d(input)`, overwriting the stored
//! parameter gradients. Gradients carry whatever scaling the upstream
//! gradient carries — the loss functions in [`crate::loss`] average over
//! the batch, so parameter gradients come out batch-averaged.

use crate::init::{init_tensor, Init};
use crate::rng::Rng;
use crate::serialize::LayerSpec;
use crate::tensor::Tensor;

/// A mutable view of one parameter tensor paired with its gradient.
pub struct ParamGrad<'a> {
    pub value: &'a mut Tensor,
    pub grad: &'a mut Tensor,
}

/// A differentiable batch-to-batch transformation.
///
/// Layers must be `Send`: the A3C-style trainer in `osa-mdp` moves whole
/// [`crate::net::Sequential`] replicas into worker threads and keeps the
/// shared copy behind a mutex. Every layer here owns plain buffers, so the
/// bound costs nothing.
pub trait Layer: Send {
    /// Compute outputs and cache what `backward` will need.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Given `dL/d(output)`, store `dL/d(params)` and return `dL/d(input)`.
    ///
    /// Must be called after `forward`; panics otherwise.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Parameter/gradient pairs, in a stable order. Parameter-free layers
    /// return an empty vec.
    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        Vec::new()
    }

    /// Snapshot for serialization.
    fn spec(&self) -> LayerSpec;
}

/// Fully connected layer: `y = x·W + b` with `W: (in × out)`, `b: (1 × out)`.
pub struct Dense {
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    pub fn new(in_dim: usize, out_dim: usize, init: Init, rng: &mut Rng) -> Self {
        let w = init_tensor(init, in_dim, out_dim, in_dim, out_dim, rng);
        Dense {
            grad_w: Tensor::zeros(in_dim, out_dim),
            grad_b: Tensor::zeros(1, out_dim),
            b: Tensor::zeros(1, out_dim),
            w,
            cached_input: None,
        }
    }

    /// Rebuild from saved parameters (see [`LayerSpec::Dense`]).
    pub fn from_params(w: Tensor, b: Tensor) -> Self {
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), w.cols(), "bias width must match weight cols");
        Dense {
            grad_w: Tensor::zeros(w.rows(), w.cols()),
            grad_b: Tensor::zeros(1, b.cols()),
            cached_input: None,
            w,
            b,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    pub fn bias(&self) -> &Tensor {
        &self.b
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.cols(), self.w.rows(), "Dense input width mismatch");
        let mut out = input.matmul(&self.w);
        out.add_row_broadcast(&self.b);
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Dense::backward before forward");
        self.grad_w = x.tmatmul(grad_out);
        self.grad_b = grad_out.col_sum();
        grad_out.matmul_t(&self.w)
    }

    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            ParamGrad {
                value: &mut self.w,
                grad: &mut self.grad_w,
            },
            ParamGrad {
                value: &mut self.b,
                grad: &mut self.grad_b,
            },
        ]
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Dense {
            w: self.w.clone(),
            b: self.b.clone(),
        }
    }
}

/// Rectified linear unit, elementwise `max(0, x)`.
#[derive(Default)]
pub struct ReLU {
    cached_input: Option<Tensor>,
}

impl ReLU {
    pub fn new() -> Self {
        ReLU::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = Some(input.clone());
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("ReLU::backward before forward");
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        grad_out.hadamard(&mask)
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::ReLU
    }
}

/// Row-wise softmax with the max-subtraction trick.
///
/// For training a classifier/actor head, prefer feeding *logits* to
/// [`crate::loss::softmax_cross_entropy`], which fuses the two for
/// stability; this layer exists for inference-time probability outputs and
/// for nets whose downstream loss consumes probabilities (e.g. the entropy
/// bonus).
#[derive(Default)]
pub struct Softmax {
    cached_output: Option<Tensor>,
}

impl Softmax {
    pub fn new() -> Self {
        Softmax::default()
    }
}

impl Layer for Softmax {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut out = input.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            .expect("Softmax::backward before forward");
        // dx_i = y_i * (g_i - Σ_j g_j y_j), per row.
        let mut out = Tensor::zeros(y.rows(), y.cols());
        for r in 0..y.rows() {
            let yr = y.row(r);
            let gr = grad_out.row(r);
            let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
            let or = out.row_mut(r);
            for ((o, &yi), &gi) in or.iter_mut().zip(yr).zip(gr) {
                *o = yi * (gi - dot);
            }
        }
        out
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Softmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_known_values() {
        let w = Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        let b = Tensor::vector(vec![0.5, -0.5]);
        let mut d = Dense::from_params(w, b);
        let y = d.forward(&Tensor::from_rows(&[vec![3.0, 4.0]]));
        assert_eq!(y.data(), &[3.5, 7.5]);
    }

    #[test]
    fn relu_clamps_and_masks_gradient() {
        let mut r = ReLU::new();
        let y = r.forward(&Tensor::vector(vec![-1.0, 0.0, 2.0]));
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let dx = r.backward(&Tensor::vector(vec![5.0, 5.0, 5.0]));
        assert_eq!(dx.data(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn softmax_rows_normalize() {
        let mut s = Softmax::new();
        let y = s.forward(&Tensor::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![1000.0, 1000.0, 1000.0],
        ]));
        for r in 0..2 {
            let sum: f32 = y.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // The large-logit row must not overflow to NaN.
        assert!(y.is_finite());
        assert!((y.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_gradient_sums_to_zero_per_row() {
        // Softmax outputs sum to 1, so the input gradient must sum to 0
        // along each row for any upstream gradient.
        let mut s = Softmax::new();
        s.forward(&Tensor::from_rows(&[vec![0.3, -1.2, 2.0, 0.0]]));
        let dx = s.backward(&Tensor::from_rows(&[vec![1.0, -2.0, 0.5, 3.0]]));
        let sum: f32 = dx.row(0).iter().sum();
        assert!(sum.abs() < 1e-6, "row gradient sum {sum}");
    }
}
