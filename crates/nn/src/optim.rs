//! First-order optimizers behind a slot-addressed [`Optimizer`] trait.
//!
//! [`crate::net::Sequential`] assigns every parameter tensor a stable slot
//! index (layer order × parameter order) and calls `update` once per slot
//! per step. Stateful optimizers key their moment buffers by that slot, so
//! one optimizer instance serves a whole network — but must not be shared
//! across networks with different architectures.

use std::collections::HashMap;

use crate::tensor::Tensor;

/// A parameter-update rule. `begin_step` is called once per optimization
/// step before any `update`; Adam uses it to advance its bias-correction
/// clock.
pub trait Optimizer {
    fn begin_step(&mut self) {}
    fn update(&mut self, slot: usize, value: &mut Tensor, grad: &Tensor);
}

/// Plain stochastic gradient descent: `θ ← θ − lr·g`.
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, _slot: usize, value: &mut Tensor, grad: &Tensor) {
        debug_assert_eq!(value.len(), grad.len());
        for (v, &g) in value.data_mut().iter_mut().zip(grad.data()) {
            *v -= self.lr * g;
        }
    }
}

/// RMSProp (Tieleman & Hinton) — the optimizer the original Pensieve
/// training uses: `s ← ρ·s + (1−ρ)·g²; θ ← θ − lr·g / (√s + ε)`.
pub struct RmsProp {
    pub lr: f32,
    pub rho: f32,
    pub eps: f32,
    sq_avg: HashMap<usize, Vec<f32>>,
}

impl RmsProp {
    pub fn new(lr: f32) -> Self {
        RmsProp {
            lr,
            rho: 0.9,
            eps: 1e-8,
            sq_avg: HashMap::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn update(&mut self, slot: usize, value: &mut Tensor, grad: &Tensor) {
        debug_assert_eq!(value.len(), grad.len());
        let s = self
            .sq_avg
            .entry(slot)
            .or_insert_with(|| vec![0.0; value.len()]);
        assert_eq!(s.len(), value.len(), "slot reused with a different shape");
        for ((v, &g), sq) in value.data_mut().iter_mut().zip(grad.data()).zip(s) {
            *sq = self.rho * *sq + (1.0 - self.rho) * g * g;
            *v -= self.lr * g / (sq.sqrt() + self.eps);
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: i32,
    moments: HashMap<usize, (Vec<f32>, Vec<f32>)>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: HashMap::new(),
        }
    }

    /// Number of completed `begin_step` calls.
    pub fn steps(&self) -> i32 {
        self.t
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, slot: usize, value: &mut Tensor, grad: &Tensor) {
        debug_assert_eq!(value.len(), grad.len());
        // Tolerate a missing begin_step (standalone use in tests).
        let t = self.t.max(1);
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        let (m, v) = self
            .moments
            .entry(slot)
            .or_insert_with(|| (vec![0.0; value.len()], vec![0.0; value.len()]));
        assert_eq!(m.len(), value.len(), "slot reused with a different shape");
        for (((p, &g), mi), vi) in value
            .data_mut()
            .iter_mut()
            .zip(grad.data())
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descends_a_quadratic() {
        // minimize (x - 3)^2; gradient 2(x - 3).
        let mut x = Tensor::vector(vec![0.0]);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = Tensor::vector(vec![2.0 * (x.get(0, 0) - 3.0)]);
            opt.update(0, &mut x, &g);
        }
        assert!((x.get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut x = Tensor::vector(vec![10.0]);
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            opt.begin_step();
            let g = Tensor::vector(vec![2.0 * (x.get(0, 0) - 3.0)]);
            opt.update(0, &mut x, &g);
        }
        assert!((x.get(0, 0) - 3.0).abs() < 1e-2, "got {}", x.get(0, 0));
    }

    #[test]
    fn rmsprop_descends_a_quadratic() {
        let mut x = Tensor::vector(vec![-5.0]);
        let mut opt = RmsProp::new(0.05);
        for _ in 0..500 {
            let g = Tensor::vector(vec![2.0 * (x.get(0, 0) - 3.0)]);
            opt.update(0, &mut x, &g);
        }
        assert!((x.get(0, 0) - 3.0).abs() < 0.05, "got {}", x.get(0, 0));
    }

    #[test]
    fn slots_are_independent() {
        let mut a = Tensor::vector(vec![1.0]);
        let mut b = Tensor::vector(vec![1.0]);
        let mut opt = Adam::new(0.1);
        opt.begin_step();
        opt.update(0, &mut a, &Tensor::vector(vec![1.0]));
        opt.update(1, &mut b, &Tensor::vector(vec![-1.0]));
        assert!(a.get(0, 0) < 1.0);
        assert!(b.get(0, 0) > 1.0);
    }
}
