//! [`Workspace`]: a scratch-buffer arena for allocation-free training.
//!
//! Every forward/backward pass through a [`crate::net::Sequential`] needs a
//! handful of intermediate matrices (activations, gradients). Allocating
//! them per call is what made the hot path allocation-bound; a `Workspace`
//! instead keeps a pool of retired [`Tensor`] buffers and hands them back
//! out on request. Because a training loop repeats the same shapes every
//! step, the pool converges after one warmup iteration and every
//! subsequent [`Workspace::take`] is a capacity-reusing reshape — zero
//! heap traffic (asserted by the allocation-counter test in `osa-bench`).
//!
//! The protocol is explicit rather than RAII: `take` a buffer, use it,
//! `recycle` it when its contents are dead. Forgetting to recycle is not
//! unsafe — the buffer is simply dropped and the pool refills on a later
//! `recycle` — but it reintroduces allocations, which the counting
//! allocator in `osa-bench` will flag.

use crate::tensor::Tensor;

/// A pool of reusable [`Tensor`] buffers.
///
/// `take(rows, cols)` prefers the smallest pooled buffer whose capacity
/// already fits the request (best-fit), so a workspace shared by layers of
/// different widths does not ping-pong one big buffer while small ones
/// idle. A fresh workspace starts empty; the first pass through a network
/// allocates normally and later passes run out of the pool.
#[derive(Default)]
pub struct Workspace {
    pool: Vec<Tensor>,
}

impl Workspace {
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Get a `(rows × cols)` tensor, reusing a pooled buffer when one has
    /// enough capacity. Element values are unspecified — callers overwrite
    /// them (every `_into` kernel does).
    pub fn take(&mut self, rows: usize, cols: usize) -> Tensor {
        let need = rows * cols;
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, t) in self.pool.iter().enumerate() {
            let cap = t.capacity();
            if cap >= need && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut t = self.pool.swap_remove(i);
                t.resize_shape(rows, cols);
                t
            }
            None => Tensor::zeros(rows, cols),
        }
    }

    /// Like [`Workspace::take`], but initialized as a copy of `src`.
    pub fn take_copy(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.take(src.rows(), src.cols());
        t.copy_from(src);
        t
    }

    /// Return a dead buffer to the pool for a later [`Workspace::take`].
    pub fn recycle(&mut self, t: Tensor) {
        self.pool.push(t);
    }

    /// Number of buffers currently idle in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total `f32` capacity held by idle buffers.
    pub fn pooled_capacity(&self) -> usize {
        self.pool.iter().map(Tensor::capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_recycled_capacity() {
        let mut ws = Workspace::new();
        let t = ws.take(4, 8);
        let cap = t.capacity();
        ws.recycle(t);
        assert_eq!(ws.pooled(), 1);
        // Smaller request fits in the same buffer: pool drains, capacity
        // is carried over.
        let t2 = ws.take(2, 8);
        assert_eq!(ws.pooled(), 0);
        assert_eq!(t2.capacity(), cap);
        assert_eq!((t2.rows(), t2.cols()), (2, 8));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        ws.recycle(Tensor::zeros(16, 16)); // 256
        ws.recycle(Tensor::zeros(4, 4)); // 16
        let t = ws.take(2, 5); // needs 10 → should pick the 16-cap buffer
        assert!(t.capacity() < 256);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn take_copy_matches_source() {
        let mut ws = Workspace::new();
        let src = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let t = ws.take_copy(&src);
        assert_eq!(t, src);
    }
}
