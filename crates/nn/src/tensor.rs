//! A minimal row-major matrix type.
//!
//! Everything the layers need — and nothing more. A `Tensor` is a dense
//! `(rows × cols)` matrix of `f32` backed by a single `Vec`; 1-D data is a
//! `(1 × n)` row vector. Loss reductions accumulate in `f64` to keep the
//! numerical gradient checks meaningful at `f32` precision.

/// Dense row-major `f32` matrix. 1-D vectors are `(1 × n)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wrap an existing row-major buffer. Panics if the length does not
    /// match the shape.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// Build from row slices. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A `(1 × n)` row vector.
    pub fn vector(data: Vec<f32>) -> Self {
        Tensor {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Raw row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Matrix product `self · other`. Shapes `(m,k)·(k,n) → (m,n)`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: ({},{}) x ({},{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        // i-k-j order: the inner loop walks both `other` and `out` rows
        // contiguously, which is what makes this usable in the hot path.
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * n..(p + 1) * n];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    /// Shapes `(k,m)ᵀ·(k,n) → (m,n)`.
    pub fn tmatmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "tmatmul shape mismatch: ({},{})T x ({},{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for p in 0..k {
            let arow = &self.data[p * m..(p + 1) * m];
            let brow = &other.data[p * n..(p + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    /// Shapes `(m,k)·(n,k)ᵀ → (m,n)`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: ({},{}) x ({},{})T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum, in place. Shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise difference `self - other` as a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Elementwise map as a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise (Hadamard) product as a new tensor.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Add a `(1 × cols)` row vector to every row, in place.
    pub fn add_row_broadcast(&mut self, row: &Tensor) {
        assert_eq!(row.rows, 1, "broadcast source must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(&row.data) {
                *d += s;
            }
        }
    }

    /// Column sums as a `(1 × cols)` row vector.
    pub fn col_sum(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &s) in out.data.iter_mut().zip(src) {
                *o += s;
            }
        }
        out
    }

    /// Sum of all elements, accumulated in `f64`.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Index of the largest element in each row (first on ties).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// True iff every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::Tensor;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let id = Tensor::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn tmatmul_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Tensor::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0], vec![-3.0, 0.0]]);
        assert_eq!(a.tmatmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Tensor::from_rows(&[vec![4.0, 5.0, 6.0], vec![7.0, 8.0, 9.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn broadcast_and_col_sum() {
        let mut a = Tensor::zeros(3, 2);
        a.add_row_broadcast(&Tensor::vector(vec![1.0, -2.0]));
        assert_eq!(a.col_sum().data(), &[3.0, -6.0]);
    }

    #[test]
    fn argmax_rows_first_on_ties() {
        let a = Tensor::from_rows(&[vec![1.0, 3.0, 2.0], vec![5.0, 5.0, 1.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
