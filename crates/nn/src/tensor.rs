//! A minimal row-major matrix type.
//!
//! Everything the layers need — and nothing more. A `Tensor` is a dense
//! `(rows × cols)` matrix of `f32` backed by a single `Vec`; 1-D data is a
//! `(1 × n)` row vector. Loss reductions accumulate in `f64` to keep the
//! numerical gradient checks meaningful at `f32` precision.

/// Elementwise activation fused into the GEMM epilogues
/// ([`Tensor::matmul_bias_act_into`]) and the fused `Dense`/`Conv1d`
/// forward passes. Applying `Identity` reproduces the unfused pipeline
/// bit-for-bit; `Relu` is exactly `max(0, x)`, the same function the
/// standalone `ReLU` layer applies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Act {
    #[default]
    Identity,
    Relu,
}

impl Act {
    #[inline(always)]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Act::Identity => x,
            Act::Relu => x.max(0.0),
        }
    }
}

/// Row-block size of the [`Tensor::matmul_into`] kernel: four rows of the
/// left operand are streamed together so every row of the right operand
/// loaded from memory is reused four times from registers.
const MR: usize = 4;

/// Column-tile width of the register micro-kernel: `MR × NR` running sums
/// (4 × 8 = 32 `f32`, eight SSE registers) stay resident across the whole
/// `k` loop, leaving room for the streamed `b` tile and broadcasts even
/// on baseline x86-64 without AVX.
const NR: usize = 8;

/// Dense row-major `f32` matrix. 1-D vectors are `(1 × n)`.
/// `Default` is the empty `(0 × 0)` tensor.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wrap an existing row-major buffer. Panics if the length does not
    /// match the shape.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// Build from row slices. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A `(1 × n)` row vector.
    pub fn vector(data: Vec<f32>) -> Self {
        Tensor {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Capacity of the underlying buffer in elements — how large this
    /// tensor can be reshaped without reallocating.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Raw row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Matrix product `self · other`. Shapes `(m,k)·(k,n) → (m,n)`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// In-place matrix product `out = self · other`, reshaping `out` to
    /// `(m,n)` without reallocating when its buffer already has capacity.
    ///
    /// The kernel is register-blocked: [`MR`] rows of `self` are processed
    /// together, so each row of `other` streamed from memory feeds `MR`
    /// output rows held in cache. Every output element still accumulates
    /// its `k` products in ascending order, which keeps the result
    /// bit-identical to the naive i-k-j loop (pinned by
    /// `tests/kernels.rs`).
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: ({},{}) x ({},{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.resize_shape(m, n);
        let (a, b) = (&self.data, &other.data);
        par_rows(&mut out.data, m, n, m * k * n, |rows, o| {
            gemm_rows(rows, k, n, a, b, o)
        });
    }

    /// In-place fused dense forward:
    /// `out = act(self · w + bias)` with `bias` broadcast to every row.
    ///
    /// The bias add and activation run as a single epilogue pass over the
    /// accumulated product, so `Identity` activation reproduces
    /// `matmul` + `add_row_broadcast` bit-for-bit and `Relu` reproduces a
    /// subsequent ReLU layer bit-for-bit — with one traversal and zero
    /// intermediate buffers.
    pub fn matmul_bias_act_into(&self, w: &Tensor, bias: &Tensor, act: Act, out: &mut Tensor) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, w.cols, "bias width mismatch");
        self.matmul_into(w, out);
        let n = out.cols;
        for orow in out.data.chunks_exact_mut(n) {
            for (o, &b) in orow.iter_mut().zip(&bias.data) {
                *o = act.apply(*o + b);
            }
        }
    }

    /// `selfᵀ · other` without materializing the transpose.
    /// Shapes `(k,m)ᵀ·(k,n) → (m,n)`.
    pub fn tmatmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.tmatmul_into(other, &mut out);
        out
    }

    /// In-place `out = selfᵀ · other`, reshaping `out` without
    /// reallocating when possible.
    ///
    /// Tiled into [`MR`]`×`[`NR`] register blocks like
    /// [`Tensor::matmul_into`]; because the left operand is stored
    /// `(k × m)`, the four `x` values each `k` step needs are one
    /// contiguous load. Per-element accumulation stays in ascending-`k`
    /// order, matching the naive loop bit-for-bit.
    pub fn tmatmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows, other.rows,
            "tmatmul shape mismatch: ({},{})T x ({},{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        out.resize_shape(m, n);
        let (a, b) = (&self.data, &other.data);
        par_rows(&mut out.data, m, n, m * k * n, |rows, o| {
            tmatmul_rows(rows, k, m, n, a, b, o)
        });
    }

    /// `self · otherᵀ` without materializing the transpose.
    /// Shapes `(m,k)·(n,k)ᵀ → (m,n)`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// In-place `out = self · otherᵀ`, reshaping `out` without
    /// reallocating when possible.
    ///
    /// Blocked over output columns: [`MR`] rows of `other` are dotted
    /// against one streamed row of `self` per sweep, reusing each loaded
    /// `self` element four times. Each dot product keeps a single
    /// accumulator walked in ascending-`k` order, so results are
    /// bit-identical to the naive loop.
    pub fn matmul_t_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: ({},{}) x ({},{})T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        out.resize_shape(m, n);
        let (a, b) = (&self.data, &other.data);
        par_rows(&mut out.data, m, n, m * k * n, |rows, o| {
            matmul_t_rows(rows, k, n, a, b, o)
        });
    }

    /// Reshape to `(rows, cols)`, reusing the existing buffer whenever its
    /// capacity suffices. Element values are unspecified afterwards —
    /// callers are expected to overwrite them (all `_into` kernels do).
    pub fn resize_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrite every element with a constant.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Make `self` an exact copy of `other` (shape and contents), reusing
    /// the existing allocation when capacity suffices.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Reset to zero rows of the given width, keeping the allocation so
    /// subsequent [`Tensor::push_row`] calls append without reallocating.
    pub fn reset_rows(&mut self, cols: usize) {
        self.rows = 0;
        self.cols = cols;
        self.data.clear();
    }

    /// Append one row. Panics if the slice width does not match `cols`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "push_row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Drop the last row, keeping the allocation.
    pub fn pop_row(&mut self) {
        assert!(self.rows > 0, "pop_row on empty tensor");
        self.rows -= 1;
        self.data.truncate(self.rows * self.cols);
    }

    /// Consume `self` into its underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// In-place column sums: `out` becomes a `(1 × cols)` row vector.
    pub fn col_sum_into(&self, out: &mut Tensor) {
        out.resize_shape(1, self.cols);
        out.data.fill(0.0);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &s) in out.data.iter_mut().zip(src) {
                *o += s;
            }
        }
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// In-place transpose into a caller-owned buffer, reshaping it
    /// without reallocating when capacity suffices.
    ///
    /// Pure data movement — `Dense::backward_ws` stages `wᵀ` through a
    /// workspace buffer this way so the input-gradient product can run on
    /// the vectorizable [`Tensor::matmul_into`] kernel instead of the
    /// serial-dot [`Tensor::matmul_t_into`]; per-element accumulation
    /// order (ascending `k`) is unchanged, so results stay bit-identical.
    pub fn transpose_into(&self, out: &mut Tensor) {
        out.resize_shape(self.cols, self.rows);
        let (rows, cols) = (self.rows, self.cols);
        // 8×8 tiles: a row-major pass touches one destination cache line
        // per element; tiling keeps 8 destination lines hot while 64
        // elements land in them, which is what makes the transpose run at
        // memory bandwidth instead of cache-miss latency.
        const TB: usize = 8;
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + TB).min(rows);
            let mut c0 = 0;
            while c0 < cols {
                let c1 = (c0 + TB).min(cols);
                for r in r0..r1 {
                    let src = &self.data[r * cols..(r + 1) * cols];
                    for (c, &v) in src.iter().enumerate().take(c1).skip(c0) {
                        out.data[c * rows + r] = v;
                    }
                }
                c0 = c1;
            }
            r0 = r1;
        }
    }

    /// Elementwise sum, in place. Shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise difference `self - other` as a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Elementwise map as a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise (Hadamard) product as a new tensor.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Add a `(1 × cols)` row vector to every row, in place.
    pub fn add_row_broadcast(&mut self, row: &Tensor) {
        assert_eq!(row.rows, 1, "broadcast source must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(&row.data) {
                *d += s;
            }
        }
    }

    /// Column sums as a `(1 × cols)` row vector.
    pub fn col_sum(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &s) in out.data.iter_mut().zip(src) {
                *o += s;
            }
        }
        out
    }

    /// Sum of all elements, accumulated in `f64`.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Index of the largest element in each row (first on ties).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// True iff every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Minimum multiply-add count (`m·k·n`) before a GEMM kernel is worth
/// dispatching to the thread pool. Below this the serial kernel finishes
/// in a few microseconds and the dispatch hand-off would dominate; it
/// also keeps every small test/hot-loop GEMM off the pool entirely, so
/// `OSA_THREADS` has no effect on workloads that should stay inline.
pub(crate) const PAR_MIN_MADDS: usize = 32 * 1024;

/// Shard the `m` output rows of `out` (row stride `n`) across the current
/// thread pool when `work = m·k·n` clears [`PAR_MIN_MADDS`], otherwise run
/// `run(0..m, out)` inline. Each lane receives a contiguous, disjoint row
/// range and its matching sub-slice of `out`, so every output element is
/// computed by exactly one lane with the same ascending-`k` accumulation
/// as the serial kernel — the result is bit-identical for any worker
/// count (pinned by the worker sweep in `tests/kernels.rs`).
pub(crate) fn par_rows(
    out: &mut [f32],
    m: usize,
    n: usize,
    work: usize,
    run: impl Fn(std::ops::Range<usize>, &mut [f32]) + Sync,
) {
    if m >= 2 && n >= 1 && work >= PAR_MIN_MADDS {
        osa_runtime::with_current(|pool| {
            pool.parallel_for_slice(out, n, |_, first, rows| {
                run(first..first + rows.len() / n, rows);
            });
        });
    } else {
        run(0..m, out);
    }
}

/// Register-blocked GEMM core over output rows `rows`:
/// `o = a[rows×k] · b[k×n]`, where `o` holds exactly those rows.
///
/// The output is tiled into [`MR`]`×`[`NR`] register blocks: each tile's
/// 32 running sums stay in registers across the whole `k` loop while `b`
/// streams through 8-wide, so memory sees one store per output element
/// instead of a load+store per `k` step, and every `b` element loaded
/// feeds four multiply-add lanes. For each output element the `k` partial
/// products are still added in ascending-`p` order, which is what keeps
/// the tiled result bit-identical to the naive i-k-j loop — for any row
/// sharding, since arithmetic is per-row and identical in every path.
///
/// Zero inputs (`a[i,p] == 0.0`) skip their multiply-add — a large win
/// for post-ReLU activations, which are about half zeros. The skip is
/// applied *identically in every path* (tile, leftover columns, leftover
/// rows): it depends only on the row's own data, never on which path or
/// shard the row lands in, so results stay bit-identical across worker
/// counts. (With accumulators starting at `+0.0` and finite `b`, the
/// skip is also bit-identical to performing the `±0.0` multiply-adds.)
pub(crate) fn gemm_rows(
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    o: &mut [f32],
) {
    let (i0, i1) = (rows.start, rows.end);
    let mut i = i0;
    while i + MR <= i1 {
        let ar = [
            &a[i * k..(i + 1) * k],
            &a[(i + 1) * k..(i + 2) * k],
            &a[(i + 2) * k..(i + 3) * k],
            &a[(i + 3) * k..(i + 4) * k],
        ];
        let mut j = 0;
        // Register micro-kernel: the 4×8 accumulator tile lives in
        // registers across the entire k loop, so `o` is written exactly
        // once per element instead of loaded+stored on every k step.
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                // Fixed-size view so the 4×8 tile fully unrolls and the
                // accumulators are register-promoted.
                let brow: &[f32; NR] = b[p * n + j..p * n + j + NR]
                    .try_into()
                    .expect("NR-wide tile");
                for (accr, arr) in acc.iter_mut().zip(&ar) {
                    let x = arr[p];
                    if x == 0.0 {
                        continue;
                    }
                    for (av, &bv) in accr.iter_mut().zip(brow) {
                        *av += x * bv;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                o[(i - i0 + r) * n + j..(i - i0 + r) * n + j + NR].copy_from_slice(accr);
            }
            j += NR;
        }
        // Leftover columns: one serial dot per element, ascending `p`.
        while j < n {
            for (r, arr) in ar.iter().enumerate() {
                let mut acc = 0.0f32;
                for (p, &x) in arr.iter().enumerate() {
                    if x == 0.0 {
                        continue;
                    }
                    acc += x * b[p * n + j];
                }
                o[(i - i0 + r) * n + j] = acc;
            }
            j += 1;
        }
        i += MR;
    }
    // Leftover rows: vectorizable in-row accumulation, ascending `p`,
    // with the same per-row zero skip as the tiled path — which rows
    // land here depends on the shard boundaries, so the arithmetic must
    // match the tiled path decision-for-decision.
    while i < i1 {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut o[(i - i0) * n..(i - i0 + 1) * n];
        orow.fill(0.0);
        for (p, &x) in arow.iter().enumerate() {
            if x == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (ov, &bv) in orow.iter_mut().zip(brow) {
                *ov += x * bv;
            }
        }
        i += 1;
    }
}

/// `tmatmul` core over output rows `rows`: `o = a[k×m]ᵀ · b[k×n]` rows
/// `rows`, with `o` holding exactly those rows. Mirrors [`gemm_rows`]'s
/// 4×8 register tile; because the left operand is stored `(k × m)`, the
/// four `x` values per `p` sit contiguously at `a[p·m + i..]` — one
/// 4-wide load. Ascending-`p` accumulation per element.
fn tmatmul_rows(
    rows: std::ops::Range<usize>,
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    o: &mut [f32],
) {
    let (i0, i1) = (rows.start, rows.end);
    let mut i = i0;
    while i + MR <= i1 {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                let xs: &[f32; MR] = a[p * m + i..p * m + i + MR]
                    .try_into()
                    .expect("MR-wide load");
                let brow: &[f32; NR] = b[p * n + j..p * n + j + NR]
                    .try_into()
                    .expect("NR-wide tile");
                for (accr, &x) in acc.iter_mut().zip(xs) {
                    for (av, &bv) in accr.iter_mut().zip(brow) {
                        *av += x * bv;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                o[(i - i0 + r) * n + j..(i - i0 + r) * n + j + NR].copy_from_slice(accr);
            }
            j += NR;
        }
        // Leftover columns: one serial dot per element, ascending `p`.
        while j < n {
            for r in 0..MR {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[p * m + i + r] * b[p * n + j];
                }
                o[(i - i0 + r) * n + j] = acc;
            }
            j += 1;
        }
        i += MR;
    }
    // Leftover rows: one serial dot per element, ascending `p`.
    while i < i1 {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[p * m + i] * b[p * n + j];
            }
            o[(i - i0) * n + j] = acc;
        }
        i += 1;
    }
}

/// `matmul_t` core over output rows `rows`: `o = a[m×k] · b[n×k]ᵀ` rows
/// `rows`, with `o` holding exactly those rows. Blocked over output
/// columns: [`MR`] rows of `b` are dotted against one streamed row of `a`
/// per sweep; each dot keeps a single ascending-`k` accumulator.
fn matmul_t_rows(
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    o: &mut [f32],
) {
    let i0 = rows.start;
    for i in rows {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut o[(i - i0) * n..(i - i0 + 1) * n];
        let mut j = 0;
        while j + MR <= n {
            let (b0, b1, b2, b3) = (
                &b[j * k..(j + 1) * k],
                &b[(j + 1) * k..(j + 2) * k],
                &b[(j + 2) * k..(j + 3) * k],
                &b[(j + 3) * k..(j + 4) * k],
            );
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for ((((&av, &v0), &v1), &v2), &v3) in arow.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                s0 += av * v0;
                s1 += av * v1;
                s2 += av * v2;
                s3 += av * v3;
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += MR;
        }
        while j < n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            orow[j] = acc;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Tensor;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let id = Tensor::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn tmatmul_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Tensor::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0], vec![-3.0, 0.0]]);
        assert_eq!(a.tmatmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Tensor::from_rows(&[vec![4.0, 5.0, 6.0], vec![7.0, 8.0, 9.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn broadcast_and_col_sum() {
        let mut a = Tensor::zeros(3, 2);
        a.add_row_broadcast(&Tensor::vector(vec![1.0, -2.0]));
        assert_eq!(a.col_sum().data(), &[3.0, -6.0]);
    }

    #[test]
    fn argmax_rows_first_on_ties() {
        let a = Tensor::from_rows(&[vec![1.0, 3.0, 2.0], vec![5.0, 5.0, 1.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
