//! A minimal row-major matrix type.
//!
//! Everything the layers need — and nothing more. A `Tensor` is a dense
//! `(rows × cols)` matrix of `f32` backed by a single `Vec`; 1-D data is a
//! `(1 × n)` row vector. Loss reductions accumulate in `f64` to keep the
//! numerical gradient checks meaningful at `f32` precision.

/// Elementwise activation fused into the GEMM epilogues
/// ([`Tensor::matmul_bias_act_into`]) and the fused `Dense`/`Conv1d`
/// forward passes. Applying `Identity` reproduces the unfused pipeline
/// bit-for-bit; `Relu` is exactly `max(0, x)`, the same function the
/// standalone `ReLU` layer applies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Act {
    #[default]
    Identity,
    Relu,
}

impl Act {
    #[inline(always)]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Act::Identity => x,
            Act::Relu => x.max(0.0),
        }
    }
}

/// Number of interleaved accumulation lanes in the canonical fold order —
/// the SIMD width the kernels are written for (eight `f32`, one AVX/AVX2
/// register; two SSE registers; half an AVX-512 register).
///
/// # The fixed 8-lane fold order (kernel contract)
///
/// Every dot product of length `k` in this crate — `matmul_into`,
/// `tmatmul_into`, `matmul_t_into`, the fused bias+act epilogues, the
/// stacked ensemble GEMM, and the Conv1d im2row path — accumulates in
/// exactly this order and no other:
///
/// 1. **Lane assignment.** Partial product `p` (ascending, `0..k`)
///    accumulates into lane `p % KLANES`; each lane starts at `+0.0` and
///    adds its products in ascending `p`.
/// 2. **Fold tree.** The eight lanes reduce with the fixed pairwise tree
///    `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))` — see [`fold8`].
///
/// The bits of the result depend *only* on this lane assignment and fold
/// tree, never on blocking: row tiles ([`MR`]), column panels ([`NR`]),
/// panel packing, column-block widths ([`NB`]), and path selection are
/// free to change (even per-architecture) without changing a single
/// output bit, which is what keeps results bit-identical at any
/// `OSA_THREADS` and lets autovectorization run at full SIMD width.
/// (The previous contract pinned a single ascending-`k` accumulator,
/// which serializes the reduction behind one add-latency chain and
/// forbids vectorizing the `k` axis.)
///
/// Skipping products where `a[i,p] == 0.0` is bit-neutral under this
/// contract for finite `b`: lanes start at `+0.0`, a zero `x` contributes
/// `±0.0`, IEEE-754 addition never turns a running lane into `-0.0`
/// (`+0.0 + -0.0 == +0.0`, and `x + (-x) == +0.0`), so adding or
/// skipping the term produces identical bits. The streaming path uses
/// this to skip zero activations (about half of all post-ReLU inputs).
pub const KLANES: usize = 8;

/// Row-block size of the packed-panel micro-kernel: two rows of the left
/// operand stream together so each packed `b` panel row loaded from
/// cache feeds two output rows. Blocking only — does not affect bits.
const MR: usize = 2;

/// Column-panel width of the micro-kernel and of packed B panels. An
/// `MR × NR × KLANES` accumulator block is 2 × 8 × 8 running sums — 16
/// 8-wide registers, within the 32 vector registers of AVX-512VL and
/// spilling mildly on 16-register AVX2. Blocking only — never bits.
const NR: usize = 8;

/// Column-block width of the streaming (large-`k`) path's lane-buffer
/// accumulator: `KLANES × NB` f32 = 8 KiB, L1-resident. Blocking only.
const NB: usize = 256;

/// Reduction length at which the kernels switch from the packed-panel
/// path (B panel of `k × NR` stays cache-resident across all rows) to
/// the streaming path (B streamed once per row in `p`-major order with
/// the zero-activation skip). Path choice never affects bits.
const STREAM_MIN_K: usize = 768;

/// Row count below which the large-`k` streaming path is preferred over
/// packed panels: the streaming path re-reads all of `b` once per row,
/// so it only wins for a handful of rows (the batch-1 decision path),
/// where it replaces the pack pass entirely and skips zero activations
/// (same arithmetic, same bits). Also used by `Conv1d` to route tiny
/// batches straight through [`dot_lane8`] instead of im2row + GEMM.
pub(crate) const PACK_MIN_ROWS: usize = 4;

/// `f32`s in one 64-byte cache line — packed panels are aligned to this.
const CACHE_LINE_F32S: usize = 16;

/// The fixed lane-fold tree of the kernel contract (see [`KLANES`]):
/// `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`, evaluated exactly as
/// parenthesized.
#[inline(always)]
pub fn fold8(l: [f32; KLANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Identifier of the accumulation-order contract the compiled kernels
/// implement. Recorded in every bench report; `bench_compare` refuses to
/// compare reports from different kernel variants (timings from
/// different accumulation contracts are not like-for-like).
pub fn kernel_variant() -> &'static str {
    "lane8"
}

/// Dense row-major `f32` matrix. 1-D vectors are `(1 × n)`.
/// `Default` is the empty `(0 × 0)` tensor.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wrap an existing row-major buffer. Panics if the length does not
    /// match the shape.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// Build from row slices. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A `(1 × n)` row vector.
    pub fn vector(data: Vec<f32>) -> Self {
        Tensor {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Capacity of the underlying buffer in elements — how large this
    /// tensor can be reshaped without reallocating.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Raw row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Matrix product `self · other`. Shapes `(m,k)·(k,n) → (m,n)`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// In-place matrix product `out = self · other`, reshaping `out` to
    /// `(m,n)` without reallocating when its buffer already has capacity.
    ///
    /// Every output element accumulates its `k` products in the fixed
    /// 8-lane fold order (see [`KLANES`]), so results are bit-identical
    /// across row sharding, panel packing, and path selection — pinned
    /// against a naive lane-fold reference by `tests/kernels.rs`. For
    /// moderate `k` the kernel packs `NR`-wide column panels of `other`
    /// into a cache-aligned per-thread [`Workspace`] arena and runs an
    /// [`MR`]`×`[`NR`] register micro-kernel over them; for large `k` it
    /// streams `other` once per row through an L1-resident lane buffer,
    /// skipping zero activations (bit-neutral, see [`KLANES`]).
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: ({},{}) x ({},{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.resize_shape(m, n);
        let (a, b) = (&self.data, &other.data);
        par_rows(&mut out.data, m, n, m * k * n, |rows, o| {
            gemm_rows(rows, k, n, a, b, o)
        });
    }

    /// In-place fused dense forward:
    /// `out = act(self · w + bias)` with `bias` broadcast to every row.
    ///
    /// The bias add and activation run as a single epilogue pass over the
    /// accumulated product, so `Identity` activation reproduces
    /// `matmul` + `add_row_broadcast` bit-for-bit and `Relu` reproduces a
    /// subsequent ReLU layer bit-for-bit — with one traversal and zero
    /// intermediate buffers.
    pub fn matmul_bias_act_into(&self, w: &Tensor, bias: &Tensor, act: Act, out: &mut Tensor) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, w.cols, "bias width mismatch");
        self.matmul_into(w, out);
        let n = out.cols;
        for orow in out.data.chunks_exact_mut(n) {
            for (o, &b) in orow.iter_mut().zip(&bias.data) {
                *o = act.apply(*o + b);
            }
        }
    }

    /// `selfᵀ · other` without materializing the transpose.
    /// Shapes `(k,m)ᵀ·(k,n) → (m,n)`.
    pub fn tmatmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.tmatmul_into(other, &mut out);
        out
    }

    /// In-place `out = selfᵀ · other`, reshaping `out` without
    /// reallocating when possible.
    ///
    /// Tiled into [`MR`]`×`[`NR`] register blocks like
    /// [`Tensor::matmul_into`]; because the left operand is stored
    /// `(k × m)`, the `MR` `x` values each `k` step needs are one
    /// contiguous load. Accumulation follows the fixed 8-lane fold order
    /// (see [`KLANES`]), matching the other kernels bit-for-bit.
    pub fn tmatmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows, other.rows,
            "tmatmul shape mismatch: ({},{})T x ({},{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        out.resize_shape(m, n);
        let (a, b) = (&self.data, &other.data);
        par_rows(&mut out.data, m, n, m * k * n, |rows, o| {
            tmatmul_rows(rows, k, m, n, a, b, o)
        });
    }

    /// `self · otherᵀ` without materializing the transpose.
    /// Shapes `(m,k)·(n,k)ᵀ → (m,n)`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// In-place `out = self · otherᵀ`, reshaping `out` without
    /// reallocating when possible.
    ///
    /// Both operands are contiguous along `k`, so each dot runs all
    /// eight lanes as one vector accumulator, blocked four `other` rows
    /// at a time to reuse the streamed `self` row. Accumulation follows
    /// the fixed 8-lane fold order (see [`KLANES`]), bit-identical to
    /// staging `otherᵀ` and calling [`Tensor::matmul_into`].
    pub fn matmul_t_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: ({},{}) x ({},{})T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        out.resize_shape(m, n);
        let (a, b) = (&self.data, &other.data);
        par_rows(&mut out.data, m, n, m * k * n, |rows, o| {
            matmul_t_rows(rows, k, n, a, b, o)
        });
    }

    /// Reshape to `(rows, cols)`, reusing the existing buffer whenever its
    /// capacity suffices. Element values are unspecified afterwards —
    /// callers are expected to overwrite them (all `_into` kernels do).
    pub fn resize_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrite every element with a constant.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Make `self` an exact copy of `other` (shape and contents), reusing
    /// the existing allocation when capacity suffices.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Reset to zero rows of the given width, keeping the allocation so
    /// subsequent [`Tensor::push_row`] calls append without reallocating.
    pub fn reset_rows(&mut self, cols: usize) {
        self.rows = 0;
        self.cols = cols;
        self.data.clear();
    }

    /// Append one row. Panics if the slice width does not match `cols`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "push_row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Drop the last row, keeping the allocation.
    pub fn pop_row(&mut self) {
        assert!(self.rows > 0, "pop_row on empty tensor");
        self.rows -= 1;
        self.data.truncate(self.rows * self.cols);
    }

    /// Consume `self` into its underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// In-place column sums: `out` becomes a `(1 × cols)` row vector.
    pub fn col_sum_into(&self, out: &mut Tensor) {
        out.resize_shape(1, self.cols);
        out.data.fill(0.0);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &s) in out.data.iter_mut().zip(src) {
                *o += s;
            }
        }
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// In-place transpose into a caller-owned buffer, reshaping it
    /// without reallocating when capacity suffices.
    ///
    /// Pure data movement — `Dense::backward_ws` stages `wᵀ` through a
    /// workspace buffer this way so the input-gradient product can reuse
    /// the packed-panel [`Tensor::matmul_into`] kernel; both kernels
    /// accumulate in the fixed 8-lane fold order (see [`KLANES`]), so
    /// staging the transpose does not change a single output bit.
    pub fn transpose_into(&self, out: &mut Tensor) {
        out.resize_shape(self.cols, self.rows);
        let (rows, cols) = (self.rows, self.cols);
        // 8×8 tiles: a row-major pass touches one destination cache line
        // per element; tiling keeps 8 destination lines hot while 64
        // elements land in them, which is what makes the transpose run at
        // memory bandwidth instead of cache-miss latency.
        const TB: usize = 8;
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + TB).min(rows);
            let mut c0 = 0;
            while c0 < cols {
                let c1 = (c0 + TB).min(cols);
                for r in r0..r1 {
                    let src = &self.data[r * cols..(r + 1) * cols];
                    for (c, &v) in src.iter().enumerate().take(c1).skip(c0) {
                        out.data[c * rows + r] = v;
                    }
                }
                c0 = c1;
            }
            r0 = r1;
        }
    }

    /// Elementwise sum, in place. Shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise difference `self - other` as a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Elementwise map as a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise (Hadamard) product as a new tensor.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Add a `(1 × cols)` row vector to every row, in place.
    pub fn add_row_broadcast(&mut self, row: &Tensor) {
        assert_eq!(row.rows, 1, "broadcast source must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(&row.data) {
                *d += s;
            }
        }
    }

    /// Column sums as a `(1 × cols)` row vector.
    pub fn col_sum(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &s) in out.data.iter_mut().zip(src) {
                *o += s;
            }
        }
        out
    }

    /// Sum of all elements, accumulated in `f64`.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Index of the largest element in each row (first on ties).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// True iff every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Minimum multiply-add count (`m·k·n`) before a GEMM kernel is worth
/// dispatching to the thread pool. Below this the serial kernel finishes
/// in a few microseconds and the dispatch hand-off would dominate; it
/// also keeps every small test/hot-loop GEMM off the pool entirely, so
/// `OSA_THREADS` has no effect on workloads that should stay inline.
pub(crate) const PAR_MIN_MADDS: usize = 32 * 1024;

/// Shard the `m` output rows of `out` (row stride `n`) across the current
/// thread pool when `work = m·k·n` clears [`PAR_MIN_MADDS`], otherwise run
/// `run(0..m, out)` inline. Each lane receives a contiguous, disjoint row
/// range and its matching sub-slice of `out`, so every output element is
/// computed by exactly one lane with the same ascending-`k` accumulation
/// as the serial kernel — the result is bit-identical for any worker
/// count (pinned by the worker sweep in `tests/kernels.rs`).
pub(crate) fn par_rows(
    out: &mut [f32],
    m: usize,
    n: usize,
    work: usize,
    run: impl Fn(std::ops::Range<usize>, &mut [f32]) + Sync,
) {
    if m >= 2 && n >= 1 && work >= PAR_MIN_MADDS {
        osa_runtime::with_current(|pool| {
            pool.parallel_for_slice(out, n, |_, first, rows| {
                run(first..first + rows.len() / n, rows);
            });
        });
    } else {
        run(0..m, out);
    }
}

thread_local! {
    /// Per-thread arena for packed B panels and nonzero-index scratch.
    /// `matmul_into` has no workspace parameter and pool lanes pack
    /// independently, so the pack buffers live in thread-local storage:
    /// each thread allocates once, then reuses — steady state performs
    /// no heap allocation (covered by the bench `allocs_per_iter` gate).
    static PACK_ARENA: std::cell::RefCell<crate::workspace::Workspace> =
        std::cell::RefCell::new(crate::workspace::Workspace::new());
}

/// Offset into `buf` of the first 64-byte-aligned element, so packed
/// panels start on a cache-line boundary regardless of where the arena's
/// allocation landed.
#[inline]
fn cache_align_offset(buf: &[f32]) -> usize {
    let addr = buf.as_ptr() as usize;
    (addr.next_multiple_of(64) - addr) / std::mem::size_of::<f32>()
}

/// One `KLANES`-product group of a packed `b` panel: `KLANES` rows of
/// `NR` columns, contiguous. Viewing the panel through fixed-size groups
/// lets every index in the micro-kernel be a compile-time constant.
const GROUP: usize = NR * KLANES;

/// The MR×NR register micro-kernel: `R` rows of `a` against one packed
/// `NR`-wide column panel of `b` (`panel[p*NR + c]` holds `b[p][j + c]`;
/// exactly `k·NR` floats).
///
/// The `R × KLANES × NR` running sums live in registers across the whole
/// `k` loop; product `p` lands in lane `p % KLANES` and the lanes reduce
/// through [`fold8`] — the contract order, see [`KLANES`]. Two codegen
/// invariants keep this at SIMD speed: every accumulator index is a
/// compile-time constant after the `l`/`r` unrolls (one variable lane
/// index would spill the whole array to the stack), and panel/row loads
/// go through fixed-size array views converted once per group (one
/// bounds check per group instead of per lane).
#[inline(always)]
fn tile<const R: usize>(ars: [&[f32]; R], k: usize, panel: &[f32]) -> [[f32; NR]; R] {
    let mut acc = [[[0.0f32; NR]; KLANES]; R];
    let groups = k / KLANES;
    for g in 0..groups {
        let bg: &[f32; GROUP] = panel[g * GROUP..][..GROUP].try_into().expect("panel group");
        let ags: [&[f32; KLANES]; R] = std::array::from_fn(|r| {
            ars[r][g * KLANES..][..KLANES]
                .try_into()
                .expect("lane group")
        });
        for l in 0..KLANES {
            let brow: &[f32; NR] = bg[l * NR..][..NR].try_into().expect("NR-wide tile");
            for r in 0..R {
                acc[r][l] = fma8(acc[r][l], ags[r][l], brow);
            }
        }
    }
    // Tail: `p` is a multiple of `KLANES` here, so product `p + l` lands
    // in lane `l` — the guarded constant-`l` unroll keeps the
    // accumulator indices compile-time constants.
    let p = groups * KLANES;
    let rem = k - p;
    for l in 0..KLANES {
        if l < rem {
            let brow: &[f32; NR] = panel[(p + l) * NR..][..NR]
                .try_into()
                .expect("NR-wide tile");
            for r in 0..R {
                acc[r][l] = fma8(acc[r][l], ars[r][p + l], brow);
            }
        }
    }
    let mut out = [[0.0f32; NR]; R];
    for (outr, accr) in out.iter_mut().zip(&acc) {
        *outr = fold8_wide(accr);
    }
    out
}

/// One lane step of the micro-kernel as a whole-array value operation:
/// `acc + x·b` element-wise. Returning a fresh array (instead of
/// mutating through `iter_mut`) is what lets LLVM's SLP vectorizer treat
/// each lane accumulator as a single SIMD register — the in-place form
/// compiles to scalar adds at ~7× the cost.
#[inline(always)]
fn fma8(acc: [f32; NR], x: f32, b: &[f32; NR]) -> [f32; NR] {
    std::array::from_fn(|c| acc[c] + x * b[c])
}

/// Element-wise lane fold for a whole `NR`-wide accumulator block: the
/// [`fold8`] tree applied per column, but as seven vector adds over the
/// lane rows instead of `NR` scalar folds with horizontal extracts.
/// `fold8_wide(acc)[c] == fold8([acc[0][c], …, acc[7][c]])` bit-for-bit
/// because f32 addition is element-wise — same tree, same operands.
#[inline(always)]
fn fold8_wide(l: &[[f32; NR]; KLANES]) -> [f32; NR] {
    fn add(a: &[f32; NR], b: &[f32; NR]) -> [f32; NR] {
        std::array::from_fn(|c| a[c] + b[c])
    }
    add(
        &add(&add(&l[0], &l[1]), &add(&l[2], &l[3])),
        &add(&add(&l[4], &l[5]), &add(&l[6], &l[7])),
    )
}

/// One lane-fold dot product with a strided right operand: column `off`
/// of a row-major `(k × stride)` matrix. The edge path for output
/// columns beyond the last full `NR` panel — contract order, same bits.
#[inline(always)]
fn dot_lane8_strided(arow: &[f32], b: &[f32], stride: usize, off: usize) -> f32 {
    let k = arow.len();
    let mut lanes = [0.0f32; KLANES];
    let mut p = 0;
    while p + KLANES <= k {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += arow[p + l] * b[(p + l) * stride + off];
        }
        p += KLANES;
    }
    let rem = k - p; // tail: lane == l, constant-indexed (see `tile`)
    for l in 0..KLANES {
        if l < rem {
            lanes[l] += arow[p + l] * b[(p + l) * stride + off];
        }
    }
    fold8(lanes)
}

/// Run the micro-kernel over every row in `rows` for the panel at
/// column `j`, two rows at a time with a single-row tail.
#[inline(always)]
fn tile_rows(
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    j: usize,
    a: &[f32],
    panel: &[f32],
    o: &mut [f32],
) {
    let (i0, i1) = (rows.start, rows.end);
    let mut i = i0;
    while i + MR <= i1 {
        let t = tile::<MR>(
            [&a[i * k..(i + 1) * k], &a[(i + 1) * k..(i + 2) * k]],
            k,
            panel,
        );
        for (r, trow) in t.iter().enumerate() {
            o[(i - i0 + r) * n + j..][..NR].copy_from_slice(trow);
        }
        i += MR;
    }
    while i < i1 {
        let t = tile::<1>([&a[i * k..(i + 1) * k]], k, panel);
        o[(i - i0) * n + j..][..NR].copy_from_slice(&t[0]);
        i += 1;
    }
}

/// GEMM core over output rows `rows`: `o = a[rows×k] · b[k×n]`, where
/// `o` holds exactly those rows. Every output element accumulates in the
/// fixed 8-lane fold order (see [`KLANES`]) on every path below, so path
/// and blocking choices are pure performance tuning:
///
/// - **Packed-panel path**: `NR`-wide column panels of `b` are packed
///   into a cache-aligned buffer from the per-thread
///   [`Workspace`](crate::workspace::Workspace) arena, and an
///   [`MR`]`×`[`NR`]`×`[`KLANES`] register micro-kernel streams every
///   row block over the resident panel. Packing is unconditional: the
///   micro-kernel's bounds checks only vanish when the panel layout is
///   exact, which is worth one extra copy of `b` even at one row.
/// - **Streaming path** (`k ≥ `[`STREAM_MIN_K`], where a panel would no
///   longer be cache-resident): per row, `b` streams exactly once in
///   `p`-major order through an L1 lane buffer of [`NB`] columns; rows
///   with zero activations (about half, post-ReLU) are skipped via a
///   branchless nonzero-index compaction — bit-neutral, see [`KLANES`].
/// - **Edge columns** (`n % NR`): per-element lane-fold dots.
pub(crate) fn gemm_rows(
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    o: &mut [f32],
) {
    // The streaming path reads all of `b` once *per row*, so it only
    // wins for row counts too small to amortize a packed panel (the
    // batch-1 decision path); batches re-use each packed panel across
    // every row instead.
    if k >= STREAM_MIN_K && n >= NR && rows.len() < PACK_MIN_ROWS {
        return stream_rows(rows, k, n, a, b, o);
    }
    let (i0, i1) = (rows.start, rows.end);
    let panels = n / NR;
    if panels > 0 {
        PACK_ARENA.with(|arena| {
            let mut ws = arena.borrow_mut();
            let mut buf = ws.take(1, k * NR + CACHE_LINE_F32S);
            let data = buf.data_mut();
            let off = cache_align_offset(data);
            let panel = &mut data[off..off + k * NR];
            for j in (0..panels * NR).step_by(NR) {
                for p in 0..k {
                    panel[p * NR..(p + 1) * NR].copy_from_slice(&b[p * n + j..p * n + j + NR]);
                }
                tile_rows(i0..i1, k, n, j, a, panel, o);
            }
            ws.recycle(buf);
        });
    }
    // Edge columns beyond the last full panel.
    for i in i0..i1 {
        let arow = &a[i * k..(i + 1) * k];
        for j in panels * NR..n {
            o[(i - i0) * n + j] = dot_lane8_strided(arow, b, n, j);
        }
    }
}

/// The streaming (large-`k`) GEMM path: per output row, `b` is read
/// exactly once top to bottom while `KLANES` lane rows of up to [`NB`]
/// columns accumulate in an 8 KiB L1 buffer; the lane rows then reduce
/// with the contract fold tree. Zero activations skip their `b` row
/// entirely — the skip list is built with a branchless compaction so the
/// hot loop runs unpredicted. Bits are identical to the packed-panel
/// path (same lane assignment, same fold — see [`KLANES`]).
fn stream_rows(
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    o: &mut [f32],
) {
    let (i0, i1) = (rows.start, rows.end);
    PACK_ARENA.with(|arena| {
        let mut ws = arena.borrow_mut();
        // Nonzero indices as f32 bit-patterns so the scratch rides the
        // same f32 arena as the pack buffers (u32 -> f32 bit casts are
        // exact in both directions).
        let mut nz_buf = ws.take(1, k);
        let nz_data = nz_buf.data_mut();
        for i in i0..i1 {
            let arow = &a[i * k..(i + 1) * k];
            // Branchless nonzero compaction: the write always happens,
            // the cursor only advances on nonzero — no mispredicted
            // branch per element, unlike `if x != 0 { push }`.
            let mut nnz = 0usize;
            for (p, &x) in arow.iter().enumerate() {
                nz_data[nnz] = f32::from_bits(p as u32);
                nnz += (x != 0.0) as usize;
            }
            let nz = &nz_data[..nnz];
            let orow = &mut o[(i - i0) * n..(i - i0 + 1) * n];
            let mut j0 = 0;
            while j0 < n {
                let nb = (n - j0).min(NB);
                let mut acc = [[0.0f32; NB]; KLANES];
                for &pv in nz {
                    let p = pv.to_bits() as usize;
                    let x = arow[p];
                    let lane = &mut acc[p % KLANES];
                    let brow = &b[p * n + j0..p * n + j0 + nb];
                    for (av, &bv) in lane[..nb].iter_mut().zip(brow) {
                        *av += x * bv;
                    }
                }
                for (jj, ov) in orow[j0..j0 + nb].iter_mut().enumerate() {
                    *ov = fold8(std::array::from_fn(|l| acc[l][jj]));
                }
                j0 += nb;
            }
        }
        ws.recycle(nz_buf);
    });
}

/// `tmatmul` core over output rows `rows`: `o = a[k×m]ᵀ · b[k×n]` rows
/// `rows`, with `o` holding exactly those rows. The row slice of `aᵀ` is
/// staged contiguously in the arena (one pass over `a`, read row-major),
/// then the shared [`gemm_rows`] kernel runs — one code path, one
/// accumulation order. `k` here is a training batch size, so the staged
/// slice is small relative to the `m·k·n` multiply volume it feeds.
fn tmatmul_rows(
    rows: std::ops::Range<usize>,
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    o: &mut [f32],
) {
    let (i0, i1) = (rows.start, rows.end);
    let mrows = i1 - i0;
    // Take the staging buffer, then release the arena borrow before
    // `gemm_rows` takes its own pack buffer from the same arena.
    let mut at_buf = PACK_ARENA.with(|arena| arena.borrow_mut().take(1, mrows * k));
    let at = at_buf.data_mut();
    for p in 0..k {
        let arow = &a[p * m + i0..p * m + i1];
        for (c, &v) in arow.iter().enumerate() {
            at[c * k + p] = v;
        }
    }
    gemm_rows(0..mrows, k, n, at, b, o);
    PACK_ARENA.with(|arena| arena.borrow_mut().recycle(at_buf));
}

/// Output-column block of the `matmul_t` kernel: rows of `b` dotted
/// against one streamed row of `a` per sweep, reusing each loaded `a`
/// lane group `JT` times.
const JT: usize = 4;

/// One lane-fold dot of two contiguous `k`-vectors — all eight lanes run
/// as one vector accumulator over `KLANES`-element groups. Contract
/// order (see [`KLANES`]).
#[inline(always)]
pub(crate) fn dot_lane8(arow: &[f32], brow: &[f32]) -> f32 {
    let k = arow.len();
    let mut lanes = [0.0f32; KLANES];
    let mut p = 0;
    while p + KLANES <= k {
        let ax: &[f32; KLANES] = arow[p..][..KLANES].try_into().expect("lane group");
        let bx: &[f32; KLANES] = brow[p..][..KLANES].try_into().expect("lane group");
        for (lane, (&av, &bv)) in lanes.iter_mut().zip(ax.iter().zip(bx)) {
            *lane += av * bv;
        }
        p += KLANES;
    }
    let rem = k - p; // tail: lane == l, constant-indexed (see `tile`)
    for l in 0..KLANES {
        if l < rem {
            lanes[l] += arow[p + l] * brow[p + l];
        }
    }
    fold8(lanes)
}

/// `matmul_t` core over output rows `rows`: `o = a[m×k] · b[n×k]ᵀ` rows
/// `rows`, with `o` holding exactly those rows. Both operands are
/// contiguous along `k`, so every dot is a full-width lane-fold dot
/// ([`dot_lane8`]), blocked [`JT`] `b` rows per sweep of the streamed
/// `a` row. Contract lane order (see [`KLANES`]).
fn matmul_t_rows(
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    o: &mut [f32],
) {
    let i0 = rows.start;
    for i in rows {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut o[(i - i0) * n..(i - i0 + 1) * n];
        let mut j = 0;
        while j + JT <= n {
            let mut lanes = [[0.0f32; KLANES]; JT];
            let mut p = 0;
            while p + KLANES <= k {
                let ax: &[f32; KLANES] = arow[p..][..KLANES].try_into().expect("lane group");
                for (r, lr) in lanes.iter_mut().enumerate() {
                    let bx: &[f32; KLANES] = b[(j + r) * k + p..][..KLANES]
                        .try_into()
                        .expect("lane group");
                    for (lane, (&av, &bv)) in lr.iter_mut().zip(ax.iter().zip(bx)) {
                        *lane += av * bv;
                    }
                }
                p += KLANES;
            }
            let rem = k - p; // tail: lane == l, constant-indexed (see `tile`)
            for l in 0..KLANES {
                if l < rem {
                    for (r, lr) in lanes.iter_mut().enumerate() {
                        lr[l] += arow[p + l] * b[(j + r) * k + p + l];
                    }
                }
            }
            for (r, lr) in lanes.iter().enumerate() {
                orow[j + r] = fold8(*lr);
            }
            j += JT;
        }
        while j < n {
            orow[j] = dot_lane8(arow, &b[j * k..(j + 1) * k]);
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Tensor;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let id = Tensor::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn tmatmul_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Tensor::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0], vec![-3.0, 0.0]]);
        assert_eq!(a.tmatmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Tensor::from_rows(&[vec![4.0, 5.0, 6.0], vec![7.0, 8.0, 9.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn broadcast_and_col_sum() {
        let mut a = Tensor::zeros(3, 2);
        a.add_row_broadcast(&Tensor::vector(vec![1.0, -2.0]));
        assert_eq!(a.col_sum().data(), &[3.0, -6.0]);
    }

    #[test]
    fn argmax_rows_first_on_ties() {
        let a = Tensor::from_rows(&[vec![1.0, 3.0, 2.0], vec![5.0, 5.0, 1.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
