//! [`StackedNet`]: batched inference across an ensemble of identical
//! networks as one grouped GEMM per layer.
//!
//! The OSAP uncertainty signals (`osa-core`) need the outputs of all
//! `R = 5` ensemble replicas for *every* decision. Running five
//! `Sequential::forward_ws` passes costs five dispatches, five workspace
//! round-trips and five strided weight walks per layer; a `StackedNet`
//! instead stores the replicas' weights contiguously stacked and computes
//! each layer for all replicas in **one** kernel dispatch — the
//! "single batched GEMM across the replicas" design from ROADMAP item 1,
//! and the building block for session-major batched serving (item 2).
//!
//! # Layout
//!
//! Inputs are *replica-major*: a batch of `s` observation rows becomes an
//! `(R·s × in_dim)` matrix whose rows `[r·s, (r+1)·s)` belong to replica
//! `r` (every replica sees the same `s` rows). Each layer holds one
//! `(R·in × out)` weight tensor — replica `r`'s dense block is rows
//! `[r·in, (r+1)·in)` — and an `(R × out)` bias matrix. The grouped
//! kernel walks the stacked output rows exactly like
//! [`crate::tensor::Tensor::matmul_into`] walks a plain GEMM, routing
//! each replica's row run to its weight block, so the whole ensemble
//! forward is one `par_rows` dispatch per layer.
//!
//! # Lowering
//!
//! Construction lowers every supported layer to a dense equivalent:
//!
//! - `Dense` is taken as-is — the stacked forward reproduces the
//!   replica's own forward **bit-for-bit** (same [`gemm_rows`] kernel,
//!   same bias/activation epilogue);
//! - `Conv1d` is scattered into its equivalent `(in_dim × out_dim)`
//!   matrix (a convolution is a linear map). The replica's `Conv1d`
//!   seeds its accumulator with the bias while the dense epilogue adds
//!   the bias after the sum, so conv-lowered layers match the replica
//!   forward to rounding (~1e-6 relative), not bit-for-bit;
//! - `Branches` becomes the block-diagonal of its lowered parts (the
//!   parts must share one activation, which Pensieve's towers do).
//!
//! The determinism contract is carried by the stacked path itself: row
//! arithmetic depends only on that row's replica and input, never on the
//! batch size, the run split, or the worker count — pinned by
//! `tests/stacked.rs` across pools {1, 2, 4, 8} and batch regroupings.

use crate::net::Sequential;
use crate::serialize::{LayerSpec, NetSpec};
use crate::tensor::{gemm_rows, par_rows, Act, Tensor};
use crate::workspace::Workspace;

/// Error constructing a [`StackedNet`].
#[derive(Debug)]
pub enum StackError {
    /// No replicas were supplied.
    Empty,
    /// A replica's architecture disagrees with replica 0's.
    Mismatch(String),
    /// A layer kind the lowering does not support (standalone `ReLU` /
    /// `Softmax`; use fused activations and apply softmax downstream).
    Unsupported(String),
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackError::Empty => write!(f, "stacked net needs at least one replica"),
            StackError::Mismatch(msg) => write!(f, "replica architecture mismatch: {msg}"),
            StackError::Unsupported(msg) => write!(f, "unsupported layer for stacking: {msg}"),
        }
    }
}

impl std::error::Error for StackError {}

/// One lowered layer: every replica's dense-equivalent weights stacked
/// row-wise, plus per-replica bias rows and the shared activation.
/// `pub(crate)` so `crate::quant` can calibrate and quantize from the
/// lowered form.
pub(crate) struct StackedLayer {
    pub(crate) in_dim: usize,
    pub(crate) out_dim: usize,
    /// `(replicas·in_dim) × out_dim`; replica `r` owns rows
    /// `[r·in_dim, (r+1)·in_dim)`.
    pub(crate) w: Tensor,
    /// `replicas × out_dim`.
    pub(crate) b: Tensor,
    pub(crate) act: Act,
}

/// An ensemble of `R` identical-architecture feed-forward networks
/// evaluated as one grouped GEMM per layer. See the module docs.
pub struct StackedNet {
    replicas: usize,
    layers: Vec<StackedLayer>,
}

/// A layer lowered to dense form: `(in × out)` weights, `1 × out` bias.
struct Lowered {
    w: Tensor,
    b: Tensor,
    act: Act,
}

/// Lower one serialized layer to its dense equivalent.
fn lower(spec: &LayerSpec) -> Result<Lowered, StackError> {
    match spec {
        LayerSpec::Dense { w, b, act } => Ok(Lowered {
            w: w.clone(),
            b: b.clone(),
            act: *act,
        }),
        LayerSpec::Conv1d {
            in_channels,
            length,
            out_channels,
            kernel,
            w,
            b,
            act,
        } => {
            let (ic_n, len, oc_n, ker) = (*in_channels, *length, *out_channels, *kernel);
            let out_len = len - ker + 1;
            let (in_dim, out_dim) = (ic_n * len, oc_n * out_len);
            let mut dw = Tensor::zeros(in_dim, out_dim);
            let mut db = Tensor::zeros(1, out_dim);
            for oc in 0..oc_n {
                for t in 0..out_len {
                    let col = oc * out_len + t;
                    db.set(0, col, b.get(0, oc));
                    for ic in 0..ic_n {
                        for kk in 0..ker {
                            dw.set(ic * len + t + kk, col, w.get(oc, ic * ker + kk));
                        }
                    }
                }
            }
            Ok(Lowered {
                w: dw,
                b: db,
                act: *act,
            })
        }
        LayerSpec::Branches { parts } => {
            let lowered = parts.iter().map(lower).collect::<Result<Vec<_>, _>>()?;
            let act = lowered[0].act;
            if lowered.iter().any(|p| p.act != act) {
                return Err(StackError::Unsupported(
                    "branches parts with differing activations".into(),
                ));
            }
            let in_dim: usize = lowered.iter().map(|p| p.w.rows()).sum();
            let out_dim: usize = lowered.iter().map(|p| p.w.cols()).sum();
            let mut dw = Tensor::zeros(in_dim, out_dim);
            let mut db = Tensor::zeros(1, out_dim);
            let (mut ro, mut co) = (0, 0);
            for p in &lowered {
                for r in 0..p.w.rows() {
                    for c in 0..p.w.cols() {
                        dw.set(ro + r, co + c, p.w.get(r, c));
                    }
                }
                for c in 0..p.b.cols() {
                    db.set(0, co + c, p.b.get(0, c));
                }
                ro += p.w.rows();
                co += p.w.cols();
            }
            Ok(Lowered { w: dw, b: db, act })
        }
        LayerSpec::ReLU => Err(StackError::Unsupported(
            "standalone ReLU layer (use a fused Dense/Conv1d activation)".into(),
        )),
        LayerSpec::Softmax => Err(StackError::Unsupported(
            "softmax layer (stack logits and apply softmax downstream)".into(),
        )),
    }
}

impl StackedNet {
    /// Stack replicas given by their serialized specs. All replicas must
    /// share one architecture (layer count, geometry, activations).
    pub fn from_specs(specs: &[NetSpec]) -> Result<StackedNet, StackError> {
        if specs.is_empty() {
            return Err(StackError::Empty);
        }
        let replicas = specs.len();
        let depth = specs[0].layers.len();
        for (r, s) in specs.iter().enumerate() {
            if s.layers.len() != depth {
                return Err(StackError::Mismatch(format!(
                    "replica {r} has {} layers, replica 0 has {depth}",
                    s.layers.len()
                )));
            }
        }
        let mut layers = Vec::with_capacity(depth);
        for li in 0..depth {
            let lowered = specs
                .iter()
                .map(|s| lower(&s.layers[li]))
                .collect::<Result<Vec<_>, _>>()?;
            let (in_dim, out_dim, act) = (lowered[0].w.rows(), lowered[0].w.cols(), lowered[0].act);
            for (r, p) in lowered.iter().enumerate() {
                if p.w.rows() != in_dim || p.w.cols() != out_dim || p.act != act {
                    return Err(StackError::Mismatch(format!(
                        "layer {li}: replica {r} is {}x{} ({:?}), replica 0 is \
                         {in_dim}x{out_dim} ({act:?})",
                        p.w.rows(),
                        p.w.cols(),
                        p.act
                    )));
                }
            }
            let mut w = Tensor::zeros(replicas * in_dim, out_dim);
            let mut b = Tensor::zeros(replicas, out_dim);
            for (r, p) in lowered.iter().enumerate() {
                for row in 0..in_dim {
                    w.row_mut(r * in_dim + row).copy_from_slice(p.w.row(row));
                }
                b.row_mut(r).copy_from_slice(p.b.row(0));
            }
            layers.push(StackedLayer {
                in_dim,
                out_dim,
                w,
                b,
                act,
            });
        }
        // Widths must chain.
        for pair in layers.windows(2) {
            if pair[0].out_dim != pair[1].in_dim {
                return Err(StackError::Mismatch(format!(
                    "layer widths do not chain: {} -> {}",
                    pair[0].out_dim, pair[1].in_dim
                )));
            }
        }
        Ok(StackedNet { replicas, layers })
    }

    /// Stack live networks (snapshot of their current weights).
    pub fn from_nets(nets: &[&Sequential]) -> Result<StackedNet, StackError> {
        let specs: Vec<NetSpec> = nets.iter().map(|n| n.to_spec()).collect();
        StackedNet::from_specs(&specs)
    }

    pub fn replicas(&self) -> usize {
        self.replicas
    }

    pub(crate) fn layers_internal(&self) -> &[StackedLayer] {
        &self.layers
    }

    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty net").out_dim
    }

    /// Forward `x` (`batch × in_dim`) through every replica:
    /// `out` becomes `(replicas·batch) × out_dim`, replica-major (see the
    /// module docs). Allocation-free once `ws` and `out` are warm.
    pub fn forward_into(&self, x: &Tensor, ws: &mut Workspace, out: &mut Tensor) {
        assert_eq!(x.cols(), self.in_dim(), "stacked input width mismatch");
        let (r, batch) = (self.replicas, x.rows());
        let mut cur = ws.take(r * batch, self.in_dim());
        for rep in 0..r {
            for s in 0..batch {
                cur.row_mut(rep * batch + s).copy_from_slice(x.row(s));
            }
        }
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            if li == last {
                layer.forward(batch, &cur, out);
            } else {
                let mut next = ws.take(r * batch, layer.out_dim);
                layer.forward(batch, &cur, &mut next);
                ws.recycle(std::mem::replace(&mut cur, next));
            }
        }
        ws.recycle(cur);
    }
}

impl StackedLayer {
    /// `out = act(x · W_rep + b_rep)` for every stacked row, in one
    /// grouped dispatch; `x` is `(R·batch) × in_dim` replica-major.
    pub(crate) fn forward(&self, batch: usize, x: &Tensor, out: &mut Tensor) {
        let r = self.w.rows() / self.in_dim;
        debug_assert_eq!(x.rows(), r * batch);
        let (k, n) = (self.in_dim, self.out_dim);
        let m = r * batch;
        out.resize_shape(m, n);
        let (a, w) = (x.data(), self.w.data());
        // One dispatch over all stacked rows: each lane's contiguous row
        // range is split at replica boundaries and each run multiplies
        // against its replica's weight block. Per-row arithmetic is the
        // plain `gemm_rows` kernel, so the result is bit-identical for
        // any worker count and any batch regrouping.
        par_rows(out.data_mut(), m, n, m * k * n, |rows, o| {
            let mut start = rows.start;
            while start < rows.end {
                let rep = start / batch;
                let run_end = rows.end.min((rep + 1) * batch);
                let off = (start - rows.start) * n;
                gemm_rows(
                    start..run_end,
                    k,
                    n,
                    a,
                    &w[rep * k * n..(rep + 1) * k * n],
                    &mut o[off..off + (run_end - start) * n],
                );
                start = run_end;
            }
        });
        // Bias + activation epilogue, per replica row — the same
        // sum-then-bias order as `matmul_bias_act_into`.
        for (i, orow) in out.data_mut().chunks_exact_mut(n).enumerate() {
            let brow = self.b.row(i / batch);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = self.act.apply(*o + bv);
            }
        }
    }
}
