//! `osa-cc` — second application domain: congestion control
//! (DESIGN.md §1 row 12, paper §5 "other application domains").
//!
//! # Contract
//!
//! This crate will replay the paper's story in a second domain to show the
//! OSAP layer is domain-generic:
//!
//! - a trace-driven bottleneck link with a drop-tail queue, fed by
//!   [`osa_trace`] capacity processes;
//! - an Aurora-style rate-control MDP (observations: latency ratio, send
//!   ratio, throughput ratio over a monitor-interval history) built on
//!   [`osa_mdp`];
//! - an MLP actor-critic agent from [`osa_nn`] trained with the shared A2C
//!   trainer;
//! - AIMD as the battle-tested default policy;
//! - CC instantiations of U_S and U_π through the generic
//!   `UncertaintySignal<O>` / `SafeAgent<O>` machinery of [`osa_core`].
#![forbid(unsafe_code)]

/// Marks the crate as scaffolded but not yet implemented; removed once the
/// CC environment lands.
pub const IMPLEMENTED: bool = false;

/// AIMD multiplicative-decrease factor the default policy will use.
pub const AIMD_BETA: f32 = 0.5;

#[cfg(test)]
mod tests {
    #[test]
    fn scaffold_compiles() {
        let beta = std::hint::black_box(super::AIMD_BETA);
        assert!(beta > 0.0 && beta < 1.0);
    }
}
