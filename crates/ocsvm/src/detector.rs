//! Novelty detectors behind the U_S uncertainty signal.
//!
//! The paper's classic-ND baseline is a one-class SVM ([`OcSvm`]); the
//! [`KnnDetector`] and [`MahalanobisDetector`] ablations answer "does the
//! headline ordering depend on the detector choice?" All three share one
//! [`NoveltyDetector`] contract: `fit` on a matrix of in-distribution
//! feature rows, then score queries — higher means more novel — either
//! one row at a time ([`NoveltyDetector::score`]) or a whole batch in
//! one call ([`NoveltyDetector::score_batch_into`]).
//!
//! # The batched scoring engine
//!
//! [`OcSvm`] scoring is dominated by `Σᵢ αᵢ exp(-γ‖z(x) − svᵢ‖²)` over
//! ~650 support vectors. The batched engine decomposes the distance,
//! `‖z − svᵢ‖² = ‖z‖² + ‖svᵢ‖² − 2·z·svᵢᵀ`, so the cross terms for a
//! batch of `S` queries become ONE `S×d · (nsv×d)ᵀ` GEMM through the
//! `osa-nn` lane-group micro-kernels, followed by a fused
//! exponential + α-weighted lane-8 reduction per row ([`crate::kernel`]).
//! Support-vector norms (`‖svᵢ‖²`) and the α·exp weights' inputs are
//! precomputed at fit time; each query is standardized exactly once
//! (the old scalar loop re-divided by the per-dimension std for every
//! support vector).
//!
//! The batched path is the *canonical* computation: the scalar `score`
//! delegates to a batch of one, so scores are bit-identical at every
//! batch size — GEMM rows are computed independently (and sharded by
//! row across the pool), so grouping queries can never change a row's
//! bits, at any `OSA_THREADS`. Scratch lives in a thread-local
//! [`Workspace`] arena, so neither path allocates after its first call
//! on a given thread.

use crate::kernel::{exp_fast, sq_norm};
use crate::smo::{solve_one_class, SmoConfig, SmoResult};
use osa_nn::tensor::{fold8, Tensor, KLANES};
use osa_nn::workspace::Workspace;

/// A novelty scorer: fit on in-distribution rows, then score queries.
/// Higher scores mean *more novel* for every implementation.
pub trait NoveltyDetector {
    /// Short stable identifier used in benchmark and figure artifacts.
    fn name(&self) -> &'static str;
    /// Fit on a matrix whose rows are in-distribution feature vectors.
    /// Panics if `x` is empty.
    fn fit(&mut self, x: &Tensor);
    /// Novelty score of one feature vector (same dimensionality as the
    /// training rows). Panics if called before `fit`. Never allocates
    /// (implementations may warm a thread-local scratch arena on their
    /// first call per thread).
    fn score(&self, x: &[f32]) -> f32;
    /// Score every row of `x` into `out` in one call. Bit-identical to
    /// scoring the rows one at a time with [`NoveltyDetector::score`] —
    /// for [`OcSvm`] the batch *is* the canonical path and the scalar
    /// call delegates here; the default implementation loops the scalar
    /// path, which keeps that contract trivially true for detectors
    /// without a batched kernel. Panics if `out.len() != x.rows()` or
    /// before `fit`.
    fn score_batch_into(&self, x: &Tensor, out: &mut [f32]) {
        assert_eq!(x.rows(), out.len(), "score_batch_into output length");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.score(x.row(i));
        }
    }
}

/// Per-dimension standardization statistics of a training set.
#[derive(Clone, Debug, Default)]
struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    fn fit(x: &Tensor) -> Standardizer {
        let (n, d) = (x.rows(), x.cols());
        assert!(n > 0, "cannot standardize an empty training set");
        let mut mean = vec![0.0f64; d];
        for i in 0..n {
            for (m, &v) in mean.iter_mut().zip(x.row(i)) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; d];
        for i in 0..n {
            for ((s, &v), &m) in var.iter_mut().zip(x.row(i)).zip(&mean) {
                let dv = v as f64 - m;
                *s += dv * dv;
            }
        }
        Standardizer {
            mean: mean.iter().map(|&m| m as f32).collect(),
            std: var
                .iter()
                .map(|&s| ((s / n as f64).sqrt() as f32).max(1e-6))
                .collect(),
        }
    }

    fn apply(&self, x: &Tensor) -> Tensor {
        let mut z = Tensor::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            self.apply_row_into(x.row(i), z.row_mut(i));
        }
        z
    }

    /// Standardize one raw row into `z`. Dimensions are checked by
    /// `debug_assert!` only — callers validate query width once at the
    /// batch boundary, not per row.
    #[inline]
    fn apply_row_into(&self, x: &[f32], z: &mut [f32]) {
        debug_assert_eq!(x.len(), self.mean.len(), "standardizer dimension");
        debug_assert_eq!(z.len(), self.mean.len(), "standardizer dimension");
        for (j, zv) in z.iter_mut().enumerate() {
            *zv = (x[j] - self.mean[j]) / self.std[j];
        }
    }

    /// Squared distance between the standardized query and an already
    /// standardized row, accumulated in ascending dimension order.
    /// Dimension checks are `debug_assert!` — this sits inside the k-NN
    /// scan's hot loop and the caller validates once per query.
    #[inline]
    fn d2_to_standardized(&self, x: &[f32], zrow: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.mean.len(), "standardizer dimension");
        debug_assert_eq!(zrow.len(), self.mean.len(), "standardizer dimension");
        let mut d2 = 0.0f32;
        for j in 0..x.len() {
            let d = (x[j] - self.mean[j]) / self.std[j] - zrow[j];
            d2 += d * d;
        }
        d2
    }
}

/// Configuration for [`OcSvm`].
#[derive(Clone, Copy, Debug)]
pub struct OcSvmConfig {
    /// Schölkopf ν: upper-bounds the training outlier fraction and
    /// lower-bounds the support-vector fraction.
    pub nu: f64,
    /// RBF width; `None` picks `1/d` on standardized data.
    pub gamma: Option<f32>,
    /// SMO convergence controls.
    pub smo: SmoConfig,
}

impl Default for OcSvmConfig {
    fn default() -> Self {
        OcSvmConfig {
            nu: 0.1,
            gamma: None,
            smo: SmoConfig::default(),
        }
    }
}

/// The paper's one-class SVM (§3.1): RBF kernel, ν-parameterized dual
/// solved by [`solve_one_class`]. The novelty score is the negated
/// decision function `ρ − Σᵢ αᵢ K(z(x), svᵢ)` — positive outside the
/// learned region, negative inside.
#[derive(Clone, Debug)]
pub struct OcSvm {
    cfg: OcSvmConfig,
    std: Standardizer,
    gamma: f32,
    /// Standardized support vectors, one per row.
    svs: Tensor,
    /// Dual coefficient of each support vector (f32 is plenty for the
    /// score sum; the solver works in f64).
    sv_alphas: Vec<f32>,
    /// `‖svᵢ‖²` in the lane-8 accumulation order, precomputed at fit
    /// time for the distance decomposition.
    sv_norms: Vec<f32>,
    rho: f32,
    /// `ln(max(ρ, LOG_FLOOR))`, precomputed so the score epilogue is one
    /// `ln` per row instead of two.
    ln_rho: f32,
    diag: Option<FitDiag>,
}

/// Solver diagnostics surfaced for tests and the runtime-cost table.
#[derive(Clone, Copy, Debug)]
pub struct FitDiag {
    pub iters: usize,
    pub kkt_gap: f64,
    pub support_vectors: usize,
    /// Training rows at the box ceiling (the margin-error count that ν
    /// upper-bounds as a fraction).
    pub bounded_svs: usize,
}

impl OcSvm {
    pub fn new(cfg: OcSvmConfig) -> OcSvm {
        OcSvm {
            cfg,
            std: Standardizer::default(),
            gamma: 0.0,
            svs: Tensor::zeros(0, 0),
            sv_alphas: Vec::new(),
            sv_norms: Vec::new(),
            rho: 0.0,
            ln_rho: 0.0,
            diag: None,
        }
    }

    pub fn support_vectors(&self) -> usize {
        self.sv_alphas.len()
    }

    pub fn diag(&self) -> Option<FitDiag> {
        self.diag
    }

    /// Decision function `Σᵢ αᵢ K(z(x), svᵢ) − ρ` (positive inside).
    pub fn decision(&self, x: &[f32]) -> f32 {
        self.kernel_sum(x) - self.rho
    }

    /// Raw linear-domain novelty `ρ − Σᵢ αᵢ K(z(x), svᵢ)` (positive
    /// outside). Saturates at ρ for far inputs — see
    /// [`NoveltyDetector::score`] for the monitoring-friendly transform.
    pub fn raw_score(&self, x: &[f32]) -> f32 {
        self.rho - self.kernel_sum(x)
    }

    /// Kernel expansions `Σᵢ αᵢ K(z(xⱼ), svᵢ)` for every row of `x` in
    /// one pass: standardize the batch, one `S×d · (nsv×d)ᵀ` GEMM for
    /// the cross terms, then the fused exp + α-weighted reduction per
    /// row. This is the canonical evaluation — the scalar accessors
    /// ([`OcSvm::decision`], [`OcSvm::raw_score`],
    /// [`NoveltyDetector::score`]) all route through it as a batch of
    /// one, so results are bit-identical at every batch size. Panics if
    /// called before `fit`, on a query-width mismatch, or if
    /// `out.len() != x.rows()`.
    pub fn kernel_sums_into(&self, x: &Tensor, out: &mut [f32]) {
        assert!(!self.sv_alphas.is_empty(), "OcSvm::score before fit");
        assert_eq!(x.cols(), self.std.mean.len(), "feature dimension");
        assert_eq!(x.rows(), out.len(), "kernel_sums_into output length");
        let s = x.rows();
        if s == 0 {
            return;
        }
        let (mut z, mut cross) = SCORE_ARENA.with(|w| {
            let mut w = w.borrow_mut();
            (w.take(s, x.cols()), w.take(s, self.svs.rows()))
        });
        for i in 0..s {
            self.std.apply_row_into(x.row(i), z.row_mut(i));
        }
        z.matmul_t_into(&self.svs, &mut cross);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.weighted_row(sq_norm(z.row(i)), cross.row(i));
        }
        SCORE_ARENA.with(|w| {
            let mut w = w.borrow_mut();
            w.recycle(z);
            w.recycle(cross);
        });
    }

    /// One row of the batched epilogue: reconstruct each squared
    /// distance from the precomputed norms and the GEMM cross term,
    /// then accumulate `αᵢ·exp(-γd²)` in the lane-8 contract order.
    /// The `max(0.0)` guards the decomposition against tiny negative
    /// distances from cancellation (exact zero is guaranteed only when
    /// the operands are bit-identical, e.g. a query that *is* a support
    /// vector).
    #[inline]
    fn weighted_row(&self, xn: f32, cross: &[f32]) -> f32 {
        let g = self.gamma;
        let norms = &self.sv_norms[..cross.len()];
        let alphas = &self.sv_alphas[..cross.len()];
        let n = cross.len();
        let mut lanes = [0.0f32; KLANES];
        let mut p = 0;
        while p + KLANES <= n {
            let nx: &[f32; KLANES] = norms[p..][..KLANES].try_into().expect("lane group");
            let cx: &[f32; KLANES] = cross[p..][..KLANES].try_into().expect("lane group");
            let ax: &[f32; KLANES] = alphas[p..][..KLANES].try_into().expect("lane group");
            for l in 0..KLANES {
                let d2 = (xn + nx[l] - 2.0 * cx[l]).max(0.0);
                lanes[l] += ax[l] * exp_fast(-g * d2);
            }
            p += KLANES;
        }
        let rem = n - p; // tail: support vector p + l lands in lane l
        for l in 0..rem {
            let d2 = (xn + norms[p + l] - 2.0 * cross[p + l]).max(0.0);
            lanes[l] += alphas[p + l] * exp_fast(-g * d2);
        }
        fold8(lanes)
    }

    fn kernel_sum(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.std.mean.len(), "feature dimension");
        let mut q = SCORE_ARENA.with(|w| w.borrow_mut().take(1, x.len()));
        q.row_mut(0).copy_from_slice(x);
        let mut out = [0.0f32];
        self.kernel_sums_into(&q, &mut out);
        SCORE_ARENA.with(|w| w.borrow_mut().recycle(q));
        out[0]
    }
}

thread_local! {
    /// Scratch for the batched scorer: the standardized query block and
    /// the GEMM cross-term block. Thread-local (mirroring the pack
    /// arena in `osa_nn::tensor`) so scoring stays `&self` and
    /// allocation-free after the first call per thread — each fleet
    /// lane warms its own pool once.
    static SCORE_ARENA: std::cell::RefCell<Workspace> =
        std::cell::RefCell::new(Workspace::new());
}

/// Floor for the kernel expansion before taking logs: far inputs
/// underflow `Σ αᵢ K` to exactly 0.
const LOG_FLOOR: f32 = 1e-30;

impl NoveltyDetector for OcSvm {
    fn name(&self) -> &'static str {
        "ocsvm"
    }

    fn fit(&mut self, x: &Tensor) {
        self.std = Standardizer::fit(x);
        let z = self.std.apply(x);
        self.gamma = self.cfg.gamma.unwrap_or(1.0 / x.cols().max(1) as f32);
        let r: SmoResult = solve_one_class(&z, self.gamma, self.cfg.nu, &self.cfg.smo);
        let c = 1.0 / (self.cfg.nu * x.rows() as f64);
        let sv_idx: Vec<usize> = (0..x.rows()).filter(|&i| r.alphas[i] > 0.0).collect();
        let mut svs = Tensor::zeros(sv_idx.len(), x.cols());
        for (s, &i) in sv_idx.iter().enumerate() {
            svs.row_mut(s).copy_from_slice(z.row(i));
        }
        self.sv_alphas = sv_idx.iter().map(|&i| r.alphas[i] as f32).collect();
        self.sv_norms = (0..sv_idx.len()).map(|s| sq_norm(svs.row(s))).collect();
        self.svs = svs;
        self.rho = r.rho as f32;
        self.ln_rho = self.rho.max(LOG_FLOOR).ln();
        self.diag = Some(FitDiag {
            iters: r.iters,
            kkt_gap: r.kkt_gap,
            support_vectors: sv_idx.len(),
            bounded_svs: sv_idx
                .iter()
                .filter(|&&i| r.alphas[i] >= c * (1.0 - 1e-8))
                .count(),
        });
    }

    /// Log-domain novelty `ln ρ − ln Σᵢ αᵢ K(z(x), svᵢ)`.
    ///
    /// A strictly monotone transform of [`OcSvm::raw_score`]: same sign
    /// at the decision boundary (`f = ρ`), same induced ordering. The
    /// linear-domain value saturates at ρ as the kernels underflow, so
    /// under a *sustained* distribution shift it goes constant and its
    /// k-window variance collapses back below any threshold; the log
    /// domain keeps growing like `γ·d²`, which is what the variance
    /// monitor needs to see.
    fn score(&self, x: &[f32]) -> f32 {
        self.ln_rho - self.kernel_sum(x).max(LOG_FLOOR).ln()
    }

    /// The batched engine: one GEMM for the whole batch's cross terms,
    /// then the log epilogue per row. [`NoveltyDetector::score`] is a
    /// batch of one through the same code, so the bits never depend on
    /// batch size.
    fn score_batch_into(&self, x: &Tensor, out: &mut [f32]) {
        self.kernel_sums_into(x, out);
        for o in out.iter_mut() {
            *o = self.ln_rho - o.max(LOG_FLOOR).ln();
        }
    }
}

/// Largest `k` supported by the allocation-free k-best scan.
pub const KNN_MAX_K: usize = 64;

/// k-nearest-neighbor ablation: novelty = distance (in standardized
/// space) to the k-th nearest training row. Training rows beyond `cap`
/// are kept by deterministic striding so scoring cost stays bounded.
#[derive(Clone, Debug)]
pub struct KnnDetector {
    k: usize,
    cap: usize,
    std: Standardizer,
    train: Tensor,
}

impl KnnDetector {
    /// Panics if `k == 0`, `k > KNN_MAX_K`, or `cap < k`.
    pub fn new(k: usize, cap: usize) -> KnnDetector {
        assert!((1..=KNN_MAX_K).contains(&k), "k must be in 1..={KNN_MAX_K}");
        assert!(cap >= k, "cap must hold at least k rows");
        KnnDetector {
            k,
            cap,
            std: Standardizer::default(),
            train: Tensor::zeros(0, 0),
        }
    }

    pub fn stored_rows(&self) -> usize {
        self.train.rows()
    }
}

impl Default for KnnDetector {
    fn default() -> Self {
        KnnDetector::new(5, 2048)
    }
}

impl NoveltyDetector for KnnDetector {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn fit(&mut self, x: &Tensor) {
        assert!(x.rows() >= self.k, "need at least k training rows");
        self.std = Standardizer::fit(x);
        let z = self.std.apply(x);
        if x.rows() <= self.cap {
            self.train = z;
            return;
        }
        // Deterministic stride subsample: row ⌊i·n/cap⌋ for i in 0..cap.
        let n = x.rows();
        let mut kept = Tensor::zeros(self.cap, x.cols());
        for i in 0..self.cap {
            kept.row_mut(i).copy_from_slice(z.row(i * n / self.cap));
        }
        self.train = kept;
    }

    fn score(&self, x: &[f32]) -> f32 {
        assert!(self.train.rows() > 0, "KnnDetector::score before fit");
        assert_eq!(x.len(), self.std.mean.len(), "feature dimension");
        // k smallest squared distances via insertion into a fixed array.
        let mut best = [f32::INFINITY; KNN_MAX_K];
        for i in 0..self.train.rows() {
            let d2 = self.std.d2_to_standardized(x, self.train.row(i));
            if d2 < best[self.k - 1] {
                let mut j = self.k - 1;
                while j > 0 && best[j - 1] > d2 {
                    best[j] = best[j - 1];
                    j -= 1;
                }
                best[j] = d2;
            }
        }
        best[self.k - 1].sqrt()
    }
}

/// Mahalanobis-distance ablation: novelty = `√((x−μ)ᵀ Σ⁻¹ (x−μ))` with
/// a ridge-regularized covariance, fitted and inverted in f64.
#[derive(Clone, Debug, Default)]
pub struct MahalanobisDetector {
    mean: Vec<f64>,
    /// Row-major d×d inverse covariance.
    inv: Vec<f64>,
    dim: usize,
}

impl MahalanobisDetector {
    pub fn new() -> MahalanobisDetector {
        MahalanobisDetector::default()
    }
}

impl NoveltyDetector for MahalanobisDetector {
    fn name(&self) -> &'static str {
        "mahalanobis"
    }

    fn fit(&mut self, x: &Tensor) {
        let (n, d) = (x.rows(), x.cols());
        assert!(n > 0, "cannot fit Mahalanobis on an empty training set");
        let mut mean = vec![0.0f64; d];
        for i in 0..n {
            for (m, &v) in mean.iter_mut().zip(x.row(i)) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut cov = vec![0.0f64; d * d];
        for i in 0..n {
            let row = x.row(i);
            for a in 0..d {
                let da = row[a] as f64 - mean[a];
                for b in 0..d {
                    cov[a * d + b] += da * (row[b] as f64 - mean[b]);
                }
            }
        }
        for v in &mut cov {
            *v /= n as f64;
        }
        // Ridge proportional to the average variance keeps the inverse
        // well-conditioned even for degenerate (constant) dimensions.
        let trace: f64 = (0..d).map(|a| cov[a * d + a]).sum();
        let ridge = 1e-6 * (trace / d as f64).max(1e-12);
        for a in 0..d {
            cov[a * d + a] += ridge;
        }
        self.inv = invert(&cov, d);
        self.mean = mean;
        self.dim = d;
    }

    fn score(&self, x: &[f32]) -> f32 {
        assert!(self.dim > 0, "MahalanobisDetector::score before fit");
        assert_eq!(x.len(), self.dim, "feature dimension");
        let d = self.dim;
        let mut q = 0.0f64;
        for a in 0..d {
            let ya = x[a] as f64 - self.mean[a];
            let mut row = 0.0f64;
            for (b, &xb) in x.iter().enumerate() {
                row += self.inv[a * d + b] * (xb as f64 - self.mean[b]);
            }
            q += ya * row;
        }
        (q.max(0.0)).sqrt() as f32
    }
}

/// Gauss-Jordan inverse with partial pivoting. Panics on a singular
/// matrix (ruled out by the ridge in `fit`).
fn invert(m: &[f64], d: usize) -> Vec<f64> {
    let mut a = m.to_vec();
    let mut inv = vec![0.0f64; d * d];
    for i in 0..d {
        inv[i * d + i] = 1.0;
    }
    for col in 0..d {
        let pivot = (col..d)
            .max_by(|&r1, &r2| {
                a[r1 * d + col]
                    .abs()
                    .partial_cmp(&a[r2 * d + col].abs())
                    .unwrap()
            })
            .unwrap();
        assert!(
            a[pivot * d + col].abs() > 1e-300,
            "singular covariance matrix"
        );
        if pivot != col {
            for j in 0..d {
                a.swap(col * d + j, pivot * d + j);
                inv.swap(col * d + j, pivot * d + j);
            }
        }
        let p = a[col * d + col];
        for j in 0..d {
            a[col * d + j] /= p;
            inv[col * d + j] /= p;
        }
        for r in 0..d {
            if r == col {
                continue;
            }
            let f = a[r * d + col];
            if f == 0.0 {
                continue;
            }
            for j in 0..d {
                a[r * d + j] -= f * a[col * d + j];
                inv[r * d + j] -= f * inv[col * d + j];
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_nn::rng::Rng;

    fn cluster(n: usize, d: usize, center: f32, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        let mut t = Tensor::zeros(n, d);
        for v in t.data_mut() {
            *v = center + rng.range_f32(-0.5, 0.5);
        }
        t
    }

    fn far_point(d: usize) -> Vec<f32> {
        vec![25.0; d]
    }

    #[test]
    fn every_detector_ranks_far_points_above_training_points() {
        let x = cluster(120, 4, 1.0, 11);
        let detectors: Vec<Box<dyn NoveltyDetector>> = vec![
            Box::new(OcSvm::new(OcSvmConfig::default())),
            Box::new(KnnDetector::default()),
            Box::new(MahalanobisDetector::new()),
        ];
        for mut det in detectors {
            det.fit(&x);
            let inlier = det.score(x.row(0));
            let outlier = det.score(&far_point(4));
            assert!(
                outlier > inlier,
                "{}: outlier {outlier} <= inlier {inlier}",
                det.name()
            );
        }
    }

    #[test]
    fn ocsvm_score_variants_agree_on_the_boundary_sign() {
        let x = cluster(80, 3, 0.0, 5);
        let mut det = OcSvm::new(OcSvmConfig::default());
        det.fit(&x);
        // Inliers near the cluster, outliers far away: decision,
        // raw_score, and the log-domain score must classify alike.
        for q in [[0.1f32, -0.2, 0.05], [0.3, 0.1, -0.1], [8.0, -9.0, 7.5]] {
            assert_eq!(det.decision(&q).to_bits(), (-det.raw_score(&q)).to_bits());
            assert_eq!(
                det.raw_score(&q) > 0.0,
                det.score(&q) > 0.0,
                "log transform must preserve the boundary at {q:?}"
            );
        }
        // Monotone: a far point scores strictly above a near one.
        assert!(det.score(&[9.0, 9.0, 9.0]) > det.score(&[0.1, -0.2, 0.05]));
    }

    #[test]
    fn knn_cap_subsamples_deterministically() {
        let x = cluster(500, 3, 2.0, 7);
        let mut a = KnnDetector::new(3, 100);
        let mut b = KnnDetector::new(3, 100);
        a.fit(&x);
        b.fit(&x);
        assert_eq!(a.stored_rows(), 100);
        let q = [2.0f32, 2.1, 1.9];
        assert_eq!(a.score(&q).to_bits(), b.score(&q).to_bits());
    }

    #[test]
    fn mahalanobis_of_the_mean_is_zero() {
        let x = cluster(200, 5, -1.0, 23);
        let mut det = MahalanobisDetector::new();
        det.fit(&x);
        let mean: Vec<f32> = (0..5)
            .map(|j| (0..200).map(|i| x.row(i)[j]).sum::<f32>() / 200.0)
            .collect();
        assert!(det.score(&mean) < 1e-2);
        assert!(det.score(&far_point(5)) > 10.0);
    }
}
