//! The §3.1 feature pipeline for the U_S novelty signal.
//!
//! The paper's classic-ND baseline does not feed raw observations to the
//! one-class SVM: each decision contributes the *mean and standard
//! deviation of the 10 most recent throughput samples*, and the detector
//! scores a sliding window of the `k` latest such pairs. The pipeline
//! here is incremental — [`FeatureWindow::push`] is O(window) with no
//! allocation, so the per-decision featurization cost that
//! `BENCH_osap.json` charges to U_S is the real deployment cost.
//!
//! Determinism: all reductions run in *chronological* order (oldest
//! sample first), independent of the ring buffer's phase, so the same
//! throughput history always produces bit-identical features.

/// Number of recent throughput samples summarized into one (mean, std)
/// pair (§3.1).
pub const FEATURE_WINDOW: usize = 10;

/// Number of latest (mean, std) pairs forming one detector input.
pub const FEATURE_PAIRS: usize = 5;

/// Detector input dimensionality: `FEATURE_PAIRS` × (mean, std).
pub const FEATURE_DIM: usize = 2 * FEATURE_PAIRS;

/// Incremental §3.1 featurizer: a throughput ring feeding a (mean, std)
/// pair ring. Ready once `FEATURE_WINDOW + FEATURE_PAIRS - 1` samples
/// have been pushed.
#[derive(Clone, Debug, Default)]
pub struct FeatureWindow {
    tputs: [f32; FEATURE_WINDOW],
    t_len: usize,
    t_pos: usize,
    pairs: [[f32; 2]; FEATURE_PAIRS],
    p_len: usize,
    p_pos: usize,
}

impl FeatureWindow {
    pub fn new() -> Self {
        FeatureWindow::default()
    }

    /// Forget all history (e.g. at a session boundary).
    pub fn reset(&mut self) {
        *self = FeatureWindow::default();
    }

    /// Record one throughput sample. Once the sample ring is full, every
    /// push also appends one (mean, std) pair.
    pub fn push(&mut self, tput: f32) {
        self.tputs[self.t_pos] = tput;
        self.t_pos = (self.t_pos + 1) % FEATURE_WINDOW;
        if self.t_len < FEATURE_WINDOW {
            self.t_len += 1;
        }
        if self.t_len == FEATURE_WINDOW {
            let (mean, std) = self.window_stats();
            self.pairs[self.p_pos] = [mean, std];
            self.p_pos = (self.p_pos + 1) % FEATURE_PAIRS;
            if self.p_len < FEATURE_PAIRS {
                self.p_len += 1;
            }
        }
    }

    /// Mean and population standard deviation of the sample ring, summed
    /// oldest-first so the result is independent of the ring phase.
    fn window_stats(&self) -> (f32, f32) {
        let n = FEATURE_WINDOW as f32;
        let mut sum = 0.0f32;
        for i in 0..FEATURE_WINDOW {
            sum += self.chronological(i);
        }
        let mean = sum / n;
        let mut var = 0.0f32;
        for i in 0..FEATURE_WINDOW {
            let d = self.chronological(i) - mean;
            var += d * d;
        }
        (mean, (var / n).max(0.0).sqrt())
    }

    /// `i`-th sample in chronological order (0 = oldest) of a full ring.
    fn chronological(&self, i: usize) -> f32 {
        self.tputs[(self.t_pos + i) % FEATURE_WINDOW]
    }

    /// True once a full feature vector is available
    /// (`FEATURE_WINDOW + FEATURE_PAIRS - 1` pushes).
    pub fn ready(&self) -> bool {
        self.p_len == FEATURE_PAIRS
    }

    /// Write the feature vector — `FEATURE_PAIRS` (mean, std) pairs,
    /// oldest pair first — into `out`. Panics unless [`ready`] and
    /// `out.len() == FEATURE_DIM`.
    ///
    /// [`ready`]: FeatureWindow::ready
    pub fn write(&self, out: &mut [f32]) {
        assert!(self.ready(), "feature window not warmed up");
        assert_eq!(out.len(), FEATURE_DIM, "feature buffer size");
        for i in 0..FEATURE_PAIRS {
            let pair = self.pairs[(self.p_pos + i) % FEATURE_PAIRS];
            out[2 * i] = pair[0];
            out[2 * i + 1] = pair[1];
        }
    }
}

/// Slide a [`FeatureWindow`] over one throughput series and collect every
/// ready feature vector (rows of length [`FEATURE_DIM`]) — the batch
/// path used to build detector training sets from trace corpora.
pub fn window_features(rates: &[f32]) -> Vec<[f32; FEATURE_DIM]> {
    let mut w = FeatureWindow::new();
    let mut out = Vec::new();
    for &r in rates {
        w.push(r);
        if w.ready() {
            let mut row = [0.0f32; FEATURE_DIM];
            w.write(&mut row);
            out.push(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_takes_window_plus_pairs_pushes() {
        let mut w = FeatureWindow::new();
        for i in 0..FEATURE_WINDOW + FEATURE_PAIRS - 2 {
            w.push(i as f32);
            assert!(!w.ready(), "push {i}");
        }
        w.push(99.0);
        assert!(w.ready());
    }

    #[test]
    fn constant_input_gives_zero_std() {
        let rows = window_features(&[2.5; 30]);
        assert_eq!(rows.len(), 30 - (FEATURE_WINDOW + FEATURE_PAIRS - 1) + 1);
        for row in rows {
            for i in 0..FEATURE_PAIRS {
                assert_eq!(row[2 * i], 2.5);
                assert_eq!(row[2 * i + 1], 0.0);
            }
        }
    }

    #[test]
    fn features_are_phase_independent() {
        // The same 14-sample history must produce identical features no
        // matter how many samples preceded it... for a *constant* prefix
        // the ring phase differs but the window contents match exactly.
        let tail: Vec<f32> = (0..FEATURE_WINDOW + FEATURE_PAIRS - 1)
            .map(|i| 1.0 + 0.25 * i as f32)
            .collect();
        let mut a = FeatureWindow::new();
        for &x in &tail {
            a.push(x);
        }
        let mut b = FeatureWindow::new();
        for _ in 0..7 {
            b.push(tail[0]);
        }
        // b's extra pushes shifted its ring phase; feed enough of the
        // tail that both windows hold the same chronological samples.
        for &x in &tail {
            b.push(x);
        }
        let (mut fa, mut fb) = ([0.0; FEATURE_DIM], [0.0; FEATURE_DIM]);
        a.write(&mut fa);
        b.write(&mut fb);
        for (x, y) in fa.iter().zip(&fb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn known_window_stats() {
        // 10 samples 1..=10: mean 5.5, population std sqrt(8.25).
        let rates: Vec<f32> = (1..=10).map(|i| i as f32).collect();
        let mut w = FeatureWindow::new();
        for &r in &rates {
            w.push(r);
        }
        let (mean, std) = w.window_stats();
        assert!((mean - 5.5).abs() < 1e-6);
        assert!((std - 8.25f32.sqrt()).abs() < 1e-6);
    }
}
