//! `osa-ocsvm` — novelty detection for the U_S signal (DESIGN.md §1 row 7).
//!
//! # Contract
//!
//! This crate will provide the paper's "classic ND method" (§2.4) from
//! scratch:
//!
//! - a one-class SVM in the Schölkopf formulation with an RBF kernel,
//!   ν-parameterized, trained by a working-set SMO solver specialized to
//!   the one-class dual (substituting SciPy, DESIGN.md §2.4);
//! - the §3.1 feature pipeline: mean/std of the 10 most recent throughput
//!   samples, windows of the k latest pairs;
//! - ablation detectors sharing the same interface: kNN-distance and
//!   Mahalanobis distance;
//! - property-tested invariants (ν bounds the training outlier fraction,
//!   kernel symmetry/PSD spot checks).
#![forbid(unsafe_code)]

/// Marks the crate as scaffolded but not yet implemented; removed once the
/// SMO solver lands.
pub const IMPLEMENTED: bool = false;

/// Number of recent throughput samples summarized by the §3.1 feature
/// pipeline.
pub const FEATURE_WINDOW: usize = 10;

#[cfg(test)]
mod tests {
    #[test]
    fn scaffold_compiles() {
        assert_eq!(super::FEATURE_WINDOW, 10);
    }
}
