//! `osa-ocsvm` — novelty detection for the U_S signal (DESIGN.md §1 row 7).
//!
//! The paper's "classic ND method" (§2.4) built from scratch:
//!
//! - [`smo`] — the Schölkopf ν-parameterized one-class SVM dual, solved
//!   by a working-set SMO specialized to the one-class problem
//!   (substituting SciPy, DESIGN.md §2.4);
//! - [`kernel`] — the RBF kernel;
//! - [`features`] — the §3.1 feature pipeline: mean/std of the 10 most
//!   recent throughput samples, windows of the k latest pairs;
//! - [`detector`] — the [`NoveltyDetector`] trait with [`OcSvm`] plus the
//!   [`KnnDetector`] / [`MahalanobisDetector`] ablations.
//!
//! Invariants (property-tested in `tests/properties.rs`): ν upper-bounds
//! the training outlier fraction and lower-bounds the support-vector
//! fraction; the kernel is symmetric and its Gram matrices are PSD; the
//! solver's KKT residual falls below tolerance; fits are bit-identical
//! across runs and pool widths.
#![forbid(unsafe_code)]

pub mod detector;
pub mod features;
pub mod kernel;
pub mod smo;

pub use detector::{
    FitDiag, KnnDetector, MahalanobisDetector, NoveltyDetector, OcSvm, OcSvmConfig,
};
pub use features::{window_features, FeatureWindow, FEATURE_DIM, FEATURE_PAIRS, FEATURE_WINDOW};
pub use kernel::{dot8, exp_fast, rbf, sq_norm};
pub use smo::{solve_one_class, SmoConfig, SmoResult};

/// One-stop import for downstream crates, examples, and tests.
pub mod prelude {
    pub use crate::detector::{
        FitDiag, KnnDetector, MahalanobisDetector, NoveltyDetector, OcSvm, OcSvmConfig,
    };
    pub use crate::features::{
        window_features, FeatureWindow, FEATURE_DIM, FEATURE_PAIRS, FEATURE_WINDOW,
    };
    pub use crate::kernel::rbf;
    pub use crate::smo::{solve_one_class, SmoConfig, SmoResult};
}
