//! Working-set SMO solver specialized to the Schölkopf one-class dual.
//!
//! The ν-parameterized one-class SVM (Schölkopf et al., 2001) solves
//!
//! ```text
//! min_α  ½ Σᵢⱼ αᵢαⱼ K(xᵢ, xⱼ)   s.t.  0 ≤ αᵢ ≤ 1/(νn),  Σᵢ αᵢ = 1
//! ```
//!
//! All labels are +1, so the usual two-class working-set machinery
//! collapses: every step picks the *maximal violating pair*
//! `i_up = argmin g over {αᵢ < C}`, `i_low = argmax g over {αᵢ > 0}`
//! (where `g = Kα` is the dual gradient) and moves mass from `i_low` to
//! `i_up` along the equality constraint, clipped to the box. The
//! gradient is maintained incrementally from the two kernel rows the
//! step touches, so memory stays O(n) — no Gram matrix is materialized,
//! which is what lets the detector train on tens of thousands of §3.1
//! windows.
//!
//! Accumulation runs in f64 and the point selection breaks ties toward
//! the lowest index, so a fit is a pure function of its inputs —
//! bit-identical across runs and (trivially, being serial) across pool
//! widths.
//!
//! Kernel rows use the same distance decomposition as the batched
//! scorer (`‖xᵢ − xⱼ‖² = ‖xᵢ‖² + ‖xⱼ‖² − 2·xᵢ·xⱼ`): row norms are
//! precomputed once and each row's cross terms stream through one
//! `1×d · (n×d)ᵀ` GEMM via the `osa-nn` lane kernels. Because
//! [`sq_norm`] mirrors the GEMM's lane-8 accumulation order, the
//! diagonal cancels *exactly* — `K(i, i) = 1` bit-for-bit — which the
//! curvature floor (`eta`) relies on.
//!
//! ν is both a box parameter and a guarantee: at the optimum the
//! fraction of margin errors is ≤ ν ≤ the fraction of support vectors
//! (pinned by `tests/properties.rs`).

use crate::kernel::{exp_fast, sq_norm};
use osa_nn::tensor::Tensor;

/// Convergence controls for [`solve_one_class`].
#[derive(Clone, Copy, Debug)]
pub struct SmoConfig {
    /// Stop when the maximal KKT violation `g[i_low] − g[i_up]` drops
    /// below this.
    pub tol: f64,
    /// Hard iteration cap (each iteration is one pair update).
    pub max_iter: usize,
}

impl Default for SmoConfig {
    fn default() -> Self {
        SmoConfig {
            tol: 1e-5,
            max_iter: 200_000,
        }
    }
}

/// Solution of the one-class dual.
#[derive(Clone, Debug)]
pub struct SmoResult {
    /// Dual coefficients, `Σ = 1`, each in `[0, 1/(νn)]`.
    pub alphas: Vec<f64>,
    /// Decision offset: `f(x) = Σᵢ αᵢ K(x, xᵢ) − ρ`, averaged over
    /// margin support vectors.
    pub rho: f64,
    /// Pair updates performed.
    pub iters: usize,
    /// Final maximal KKT violation (`< tol` unless `max_iter` hit).
    pub kkt_gap: f64,
}

/// Solve the one-class dual over the rows of `x` with an RBF kernel.
///
/// # Panics
/// If `x` has no rows or `nu` is outside `(0, 1]`.
pub fn solve_one_class(x: &Tensor, gamma: f32, nu: f64, cfg: &SmoConfig) -> SmoResult {
    let n = x.rows();
    assert!(n >= 1, "one-class SMO needs at least one sample");
    assert!(nu > 0.0 && nu <= 1.0, "nu must be in (0, 1], got {nu}");
    let c = 1.0 / (nu * n as f64);

    // Feasible start: the first ⌊νn⌋ points at the box ceiling, the
    // remainder of the unit mass on the next point.
    let mut alphas = vec![0.0f64; n];
    let nf = (nu * n as f64).floor() as usize;
    let mut mass = 1.0f64;
    for a in alphas.iter_mut().take(nf.min(n)) {
        *a = c;
        mass -= c;
    }
    if mass > 0.0 && nf < n {
        alphas[nf] = mass;
    }

    // g = Kα, built from the initially non-zero coefficients.
    let mut scratch = GramScratch::new(x);
    let mut g = vec![0.0f64; n];
    let mut row = vec![0.0f32; n];
    for (j, &aj) in alphas.iter().enumerate() {
        if aj > 0.0 {
            kernel_row(x, gamma, j, &mut scratch, &mut row);
            for (gi, &k) in g.iter_mut().zip(&row) {
                *gi += aj * k as f64;
            }
        }
    }

    let mut row_low = vec![0.0f32; n];
    let mut iters = 0;
    let mut kkt_gap = 0.0;
    while iters < cfg.max_iter {
        let (i_up, i_low) = match select_pair(&alphas, &g, c) {
            Some(pair) => pair,
            None => {
                kkt_gap = 0.0;
                break;
            }
        };
        kkt_gap = g[i_low] - g[i_up];
        if kkt_gap < cfg.tol {
            break;
        }
        kernel_row(x, gamma, i_up, &mut scratch, &mut row);
        kernel_row(x, gamma, i_low, &mut scratch, &mut row_low);
        // Curvature along e_up − e_low; K_ii = 1 for RBF, so this is
        // 2 − 2K(up, low), floored against degenerate duplicates.
        let eta = (row[i_up] as f64 + row_low[i_low] as f64 - 2.0 * row[i_low] as f64).max(1e-12);
        let delta = (kkt_gap / eta).min(c - alphas[i_up]).min(alphas[i_low]);
        alphas[i_up] += delta;
        alphas[i_low] -= delta;
        for ((gi, &ku), &kl) in g.iter_mut().zip(&row).zip(&row_low) {
            *gi += delta * (ku as f64 - kl as f64);
        }
        iters += 1;
    }

    SmoResult {
        rho: estimate_rho(&alphas, &g, c),
        alphas,
        iters,
        kkt_gap,
    }
}

/// Scratch for [`kernel_row`]: row norms precomputed once per solve,
/// plus the two tensors the cross-term GEMM streams through, reused
/// across every pair update so the solver stays allocation-free after
/// setup.
struct GramScratch {
    norms: Vec<f32>,
    xi: Tensor,
    cross: Tensor,
}

impl GramScratch {
    fn new(x: &Tensor) -> GramScratch {
        GramScratch {
            norms: (0..x.rows()).map(|i| sq_norm(x.row(i))).collect(),
            xi: Tensor::zeros(1, x.cols()),
            cross: Tensor::zeros(1, x.rows()),
        }
    }
}

/// One kernel row `K(i, ·)` against every training sample: one
/// `1×d · (n×d)ᵀ` GEMM for the cross terms, then the distance
/// decomposition against the precomputed norms. A single-row GEMM runs
/// inline (never pooled), so the solve stays serial and bit-identical
/// at every `OSA_THREADS`.
fn kernel_row(x: &Tensor, gamma: f32, i: usize, s: &mut GramScratch, out: &mut [f32]) {
    let GramScratch { norms, xi, cross } = s;
    xi.row_mut(0).copy_from_slice(x.row(i));
    xi.matmul_t_into(x, cross);
    let ni = norms[i];
    for ((o, &nj), &cj) in out.iter_mut().zip(norms.iter()).zip(cross.row(0)) {
        let d2 = (ni + nj - 2.0 * cj).max(0.0);
        *o = exp_fast(-gamma * d2);
    }
}

/// Maximal violating pair: `i_up` minimizes `g` over the still-raisable
/// set, `i_low` maximizes `g` over the still-lowerable set. Ties break
/// toward the lowest index. `None` when either set is empty.
fn select_pair(alphas: &[f64], g: &[f64], c: f64) -> Option<(usize, usize)> {
    let mut i_up: Option<usize> = None;
    let mut i_low: Option<usize> = None;
    for i in 0..alphas.len() {
        if alphas[i] < c && i_up.is_none_or(|b| g[i] < g[b]) {
            i_up = Some(i);
        }
        if alphas[i] > 0.0 && i_low.is_none_or(|b| g[i] > g[b]) {
            i_low = Some(i);
        }
    }
    Some((i_up?, i_low?))
}

/// ρ from the KKT conditions: margin SVs (`0 < α < C`) satisfy
/// `g_i = ρ` exactly at the optimum, so average `g` over them. With no
/// margin SVs, ρ lies between the bound groups — take the midpoint.
fn estimate_rho(alphas: &[f64], g: &[f64], c: f64) -> f64 {
    let eps = c * 1e-8;
    let mut sum = 0.0;
    let mut count = 0usize;
    for (&a, &gi) in alphas.iter().zip(g) {
        if a > eps && a < c - eps {
            sum += gi;
            count += 1;
        }
    }
    if count > 0 {
        return sum / count as f64;
    }
    let mut hi = f64::NEG_INFINITY; // max g over α at the ceiling
    let mut lo = f64::INFINITY; // min g over α at the floor
    for (&a, &gi) in alphas.iter().zip(g) {
        if a >= c - eps {
            hi = hi.max(gi);
        } else if a <= eps {
            lo = lo.min(gi);
        }
    }
    match (hi.is_finite(), lo.is_finite()) {
        (true, true) => 0.5 * (hi + lo),
        (true, false) => hi,
        (false, true) => lo,
        (false, false) => g.iter().sum::<f64>() / g.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_nn::rng::Rng;

    fn blob(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        let mut t = Tensor::zeros(n, d);
        for v in t.data_mut() {
            *v = rng.range_f32(-1.0, 1.0);
        }
        t
    }

    #[test]
    fn alphas_stay_feasible_and_sum_to_one() {
        let x = blob(60, 4, 3);
        let r = solve_one_class(&x, 0.5, 0.2, &SmoConfig::default());
        let c = 1.0 / (0.2 * 60.0);
        let sum: f64 = r.alphas.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(r.alphas.iter().all(|&a| (-1e-12..=c + 1e-12).contains(&a)));
        assert!(r.kkt_gap < 1e-5, "gap {}", r.kkt_gap);
    }

    #[test]
    fn nu_one_fixes_every_alpha_at_the_ceiling() {
        // ν = 1 ⇒ C = 1/n and Σα = 1 force α ≡ 1/n; the solver must
        // recognize the fully-bounded point and stop immediately.
        let x = blob(20, 3, 9);
        let r = solve_one_class(&x, 1.0, 1.0, &SmoConfig::default());
        for &a in &r.alphas {
            assert!((a - 0.05).abs() < 1e-12);
        }
        assert_eq!(r.iters, 0);
    }

    #[test]
    fn solving_twice_is_bit_identical() {
        let x = blob(40, 5, 17);
        let a = solve_one_class(&x, 0.8, 0.1, &SmoConfig::default());
        let b = solve_one_class(&x, 0.8, 0.1, &SmoConfig::default());
        assert_eq!(a.rho.to_bits(), b.rho.to_bits());
        assert_eq!(a.iters, b.iters);
        for (x1, x2) in a.alphas.iter().zip(&b.alphas) {
            assert_eq!(x1.to_bits(), x2.to_bits());
        }
    }
}
