//! The RBF (Gaussian) kernel behind the one-class SVM, plus the
//! deterministic primitives the batched scoring engine is built from.
//!
//! `K(a, b) = exp(-γ‖a − b‖²)` — symmetric, bounded in (0, 1], and
//! positive semi-definite for γ > 0 (Mercer), which the property tests
//! spot-check on random Gram matrices.
//!
//! # One kernel, two evaluation orders
//!
//! [`rbf`] is the scalar reference: the squared distance accumulates in
//! ascending index order, so `K(a, b)` is bit-identical to `K(b, a)`
//! (each term `(aᵢ−bᵢ)²` equals `(bᵢ−aᵢ)²` exactly in IEEE arithmetic).
//! The batched engine in [`crate::detector`] instead *decomposes* the
//! distance — `‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b` — so the cross terms of
//! a whole batch become one GEMM through `osa-nn`'s lane-group kernels.
//! The two orders agree to f32 rounding but not bit-for-bit; whichever
//! path a component uses, it uses for *every* batch size, so results
//! never depend on how queries were grouped.
//!
//! Both paths share one exponential, [`exp_fast`]: branchless polynomial
//! arithmetic that LLVM auto-vectorizes inside the per-row reduction
//! loop, bit-deterministic on every input, < 5·10⁻⁷ max relative error
//! (tested against `f32::exp` below). 650 support vectors per decision
//! make `exp` the second pole of the U_S cost after the GEMM; `expf`
//! calls through libm would keep the reduction loop scalar.
//!
//! [`dot8`] and [`sq_norm`] mirror the `osa-nn` lane-8 accumulation
//! contract (product `p` → lane `p mod 8`, fixed fold tree), so a norm
//! computed here cancels *exactly* against a cross term computed by the
//! GEMM when the operands are identical — `‖x‖² + ‖x‖² − 2·x·x ≡ 0`,
//! giving `K(x, x) = 1` on both paths.

use osa_nn::tensor::{fold8, KLANES};

/// `exp(x)` as branchless, auto-vectorizable f32 arithmetic.
///
/// Splits `x = r·ln 2 + f` with `r` integer and `|f| ≤ ½ ln 2`, takes
/// `e^f` by a degree-6 polynomial and `2^r` through exponent bits. The
/// residual `f` is recovered by Cody-Waite two-constant reduction
/// (`ln 2` split into a short-mantissa head and a tail), so no
/// precision is lost to the `x·log₂e` product even at the clamp edge.
/// The input is clamped to `[-87, 88]` — beyond that f32 underflows /
/// overflows anyway; the clamp floor returns ~1.6·10⁻³⁸ instead of a
/// denormal 0, which every caller here floors far above (see
/// `LOG_FLOOR` in [`crate::detector`]). `exp_fast(0.0) == 1.0` exactly
/// (the polynomial's constant term), which [`rbf`]'s `K(x, x) = 1`
/// contract relies on.
#[inline(always)]
pub fn exp_fast(x: f32) -> f32 {
    // 1.5·2²³: adding and subtracting rounds to the nearest integer in
    // default round-to-nearest-even, with no cvt round trip.
    const ROUND_MAGIC: f32 = 12_582_912.0;
    // ln 2 = HI + LO with HI's mantissa short enough that r·HI is exact
    // for |r| ≤ 127 (the classic Cody-Waite split).
    const LN2_HI: f32 = 0.693_145_75;
    const LN2_LO: f32 = 1.428_606_8e-6;
    let x = x.clamp(-87.0, 88.0);
    let t = x * std::f32::consts::LOG2_E;
    let m = t + ROUND_MAGIC;
    let r = m - ROUND_MAGIC;
    let f = (x - r * LN2_HI) - r * LN2_LO;
    // e^f Taylor through f⁶/720; truncation ≤ 1.7·10⁻⁷ relative at
    // |f| = ½ ln 2.
    const C3: f32 = 1.0 / 6.0;
    const C4: f32 = 1.0 / 24.0;
    const C5: f32 = 1.0 / 120.0;
    const C6: f32 = 1.0 / 720.0;
    let p = 1.0 + f * (1.0 + f * (0.5 + f * (C3 + f * (C4 + f * (C5 + f * C6)))));
    // 2^r through exponent bits, read straight out of the magic-rounded
    // sum: `m = ROUND_MAGIC + r` exactly, so m's low mantissa bits hold
    // r and `(bits + 127) << 23` is the biased-exponent pattern of 2^r
    // (r ∈ [-126, 127] after the clamp keeps it in normal range). A
    // `r as i32` cvt here would block the vectorizer — same lesson as
    // the int8 quantize pass in `osa-nn::quant`.
    let scale = f32::from_bits(m.to_bits().wrapping_add(127) << 23);
    p * scale
}

/// Lane-8 dot product of two equal-length slices, mirroring the
/// `osa-nn` kernel contract: product `p` accumulates into lane
/// `p mod 8`, lanes reduce through the fixed [`fold8`] tree. Any dot of
/// the same operands computed by the GEMM kernels returns these bits.
#[inline]
pub fn dot8(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot8 dimension mismatch");
    let k = a.len();
    let mut lanes = [0.0f32; KLANES];
    let mut p = 0;
    while p + KLANES <= k {
        let ax: &[f32; KLANES] = a[p..][..KLANES].try_into().expect("lane group");
        let bx: &[f32; KLANES] = b[p..][..KLANES].try_into().expect("lane group");
        for (lane, (&av, &bv)) in lanes.iter_mut().zip(ax.iter().zip(bx)) {
            *lane += av * bv;
        }
        p += KLANES;
    }
    let rem = k - p; // tail: product p + l lands in lane l
    for l in 0..KLANES {
        if l < rem {
            lanes[l] += a[p + l] * b[p + l];
        }
    }
    fold8(lanes)
}

/// `‖a‖²` in the lane-8 contract order — `dot8(a, a)`, named for the
/// call sites that precompute norms for the distance decomposition.
#[inline]
pub fn sq_norm(a: &[f32]) -> f32 {
    dot8(a, a)
}

/// `exp(-gamma · ‖a − b‖²)`, ascending-index distance accumulation.
///
/// Dimensions are validated by `debug_assert!` only — callers (the SMO
/// solver, the detectors) check query width once at the fit/batch
/// boundary, not per kernel evaluation inside the hot loop.
#[inline]
pub fn rbf(gamma: f32, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "rbf kernel dimension mismatch");
    let mut d2 = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        d2 += d * d;
    }
    exp_fast(-gamma * d2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_points_score_one() {
        let x = [0.3, -1.2, 4.0];
        assert_eq!(rbf(0.7, &x, &x), 1.0);
    }

    #[test]
    fn known_value() {
        // ‖a-b‖² = 1 + 4 = 5; K = exp(-0.5 * 5).
        let k = rbf(0.5, &[1.0, 0.0], &[0.0, 2.0]);
        assert!((k - (-2.5f32).exp()).abs() < 1e-6);
    }

    #[test]
    fn exp_fast_tracks_std_exp() {
        // Sweep the whole working range of -γ‖·‖² arguments.
        let mut worst = 0.0f64;
        let mut x = -86.0f32;
        while x <= 0.0 {
            let got = exp_fast(x) as f64;
            let want = (x as f64).exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.0137;
        }
        assert!(worst < 5e-7, "worst relative error {worst:e}");
        assert_eq!(exp_fast(0.0), 1.0);
        assert_eq!(exp_fast(-0.0), 1.0);
        // Deep underflow clamps to a tiny positive normal, never NaN or
        // a garbage exponent.
        let deep = exp_fast(-1.0e4);
        assert!(deep > 0.0 && deep < 1e-37, "clamp floor, got {deep:e}");
    }

    #[test]
    fn exp_fast_is_monotone_near_the_decision_scale() {
        // Novelty scores compare kernel sums; a non-monotone exp could
        // invert orderings. Check fine-grained monotonicity where the
        // scores live.
        let mut prev = exp_fast(-20.0);
        let mut x = -20.0f32 + 1e-3;
        while x <= 0.0 {
            let v = exp_fast(x);
            assert!(v >= prev, "exp_fast not monotone at {x}");
            prev = v;
            x += 1e-3;
        }
    }

    #[test]
    fn dot8_matches_plain_dot_to_rounding_and_norm_cancels_exactly() {
        let a: Vec<f32> = (0..25).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..25).map(|i| (i as f32 * 0.91).cos()).collect();
        let want: f64 = a.iter().zip(&b).map(|(&x, &y)| (x * y) as f64).sum();
        assert!((dot8(&a, &b) as f64 - want).abs() < 1e-5);
        // The exact-cancellation contract behind K(x, x) = 1 on the
        // decomposed path: ‖a‖² + ‖a‖² − 2·(a·a) with the norm and the
        // cross term in the same accumulation order.
        let n = sq_norm(&a);
        let cross = dot8(&a, &a);
        assert_eq!(n + n - 2.0 * cross, 0.0);
    }
}
