//! The RBF (Gaussian) kernel behind the one-class SVM.
//!
//! `K(a, b) = exp(-γ‖a − b‖²)` — symmetric, bounded in (0, 1], and
//! positive semi-definite for γ > 0 (Mercer), which the property tests
//! spot-check on random Gram matrices. The squared distance accumulates
//! in ascending index order, so evaluations are deterministic and
//! `K(a, b)` is bit-identical to `K(b, a)` (each term `(aᵢ−bᵢ)²` equals
//! `(bᵢ−aᵢ)²` exactly in IEEE arithmetic).

/// `exp(-gamma · ‖a − b‖²)`. Panics if the slices differ in length.
#[inline]
pub fn rbf(gamma: f32, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "rbf kernel dimension mismatch");
    let mut d2 = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        d2 += d * d;
    }
    (-gamma * d2).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_points_score_one() {
        let x = [0.3, -1.2, 4.0];
        assert_eq!(rbf(0.7, &x, &x), 1.0);
    }

    #[test]
    fn known_value() {
        // ‖a-b‖² = 1 + 4 = 5; K = exp(-0.5 * 5).
        let k = rbf(0.5, &[1.0, 0.0], &[0.0, 2.0]);
        assert!((k - (-2.5f32).exp()).abs() < 1e-7);
    }
}
