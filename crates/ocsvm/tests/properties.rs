//! Property tests for the one-class SVM (ISSUE 7 satellite):
//!
//! - the ν guarantee: margin-error fraction ≤ ν ≤ support-vector
//!   fraction (Schölkopf et al., 2001, Proposition 3);
//! - RBF kernel symmetry (bit-exact) and PSD spot checks on random Gram
//!   matrices;
//! - SMO KKT residuals below tolerance, re-verified *from scratch*
//!   (gradient recomputed from the returned α, not trusted from the
//!   solver's own bookkeeping);
//! - fit determinism.

use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;
use osa_ocsvm::prelude::*;

/// A mixture of two Gaussian-ish blobs plus a few scattered outliers —
/// shaped like real feature windows (mostly tight, occasional junk).
fn random_dataset(n: usize, d: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = Tensor::zeros(n, d);
    for i in 0..n {
        let (center, spread) = match i % 10 {
            9 => (4.0, 3.0), // ~10% scattered
            k if k < 6 => (0.0, 0.6),
            _ => (1.5, 0.4),
        };
        for v in t.row_mut(i) {
            *v = center + rng.range_f32(-spread, spread);
        }
    }
    t
}

#[test]
fn nu_bounds_outliers_below_and_support_vectors_above() {
    for (seed, nu) in [(1u64, 0.05f64), (2, 0.1), (3, 0.2), (4, 0.35), (5, 0.5)] {
        let x = random_dataset(160, 6, seed);
        let n = x.rows() as f64;
        let mut det = OcSvm::new(OcSvmConfig {
            nu,
            ..OcSvmConfig::default()
        });
        det.fit(&x);
        let diag = det.diag().unwrap();
        assert!(
            diag.kkt_gap < 1e-5,
            "seed {seed} nu {nu}: did not converge (gap {})",
            diag.kkt_gap
        );
        // Outliers (rows at the box ceiling are exactly the margin
        // errors at the optimum): fraction ≤ ν, up to one sample of
        // discretization slack.
        let outlier_frac = diag.bounded_svs as f64 / n;
        assert!(
            outlier_frac <= nu + 1.0 / n + 1e-9,
            "seed {seed}: outlier fraction {outlier_frac} exceeds nu {nu}"
        );
        // Support vectors: fraction ≥ ν, same slack.
        let sv_frac = diag.support_vectors as f64 / n;
        assert!(
            sv_frac >= nu - 1.0 / n - 1e-9,
            "seed {seed}: SV fraction {sv_frac} below nu {nu}"
        );
    }
}

#[test]
fn rbf_is_symmetric_bit_for_bit() {
    let mut rng = Rng::seed_from_u64(42);
    for _ in 0..200 {
        let a: Vec<f32> = (0..8).map(|_| rng.range_f32(-3.0, 3.0)).collect();
        let b: Vec<f32> = (0..8).map(|_| rng.range_f32(-3.0, 3.0)).collect();
        let gamma = rng.range_f32(0.01, 2.0);
        assert_eq!(rbf(gamma, &a, &b).to_bits(), rbf(gamma, &b, &a).to_bits());
        // Mathematically positive, but exp underflows to exactly 0.0
        // for very distant points — allow it.
        assert!(rbf(gamma, &a, &b) >= 0.0 && rbf(gamma, &a, &b) <= 1.0);
    }
}

#[test]
fn rbf_gram_matrices_are_positive_semidefinite() {
    // Mercer says zᵀKz ≥ 0 for any z; spot-check random quadratic forms
    // on random Gram matrices (f64 accumulation, small negative slack
    // for rounding).
    let mut rng = Rng::seed_from_u64(7);
    for trial in 0..20 {
        let n = 12;
        let x = random_dataset(n, 5, 100 + trial);
        let gamma = rng.range_f32(0.05, 1.0);
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                k[i * n + j] = rbf(gamma, x.row(i), x.row(j)) as f64;
            }
        }
        for _ in 0..10 {
            let z: Vec<f64> = (0..n).map(|_| rng.range_f32(-1.0, 1.0) as f64).collect();
            let mut q = 0.0f64;
            for i in 0..n {
                for j in 0..n {
                    q += z[i] * k[i * n + j] * z[j];
                }
            }
            assert!(q >= -1e-6, "trial {trial}: zᵀKz = {q}");
        }
    }
}

#[test]
fn kkt_residual_verified_from_scratch() {
    for seed in [11u64, 12, 13] {
        let x = random_dataset(100, 4, seed);
        let nu = 0.15f64;
        let cfg = SmoConfig::default();
        // Standardize the same way OcSvm::fit does not matter here — the
        // KKT conditions must hold for whatever data the solver saw.
        let r = solve_one_class(&x, 0.25, nu, &cfg);
        let n = x.rows();
        let c = 1.0 / (nu * n as f64);

        // Feasibility.
        let sum: f64 = r.alphas.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "seed {seed}: sum {sum}");
        for &a in &r.alphas {
            assert!((-1e-12..=c + 1e-12).contains(&a), "seed {seed}: α {a}");
        }

        // Recompute g = Kα independently and measure the violation
        // max_{α>0} g − min_{α<C} g.
        let mut g = vec![0.0f64; n];
        for (i, gi) in g.iter_mut().enumerate() {
            for j in 0..n {
                *gi += r.alphas[j] * rbf(0.25, x.row(i), x.row(j)) as f64;
            }
        }
        let g_up = (0..n)
            .filter(|&i| r.alphas[i] < c)
            .map(|i| g[i])
            .fold(f64::INFINITY, f64::min);
        let g_low = (0..n)
            .filter(|&i| r.alphas[i] > 0.0)
            .map(|i| g[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let gap = g_low - g_up;
        // The solver tracks g incrementally in f64; allow rounding drift
        // on top of the convergence tolerance.
        assert!(gap < cfg.tol + 1e-7, "seed {seed}: recomputed gap {gap}");
        assert!(
            (gap - r.kkt_gap).abs() < 1e-7,
            "seed {seed}: reported {} vs recomputed {gap}",
            r.kkt_gap
        );
    }
}

#[test]
fn fits_are_deterministic() {
    let x = random_dataset(150, 6, 99);
    let mut a = OcSvm::new(OcSvmConfig::default());
    let mut b = OcSvm::new(OcSvmConfig::default());
    a.fit(&x);
    b.fit(&x);
    assert_eq!(a.support_vectors(), b.support_vectors());
    let mut rng = Rng::seed_from_u64(1);
    for _ in 0..50 {
        let q: Vec<f32> = (0..6).map(|_| rng.range_f32(-2.0, 5.0)).collect();
        assert_eq!(a.score(&q).to_bits(), b.score(&q).to_bits());
    }
}

#[test]
fn scores_separate_training_mass_from_far_points() {
    // End-to-end sanity on §3.1-shaped features: fit on windows of a
    // stationary throughput process, then a shifted process must score
    // strictly higher than the training median.
    let mut rng = Rng::seed_from_u64(2020);
    let calm: Vec<f32> = (0..400).map(|_| 3.0 + rng.range_f32(-0.5, 0.5)).collect();
    let rows = window_features(&calm);
    let mut x = Tensor::zeros(rows.len(), FEATURE_DIM);
    for (i, row) in rows.iter().enumerate() {
        x.row_mut(i).copy_from_slice(row);
    }
    let mut det = OcSvm::new(OcSvmConfig::default());
    det.fit(&x);

    let mut calm_scores: Vec<f32> = (0..x.rows()).map(|i| det.score(x.row(i))).collect();
    calm_scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = calm_scores[calm_scores.len() / 2];

    let wild: Vec<f32> = (0..60).map(|_| 0.2 + rng.range_f32(-0.15, 0.15)).collect();
    for row in window_features(&wild) {
        assert!(det.score(&row) > median, "shifted window not flagged");
    }
}
