//! Batch-size and pool-width invariance of the novelty scorers.
//!
//! The batched engine's contract (`detector.rs`): scoring a window
//! through `score_batch_into` returns the same bits no matter how the
//! batch is grouped — sizes 1, 3, 16, 257 all agree with each other and
//! with the scalar `score` path, at every pool width. For [`OcSvm`] the
//! batch *is* the canonical path (scalar delegates to a batch of one);
//! for [`KnnDetector`] and [`MahalanobisDetector`] the default trait
//! implementation loops the scalar path, so the same sweep pins the
//! trait contract for detectors without a batched kernel.

use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;
use osa_ocsvm::prelude::*;
use osa_runtime::{with_pool, ThreadPool};

const POOL_WIDTHS: [usize; 4] = [1, 2, 4, 8];
const BATCH_SIZES: [usize; 4] = [1, 3, 16, 257];
const QUERIES: usize = 257;
const DIM: usize = FEATURE_DIM;

/// In-distribution-ish training cluster plus a query set that straddles
/// the boundary (near points, moderate points, far outliers).
fn training_and_queries() -> (Tensor, Tensor) {
    let mut rng = Rng::seed_from_u64(0x0541);
    let mut train = Tensor::zeros(300, DIM);
    for v in train.data_mut() {
        *v = 1.0 + rng.range_f32(-0.5, 0.5);
    }
    let mut queries = Tensor::zeros(QUERIES, DIM);
    for i in 0..QUERIES {
        let spread = match i % 3 {
            0 => 0.5,  // inlier
            1 => 2.0,  // boundary-ish
            _ => 12.0, // far outlier
        };
        for v in queries.row_mut(i) {
            *v = 1.0 + rng.range_f32(-spread, spread);
        }
    }
    (train, queries)
}

/// Score all queries through batches of `size` (last batch ragged).
fn batched_scores(det: &dyn NoveltyDetector, queries: &Tensor, size: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; queries.rows()];
    let mut chunk = Tensor::zeros(0, queries.cols());
    let mut start = 0;
    while start < queries.rows() {
        let end = (start + size).min(queries.rows());
        chunk.reset_rows(queries.cols());
        for i in start..end {
            chunk.push_row(queries.row(i));
        }
        det.score_batch_into(&chunk, &mut out[start..end]);
        start = end;
    }
    out
}

#[test]
fn every_detector_is_batch_size_and_pool_width_invariant() {
    let (train, queries) = training_and_queries();
    let detectors: Vec<Box<dyn NoveltyDetector>> = vec![
        Box::new(OcSvm::new(OcSvmConfig::default())),
        Box::new(KnnDetector::default()),
        Box::new(MahalanobisDetector::new()),
    ];
    for mut det in detectors {
        det.fit(&train);
        // Reference: the scalar path at pool width 1.
        let reference: Vec<u32> = {
            let pool = ThreadPool::new(1);
            with_pool(&pool, || {
                (0..queries.rows())
                    .map(|i| det.score(queries.row(i)).to_bits())
                    .collect()
            })
        };
        assert!(
            reference.iter().any(|&b| f32::from_bits(b) > 0.0),
            "{}: query set never left the learned region",
            det.name()
        );
        for width in POOL_WIDTHS {
            let pool = ThreadPool::new(width);
            with_pool(&pool, || {
                for size in BATCH_SIZES {
                    let got = batched_scores(det.as_ref(), &queries, size);
                    for (i, (&g, &want)) in got.iter().zip(&reference).enumerate() {
                        assert_eq!(
                            g.to_bits(),
                            want,
                            "{}: batch {size}, pool {width}, query {i}: \
                             {g} != {}",
                            det.name(),
                            f32::from_bits(want)
                        );
                    }
                }
            });
        }
    }
}

#[test]
fn ocsvm_batched_path_is_the_canonical_scalar_path() {
    // The scalar accessors route through the batched kernel: decision
    // and raw_score must stay exact negations and the log score must
    // agree bit-for-bit with a hand-run batch of one.
    let (train, queries) = training_and_queries();
    let mut det = OcSvm::new(OcSvmConfig::default());
    det.fit(&train);
    let mut one = Tensor::zeros(1, DIM);
    let mut out = [0.0f32];
    for i in 0..queries.rows() {
        let q = queries.row(i);
        one.row_mut(0).copy_from_slice(q);
        det.score_batch_into(&one, &mut out);
        assert_eq!(out[0].to_bits(), det.score(q).to_bits());
        assert_eq!(det.decision(q).to_bits(), (-det.raw_score(q)).to_bits());
    }
}
