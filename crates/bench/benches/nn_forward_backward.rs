//! Microbenchmark: forward and forward+backward passes of the
//! Pensieve-shaped actor network (per-feature Conv1d branches merged into a
//! 128-unit dense layer, softmax head over 6 bitrates).
//!
//! The offline build has no `criterion`, so this is a hand-rolled harness
//! (`harness = false`): per-iteration wall-clock sampling with warmup,
//! reporting mean / median / p95. Run with
//!
//! ```sh
//! cargo bench -p osa-bench
//! ```
//!
//! which rewrites `BENCH_nn.json` at the repo root — the baseline later
//! performance PRs are measured against. Sample counts can be scaled with
//! the env var `OSA_BENCH_SAMPLES` (default 200).

use std::time::Instant;

use osa_nn::json::{obj, Value};
use osa_nn::prelude::*;

/// The Pensieve actor: three Conv1d feature branches + a scalar branch,
/// concatenated into a dense merge. `Sequential` is a linear chain, so the
/// branch fan-in is composed explicitly here — exactly how
/// `osa-pensieve` will build it.
struct PensieveActor {
    conv_throughput: Conv1d, // (1 x 8) history -> 128 filters, kernel 4
    conv_delay: Conv1d,      // (1 x 8) history -> 128 filters, kernel 4
    conv_sizes: Conv1d,      // (1 x 6) next-chunk sizes -> 128 filters, kernel 4
    dense_scalars: Dense,    // buffer, chunks-left, last bitrate -> 128
    relu_branches: [ReLU; 4],
    merge: Dense, // concat -> 128
    relu_merge: ReLU,
    head: Dense, // 128 -> 6 bitrates
    softmax: Softmax,
}

const HIST: usize = 8;
const SIZES: usize = 6;
const SCALARS: usize = 3;
const FILTERS: usize = 128;
const KERNEL: usize = 4;
const MERGE: usize = 128;
const ACTIONS: usize = 6;

impl PensieveActor {
    fn new(rng: &mut Rng) -> Self {
        let conv_throughput = Conv1d::new(1, HIST, FILTERS, KERNEL, Init::HeUniform, rng);
        let conv_delay = Conv1d::new(1, HIST, FILTERS, KERNEL, Init::HeUniform, rng);
        let conv_sizes = Conv1d::new(1, SIZES, FILTERS, KERNEL, Init::HeUniform, rng);
        let dense_scalars = Dense::new(SCALARS, MERGE, Init::HeUniform, rng);
        let merge_in =
            conv_throughput.out_dim() + conv_delay.out_dim() + conv_sizes.out_dim() + MERGE;
        PensieveActor {
            conv_throughput,
            conv_delay,
            conv_sizes,
            dense_scalars,
            relu_branches: Default::default(),
            merge: Dense::new(merge_in, MERGE, Init::HeUniform, rng),
            relu_merge: ReLU::new(),
            head: Dense::new(MERGE, ACTIONS, Init::XavierUniform, rng),
            softmax: Softmax::new(),
        }
    }

    fn forward(&mut self, state: &PensieveState) -> Tensor {
        let a = self.relu_branches[0].forward(&self.conv_throughput.forward(&state.throughput));
        let b = self.relu_branches[1].forward(&self.conv_delay.forward(&state.delay));
        let c = self.relu_branches[2].forward(&self.conv_sizes.forward(&state.sizes));
        let d = self.relu_branches[3].forward(&self.dense_scalars.forward(&state.scalars));
        let merged = concat_cols(&[&a, &b, &c, &d]);
        let m = self.relu_merge.forward(&self.merge.forward(&merged));
        self.softmax.forward(&self.head.forward(&m))
    }

    /// One training-style backward pass: policy-gradient-shaped upstream
    /// gradient through the softmax head and every branch.
    fn backward(&mut self, grad_probs: &Tensor) {
        let g = self.softmax.backward(grad_probs);
        let g = self.head.backward(&g);
        let g = self.relu_merge.backward(&g);
        let g = self.merge.backward(&g);
        let widths = [
            self.conv_throughput.out_dim(),
            self.conv_delay.out_dim(),
            self.conv_sizes.out_dim(),
            MERGE,
        ];
        let parts = split_cols(&g, &widths);
        let g0 = self.relu_branches[0].backward(&parts[0]);
        self.conv_throughput.backward(&g0);
        let g1 = self.relu_branches[1].backward(&parts[1]);
        self.conv_delay.backward(&g1);
        let g2 = self.relu_branches[2].backward(&parts[2]);
        self.conv_sizes.backward(&g2);
        let g3 = self.relu_branches[3].backward(&parts[3]);
        self.dense_scalars.backward(&g3);
    }
}

struct PensieveState {
    throughput: Tensor,
    delay: Tensor,
    sizes: Tensor,
    scalars: Tensor,
}

impl PensieveState {
    fn random(batch: usize, rng: &mut Rng) -> Self {
        let rand_t = |rows: usize, cols: usize, rng: &mut Rng| {
            let data = (0..rows * cols).map(|_| rng.range_f32(0.0, 1.0)).collect();
            Tensor::from_vec(rows, cols, data)
        };
        PensieveState {
            throughput: rand_t(batch, HIST, rng),
            delay: rand_t(batch, HIST, rng),
            sizes: rand_t(batch, SIZES, rng),
            scalars: rand_t(batch, SCALARS, rng),
        }
    }
}

fn concat_cols(parts: &[&Tensor]) -> Tensor {
    let rows = parts[0].rows();
    let cols: usize = parts.iter().map(|p| p.cols()).sum();
    let mut out = Tensor::zeros(rows, cols);
    for r in 0..rows {
        let orow = out.row_mut(r);
        let mut off = 0;
        for p in parts {
            orow[off..off + p.cols()].copy_from_slice(p.row(r));
            off += p.cols();
        }
    }
    out
}

fn split_cols(t: &Tensor, widths: &[usize]) -> Vec<Tensor> {
    let mut out = Vec::with_capacity(widths.len());
    let mut off = 0;
    for &w in widths {
        let mut part = Tensor::zeros(t.rows(), w);
        for r in 0..t.rows() {
            part.row_mut(r).copy_from_slice(&t.row(r)[off..off + w]);
        }
        out.push(part);
        off += w;
    }
    out
}

/// Time `f` once per sample after `warmup` unrecorded runs; returns
/// per-sample nanoseconds, sorted ascending.
fn sample_ns(samples: usize, warmup: usize, mut f: impl FnMut()) -> Vec<u64> {
    for _ in 0..warmup {
        f();
    }
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        out.push(start.elapsed().as_nanos() as u64);
    }
    out.sort_unstable();
    out
}

fn summarize(name: &str, ns: &[u64]) -> Value {
    let mean = ns.iter().sum::<u64>() as f64 / ns.len() as f64;
    let median = ns[ns.len() / 2];
    let p95 = ns[(ns.len() as f64 * 0.95) as usize - 1];
    println!(
        "{name:<28} mean {:>10.0} ns   median {:>10} ns   p95 {:>10} ns",
        mean, median, p95
    );
    obj(vec![
        ("name", Value::Str(name.into())),
        ("mean_ns", Value::Num(mean.round())),
        ("median_ns", Value::Num(median as f64)),
        ("p95_ns", Value::Num(p95 as f64)),
        ("samples", Value::Num(ns.len() as f64)),
    ])
}

fn main() {
    let samples: usize = std::env::var("OSA_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let warmup = samples / 4 + 1;
    let mut rng = Rng::seed_from_u64(42);
    let mut actor = PensieveActor::new(&mut rng);
    println!("pensieve actor: conv branches {FILTERS}x{KERNEL}, merge {MERGE}, {ACTIONS} actions");

    let mut results = Vec::new();

    // Per-decision inference latency: batch of one state, what the online
    // SafeAgent pays on every chunk decision.
    let state1 = PensieveState::random(1, &mut rng);
    let ns = sample_ns(samples, warmup, || {
        let probs = actor.forward(&state1);
        std::hint::black_box(probs);
    });
    results.push(summarize("actor_forward_batch1", &ns));

    // Training step shape: batch of 32 states, forward + full backward.
    let state32 = PensieveState::random(32, &mut rng);
    let upstream = {
        let data = (0..32 * ACTIONS)
            .map(|_| rng.range_f32(-1.0, 1.0))
            .collect();
        Tensor::from_vec(32, ACTIONS, data)
    };
    let ns = sample_ns(samples, warmup, || {
        let probs = actor.forward(&state32);
        std::hint::black_box(&probs);
        actor.backward(&upstream);
    });
    results.push(summarize("actor_fwd_bwd_batch32", &ns));

    let report = obj(vec![
        ("bench", Value::Str("nn_forward_backward".into())),
        ("seed", Value::Num(42.0)),
        ("results", Value::Arr(results)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn.json");
    osa_bench::write_report(path, report).expect("write BENCH_nn.json");
    println!("baseline written to BENCH_nn.json");
}
