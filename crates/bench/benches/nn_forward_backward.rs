//! Microbenchmark: forward and forward+backward passes of the
//! Pensieve-shaped actor network (per-feature Conv1d branches merged into a
//! 128-unit dense layer, softmax head over 6 bitrates).
//!
//! The offline build has no `criterion`, so this uses the hand-rolled
//! harness in `osa_bench::run_bench` (`harness = false`): per-iteration
//! wall-clock sampling with warmup, reporting mean / median / p95 plus
//! heap allocations per iteration (the process runs under
//! [`osa_bench::counting_alloc::CountingAlloc`]). Run with
//!
//! ```sh
//! cargo bench -p osa-bench
//! ```
//!
//! which rewrites `BENCH_nn.json` at the repo root — the baseline the
//! `bench_compare` gate measures later PRs against. Sample counts can be
//! scaled with the env var `OSA_BENCH_SAMPLES` (default 200). A
//! `thread_scaling` section re-times the batch-32 pass under explicit
//! `osa_runtime::ThreadPool` widths from 1 up to the effective thread
//! budget (`OSA_THREADS` or the host's parallelism), one entry per
//! `pool_workers` value.
//!
//! The actor exercises the zero-allocation hot path end to end: ReLUs are
//! fused into their producing layers (`with_act`), every intermediate
//! lives in a shared [`Workspace`], and the branch concat/split runs
//! through reusable buffers — so after warmup the steady state performs
//! no heap allocation (visible in the `allocs_per_iter` column).

use osa_abr::OBS_DIM;
use osa_bench::{counting_alloc::CountingAlloc, hardware_threads, run_bench, BenchStats};
use osa_nn::json::{obj, Value};
use osa_nn::prelude::*;
use osa_nn::stacked::StackedNet;
use osa_nn::tensor::Act;
use osa_pensieve::{PensieveAgent, PensieveConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The Pensieve actor: three Conv1d feature branches + a scalar branch,
/// concatenated into a dense merge. `Sequential` is a linear chain, so the
/// branch fan-in is composed explicitly here — exactly how
/// `osa-pensieve` will build it.
struct PensieveActor {
    conv_throughput: Conv1d, // (1 x 8) history -> 128 filters, kernel 4, fused ReLU
    conv_delay: Conv1d,      // (1 x 8) history -> 128 filters, kernel 4, fused ReLU
    conv_sizes: Conv1d,      // (1 x 6) next-chunk sizes -> 128 filters, kernel 4, fused ReLU
    dense_scalars: Dense,    // buffer, chunks-left, last bitrate -> 128, fused ReLU
    merge: Dense,            // concat -> 128, fused ReLU
    head: Dense,             // 128 -> 6 bitrates
    softmax: Softmax,
}

const HIST: usize = 8;
const SIZES: usize = 6;
const SCALARS: usize = 3;
const FILTERS: usize = 128;
const KERNEL: usize = 4;
const MERGE: usize = 128;
const ACTIONS: usize = 6;

impl PensieveActor {
    fn new(rng: &mut Rng) -> Self {
        let conv_throughput =
            Conv1d::new(1, HIST, FILTERS, KERNEL, Init::HeUniform, rng).with_act(Act::Relu);
        let conv_delay =
            Conv1d::new(1, HIST, FILTERS, KERNEL, Init::HeUniform, rng).with_act(Act::Relu);
        let conv_sizes =
            Conv1d::new(1, SIZES, FILTERS, KERNEL, Init::HeUniform, rng).with_act(Act::Relu);
        let dense_scalars = Dense::new(SCALARS, MERGE, Init::HeUniform, rng).with_act(Act::Relu);
        let merge_in =
            conv_throughput.out_dim() + conv_delay.out_dim() + conv_sizes.out_dim() + MERGE;
        PensieveActor {
            conv_throughput,
            conv_delay,
            conv_sizes,
            dense_scalars,
            merge: Dense::new(merge_in, MERGE, Init::HeUniform, rng).with_act(Act::Relu),
            head: Dense::new(MERGE, ACTIONS, Init::XavierUniform, rng),
            softmax: Softmax::new(),
        }
    }

    fn branch_widths(&self) -> [usize; 4] {
        [
            self.conv_throughput.out_dim(),
            self.conv_delay.out_dim(),
            self.conv_sizes.out_dim(),
            MERGE,
        ]
    }

    fn forward_ws(&mut self, state: &PensieveState, ws: &mut Workspace) -> Tensor {
        let a = self.conv_throughput.forward_ws(&state.throughput, ws);
        let b = self.conv_delay.forward_ws(&state.delay, ws);
        let c = self.conv_sizes.forward_ws(&state.sizes, ws);
        let d = self.dense_scalars.forward_ws(&state.scalars, ws);
        let merged = concat_cols(&[&a, &b, &c, &d], ws);
        ws.recycle(a);
        ws.recycle(b);
        ws.recycle(c);
        ws.recycle(d);
        let m = self.merge.forward_ws(&merged, ws);
        ws.recycle(merged);
        let h = self.head.forward_ws(&m, ws);
        ws.recycle(m);
        let probs = self.softmax.forward_ws(&h, ws);
        ws.recycle(h);
        probs
    }

    /// One training-style backward pass: policy-gradient-shaped upstream
    /// gradient through the softmax head and every branch.
    fn backward_ws(&mut self, grad_probs: &Tensor, ws: &mut Workspace) {
        let g = self.softmax.backward_ws(grad_probs, ws);
        let g2 = self.head.backward_ws(&g, ws);
        ws.recycle(g);
        let g3 = self.merge.backward_ws(&g2, ws);
        ws.recycle(g2);
        let widths = self.branch_widths();
        let mut off = 0;
        for (i, &w) in widths.iter().enumerate() {
            let mut part = ws.take(g3.rows(), w);
            for r in 0..g3.rows() {
                part.row_mut(r).copy_from_slice(&g3.row(r)[off..off + w]);
            }
            let gi = match i {
                0 => self.conv_throughput.backward_ws(&part, ws),
                1 => self.conv_delay.backward_ws(&part, ws),
                2 => self.conv_sizes.backward_ws(&part, ws),
                _ => self.dense_scalars.backward_ws(&part, ws),
            };
            ws.recycle(gi);
            ws.recycle(part);
            off += w;
        }
        ws.recycle(g3);
    }

    /// Analytic floating-point operation count of one forward pass at the
    /// given batch size (multiply-adds counted as 2 FLOPs; bias and
    /// activation traffic ignored — they are two orders of magnitude
    /// below the GEMMs).
    fn forward_flops(&self, batch: usize) -> f64 {
        let conv = |out_ch: usize, out_len: usize, in_ch: usize| {
            (batch * out_ch * out_len * in_ch * KERNEL * 2) as f64
        };
        let dense = |k: usize, n: usize| (batch * k * n * 2) as f64;
        conv(FILTERS, self.conv_throughput.out_len(), 1)
            + conv(FILTERS, self.conv_delay.out_len(), 1)
            + conv(FILTERS, self.conv_sizes.out_len(), 1)
            + dense(SCALARS, MERGE)
            + dense(self.branch_widths().iter().sum(), MERGE)
            + dense(MERGE, ACTIONS)
    }
}

struct PensieveState {
    throughput: Tensor,
    delay: Tensor,
    sizes: Tensor,
    scalars: Tensor,
}

impl PensieveState {
    fn random(batch: usize, rng: &mut Rng) -> Self {
        let rand_t = |rows: usize, cols: usize, rng: &mut Rng| {
            let data = (0..rows * cols).map(|_| rng.range_f32(0.0, 1.0)).collect();
            Tensor::from_vec(rows, cols, data)
        };
        PensieveState {
            throughput: rand_t(batch, HIST, rng),
            delay: rand_t(batch, HIST, rng),
            sizes: rand_t(batch, SIZES, rng),
            scalars: rand_t(batch, SCALARS, rng),
        }
    }
}

fn concat_cols(parts: &[&Tensor], ws: &mut Workspace) -> Tensor {
    let rows = parts[0].rows();
    let cols: usize = parts.iter().map(|p| p.cols()).sum();
    let mut out = ws.take(rows, cols);
    for r in 0..rows {
        let orow = out.row_mut(r);
        let mut off = 0;
        for p in parts {
            orow[off..off + p.cols()].copy_from_slice(p.row(r));
            off += p.cols();
        }
    }
    out
}

/// Attach a derived MFLOP/s throughput column to a result entry.
fn with_mflops(stats: &BenchStats, flops: f64) -> Value {
    let mut entry = stats.to_json();
    if let Value::Obj(map) = &mut entry {
        let mflops = flops / (stats.median_ns as f64 * 1e-9) / 1e6;
        map.insert("mflops".into(), Value::Num(mflops.round()));
    }
    entry
}

fn main() {
    let samples: usize = std::env::var("OSA_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let mut rng = Rng::seed_from_u64(42);
    let mut actor = PensieveActor::new(&mut rng);
    let mut ws = Workspace::new();
    println!("pensieve actor: conv branches {FILTERS}x{KERNEL}, merge {MERGE}, {ACTIONS} actions");

    let mut results = Vec::new();

    // Per-decision inference latency: batch of one state, what the online
    // SafeAgent pays on every chunk decision.
    let state1 = PensieveState::random(1, &mut rng);
    let stats = run_bench("actor_forward_batch1", samples, || {
        let probs = actor.forward_ws(&state1, &mut ws);
        std::hint::black_box(&probs);
        ws.recycle(probs);
    });
    results.push(with_mflops(&stats, actor.forward_flops(1)));

    // Training step shape: batch of 32 states, forward + full backward.
    // Backward runs two GEMMs (dW, dX) for every forward GEMM, so the
    // pass costs roughly 3x the forward FLOPs.
    let state32 = PensieveState::random(32, &mut rng);
    let upstream = {
        let data = (0..32 * ACTIONS)
            .map(|_| rng.range_f32(-1.0, 1.0))
            .collect();
        Tensor::from_vec(32, ACTIONS, data)
    };
    let stats = run_bench("actor_fwd_bwd_batch32", samples, || {
        let probs = actor.forward_ws(&state32, &mut ws);
        std::hint::black_box(&probs);
        ws.recycle(probs);
        actor.backward_ws(&upstream, &mut ws);
    });
    results.push(with_mflops(&stats, 3.0 * actor.forward_flops(32)));

    // Serving shape: the 5-replica paper-scale ensemble actor as one
    // stacked grouped GEMM over a batch of 32 sessions — what a fleet
    // shard pays per round (`core::serve` decides session-major batches
    // through exactly this forward).
    let replicas = 5;
    let agents: Vec<PensieveAgent> = (0..replicas)
        .map(|_| PensieveAgent::new(PensieveConfig::paper(), &mut rng))
        .collect();
    let nets: Vec<_> = agents.iter().map(|a| &a.actor_critic().actor).collect();
    let stacked = StackedNet::from_nets(&nets).expect("paper towers stack");
    let mut sws = Workspace::new();
    let obs32 = {
        let data = (0..32 * OBS_DIM).map(|_| rng.range_f32(0.0, 1.0)).collect();
        Tensor::from_vec(32, OBS_DIM, data)
    };
    let mut stacked_out = Tensor::zeros(0, 0);
    let stats = run_bench("ensemble_forward_batch32", samples, || {
        stacked.forward_into(&obs32, &mut sws, &mut stacked_out);
        std::hint::black_box(&stacked_out);
    });
    // Dense-lowered FLOPs: the conv branches become one block-diagonal
    // (OBS_DIM x merge_in) GEMM per replica in the stacked layout.
    let stacked_flops = {
        let cfg = PensieveConfig::paper();
        let dims = [
            (OBS_DIM, cfg.merge_in()),
            (cfg.merge_in(), cfg.merge),
            (cfg.merge, ACTIONS),
        ];
        let per_row: usize = dims.iter().map(|(k, n)| 2 * k * n).sum();
        (replicas * 32 * per_row) as f64
    };
    results.push(with_mflops(&stats, stacked_flops));

    // Quantized serving path: the same stacked ensemble served int8 —
    // per-output-channel symmetric weights, activation scales calibrated
    // on a held-out batch, i32 accumulate with an f32 dequant epilogue.
    // Steady state must stay allocation-free, same as the f32 path.
    let calib = {
        let data = (0..64 * OBS_DIM).map(|_| rng.range_f32(0.0, 1.0)).collect();
        Tensor::from_vec(64, OBS_DIM, data)
    };
    let qstacked = QuantStacked::from_stacked(&stacked, &calib, &mut sws);
    let mut qscratch = QuantScratch::new();
    let mut qout = Tensor::zeros(0, 0);
    let stats = run_bench("ensemble_forward_batch32_int8", samples, || {
        qstacked.forward_into(&obs32, &mut qscratch, &mut qout);
        std::hint::black_box(&qout);
    });
    results.push(with_mflops(&stats, stacked_flops));

    // Per-decision quantized inference: the single-replica dense-lowered
    // actor at batch 1 — what a quantized per-session SafeAgent pays per
    // chunk decision (int8 ops counted like FLOPs for comparability).
    let single = StackedNet::from_nets(&[&agents[0].actor_critic().actor]).expect("tower stacks");
    let qsingle = QuantStacked::from_stacked(&single, &calib, &mut sws);
    let obs1 = {
        let data = (0..OBS_DIM).map(|_| rng.range_f32(0.0, 1.0)).collect();
        Tensor::from_vec(1, OBS_DIM, data)
    };
    let stats = run_bench("actor_forward_batch1_int8", samples, || {
        qsingle.forward_into(&obs1, &mut qscratch, &mut qout);
        std::hint::black_box(&qout);
    });
    results.push(with_mflops(&stats, stacked_flops / (replicas * 32) as f64));

    // Thread-scaling sweep: the same fwd+bwd workload pinned to explicit
    // pool widths 1..=thread_budget(). Outputs are bit-identical across
    // widths (the osa-runtime contract); only the latency may move. Under
    // `OSA_THREADS=1` — how CI takes baselines — the sweep collapses to
    // the single `pool_workers: 1` entry, so reports stay comparable
    // across hosts with different core counts.
    let mut thread_scaling = Vec::new();
    for w in 1..=osa_runtime::thread_budget() {
        let pool = osa_runtime::ThreadPool::new(w);
        let stats = osa_runtime::with_pool(&pool, || {
            run_bench(&format!("actor_fwd_bwd_batch32_pool{w}"), samples, || {
                let probs = actor.forward_ws(&state32, &mut ws);
                std::hint::black_box(&probs);
                ws.recycle(probs);
                actor.backward_ws(&upstream, &mut ws);
            })
        });
        let mut entry = with_mflops(&stats, 3.0 * actor.forward_flops(32));
        if let Value::Obj(map) = &mut entry {
            map.insert("pool_workers".into(), Value::Num(w as f64));
        }
        thread_scaling.push(entry);
    }

    let report = obj(vec![
        ("bench", Value::Str("nn_forward_backward".into())),
        ("seed", Value::Num(42.0)),
        ("hardware_threads", Value::Num(hardware_threads() as f64)),
        (
            "kernel_variant",
            Value::Str(osa_bench::kernel_variant().into()),
        ),
        ("target_cpu", Value::Str(osa_bench::target_cpu().into())),
        ("results", Value::Arr(results)),
        ("thread_scaling", Value::Arr(thread_scaling)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn.json");
    osa_bench::write_report(path, report).expect("write BENCH_nn.json");
    println!("baseline written to BENCH_nn.json");
}
