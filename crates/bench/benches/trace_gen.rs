//! Microbenchmark: trace generation and cache-serialization throughput
//! for all six datasets.
//!
//! Two numbers per dataset: generation rate (traces/sec and million
//! samples/sec — the cost of a cold bench-pipeline start) and JSON cache
//! bandwidth (MB/s serialize and parse — the cost of every warm start).
//! Timing runs through the shared [`osa_bench::run_bench`] harness
//! (three samples per stage, best-of handled by the median) under the
//! [`osa_bench::counting_alloc::CountingAlloc`] global allocator.
//!
//! ```sh
//! cargo bench -p osa-bench --bench trace_gen
//! ```
//!
//! rewrites `BENCH_trace.json` at the repo root. `OSA_BENCH_TRACES`
//! scales the corpus size (default 20 traces × 3000 samples per dataset).

use osa_bench::{counting_alloc::CountingAlloc, hardware_threads, run_bench};
use osa_nn::json::{obj, Value};
use osa_trace::io;
use osa_trace::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const TRACE_LEN: usize = 3_000;
/// Timed repetitions per stage (`run_bench` adds one warmup on top).
const SAMPLES: usize = 3;

fn main() {
    let count: usize = std::env::var("OSA_BENCH_TRACES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    println!("trace generation: {count} traces x {TRACE_LEN} samples per dataset");

    let mut results = Vec::new();
    for dataset in Dataset::ALL {
        let mut traces = Vec::new();
        let gen = run_bench(&format!("{}_generate", dataset.name()), SAMPLES, || {
            traces = dataset.generate(count, TRACE_LEN, 42);
        });
        let gen_s = gen.median_ns as f64 * 1e-9;
        let samples = (count * TRACE_LEN) as f64;
        let traces_per_sec = count as f64 / gen_s;
        let msamples_per_sec = samples / gen_s / 1e6;

        let mut text = String::new();
        let ser = run_bench(&format!("{}_serialize", dataset.name()), SAMPLES, || {
            text = io::traces_to_json(&traces).expect("generated traces are finite");
        });
        let mb = text.len() as f64 / 1e6;
        let ser_mb_per_sec = mb / (ser.median_ns as f64 * 1e-9);

        let parse = run_bench(&format!("{}_parse", dataset.name()), SAMPLES, || {
            let loaded = io::traces_from_json(&text).expect("roundtrip");
            assert_eq!(loaded.len(), traces.len());
        });
        let parse_mb_per_sec = mb / (parse.median_ns as f64 * 1e-9);

        println!(
            "{:12} {:>9.0} traces/s  {:>7.2} Msamples/s  serialize {:>7.1} MB/s  parse {:>7.1} MB/s ({:.2} MB)",
            dataset.name(),
            traces_per_sec,
            msamples_per_sec,
            ser_mb_per_sec,
            parse_mb_per_sec,
            mb
        );
        let mut entry = obj(vec![
            ("dataset", Value::Str(dataset.name().into())),
            ("traces_per_sec", Value::Num(traces_per_sec.round())),
            (
                "msamples_per_sec",
                Value::Num((msamples_per_sec * 100.0).round() / 100.0),
            ),
            (
                "serialize_mb_per_sec",
                Value::Num((ser_mb_per_sec * 10.0).round() / 10.0),
            ),
            (
                "parse_mb_per_sec",
                Value::Num((parse_mb_per_sec * 10.0).round() / 10.0),
            ),
            ("serialized_mb", Value::Num((mb * 100.0).round() / 100.0)),
        ]);
        if let Value::Obj(map) = &mut entry {
            map.insert("generate_ns".into(), Value::Num(gen.median_ns as f64));
            map.insert("serialize_ns".into(), Value::Num(ser.median_ns as f64));
            map.insert("parse_ns".into(), Value::Num(parse.median_ns as f64));
        }
        results.push(entry);
    }

    // Thread-scaling sweep: Norway corpus generation (the heaviest
    // dataset: Markov regimes + per-sample noise) under explicit pool
    // widths. Each trace draws from its own pre-assigned sub-seed, so
    // the corpus bytes are identical at every width — only the wall
    // clock moves. Under `OSA_THREADS=1` this collapses to one entry.
    let sweep_dataset = Dataset::Norway;
    let mut thread_scaling = Vec::new();
    for w in 1..=osa_runtime::thread_budget() {
        let pool = osa_runtime::ThreadPool::new(w);
        let name = format!("{}_generate_pool{w}", sweep_dataset.name());
        let mut traces = Vec::new();
        let gen = osa_runtime::with_pool(&pool, || {
            run_bench(&name, SAMPLES, || {
                traces = sweep_dataset.generate(count, TRACE_LEN, 42);
            })
        });
        let gen_s = gen.median_ns as f64 * 1e-9;
        let traces_per_sec = count as f64 / gen_s;
        println!(
            "{:12} pool {w}: {:>9.0} traces/s",
            sweep_dataset.name(),
            traces_per_sec
        );
        let mut entry = gen.to_json();
        if let Value::Obj(map) = &mut entry {
            map.insert("dataset".into(), Value::Str(sweep_dataset.name().into()));
            map.insert("pool_workers".into(), Value::Num(w as f64));
            map.insert("traces_per_sec".into(), Value::Num(traces_per_sec.round()));
        }
        thread_scaling.push(entry);
    }

    let report = obj(vec![
        ("bench", Value::Str("trace_gen".into())),
        ("traces_per_dataset", Value::Num(count as f64)),
        ("trace_len", Value::Num(TRACE_LEN as f64)),
        ("hardware_threads", Value::Num(hardware_threads() as f64)),
        (
            "kernel_variant",
            Value::Str(osa_bench::kernel_variant().into()),
        ),
        ("target_cpu", Value::Str(osa_bench::target_cpu().into())),
        ("results", Value::Arr(results)),
        ("thread_scaling", Value::Arr(thread_scaling)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    osa_bench::write_report(path, report).expect("write BENCH_trace.json");
    println!("baseline written to BENCH_trace.json");
}
