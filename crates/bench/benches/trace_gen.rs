//! Microbenchmark: trace generation and cache-serialization throughput
//! for all six datasets.
//!
//! Two numbers per dataset: generation rate (traces/sec and million
//! samples/sec — the cost of a cold bench-pipeline start) and JSON cache
//! bandwidth (MB/s serialize and parse — the cost of every warm start).
//!
//! ```sh
//! cargo bench -p osa-bench --bench trace_gen
//! ```
//!
//! rewrites `BENCH_trace.json` at the repo root. `OSA_BENCH_TRACES`
//! scales the corpus size (default 20 traces × 3000 samples per dataset).

use std::time::Instant;

use osa_nn::json::{obj, Value};
use osa_trace::io;
use osa_trace::prelude::*;

const TRACE_LEN: usize = 3_000;

fn main() {
    let count: usize = std::env::var("OSA_BENCH_TRACES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    println!("trace generation: {count} traces x {TRACE_LEN} samples per dataset");

    // Warm up allocator and code paths off the record.
    Dataset::Gamma12.generate(2, TRACE_LEN, 1);

    let mut results = Vec::new();
    for dataset in Dataset::ALL {
        // Best of three: generation is allocation-heavy and scheduler
        // noise on shared runners is real.
        let mut best_gen_s = f64::MAX;
        let mut traces = Vec::new();
        for rep in 0..3 {
            let start = Instant::now();
            traces = dataset.generate(count, TRACE_LEN, 42 + rep);
            best_gen_s = best_gen_s.min(start.elapsed().as_secs_f64());
        }
        let samples = (count * TRACE_LEN) as f64;
        let traces_per_sec = count as f64 / best_gen_s;
        let msamples_per_sec = samples / best_gen_s / 1e6;

        let mut text = String::new();
        let mut best_ser_s = f64::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            text = io::traces_to_json(&traces).expect("generated traces are finite");
            best_ser_s = best_ser_s.min(start.elapsed().as_secs_f64());
        }
        let mb = text.len() as f64 / 1e6;
        let ser_mb_per_sec = mb / best_ser_s;

        let mut best_parse_s = f64::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            let loaded = io::traces_from_json(&text).expect("roundtrip");
            best_parse_s = best_parse_s.min(start.elapsed().as_secs_f64());
            assert_eq!(loaded.len(), traces.len());
        }
        let parse_mb_per_sec = mb / best_parse_s;

        println!(
            "{:12} {:>9.0} traces/s  {:>7.2} Msamples/s  serialize {:>7.1} MB/s  parse {:>7.1} MB/s ({:.2} MB)",
            dataset.name(),
            traces_per_sec,
            msamples_per_sec,
            ser_mb_per_sec,
            parse_mb_per_sec,
            mb
        );
        results.push(obj(vec![
            ("dataset", Value::Str(dataset.name().into())),
            ("traces_per_sec", Value::Num(traces_per_sec.round())),
            (
                "msamples_per_sec",
                Value::Num((msamples_per_sec * 100.0).round() / 100.0),
            ),
            (
                "serialize_mb_per_sec",
                Value::Num((ser_mb_per_sec * 10.0).round() / 10.0),
            ),
            (
                "parse_mb_per_sec",
                Value::Num((parse_mb_per_sec * 10.0).round() / 10.0),
            ),
            ("serialized_mb", Value::Num((mb * 100.0).round() / 100.0)),
        ]));
    }

    let report = obj(vec![
        ("bench", Value::Str("trace_gen".into())),
        ("traces_per_dataset", Value::Num(count as f64)),
        ("trace_len", Value::Num(TRACE_LEN as f64)),
        ("results", Value::Arr(results)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    osa_bench::write_report(path, report).expect("write BENCH_trace.json");
    println!("baseline written to BENCH_trace.json");
}
