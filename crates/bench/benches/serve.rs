//! Fleet-serving benchmark: what a decision round costs at scale, and
//! what reverse switching buys back after a transient shift.
//!
//! Three sections, one report (`BENCH_serve.json` at the repo root):
//!
//! 1. **Gated round latency** — steady-state `FleetEngine::round` over
//!    a fixed 256-session U_V-guarded fleet (constant work, so the
//!    `bench_compare` 25% gate applies to its median and its
//!    zero-allocation claim), on the f32 path and again on the int8
//!    quantized serving path (`ServePrecision::Int8`).
//! 2. **Fleet scale** — the same engine at `OSA_BENCH_FLEET` sessions
//!    (default 100 000): p50/p99 round latency and the derived
//!    per-decision latency. Informational, not gated — smoke runs
//!    shrink the fleet, which changes the work per round.
//! 3. **Transient-shift recovery** — sessions stream Norway links with
//!    a transient shift spliced into the first half, guarded by an
//!    anchored, calibrated U_S novelty monitor: sticky (the paper's
//!    default-forever fallback) versus reverse switching. Two shifts
//!    are reported: the Belgium-shift scenario (a bandwidth-richer 4G
//!    window, where the buffer-based fallback itself thrives and
//!    returning early costs a little) and an outage (the link capped
//!    at 0.4 Mbps, where coming back to the learned policy once the
//!    link recovers wins decisively). Each entry records the QoE both
//!    configurations earned and the per-chunk QoE reverse switching
//!    recovered versus staying on the fallback forever.
//!
//! ```sh
//! cargo bench -p osa-bench --bench serve
//! ```
//!
//! `OSA_BENCH_SAMPLES` scales sample counts of the gated section;
//! `OSA_BENCH_FLEET` / `OSA_BENCH_FLEET_ROUNDS` scale the fleet-scale
//! section (never the gated one).

use std::time::Instant;

use osa_abr::prelude::*;
use osa_bench::osap;
use osa_bench::{counting_alloc::CountingAlloc, hardware_threads, run_bench};
use osa_core::prelude::*;
use osa_core::serve::FleetEngine;
use osa_nn::json::{obj, Value};
use osa_ocsvm::OcSvm;
use osa_trace::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Fixed fleet of the gated section — never scaled by smoke envs, so
/// the committed medians stay comparable.
const GATED_SESSIONS: usize = 256;

/// Sample of each transient-shift scenario: sessions per configuration.
const SHIFT_SESSIONS: usize = 32;

/// Reverse-switching policy under test: m = 3 quiet windows to return,
/// re-trip within 8 decisions locks the session onto the fallback.
const REVERSE: ReverseConfig = ReverseConfig {
    quiet_windows: 3,
    retrip_guard: 8,
};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn owned_ensemble() -> PensieveEnsemble {
    let text = std::fs::read_to_string(osap::ARTIFACT).expect("missing ensemble artifact");
    PensieveEnsemble::from_json(&text).expect("artifact parses")
}

/// Calibrate U_V once on in-distribution validation traces — the α
/// every fleet below deploys.
fn calibrated_alpha(video: &VideoModel, cfg: &AbrConfig, split: &Split) -> f32 {
    let ens = osap::load_ensemble();
    let mut agent = abr_safe_agent(
        ens.clone(),
        ValueDisagreement::new(ens),
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    calibrate(
        &mut agent,
        video,
        cfg,
        &split.validation[..4],
        DEFAULT_MARGIN,
    )
    .alpha
}

#[allow(clippy::too_many_arguments)] // one knob per ServeConfig field under sweep
fn steady_engine(
    alpha: f32,
    anchor: Option<f32>,
    signal: FleetSignal,
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
    n: usize,
    precision: ServePrecision,
) -> FleetEngine {
    let serve = ServeConfig {
        alpha,
        anchor,
        reverse: Some(REVERSE),
        shard: 64,
        auto_reset: true,
        precision,
        ..ServeConfig::default()
    };
    let mut ens = owned_ensemble();
    if precision == ServePrecision::Int8 {
        let calib = calibration_observations(&mut ens, video, cfg, &traces[..4], 64);
        ens.calibrate_int8(&calib);
    }
    FleetEngine::new(
        ens,
        signal,
        video.clone(),
        cfg.clone(),
        traces.to_vec(),
        n,
        &serve,
    )
}

/// Anchored U_S guard shared by both shift scenarios: calibrate once
/// unanchored to learn the in-distribution score mean μ₀, anchor the
/// monitor there, then recalibrate α against the anchored variance.
/// Anchoring is what keeps the monitor honest mid-shift — a sample-mean
/// variance re-centers on the shifted scores and reads them as quiet.
struct UsGuard {
    svm: OcSvm,
    mu: f32,
    alpha: f32,
}

fn calibrated_us(video: &VideoModel, cfg: &AbrConfig, split: &Split) -> UsGuard {
    let ens = osap::load_ensemble();
    let svm = osap::fit_us_svm(&ens, video, cfg, &split.train);
    let mut agent = abr_safe_agent(
        ens.clone(),
        NoveltySignal::new(svm.clone()),
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    let unanchored = calibrate_novelty(
        &mut agent,
        video,
        cfg,
        &split.validation[..4],
        DEFAULT_MARGIN,
    );
    agent.monitor_mut().set_anchor(Some(unanchored.mu));
    let anchored = calibrate_novelty(
        &mut agent,
        video,
        cfg,
        &split.validation[..4],
        DEFAULT_MARGIN,
    );
    UsGuard {
        svm,
        mu: unanchored.mu,
        alpha: anchored.alpha,
    }
}

/// The Belgium-shift scenario: a Belgium 4G window spliced into each
/// Norway link early in the session, home again after thirty seconds.
fn belgium_traces(split: &Split) -> Vec<Trace> {
    let belgium = Dataset::Belgium.generate(8, osap::CORPUS_LEN, 77);
    split.test[..8]
        .iter()
        .zip(&belgium)
        .enumerate()
        .map(|(i, (norway, belgium))| {
            let mut mbps = norway.mbps.clone();
            let end = 40.min(mbps.len()).min(belgium.mbps.len());
            mbps[10..end].copy_from_slice(&belgium.mbps[10..end]);
            Trace::new(format!("belgium{i}"), norway.interval_s, mbps)
        })
        .collect()
}

/// The outage scenario: the same Norway links capped at 0.4 Mbps for
/// sixty seconds — the link comes home with the buffer drained, which
/// is exactly the state the learned policy was trained to climb out of.
fn outage_traces(split: &Split) -> Vec<Trace> {
    split.test[..8]
        .iter()
        .enumerate()
        .map(|(i, norway)| {
            let mut mbps = norway.mbps.clone();
            let end = 70.min(mbps.len());
            for v in &mut mbps[10..end] {
                *v = v.min(0.4);
            }
            Trace::new(format!("outage{i}"), norway.interval_s, mbps)
        })
        .collect()
}

/// Run one transient-shift fleet to completion and summarize it.
fn run_shift(
    guard: &UsGuard,
    reverse: Option<ReverseConfig>,
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
) -> (f64, u64, u64, usize) {
    let serve = ServeConfig {
        alpha: guard.alpha,
        anchor: Some(guard.mu),
        reverse,
        ..ServeConfig::default()
    };
    let mut fleet = FleetEngine::new(
        owned_ensemble(),
        FleetSignal::Novelty(guard.svm.clone()),
        video.clone(),
        cfg.clone(),
        traces.to_vec(),
        SHIFT_SESSIONS,
        &serve,
    );
    while fleet.round() {}
    let t = fleet.telemetry();
    (
        t.mean_qoe_per_chunk,
        t.total_switches,
        t.total_recoveries,
        t.locked_sessions,
    )
}

/// Sticky-versus-reverse comparison on one shift scenario, as a report
/// entry.
fn shift_entry(
    name: &str,
    guard: &UsGuard,
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
) -> Value {
    let (sticky_qoe, sticky_switches, _, _) = run_shift(guard, None, video, cfg, traces);
    let (rev_qoe, rev_switches, rev_recoveries, rev_locked) =
        run_shift(guard, Some(REVERSE), video, cfg, traces);
    let recovered = rev_qoe - sticky_qoe;
    println!(
        "{name}: sticky {sticky_qoe:.4} vs reverse {rev_qoe:.4} QoE/chunk \
         (recovered {recovered:+.4}; {rev_recoveries} recoveries, {rev_locked} locked)"
    );
    obj(vec![
        ("name", Value::Str(name.into())),
        ("sessions", Value::Num(SHIFT_SESSIONS as f64)),
        ("sticky_qoe_per_chunk", Value::Num(sticky_qoe)),
        ("reverse_qoe_per_chunk", Value::Num(rev_qoe)),
        ("qoe_recovered_per_chunk", Value::Num(recovered)),
        ("sticky_switches", Value::Num(sticky_switches as f64)),
        ("reverse_switches", Value::Num(rev_switches as f64)),
        ("reverse_recoveries", Value::Num(rev_recoveries as f64)),
        ("locked_sessions", Value::Num(rev_locked as f64)),
        (
            "reverse_quiet_windows",
            Value::Num(REVERSE.quiet_windows as f64),
        ),
        (
            "reverse_retrip_guard",
            Value::Num(REVERSE.retrip_guard as f64),
        ),
    ])
}

fn main() {
    let samples = env_usize("OSA_BENCH_SAMPLES", 100);
    let fleet_n = env_usize("OSA_BENCH_FLEET", 100_000);
    let fleet_rounds = env_usize("OSA_BENCH_FLEET_ROUNDS", 8);
    println!(
        "gated fleet {GATED_SESSIONS}, scale fleet {fleet_n} × {fleet_rounds} rounds, \
         {samples} samples, {} hardware thread(s)",
        hardware_threads()
    );

    let split = osap::corpus();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let alpha = calibrated_alpha(&video, &cfg, &split);
    let guard = calibrated_us(&video, &cfg, &split);
    let steady_traces = &split.test[..8];
    let mut results = Vec::new();

    // 1. Gated: steady-state round latency, fixed-size fleet — the U_V
    //    fleet on the f32 path and again on the int8 quantized path,
    //    plus a U_S novelty fleet (per-shard batched SVM scoring) under
    //    the anchored calibrated guard. In-distribution traces keep the
    //    novelty fleet observing (untripped), so the U_S case times the
    //    full per-session scoring work, not a mostly-frozen fleet.
    for (name, signal, a, anchor, precision) in [
        (
            "serve_round_256",
            FleetSignal::ValueDisagreement,
            alpha,
            None,
            ServePrecision::F32,
        ),
        (
            "serve_round_256_int8",
            FleetSignal::ValueDisagreement,
            alpha,
            None,
            ServePrecision::Int8,
        ),
        (
            "serve_round_256_us",
            FleetSignal::Novelty(guard.svm.clone()),
            guard.alpha,
            Some(guard.mu),
            ServePrecision::F32,
        ),
    ] {
        let mut engine = steady_engine(
            a,
            anchor,
            signal,
            &video,
            &cfg,
            steady_traces,
            GATED_SESSIONS,
            precision,
        );
        for _ in 0..4 {
            engine.round(); // warm lane scratch before the harness warmup
        }
        let stats = run_bench(name, samples, || {
            std::hint::black_box(engine.round());
        });
        let decisions_per_sec = GATED_SESSIONS as f64 / (stats.median_ns as f64 * 1e-9);
        println!("{name}: {decisions_per_sec:>12.0} decisions/sec");
        let mut entry = stats.to_json();
        if let Value::Obj(map) = &mut entry {
            map.insert("sessions".into(), Value::Num(GATED_SESSIONS as f64));
            map.insert(
                "decisions_per_sec".into(),
                Value::Num(decisions_per_sec.round()),
            );
        }
        results.push(entry);
    }

    // 2. Fleet scale: p50/p99 round and per-decision latency at
    //    OSA_BENCH_FLEET sessions. Key names deliberately avoid the
    //    gated `_ns` suffix — fleet size is env-dependent.
    let mut engine = steady_engine(
        alpha,
        None,
        FleetSignal::ValueDisagreement,
        &video,
        &cfg,
        steady_traces,
        fleet_n,
        ServePrecision::F32,
    );
    engine.round(); // warm-up: grows lane scratch + workspace
    engine.round();
    let mut round_ns: Vec<u64> = Vec::with_capacity(fleet_rounds);
    let allocs_before = osa_bench::counting_alloc::allocations();
    for _ in 0..fleet_rounds {
        let start = Instant::now();
        std::hint::black_box(engine.round());
        round_ns.push(start.elapsed().as_nanos() as u64);
    }
    // The zero-allocation contract holds at full fleet scale, not just
    // in the 64/256-session harnesses.
    let fleet_allocs = osa_bench::counting_alloc::allocations() - allocs_before;
    assert_eq!(
        fleet_allocs, 0,
        "steady-state rounds at {fleet_n} sessions touched the heap"
    );
    round_ns.sort_unstable();
    let p50 = round_ns[round_ns.len() / 2];
    let p99 = round_ns[((round_ns.len() as f64 * 0.99) as usize).min(round_ns.len() - 1)];
    let per_decision_p50 = p50 as f64 / fleet_n as f64;
    let per_decision_p99 = p99 as f64 / fleet_n as f64;
    println!(
        "fleet_scale({fleet_n}): round p50 {p50} ns, p99 {p99} ns \
         ({per_decision_p50:.0} / {per_decision_p99:.0} ns per decision)"
    );
    results.push(obj(vec![
        ("name", Value::Str("fleet_scale".into())),
        ("sessions", Value::Num(fleet_n as f64)),
        ("rounds_timed", Value::Num(fleet_rounds as f64)),
        ("allocs_timed_rounds", Value::Num(fleet_allocs as f64)),
        ("round_p50_nanos", Value::Num(p50 as f64)),
        ("round_p99_nanos", Value::Num(p99 as f64)),
        ("decision_p50_nanos", Value::Num(per_decision_p50.round())),
        ("decision_p99_nanos", Value::Num(per_decision_p99.round())),
        (
            "decisions_per_sec",
            Value::Num((fleet_n as f64 / (p50 as f64 * 1e-9)).round()),
        ),
    ]));

    // 3. Transient-shift recovery: sticky (default-forever) vs reverse
    //    under the shared anchored U_S guard.
    results.push(shift_entry(
        "belgium_shift_reverse",
        &guard,
        &video,
        &cfg,
        &belgium_traces(&split),
    ));
    results.push(shift_entry(
        "outage_shift_reverse",
        &guard,
        &video,
        &cfg,
        &outage_traces(&split),
    ));

    let report = obj(vec![
        ("bench", Value::Str("serve".into())),
        ("video", Value::Str("envivio-synthetic".into())),
        ("dataset", Value::Str("norway".into())),
        ("hardware_threads", Value::Num(hardware_threads() as f64)),
        (
            "kernel_variant",
            Value::Str(osa_bench::kernel_variant().into()),
        ),
        ("target_cpu", Value::Str(osa_bench::target_cpu().into())),
        ("results", Value::Arr(results)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    osa_bench::write_report(path, report).expect("write BENCH_serve.json");
    println!("baseline written to BENCH_serve.json");
}
