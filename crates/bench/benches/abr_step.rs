//! Microbenchmark: multi-session ABR engine throughput in chunk
//! decisions per second — the full decide → download → account loop
//! (`fill_observations` + policy + `step_all`), which is what a
//! training or evaluation epoch actually spends its time in.
//!
//! Two policies bound the cost spectrum: `bb_step` is the rule-based
//! Buffer-Based baseline (engine cost only, the policy is a couple of
//! compares per session), and `pensieve_step` adds one batched actor
//! forward pass per step through the default reduced-scale Pensieve
//! network. Both run `OSA_BENCH_SESSIONS` concurrent sessions
//! (default 256) with auto-reset, so the workload is steady-state and
//! allocation-free — `crates/bench/tests/zero_alloc_abr.rs` pins the
//! zero exactly; here `allocs_per_iter` records it per configuration.
//!
//! `step_all` fans the download computation over the ambient
//! `osa_runtime` pool, so the `OSA_THREADS` budget is part of the
//! thread context (`hardware_threads` in the report) and
//! `bench_compare` refuses cross-budget diffs, same as every other
//! bench.
//!
//! ```sh
//! cargo bench -p osa-bench --bench abr_step
//! ```
//!
//! rewrites `BENCH_abr.json` at the repo root. `OSA_BENCH_SESSIONS`
//! scales the batch; the per-iteration step count is fixed.

use osa_abr::prelude::*;
use osa_bench::{counting_alloc::CountingAlloc, hardware_threads, run_bench};
use osa_nn::json::{obj, Value};
use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;
use osa_pensieve::{PensieveAgent, PensieveConfig};
use osa_trace::Dataset;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Engine steps timed per iteration (each step = one decision per
/// session).
const STEPS_PER_ITER: usize = 8;
/// Timed iterations per configuration (`run_bench` adds warmup).
const SAMPLES: usize = 20;
const TRACE_COUNT: usize = 16;
const TRACE_LEN: usize = 240;
const SEED: u64 = 42;

struct Workload {
    sim: MultiSession,
    obs: Tensor,
    actions: Vec<usize>,
    rng: Rng,
}

impl Workload {
    fn new(sessions: usize) -> Self {
        let traces = Dataset::Norway.generate(TRACE_COUNT, TRACE_LEN, SEED);
        Workload {
            sim: MultiSession::new(
                VideoModel::envivio(),
                AbrConfig::default(),
                traces,
                sessions,
                true,
            ),
            obs: Tensor::zeros(sessions, OBS_DIM),
            actions: vec![0; sessions],
            rng: Rng::seed_from_u64(SEED),
        }
    }

    fn run(&mut self, policy: &mut dyn AbrPolicy, steps: usize) {
        for _ in 0..steps {
            self.sim.fill_observations(&mut self.obs);
            policy.decide_all(&self.sim, &self.obs, &mut self.actions, &mut self.rng);
            std::hint::black_box(self.sim.step_all(&self.actions));
        }
    }
}

fn main() {
    let sessions: usize = std::env::var("OSA_BENCH_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    println!(
        "{sessions} sessions × {STEPS_PER_ITER} steps per iteration, \
         {} hardware thread(s)",
        hardware_threads()
    );

    let mut pensieve = PensieveAgent::new(PensieveConfig::default(), &mut Rng::seed_from_u64(7));
    let mut bb = BufferBased::default();
    let decisions = (sessions * STEPS_PER_ITER) as f64;

    let mut results = Vec::new();
    let policies: [(&str, &mut dyn AbrPolicy); 2] =
        [("bb_step", &mut bb), ("pensieve_step", &mut pensieve)];
    for (name, policy) in policies {
        let mut workload = Workload::new(sessions);
        let stats = run_bench(name, SAMPLES, || {
            workload.run(policy, STEPS_PER_ITER);
        });
        let decisions_per_sec = decisions / (stats.median_ns as f64 * 1e-9);
        println!("{name}: {decisions_per_sec:>12.0} decisions/sec");
        let mut entry = stats.to_json();
        if let Value::Obj(map) = &mut entry {
            map.insert(
                "decisions_per_sec".into(),
                Value::Num(decisions_per_sec.round()),
            );
            map.insert("sessions".into(), Value::Num(sessions as f64));
            map.insert("steps_per_iter".into(), Value::Num(STEPS_PER_ITER as f64));
        }
        results.push(entry);
    }

    let report = obj(vec![
        ("bench", Value::Str("abr_step".into())),
        ("video", Value::Str("envivio-synthetic".into())),
        ("dataset", Value::Str("norway".into())),
        ("hardware_threads", Value::Num(hardware_threads() as f64)),
        (
            "kernel_variant",
            Value::Str(osa_bench::kernel_variant().into()),
        ),
        ("target_cpu", Value::Str(osa_bench::target_cpu().into())),
        ("results", Value::Arr(results)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_abr.json");
    osa_bench::write_report(path, report).expect("write BENCH_abr.json");
    println!("baseline written to BENCH_abr.json");
}
