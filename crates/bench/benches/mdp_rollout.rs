//! Microbenchmark: A2C training rollout throughput (environment steps per
//! second) at 1, 2 and 4 logical rollout streams, on the chain MDP with a
//! Pensieve-scale MLP actor/critic.
//!
//! Since the deterministic-runtime rewrite, `workers` configures
//! *logical streams* — part of the training semantics, bit-identical
//! regardless of how many OS threads execute them. The `train_workersN`
//! entries therefore measure different workloads (N streams per round),
//! while the `thread_scaling` section holds the workload fixed (4
//! streams) and sweeps the `osa_runtime::ThreadPool` width from 1 up to
//! the effective thread budget (`OSA_THREADS` or the host parallelism).
//! The report records `hardware_threads` alongside the measurements — on
//! a single-core container the lanes time-slice one CPU and the speedup
//! is necessarily ≈ 1×, which is a property of the hardware, not the
//! trainer.
//!
//! Timing runs through the shared [`osa_bench::run_bench`] harness (one
//! iteration = one full training run, three samples per configuration)
//! under the [`osa_bench::counting_alloc::CountingAlloc`] global
//! allocator, so each configuration also reports heap allocations per
//! run — the warmup workspaces and rollout buffers; steady-state steps
//! add nothing, which `crates/bench/tests/zero_alloc.rs` pins down
//! exactly.
//!
//! ```sh
//! cargo bench -p osa-bench --bench mdp_rollout
//! ```
//!
//! rewrites `BENCH_mdp.json` at the repo root, the baseline for the
//! training-stack performance trajectory. `OSA_BENCH_UPDATES` scales run
//! length (default 300 gradient updates per configuration).

use osa_bench::{counting_alloc::CountingAlloc, hardware_threads, run_bench};
use osa_mdp::envs::chain::ChainEnv;
use osa_mdp::prelude::*;
use osa_nn::json::{obj, Value};
use osa_nn::rng::Rng;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const HIDDEN: usize = 64;
const ROLLOUT_LEN: usize = 64;
/// Full training runs timed per configuration (`run_bench` adds one
/// warmup run on top).
const SAMPLES: usize = 3;

/// One full training run; returns the number of environment steps taken.
fn run(workers: usize, updates: usize, seed: u64) -> u64 {
    let env = ChainEnv::new(8);
    let mut rng = Rng::seed_from_u64(seed);
    let mut ac = ActorCritic::mlp(env.num_states(), HIDDEN, 2, &mut rng);
    let cfg = A2cConfig {
        gamma: 0.95,
        rollout_len: ROLLOUT_LEN,
        workers,
        updates,
        seed,
        ..A2cConfig::default()
    };
    let report = train(&mut ac, &env, &cfg);
    assert_eq!(report.updates, updates as u64);
    report.env_steps
}

fn main() {
    let updates: usize = std::env::var("OSA_BENCH_UPDATES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!(
        "chain MDP, {HIDDEN}-unit MLPs, rollout_len {ROLLOUT_LEN}, {updates} updates per config, \
         {} hardware thread(s)",
        hardware_threads()
    );

    let mut results = Vec::new();
    let mut by_workers = Vec::new();
    for workers in [1usize, 2, 4] {
        let env_steps = (updates * ROLLOUT_LEN) as f64;
        let stats = run_bench(&format!("train_workers{workers}"), SAMPLES, || {
            std::hint::black_box(run(workers, updates, 42));
        });
        let steps_per_sec = env_steps / (stats.median_ns as f64 * 1e-9);
        println!("workers {workers}: {steps_per_sec:>12.0} steps/sec");
        by_workers.push(steps_per_sec);
        let mut entry = stats.to_json();
        if let Value::Obj(map) = &mut entry {
            map.insert("workers".into(), Value::Num(workers as f64));
            map.insert("steps_per_sec".into(), Value::Num(steps_per_sec.round()));
            map.insert("updates".into(), Value::Num(updates as f64));
            map.insert("rollout_len".into(), Value::Num(ROLLOUT_LEN as f64));
        }
        results.push(entry);
    }

    let single = by_workers[0];
    let best_multi = by_workers[1..].iter().cloned().fold(f64::MIN, f64::max);
    let speedup = best_multi / single;
    println!("best multi-worker speedup over single worker: {speedup:.2}x");

    // Thread-scaling sweep: fixed workload (4 logical streams — the same
    // gradients, bit for bit, every time), swept over explicit pool
    // widths. Under `OSA_THREADS=1` this collapses to one entry, keeping
    // CI baselines comparable across hosts.
    const SWEEP_STREAMS: usize = 4;
    let mut thread_scaling = Vec::new();
    for w in 1..=osa_runtime::thread_budget() {
        let pool = osa_runtime::ThreadPool::new(w);
        let env_steps = (updates * ROLLOUT_LEN) as f64;
        let stats = run_bench(&format!("train_pool{w}"), SAMPLES, || {
            let env = ChainEnv::new(8);
            let mut rng = Rng::seed_from_u64(42);
            let mut ac = ActorCritic::mlp(env.num_states(), HIDDEN, 2, &mut rng);
            let cfg = A2cConfig {
                gamma: 0.95,
                rollout_len: ROLLOUT_LEN,
                workers: SWEEP_STREAMS,
                updates,
                seed: 42,
                ..A2cConfig::default()
            };
            let report = train_with_pool(&mut ac, &env, &cfg, &pool);
            assert_eq!(report.updates, updates as u64);
            std::hint::black_box(report.env_steps);
        });
        let steps_per_sec = env_steps / (stats.median_ns as f64 * 1e-9);
        println!("pool {w}: {steps_per_sec:>12.0} steps/sec ({SWEEP_STREAMS} streams)");
        let mut entry = stats.to_json();
        if let Value::Obj(map) = &mut entry {
            map.insert("pool_workers".into(), Value::Num(w as f64));
            map.insert("streams".into(), Value::Num(SWEEP_STREAMS as f64));
            map.insert("steps_per_sec".into(), Value::Num(steps_per_sec.round()));
        }
        thread_scaling.push(entry);
    }

    let report = obj(vec![
        ("bench", Value::Str("mdp_rollout".into())),
        ("env", Value::Str("chain-8".into())),
        ("hidden", Value::Num(HIDDEN as f64)),
        ("hardware_threads", Value::Num(hardware_threads() as f64)),
        (
            "kernel_variant",
            Value::Str(osa_bench::kernel_variant().into()),
        ),
        ("target_cpu", Value::Str(osa_bench::target_cpu().into())),
        ("results", Value::Arr(results)),
        ("thread_scaling", Value::Arr(thread_scaling)),
        (
            "multi_worker_speedup",
            Value::Num((speedup * 100.0).round() / 100.0),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mdp.json");
    osa_bench::write_report(path, report).expect("write BENCH_mdp.json");
    println!("baseline written to BENCH_mdp.json");
}
