//! Microbenchmark: A2C training rollout throughput (environment steps per
//! second) at 1, 2 and 4 asynchronous workers, on the chain MDP with a
//! Pensieve-scale MLP actor/critic.
//!
//! The interesting number is the multi-worker speedup over one worker:
//! workers only serialize on the parameter-server mutex (parameter copy +
//! optimizer step), so on a multi-core machine throughput should scale
//! close to linearly until the optimizer step saturates the lock. The
//! report records `hardware_threads` alongside the measurements — on a
//! single-core container the workers time-slice one CPU and the speedup
//! is necessarily ≈ 1×, which is a property of the hardware, not the
//! trainer.
//!
//! ```sh
//! cargo bench -p osa-bench --bench mdp_rollout
//! ```
//!
//! rewrites `BENCH_mdp.json` at the repo root, the baseline for the
//! training-stack performance trajectory. `OSA_BENCH_UPDATES` scales run
//! length (default 300 gradient updates per configuration).

use std::time::Instant;

use osa_mdp::envs::chain::ChainEnv;
use osa_mdp::prelude::*;
use osa_nn::json::{obj, Value};
use osa_nn::rng::Rng;

const HIDDEN: usize = 64;
const ROLLOUT_LEN: usize = 64;

/// One full training run; returns environment steps per second.
fn run(workers: usize, updates: usize, seed: u64) -> f64 {
    let env = ChainEnv::new(8);
    let mut rng = Rng::seed_from_u64(seed);
    let mut ac = ActorCritic::mlp(env.num_states(), HIDDEN, 2, &mut rng);
    let cfg = A2cConfig {
        gamma: 0.95,
        rollout_len: ROLLOUT_LEN,
        workers,
        updates,
        seed,
        ..A2cConfig::default()
    };
    let start = Instant::now();
    let report = train(&mut ac, &env, &cfg);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(report.updates, updates as u64);
    report.env_steps as f64 / secs
}

fn main() {
    let updates: usize = std::env::var("OSA_BENCH_UPDATES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "chain MDP, {HIDDEN}-unit MLPs, rollout_len {ROLLOUT_LEN}, {updates} updates per config, \
         {hardware_threads} hardware thread(s)"
    );

    // Warm up allocator and caches off the record.
    run(1, updates / 4 + 1, 7);

    let mut results = Vec::new();
    let mut by_workers = Vec::new();
    for workers in [1usize, 2, 4] {
        // Best of three: training throughput is noisy under schedulers.
        let best = (0..3)
            .map(|rep| run(workers, updates, 42 + rep))
            .fold(f64::MIN, f64::max);
        println!("workers {workers}: {best:>12.0} steps/sec");
        by_workers.push(best);
        results.push(obj(vec![
            ("workers", Value::Num(workers as f64)),
            ("steps_per_sec", Value::Num(best.round())),
            ("updates", Value::Num(updates as f64)),
            ("rollout_len", Value::Num(ROLLOUT_LEN as f64)),
        ]));
    }

    let single = by_workers[0];
    let best_multi = by_workers[1..].iter().cloned().fold(f64::MIN, f64::max);
    let speedup = best_multi / single;
    println!("best multi-worker speedup over single worker: {speedup:.2}x");

    let report = obj(vec![
        ("bench", Value::Str("mdp_rollout".into())),
        ("env", Value::Str("chain-8".into())),
        ("hidden", Value::Num(HIDDEN as f64)),
        ("hardware_threads", Value::Num(hardware_threads as f64)),
        ("results", Value::Arr(results)),
        (
            "multi_worker_speedup",
            Value::Num((speedup * 100.0).round() / 100.0),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mdp.json");
    osa_bench::write_report(path, report).expect("write BENCH_mdp.json");
    println!("baseline written to BENCH_mdp.json");
}
