//! Microbenchmark: what the safety layer costs per decision.
//!
//! Three questions, one report (`BENCH_osap.json` at the repo root):
//!
//! 1. **Per-decision signal cost** — a full `SafeAgent::decide`
//!    (observe → k-window variance → threshold → ensemble-mean act) for
//!    each of U_S, U_π, and U_V. The paper's runtime argument is that
//!    the decision-aware signals are *cheaper* than classic novelty
//!    detection: U_π shares its stacked actor forward with the act that
//!    needs it anyway, and U_V adds one stacked critic forward, while
//!    U_S pays a support-vector loop (~650 SVs × 25-dim RBF) on top of
//!    the acting forward — a cost that grows with the training corpus,
//!    where the ensemble signals stay constant.
//! 2. **SMO train time** — fitting the U_S one-class SVM on the §3.1
//!    feature corpus (~6.3k windows), the offline cost a deployment
//!    pays per calibration — plus **batched U_S scoring**
//!    (`u_s_batched`): a 64-window shard through one
//!    `score_batch_into`, the fleet path's per-decision signal cost.
//! 3. **Batched vs sequential ensemble forward** — the 5-replica
//!    stacked actor forward against five per-replica forwards of the
//!    same weights, pinning the win that makes the ensemble signals
//!    affordable.
//!
//! ```sh
//! cargo bench -p osa-bench --bench osap_signals
//! ```
//!
//! `OSA_BENCH_SAMPLES` scales sample counts (never the work per timed
//! iteration), so smoke runs stay comparable on the gated medians.

use osa_abr::prelude::*;
use osa_bench::osap;
use osa_bench::{counting_alloc::CountingAlloc, hardware_threads, run_bench};
use osa_core::prelude::*;
use osa_mdp::Policy;
use osa_nn::json::{obj, Value};
use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;
use osa_ocsvm::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Safe-agent decisions timed per iteration.
const DECISIONS_PER_ITER: usize = 64;
/// Ensemble forwards timed per iteration (both layouts).
const FORWARDS_PER_ITER: usize = 64;

fn samples() -> usize {
    std::env::var("OSA_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// Plausible observation bank: decide-loop cost is content-independent,
/// but cycling inputs defeats any lazy caching a constant obs would hit.
fn obs_bank(rng: &mut Rng) -> Vec<Vec<f32>> {
    (0..16)
        .map(|_| (0..OBS_DIM).map(|_| rng.next_f32() * 0.5).collect())
        .collect()
}

fn main() {
    let samples = samples();
    let fit_samples = (samples / 20).max(3);
    println!(
        "{DECISIONS_PER_ITER} decisions / {FORWARDS_PER_ITER} forwards per iteration, \
         {samples} samples, {} hardware thread(s)",
        hardware_threads()
    );

    let split = osap::corpus();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let ens = osap::load_ensemble();
    let mut rng = Rng::seed_from_u64(9);
    let bank = obs_bank(&mut rng);
    let mut results = Vec::new();

    // 1. Per-decision cost of each guarded signal.
    let svm = osap::fit_us_svm(&ens, &video, &cfg, &split.train);
    let sv_count = svm.diag().expect("fitted").support_vectors;
    let mut per_decision = Vec::new();
    for (name, mut agent) in osap::signal_agents(&ens, svm.clone()) {
        let mut i = 0usize;
        let stats = run_bench(&format!("{name}_decision"), samples, || {
            for _ in 0..DECISIONS_PER_ITER {
                std::hint::black_box(agent.decide(&bank[i % bank.len()]));
                i += 1;
            }
        });
        let ns = stats.median_ns as f64 / DECISIONS_PER_ITER as f64;
        per_decision.push((name, ns));
        let mut entry = stats.to_json();
        if let Value::Obj(map) = &mut entry {
            map.insert("ns_per_decision".into(), Value::Num(ns.round()));
            map.insert(
                "decisions_per_iter".into(),
                Value::Num(DECISIONS_PER_ITER as f64),
            );
        }
        results.push(entry);
    }

    // 2. Offline SMO fit on the real §3.1 corpus.
    let mut collector = abr_safe_agent(
        ens.clone(),
        osap::RateCollector { rates: Vec::new() },
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    let mut windows: Vec<[f32; FEATURE_DIM]> = Vec::new();
    for t in &split.train[..osap::US_FIT_TRACES] {
        run_session(&mut collector, &video, &cfg, t);
        windows.extend(window_features(&collector.signal().rates));
    }
    let mut x = Tensor::zeros(windows.len(), FEATURE_DIM);
    for (i, w) in windows.iter().enumerate() {
        x.row_mut(i).copy_from_slice(w);
    }
    let stats = run_bench("ocsvm_fit", fit_samples, || {
        let mut fresh = OcSvm::new(OcSvmConfig::default());
        fresh.fit(&x);
        std::hint::black_box(fresh.diag().map(|d| d.support_vectors));
    });
    let mut entry = stats.to_json();
    if let Value::Obj(map) = &mut entry {
        map.insert("windows".into(), Value::Num(windows.len() as f64));
        map.insert("support_vectors".into(), Value::Num(sv_count as f64));
    }
    results.push(entry);

    // 2b. Batched U_S scoring: the fleet path stages a shard's ready
    //    feature windows and scores them in one `score_batch_into`
    //    call — the cross-term GEMM amortizes across sessions. 64 rows
    //    matches the fleet benchmark's decisions-per-iteration so the
    //    ns/decision medians are comparable with `u_s_decision` (which
    //    additionally pays the acting forward).
    const US_BATCH: usize = 64;
    let mut batch = Tensor::zeros(US_BATCH, FEATURE_DIM);
    for i in 0..US_BATCH {
        batch
            .row_mut(i)
            .copy_from_slice(&windows[i % windows.len()]);
    }
    let mut scores = vec![0.0f32; US_BATCH];
    let stats = run_bench("u_s_batched", samples, || {
        svm.score_batch_into(&batch, &mut scores);
        std::hint::black_box(&scores);
    });
    let ns = stats.median_ns as f64 / US_BATCH as f64;
    per_decision.push(("u_s_batched", ns));
    let mut entry = stats.to_json();
    if let Value::Obj(map) = &mut entry {
        map.insert("ns_per_decision".into(), Value::Num(ns.round()));
        map.insert("batch".into(), Value::Num(US_BATCH as f64));
    }
    results.push(entry);

    // 3. Stacked vs sequential: the same five replicas, one batched
    //    GEMM against five single-replica forwards.
    let text = std::fs::read_to_string(osap::ARTIFACT).expect("artifact");
    let mut agents = PensieveEnsemble::agents_from_json(&text).expect("replicas parse");
    let mut i = 0usize;
    let stacked = run_bench("stacked_forward", samples, || {
        let mut e = ens.borrow_mut();
        for _ in 0..FORWARDS_PER_ITER {
            e.policy_eval(&bank[i % bank.len()]);
            std::hint::black_box(e.mean_probs());
            i += 1;
        }
    });
    let mut probs = Vec::new();
    let mut i = 0usize;
    let sequential = run_bench("sequential_forward", samples, || {
        for _ in 0..FORWARDS_PER_ITER {
            let obs = &bank[i % bank.len()];
            for agent in agents.iter_mut() {
                agent.actor_critic_mut().action_probs_into(obs, &mut probs);
                std::hint::black_box(&probs);
            }
            i += 1;
        }
    });
    let speedup = sequential.median_ns as f64 / stacked.median_ns as f64;
    println!("stacked over sequential: {speedup:.2}x");
    for (stats, label) in [(stacked, "stacked"), (sequential, "sequential")] {
        let mut entry = stats.to_json();
        if let Value::Obj(map) = &mut entry {
            map.insert(
                "forwards_per_iter".into(),
                Value::Num(FORWARDS_PER_ITER as f64),
            );
            if label == "stacked" {
                map.insert(
                    "speedup_vs_sequential".into(),
                    Value::Num((speedup * 100.0).round() / 100.0),
                );
            }
        }
        results.push(entry);
    }

    println!("per-decision: {per_decision:?}");
    let report = obj(vec![
        ("bench", Value::Str("osap_signals".into())),
        ("video", Value::Str("envivio-synthetic".into())),
        ("dataset", Value::Str("norway".into())),
        ("hardware_threads", Value::Num(hardware_threads() as f64)),
        (
            "kernel_variant",
            Value::Str(osa_bench::kernel_variant().into()),
        ),
        ("target_cpu", Value::Str(osa_bench::target_cpu().into())),
        ("results", Value::Arr(results)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_osap.json");
    osa_bench::write_report(path, report).expect("write BENCH_osap.json");
    println!("baseline written to BENCH_osap.json");
}
