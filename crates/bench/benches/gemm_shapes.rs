//! GEMM shape sweep: per-shape medians for the kernels behind every
//! forward/backward in the tree (`matmul_into`, `tmatmul_into`,
//! `matmul_t_into`), at the shapes the Pensieve towers and the fleet
//! engine actually run.
//!
//! Results merge into `BENCH_nn.json` under a `gemm_shapes` key (run
//! `nn_forward_backward` first so the rest of the report is fresh), so
//! the `bench_compare` gate covers kernel regressions shape-by-shape:
//!
//! ```sh
//! cargo bench -p osa-bench --bench nn_forward_backward
//! cargo bench -p osa-bench --bench gemm_shapes
//! ```
//!
//! Shapes: the paper-scale merge layer at batch 1 and 32, the 5-replica
//! stacked layers at serving batches, the committed-artifact widths the
//! fleet engine serves, plus the backward-pass `tmatmul` / `matmul_t`
//! orientations.

use osa_bench::{counting_alloc::CountingAlloc, hardware_threads, run_bench};
use osa_nn::json::{obj, Value};
use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Which kernel a sweep entry exercises.
#[derive(Clone, Copy)]
enum Kernel {
    /// `a (m×k) · b (k×n)` — every forward pass.
    Matmul,
    /// `aᵀ (k×m)ᵀ · b (k×n)` — the dW orientation in backward passes.
    Tmatmul,
    /// `a (m×k) · b (n×k)ᵀ` — dot-of-rows orientation.
    MatmulT,
}

impl Kernel {
    fn name(self) -> &'static str {
        match self {
            Kernel::Matmul => "matmul",
            Kernel::Tmatmul => "tmatmul",
            Kernel::MatmulT => "matmul_t",
        }
    }
}

/// (kernel, m, k, n) — out is always m×n over a length-k reduction.
const SHAPES: &[(Kernel, usize, usize, usize)] = &[
    // Paper-scale merge layer (1792 -> 128) per decision and per batch.
    (Kernel::Matmul, 1, 1792, 128),
    (Kernel::Matmul, 32, 1792, 128),
    // 5-replica stacked serving shapes at batch 32 (160 stacked rows):
    // the block-diagonal branch layer and the merge layer.
    (Kernel::Matmul, 160, 25, 1792),
    (Kernel::Matmul, 160, 1792, 128),
    // Committed-artifact widths (filters 8, merge 32) the fleet serves:
    // batch-1 merge and a 256-session shard through the branch layer.
    (Kernel::Matmul, 1, 136, 32),
    (Kernel::Matmul, 1280, 25, 136),
    // Backward orientations at the training batch.
    (Kernel::Tmatmul, 1792, 32, 128),
    (Kernel::MatmulT, 32, 128, 1792),
];

fn random_tensor(rows: usize, cols: usize, rng: &mut Rng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    Tensor::from_vec(rows, cols, data)
}

fn main() {
    let samples: usize = std::env::var("OSA_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let mut rng = Rng::seed_from_u64(7);
    let mut entries = Vec::new();
    println!(
        "{} shapes, {samples} samples, {} hardware thread(s)",
        SHAPES.len(),
        hardware_threads()
    );

    for &(kernel, m, k, n) in SHAPES {
        let (a, b) = match kernel {
            Kernel::Matmul => (random_tensor(m, k, &mut rng), random_tensor(k, n, &mut rng)),
            Kernel::Tmatmul => (random_tensor(k, m, &mut rng), random_tensor(k, n, &mut rng)),
            Kernel::MatmulT => (random_tensor(m, k, &mut rng), random_tensor(n, k, &mut rng)),
        };
        let mut out = Tensor::zeros(m, n);
        let name = format!("{}_{m}x{k}x{n}", kernel.name());
        let stats = run_bench(&name, samples, || {
            match kernel {
                Kernel::Matmul => a.matmul_into(&b, &mut out),
                Kernel::Tmatmul => a.tmatmul_into(&b, &mut out),
                Kernel::MatmulT => a.matmul_t_into(&b, &mut out),
            }
            std::hint::black_box(&out);
        });
        let mflops = (2 * m * k * n) as f64 / (stats.median_ns as f64 * 1e-9) / 1e6;
        let mut entry = stats.to_json();
        if let Value::Obj(map) = &mut entry {
            map.insert("m".into(), Value::Num(m as f64));
            map.insert("k".into(), Value::Num(k as f64));
            map.insert("n".into(), Value::Num(n as f64));
            map.insert("mflops".into(), Value::Num(mflops.round()));
        }
        entries.push(entry);
    }

    // Merge into BENCH_nn.json: the sweep is part of the nn baseline,
    // not a separate report. Start a minimal doc if none exists yet.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn.json");
    let mut report = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Value::parse(&text).ok())
        .unwrap_or_else(|| {
            obj(vec![
                ("bench", Value::Str("nn_forward_backward".into())),
                ("hardware_threads", Value::Num(hardware_threads() as f64)),
                (
                    "kernel_variant",
                    Value::Str(osa_bench::kernel_variant().into()),
                ),
                ("target_cpu", Value::Str(osa_bench::target_cpu().into())),
            ])
        });
    if let Value::Obj(map) = &mut report {
        map.insert("gemm_shapes".into(), Value::Arr(entries));
        // Stamp the kernel context of *this* run: merging fresh sweep
        // entries into a report taken from different kernels must not
        // leave the old stamp claiming them.
        map.insert(
            "kernel_variant".into(),
            Value::Str(osa_bench::kernel_variant().into()),
        );
        map.insert(
            "target_cpu".into(),
            Value::Str(osa_bench::target_cpu().into()),
        );
    }
    osa_bench::write_report(path, report).expect("write BENCH_nn.json");
    println!("gemm_shapes merged into BENCH_nn.json");
}
