//! Shared OSAP experiment setup for the figure binaries and the
//! `osap_signals` microbench.
//!
//! Everything downstream of the committed ensemble artifact is built
//! here exactly once: the Norway corpus contract (shared with
//! `examples/osap_ensemble_train.rs`), the §3.1 U_S feature harvest +
//! one-class SVM fit, and the three uncertainty signals wrapped into
//! boxed [`AbrSafeAgent`]s so figure binaries can sweep them uniformly.
//! Every piece is deterministic — same artifact, same corpus, same
//! bits, at any `OSA_THREADS`.

use osa_abr::prelude::*;
use osa_abr::HISTORY_LEN;
use osa_core::prelude::*;
use osa_nn::tensor::Tensor;
use osa_ocsvm::prelude::*;
use osa_trace::prelude::*;

/// Corpus contract shared with `examples/osap_ensemble_train.rs` and
/// `crates/core/tests/ensemble_artifact.rs`.
pub const CORPUS_COUNT: usize = 60;
pub const CORPUS_LEN: usize = 400;
pub const CORPUS_SEED: u64 = 2020;

/// Train traces harvested for the U_S feature corpus. More data is
/// strictly kinder to the classic-ND baseline's accuracy — but its
/// support-vector count (and so its per-decision cost) grows with the
/// corpus, which is the runtime asymmetry `BENCH_osap.json` records:
/// U_π/U_V cost is constant in corpus size.
pub const US_FIT_TRACES: usize = 16;

/// The committed 5-replica ensemble (regenerate with
/// `cargo run --release --example osap_ensemble_train`).
pub const ARTIFACT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../artifacts/pensieve_ensemble_norway.json"
);

pub fn corpus() -> Split {
    Split::generate(Dataset::Norway, CORPUS_COUNT, CORPUS_LEN, CORPUS_SEED)
}

pub fn load_ensemble() -> SharedEnsemble {
    let text = std::fs::read_to_string(ARTIFACT)
        .expect("missing artifact — run `cargo run --release --example osap_ensemble_train`");
    shared(PensieveEnsemble::from_json(&text).expect("valid ensemble artifact"))
}

/// Taps the newest throughput sample (observation column
/// `HISTORY_LEN − 1`, rescaled back to Mbit/s) while the wrapped agent
/// streams — the raw material of the §3.1 feature pipeline.
pub struct RateCollector {
    pub rates: Vec<f32>,
}

impl UncertaintySignal<[f32]> for RateCollector {
    fn name(&self) -> &'static str {
        "rate-collector"
    }
    fn observe(&mut self, obs: &[f32]) -> f32 {
        self.rates.push(obs[HISTORY_LEN - 1] * 10.0);
        0.0
    }
    fn reset(&mut self) {}
}

/// Harvest in-distribution throughput windows under the ensemble-mean
/// policy over the first [`US_FIT_TRACES`] of `traces` and fit the U_S
/// one-class SVM on them.
pub fn fit_us_svm(
    ens: &SharedEnsemble,
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
) -> OcSvm {
    let mut collector = abr_safe_agent(
        ens.clone(),
        RateCollector { rates: Vec::new() },
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    let mut windows: Vec<[f32; FEATURE_DIM]> = Vec::new();
    for t in &traces[..US_FIT_TRACES.min(traces.len())] {
        run_session(&mut collector, video, cfg, t);
        windows.extend(window_features(&collector.signal().rates));
    }
    let mut x = Tensor::zeros(windows.len(), FEATURE_DIM);
    for (i, w) in windows.iter().enumerate() {
        x.row_mut(i).copy_from_slice(w);
    }
    let mut svm = OcSvm::new(OcSvmConfig::default());
    svm.fit(&x);
    svm
}

/// A boxed uncertainty signal, so the three signals share one type.
pub type DynSignal = Box<dyn UncertaintySignal<[f32]>>;

/// A safe agent over any of the three signals, uniformly typed so
/// figure binaries can iterate over them.
pub type DynSignalAgent = AbrSafeAgent<DynSignal>;

/// The paper's three signals as boxed safe agents with α = ∞ (deploy
/// [`calibrated_signal_agents`] for tripping behavior). Order is the
/// paper's: U_S (classic novelty detection), U_π, U_V.
pub fn signal_agents(ens: &SharedEnsemble, svm: OcSvm) -> Vec<(&'static str, DynSignalAgent)> {
    let signals: Vec<(&'static str, DynSignal)> = vec![
        ("u_s", Box::new(NoveltySignal::new(svm))),
        ("u_pi", Box::new(PolicyDisagreement::new(ens.clone()))),
        ("u_v", Box::new(ValueDisagreement::new(ens.clone()))),
    ];
    signals
        .into_iter()
        .map(|(name, signal)| {
            (
                name,
                abr_safe_agent(
                    ens.clone(),
                    signal,
                    Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
                ),
            )
        })
        .collect()
}

/// Resolve (and create) the figure-artifact directory, returning the
/// path for one figure's JSON.
pub fn figure_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../artifacts/figures"
    ));
    std::fs::create_dir_all(dir).expect("create artifacts/figures");
    dir.join(name)
}

/// The out-of-distribution scenario suite shared by the shift figures:
/// six Belgium 4G sessions (the paper's trained-on-Norway, deployed-on-
/// Belgium shift) plus three fault injections on a held-out Norway
/// trace.
pub fn ood_scenarios(split: &Split) -> Vec<(String, Trace)> {
    let mut scenarios: Vec<(String, Trace)> = Dataset::Belgium
        .generate(6, CORPUS_LEN, 77)
        .into_iter()
        .enumerate()
        .map(|(i, t)| (format!("belgium{i}"), t))
        .collect();
    let base = &split.test[0];
    scenarios.push((
        "outage".into(),
        inject(
            base,
            &[Fault::Outage {
                start: 60,
                duration: 60,
            }],
        ),
    ));
    scenarios.push((
        "rate_cap".into(),
        inject(base, &[Fault::RateLimit { cap_mbps: 0.2 }]),
    ));
    scenarios.push((
        "spike".into(),
        inject(
            base,
            &[Fault::Spike {
                start: 60,
                duration: 300,
                factor: 20.0,
            }],
        ),
    ));
    scenarios
}

/// [`signal_agents`], each calibrated on `traces` at `margin`.
pub fn calibrated_signal_agents(
    ens: &SharedEnsemble,
    svm: OcSvm,
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
    margin: f32,
) -> Vec<(&'static str, DynSignalAgent, Calibration)> {
    // U_S calibrates through the batched deferred path —
    // `calibrate_novelty` needs the concrete `NoveltySignal` type,
    // which boxing erases — and the resulting α is installed into the
    // boxed deploy agent, leaving it in the same reset-with-α state the
    // generic path produces (bit-identical α: the batched scorer is the
    // canonical one).
    let us_cal = {
        let mut agent = abr_safe_agent(
            ens.clone(),
            NoveltySignal::new(svm.clone()),
            Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
        );
        calibrate_novelty(&mut agent, video, cfg, traces, margin)
    };
    signal_agents(ens, svm)
        .into_iter()
        .map(|(name, mut agent)| {
            let cal = if name == "u_s" {
                agent.monitor_mut().set_alpha(us_cal.alpha);
                agent.reset();
                us_cal
            } else {
                calibrate(&mut agent, video, cfg, traces, margin)
            };
            (name, agent, cal)
        })
        .collect()
}
