//! `osa-bench` — the evaluation harness (DESIGN.md §1 row 9).
//!
//! # Contract
//!
//! This crate will regenerate every figure in the paper's evaluation
//! section plus its runtime remarks:
//!
//! - one binary per figure (`fig1_in_distribution` … `fig5_cdf`) and a
//!   `table_runtime` binary, each taking `--seed` and caching trained
//!   models as serde-JSON so re-runs are incremental;
//! - the ablation binaries of DESIGN.md §7 (thresholding, ensemble size,
//!   detector choice, calibration target, revert strategy, default policy,
//!   CC generalization);
//! - Criterion microbenchmarks for the hot paths: per-decision latency of
//!   the three uncertainty signals, ABR environment step throughput, NN
//!   forward/backward (see `benches/nn_forward_backward.rs`, live now),
//!   A2C rollout/training throughput at 1/2/4 workers
//!   (`benches/mdp_rollout.rs`, live now), OC-SVM train/predict, and
//!   trace generation.
//!
//! The NN and MDP microbenches are implemented; their baseline numbers
//! are recorded in `BENCH_nn.json` and `BENCH_mdp.json` at the repo root
//! so later performance PRs have a trajectory to beat.
#![forbid(unsafe_code)]

/// Marks the harness as scaffolded; figure binaries land with `osa-core`.
pub const IMPLEMENTED: bool = false;

#[cfg(test)]
mod tests {
    #[test]
    fn scaffold_compiles() {
        assert!(!std::hint::black_box(super::IMPLEMENTED));
    }
}
