//! `osa-bench` — the evaluation harness (DESIGN.md §1 row 9).
//!
//! # What's here
//!
//! - The paper's figure binaries (`src/bin/`): `fig1_in_distribution`
//!   (in-distribution QoE parity), `fig2_distribution_shift` (Belgium
//!   4G), `fig3_signal_timeseries`, `fig4_detection_delay`, `fig5_cdf`,
//!   and `table_runtime`. Each is fully deterministic off the committed
//!   ensemble artifact and writes a diffable JSON to
//!   `artifacts/figures/` (see [`osap`], the shared setup). Remaining
//!   from DESIGN.md §7: the ablation binaries (thresholding, ensemble
//!   size, detector choice, revert strategy, CC generalization).
//! - Microbenchmarks (`benches/`, hand-rolled harness — the offline
//!   build has no criterion): NN forward/backward, A2C rollout
//!   throughput, trace generation, ABR engine step, and `osap_signals`
//!   (per-decision signal cost, SMO fit, stacked-vs-sequential
//!   ensemble forward). Baselines live at the repo root
//!   (`BENCH_nn.json` … `BENCH_osap.json`) so later performance PRs
//!   have a trajectory to beat.
//!
//! [`run_bench`] is the shared sampling harness, [`counting_alloc`] the
//! heap-traffic instrument behind its `allocs_per_iter` column, and
//! [`compare`] the regression gate (`bench_compare` binary) that diffs
//! a fresh report against the committed baseline.
#![deny(unsafe_code)]

pub mod osap;

use std::io;
use std::path::Path;
use std::time::Instant;

use osa_nn::json::{obj, Value};

/// Allocation-counting shim around the system allocator.
///
/// Benches (and the zero-allocation regression test) register
/// [`counting_alloc::CountingAlloc`] as their `#[global_allocator]`; the
/// module's free functions then read global event counters. Counters are
/// process-wide relaxed atomics — cheap enough to leave on under timing
/// (one `fetch_add` per heap event) but *shared across threads*, so
/// callers measuring a window must keep that window single-threaded.
#[allow(unsafe_code)] // a GlobalAlloc impl is irreducibly unsafe
pub mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static DEALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// Forwards to [`System`], counting every alloc/realloc/dealloc.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A realloc is new heap traffic even when it grows in place.
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Heap allocation events (allocs + reallocs) since process start.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    /// Heap deallocation events since process start.
    pub fn deallocations() -> u64 {
        DEALLOCS.load(Ordering::Relaxed)
    }

    /// Total bytes requested from the allocator since process start.
    pub fn allocated_bytes() -> u64 {
        BYTES.load(Ordering::Relaxed)
    }

    /// Minimum allocation count observed across `windows` measurement
    /// windows of `rounds_per_window` calls to `round` each.
    ///
    /// The counters are process-wide, and the libtest harness thread can
    /// allocate *concurrently* with a measured window (its timeout-wait
    /// machinery allocates on some park paths, which is timing-dependent
    /// and shows up under load). That noise is strictly additive, so the
    /// minimum over several windows isolates the measured loop's own
    /// behavior: a loop that genuinely allocates shows up in **every**
    /// window, while harness noise pollutes at most a few. Zero-alloc
    /// proofs should assert the returned minimum is 0.
    pub fn min_window_allocations(
        windows: usize,
        rounds_per_window: usize,
        mut round: impl FnMut(),
    ) -> u64 {
        let mut min = u64::MAX;
        for _ in 0..windows {
            let before = allocations();
            for _ in 0..rounds_per_window {
                round();
            }
            min = min.min(allocations() - before);
        }
        min
    }
}

/// Effective thread budget of this process — `OSA_THREADS` if set, else
/// the hardware's available parallelism (see
/// [`osa_runtime::thread_budget`]). Recorded in every `BENCH_*.json`;
/// [`compare::check_comparable`] refuses to diff reports whose budgets
/// differ, so CI pins `OSA_THREADS=1` around the bench gate.
pub fn hardware_threads() -> usize {
    osa_runtime::thread_budget()
}

/// The GEMM accumulation-order contract compiled into this binary —
/// re-exported from [`osa_nn::tensor::kernel_variant`] so every
/// `BENCH_*.json` records which kernel family produced its numbers.
/// [`compare::check_comparable`] refuses to diff reports from different
/// variants: a scalar-kernel baseline and a lane8 run time different
/// code, and an int8 run times a different numeric contract entirely.
pub fn kernel_variant() -> &'static str {
    osa_nn::tensor::kernel_variant()
}

/// Effective SIMD target this binary was compiled for, from the
/// compile-time target features (`.cargo/config.toml` sets
/// `-C target-cpu=native`, so these reflect the build host). Coarse by
/// design — the widest vector extension is what moves GEMM timings.
pub fn target_cpu() -> &'static str {
    if cfg!(target_feature = "avx512f") {
        "avx512"
    } else if cfg!(target_feature = "avx2") {
        "avx2"
    } else if cfg!(target_feature = "avx") {
        "avx"
    } else if cfg!(target_feature = "sse2") {
        "sse2"
    } else if cfg!(target_feature = "neon") {
        "neon"
    } else {
        "generic"
    }
}

/// Summary statistics of one [`run_bench`] series.
pub struct BenchStats {
    pub name: String,
    pub mean_ns: f64,
    pub median_ns: u64,
    pub p95_ns: u64,
    pub samples: usize,
    /// Mean heap allocation events per iteration over the measured
    /// window. Meaningful only when [`counting_alloc::CountingAlloc`] is
    /// the registered global allocator; reads 0.0 otherwise.
    pub allocs_per_iter: f64,
}

impl BenchStats {
    /// The canonical JSON shape every `BENCH_*.json` result entry uses.
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name.clone())),
            ("mean_ns", Value::Num(self.mean_ns.round())),
            ("median_ns", Value::Num(self.median_ns as f64)),
            ("p95_ns", Value::Num(self.p95_ns as f64)),
            ("samples", Value::Num(self.samples as f64)),
            (
                "allocs_per_iter",
                Value::Num((self.allocs_per_iter * 100.0).round() / 100.0),
            ),
        ])
    }
}

/// Shared sampling harness for all `benches/` binaries: run `f` for
/// `samples/4 + 1` unrecorded warmup iterations, then time `samples`
/// recorded ones, print a one-line summary, and return the stats
/// (mean / median / p95 wall-clock plus allocations per iteration).
pub fn run_bench(name: &str, samples: usize, mut f: impl FnMut()) -> BenchStats {
    assert!(samples > 0, "need at least one sample");
    for _ in 0..samples / 4 + 1 {
        f();
    }
    let mut ns = Vec::with_capacity(samples);
    let allocs_before = counting_alloc::allocations();
    for _ in 0..samples {
        let start = Instant::now();
        f();
        ns.push(start.elapsed().as_nanos() as u64);
    }
    let allocs_per_iter = (counting_alloc::allocations() - allocs_before) as f64 / samples as f64;
    ns.sort_unstable();
    let mean = ns.iter().sum::<u64>() as f64 / ns.len() as f64;
    let median = ns[ns.len() / 2];
    let p95 = ns[((ns.len() as f64 * 0.95) as usize).saturating_sub(1)];
    println!(
        "{name:<28} mean {mean:>10.0} ns   median {median:>10} ns   p95 {p95:>10} ns   \
         allocs/iter {allocs_per_iter:>8.1}"
    );
    BenchStats {
        name: name.to_string(),
        mean_ns: mean,
        median_ns: median,
        p95_ns: p95,
        samples,
        allocs_per_iter,
    }
}

/// Replace every non-finite number in a JSON document with `null`,
/// recursively.
///
/// A bench run measures live metrics (rewards, throughputs, losses); one
/// NaN must not cost the whole report. `osa_nn::json` refuses to encode
/// non-finite numbers ([`Value::try_to_json`] errors), so report writers
/// sanitize first: the poisoned cell becomes `null` — visibly absent in
/// the committed baseline — and every other measurement survives.
pub fn sanitize(value: Value) -> Value {
    match value {
        Value::Num(n) if !n.is_finite() => Value::Null,
        Value::Arr(items) => Value::Arr(items.into_iter().map(sanitize).collect()),
        Value::Obj(map) => Value::Obj(map.into_iter().map(|(k, v)| (k, sanitize(v))).collect()),
        other => other,
    }
}

/// Sanitize `report` and write it to `path` with a trailing newline.
///
/// The single entry point the `benches/` binaries use for their
/// `BENCH_*.json` baselines.
pub fn write_report<P: AsRef<Path>>(path: P, report: Value) -> io::Result<()> {
    let text = sanitize(report)
        .try_to_json()
        .expect("sanitize leaves only finite numbers");
    std::fs::write(path, text + "\n")
}

/// The regression gate behind the `bench_compare` binary: diff a freshly
/// generated `BENCH_*.json` against the committed baseline and flag
/// latency metrics that got meaningfully worse.
pub mod compare {
    use std::collections::BTreeMap;

    use osa_nn::json::Value;

    /// Latency regressions beyond `baseline × (1 + TOLERANCE)` fail the
    /// gate. 25% is deliberately loose: it must swallow scheduler noise on
    /// shared runners while still catching a kernel that lost its
    /// blocking or a hot path that started allocating.
    pub const TOLERANCE: f64 = 0.25;

    /// Is this JSON key a gated metric? Latency columns (`*_ns`) and the
    /// allocation counter are gated; throughput columns are informational
    /// (they move inversely with the latencies anyway).
    fn gated(key: &str) -> bool {
        key.ends_with("_ns") || key == "allocs_per_iter"
    }

    /// A label that identifies a result entry across runs, independent of
    /// its position in the report.
    fn label(map: &BTreeMap<String, Value>) -> Option<String> {
        for key in ["name", "dataset", "workers", "bench"] {
            match map.get(key) {
                Some(Value::Str(s)) => return Some(format!("{key}={s}")),
                Some(Value::Num(n)) => return Some(format!("{key}={n}")),
                _ => {}
            }
        }
        None
    }

    /// Flatten every gated metric in a report into `path → value`.
    pub fn collect_metrics(doc: &Value, prefix: &str, out: &mut BTreeMap<String, f64>) {
        match doc {
            Value::Obj(map) => {
                let prefix = match label(map) {
                    Some(l) => format!("{prefix}/{l}"),
                    None => prefix.to_string(),
                };
                for (key, child) in map {
                    match child {
                        Value::Num(n) if gated(key) => {
                            out.insert(format!("{prefix}/{key}"), *n);
                        }
                        _ => collect_metrics(child, &prefix, out),
                    }
                }
            }
            Value::Arr(items) => {
                for item in items {
                    collect_metrics(item, prefix, out);
                }
            }
            _ => {}
        }
    }

    /// JSON keys that describe the thread context a report was taken
    /// under, not a measured quantity. Reports that disagree on any of
    /// them were produced by *different workloads* — a GEMM sharded over
    /// 4 workers is not the single-thread GEMM the baseline timed — so
    /// diffing their latencies yields false regression verdicts, and
    /// [`check_comparable`] refuses instead.
    const THREAD_KEYS: [&str; 3] = ["hardware_threads", "pool_workers", "workers"];

    /// JSON keys that describe the *compiled kernel* a report measured.
    /// A baseline taken from scalar kernels and a current report from the
    /// lane8 micro-kernels (or an int8 serving build) timed different
    /// code under different accumulation contracts — their latencies are
    /// not like-for-like, so [`check_comparable`] refuses the pair.
    const VARIANT_KEYS: [&str; 2] = ["kernel_variant", "target_cpu"];

    /// Collect every string value of the variant keys, per key, in
    /// document order (sorted afterwards so entry order is irrelevant).
    fn variant_fingerprint(doc: &Value, out: &mut BTreeMap<String, Vec<String>>) {
        match doc {
            Value::Obj(map) => {
                for (key, child) in map {
                    if let Value::Str(s) = child {
                        if VARIANT_KEYS.contains(&key.as_str()) {
                            out.entry(key.clone()).or_default().push(s.clone());
                        }
                    }
                    variant_fingerprint(child, out);
                }
            }
            Value::Arr(items) => {
                for item in items {
                    variant_fingerprint(item, out);
                }
            }
            _ => {}
        }
    }

    /// Collect every value of the thread-context keys, per key, in
    /// document order (sorted afterwards so entry order is irrelevant).
    fn thread_fingerprint(doc: &Value, out: &mut BTreeMap<String, Vec<u64>>) {
        match doc {
            Value::Obj(map) => {
                for (key, child) in map {
                    if let Value::Num(n) = child {
                        if THREAD_KEYS.contains(&key.as_str()) {
                            out.entry(key.clone()).or_default().push(*n as u64);
                        }
                    }
                    thread_fingerprint(child, out);
                }
            }
            Value::Arr(items) => {
                for item in items {
                    thread_fingerprint(item, out);
                }
            }
            _ => {}
        }
    }

    /// Refuse cross-context comparisons: `Err` describes the first
    /// thread-budget (`hardware_threads` / thread-count) or kernel
    /// (`kernel_variant` / `target_cpu`) mismatch between the two
    /// reports. This is a *refusal*, not a regression — `bench_compare`
    /// exits with a distinct code (3) and message for it.
    ///
    /// A key recorded in only one of the two reports makes no claim: an
    /// older baseline that predates a field cannot *disagree* about it,
    /// and refusing on absence would block every report-format migration
    /// forever. Refusal requires both reports to record the key with
    /// different value sets.
    pub fn check_comparable(baseline: &Value, current: &Value) -> Result<(), String> {
        let (mut base, mut cur) = (BTreeMap::new(), BTreeMap::new());
        thread_fingerprint(baseline, &mut base);
        thread_fingerprint(current, &mut cur);
        for key in THREAD_KEYS {
            let (Some(b), Some(c)) = (base.get(key), cur.get(key)) else {
                continue;
            };
            let (mut b, mut c) = (b.clone(), c.clone());
            b.sort_unstable();
            c.sort_unstable();
            if b != c {
                return Err(format!(
                    "thread context differs: {key} is {b:?} in baseline but {c:?} in current \
                     report; re-run both under the same OSA_THREADS budget"
                ));
            }
        }
        let (mut base, mut cur) = (BTreeMap::new(), BTreeMap::new());
        variant_fingerprint(baseline, &mut base);
        variant_fingerprint(current, &mut cur);
        for key in VARIANT_KEYS {
            let (Some(b), Some(c)) = (base.get(key), cur.get(key)) else {
                continue;
            };
            let (mut b, mut c) = (b.clone(), c.clone());
            b.sort_unstable();
            b.dedup();
            c.sort_unstable();
            c.dedup();
            if b != c {
                return Err(format!(
                    "kernel context differs: {key} is {b:?} in baseline but {c:?} in current \
                     report; regenerate the baseline with the current kernels before gating"
                ));
            }
        }
        Ok(())
    }

    /// Compare `current` against `baseline`; each returned string is one
    /// human-readable regression. Empty means the gate passes.
    /// Callers should run [`check_comparable`] first — this function
    /// assumes the reports came from the same thread context.
    ///
    /// Rules, per gated metric:
    /// - `*_ns`: fail when `current > baseline × (1 + TOLERANCE)`;
    /// - `allocs_per_iter`: fail when
    ///   `current > baseline × (1 + TOLERANCE) + 0.5` — the additive slack
    ///   keeps a 0 → 0.4 counting wobble from tripping a zero baseline,
    ///   while 0 → 1 (a new steady-state allocation) still fails;
    /// - a metric present in the baseline but missing from the current
    ///   report fails (renaming a bench must update the baseline too).
    pub fn compare_reports(baseline: &Value, current: &Value) -> Vec<String> {
        let mut base = BTreeMap::new();
        let mut cur = BTreeMap::new();
        collect_metrics(baseline, "", &mut base);
        collect_metrics(current, "", &mut cur);

        let mut regressions = Vec::new();
        for (key, &b) in &base {
            let Some(&c) = cur.get(key) else {
                regressions.push(format!("{key}: present in baseline but missing now"));
                continue;
            };
            let limit = if key.ends_with("allocs_per_iter") {
                b * (1.0 + TOLERANCE) + 0.5
            } else {
                b * (1.0 + TOLERANCE)
            };
            if c > limit {
                regressions.push(format!(
                    "{key}: {c:.0} exceeds baseline {b:.0} by more than {:.0}%",
                    TOLERANCE * 100.0
                ));
            }
        }
        regressions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_nn::json::obj;

    /// Regression: a NaN reward in a report yields an error from the raw
    /// codec (not a panic), and a sanitized report that still serializes.
    #[test]
    fn nan_reward_is_an_error_then_sanitizes_to_null() {
        let report = obj(vec![
            ("bench", Value::Str("demo".into())),
            ("reward", Value::Num(f64::NAN)),
            ("steps", Value::Num(100.0)),
        ]);
        assert!(report.try_to_json().is_err());
        let clean = sanitize(report);
        assert_eq!(
            clean.try_to_json().unwrap(),
            "{\"bench\":\"demo\",\"reward\":null,\"steps\":100}"
        );
    }

    #[test]
    fn sanitize_recurses_into_arrays_and_objects() {
        let doc = obj(vec![(
            "results",
            Value::Arr(vec![
                Value::Num(f64::INFINITY),
                obj(vec![("x", Value::Num(f64::NEG_INFINITY))]),
                Value::Num(2.5),
            ]),
        )]);
        let clean = sanitize(doc);
        assert_eq!(
            clean.try_to_json().unwrap(),
            "{\"results\":[null,{\"x\":null},2.5]}"
        );
    }

    #[test]
    fn run_bench_reports_requested_samples() {
        let mut n = 0u64;
        let stats = run_bench("noop", 8, || {
            n += 1;
        });
        assert_eq!(stats.samples, 8);
        assert!(n >= 8, "warmup plus samples must all run");
        assert!(stats.median_ns <= stats.p95_ns);
        // No global allocator shim is registered in unit tests, so the
        // counter must honestly read zero rather than garbage.
        assert_eq!(stats.allocs_per_iter, 0.0);
    }

    #[test]
    fn bench_stats_json_has_the_gated_columns() {
        let stats = run_bench("shape", 2, || {});
        let mut metrics = std::collections::BTreeMap::new();
        compare::collect_metrics(&stats.to_json(), "", &mut metrics);
        assert!(metrics.contains_key("/name=shape/mean_ns"));
        assert!(metrics.contains_key("/name=shape/median_ns"));
        assert!(metrics.contains_key("/name=shape/p95_ns"));
        assert!(metrics.contains_key("/name=shape/allocs_per_iter"));
    }

    fn sample_report(median: f64, allocs: f64) -> Value {
        obj(vec![
            ("bench", Value::Str("demo".into())),
            (
                "results",
                Value::Arr(vec![obj(vec![
                    ("name", Value::Str("kernel".into())),
                    ("median_ns", Value::Num(median)),
                    ("allocs_per_iter", Value::Num(allocs)),
                ])]),
            ),
        ])
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let base = sample_report(1000.0, 0.0);
        let cur = sample_report(1240.0, 0.4);
        assert_eq!(compare::compare_reports(&base, &cur), Vec::<String>::new());
    }

    #[test]
    fn compare_flags_latency_regression() {
        let base = sample_report(1000.0, 0.0);
        let cur = sample_report(1300.0, 0.0);
        let regs = compare::compare_reports(&base, &cur);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("median_ns"), "{regs:?}");
    }

    #[test]
    fn compare_flags_new_steady_state_allocation() {
        let base = sample_report(1000.0, 0.0);
        let cur = sample_report(1000.0, 1.0);
        let regs = compare::compare_reports(&base, &cur);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("allocs_per_iter"), "{regs:?}");
    }

    #[test]
    fn compare_flags_missing_metric() {
        let base = sample_report(1000.0, 0.0);
        let cur = obj(vec![("bench", Value::Str("demo".into()))]);
        let regs = compare::compare_reports(&base, &cur);
        assert!(!regs.is_empty());
        assert!(regs.iter().all(|r| r.contains("missing")), "{regs:?}");
    }

    #[test]
    fn faster_and_leaner_never_fails_the_gate() {
        let base = sample_report(1000.0, 5.0);
        let cur = sample_report(10.0, 0.0);
        assert_eq!(compare::compare_reports(&base, &cur), Vec::<String>::new());
    }

    fn threaded_report(hw: f64, pool_workers: &[f64]) -> Value {
        obj(vec![
            ("bench", Value::Str("demo".into())),
            ("hardware_threads", Value::Num(hw)),
            (
                "results",
                Value::Arr(
                    pool_workers
                        .iter()
                        .map(|&w| {
                            obj(vec![
                                ("name", Value::Str(format!("k_pool{w}"))),
                                ("pool_workers", Value::Num(w)),
                                ("median_ns", Value::Num(1000.0)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn comparable_when_thread_context_matches() {
        let base = threaded_report(1.0, &[1.0, 2.0]);
        let cur = threaded_report(1.0, &[1.0, 2.0]);
        assert!(compare::check_comparable(&base, &cur).is_ok());
    }

    #[test]
    fn refuses_on_hardware_threads_mismatch() {
        let base = threaded_report(1.0, &[1.0]);
        let cur = threaded_report(4.0, &[1.0]);
        let why = compare::check_comparable(&base, &cur).unwrap_err();
        assert!(why.contains("hardware_threads"), "{why}");
    }

    #[test]
    fn refuses_on_thread_count_field_mismatch() {
        // Same budget, but the sweep covered different pool sizes — the
        // entries don't describe the same workloads.
        let base = threaded_report(4.0, &[1.0, 2.0]);
        let cur = threaded_report(4.0, &[1.0, 2.0, 4.0]);
        let why = compare::check_comparable(&base, &cur).unwrap_err();
        assert!(why.contains("pool_workers"), "{why}");
    }

    #[test]
    fn reports_without_thread_fields_stay_comparable() {
        let base = sample_report(1000.0, 0.0);
        let cur = sample_report(900.0, 0.0);
        assert!(compare::check_comparable(&base, &cur).is_ok());
    }

    /// Format migration: a baseline that predates a thread-context key
    /// (e.g. `pool_workers` before the runtime sweep existed) makes no
    /// claim about it and must not trigger a refusal.
    #[test]
    fn key_recorded_on_only_one_side_is_not_a_mismatch() {
        let base = sample_report(1000.0, 0.0);
        let cur = threaded_report(1.0, &[1.0]);
        assert!(compare::check_comparable(&base, &cur).is_ok());
        assert!(compare::check_comparable(&cur, &base).is_ok());
    }

    fn variant_report(variant: &str, cpu: &str) -> Value {
        obj(vec![
            ("bench", Value::Str("demo".into())),
            ("kernel_variant", Value::Str(variant.into())),
            ("target_cpu", Value::Str(cpu.into())),
            (
                "results",
                Value::Arr(vec![obj(vec![
                    ("name", Value::Str("kernel".into())),
                    ("median_ns", Value::Num(1000.0)),
                ])]),
            ),
        ])
    }

    #[test]
    fn refuses_on_kernel_variant_mismatch() {
        let base = variant_report("scalar", "avx512");
        let cur = variant_report("lane8", "avx512");
        let why = compare::check_comparable(&base, &cur).unwrap_err();
        assert!(why.contains("kernel_variant"), "{why}");
        assert!(why.contains("scalar") && why.contains("lane8"), "{why}");
    }

    #[test]
    fn refuses_on_target_cpu_mismatch() {
        let base = variant_report("lane8", "avx2");
        let cur = variant_report("lane8", "avx512");
        let why = compare::check_comparable(&base, &cur).unwrap_err();
        assert!(why.contains("target_cpu"), "{why}");
    }

    #[test]
    fn matching_kernel_context_stays_comparable() {
        let base = variant_report("lane8", "avx512");
        let cur = variant_report("lane8", "avx512");
        assert!(compare::check_comparable(&base, &cur).is_ok());
    }

    /// A pre-variant baseline (no `kernel_variant` key) must stay
    /// comparable — the field only refuses when both sides claim it.
    #[test]
    fn baseline_without_variant_keys_is_not_refused() {
        let base = sample_report(1000.0, 0.0);
        let cur = variant_report("lane8", "avx512");
        assert!(compare::check_comparable(&base, &cur).is_ok());
    }

    #[test]
    fn this_binary_reports_a_nonempty_kernel_context() {
        assert_eq!(kernel_variant(), "lane8");
        assert!(!target_cpu().is_empty());
    }

    #[test]
    fn write_report_survives_poisoned_metrics() {
        let path = std::env::temp_dir().join(format!("osa_bench_nan_{}.json", std::process::id()));
        let report = obj(vec![("qoe", Value::Num(f64::NAN))]);
        write_report(&path, report).expect("write");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text, "{\"qoe\":null}\n");
    }
}
