//! `osa-bench` — the evaluation harness (DESIGN.md §1 row 9).
//!
//! # Contract
//!
//! This crate will regenerate every figure in the paper's evaluation
//! section plus its runtime remarks:
//!
//! - one binary per figure (`fig1_in_distribution` … `fig5_cdf`) and a
//!   `table_runtime` binary, each taking `--seed` and caching trained
//!   models as serde-JSON so re-runs are incremental;
//! - the ablation binaries of DESIGN.md §7 (thresholding, ensemble size,
//!   detector choice, calibration target, revert strategy, default policy,
//!   CC generalization);
//! - Criterion microbenchmarks for the hot paths: per-decision latency of
//!   the three uncertainty signals, ABR environment step throughput, NN
//!   forward/backward (see `benches/nn_forward_backward.rs`, live now),
//!   A2C rollout/training throughput at 1/2/4 workers
//!   (`benches/mdp_rollout.rs`, live now), OC-SVM train/predict, and
//!   trace generation.
//!
//! The NN and MDP microbenches are implemented; their baseline numbers
//! are recorded in `BENCH_nn.json` and `BENCH_mdp.json` at the repo root
//! so later performance PRs have a trajectory to beat.
#![forbid(unsafe_code)]

use std::io;
use std::path::Path;

use osa_nn::json::Value;

/// Marks the harness as scaffolded; figure binaries land with `osa-core`.
pub const IMPLEMENTED: bool = false;

/// Replace every non-finite number in a JSON document with `null`,
/// recursively.
///
/// A bench run measures live metrics (rewards, throughputs, losses); one
/// NaN must not cost the whole report. `osa_nn::json` refuses to encode
/// non-finite numbers ([`Value::try_to_json`] errors), so report writers
/// sanitize first: the poisoned cell becomes `null` — visibly absent in
/// the committed baseline — and every other measurement survives.
pub fn sanitize(value: Value) -> Value {
    match value {
        Value::Num(n) if !n.is_finite() => Value::Null,
        Value::Arr(items) => Value::Arr(items.into_iter().map(sanitize).collect()),
        Value::Obj(map) => Value::Obj(map.into_iter().map(|(k, v)| (k, sanitize(v))).collect()),
        other => other,
    }
}

/// Sanitize `report` and write it to `path` with a trailing newline.
///
/// The single entry point the `benches/` binaries use for their
/// `BENCH_*.json` baselines.
pub fn write_report<P: AsRef<Path>>(path: P, report: Value) -> io::Result<()> {
    let text = sanitize(report)
        .try_to_json()
        .expect("sanitize leaves only finite numbers");
    std::fs::write(path, text + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_nn::json::obj;

    #[test]
    fn scaffold_compiles() {
        assert!(!std::hint::black_box(super::IMPLEMENTED));
    }

    /// Regression: a NaN reward in a report yields an error from the raw
    /// codec (not a panic), and a sanitized report that still serializes.
    #[test]
    fn nan_reward_is_an_error_then_sanitizes_to_null() {
        let report = obj(vec![
            ("bench", Value::Str("demo".into())),
            ("reward", Value::Num(f64::NAN)),
            ("steps", Value::Num(100.0)),
        ]);
        assert!(report.try_to_json().is_err());
        let clean = sanitize(report);
        assert_eq!(
            clean.try_to_json().unwrap(),
            "{\"bench\":\"demo\",\"reward\":null,\"steps\":100}"
        );
    }

    #[test]
    fn sanitize_recurses_into_arrays_and_objects() {
        let doc = obj(vec![(
            "results",
            Value::Arr(vec![
                Value::Num(f64::INFINITY),
                obj(vec![("x", Value::Num(f64::NEG_INFINITY))]),
                Value::Num(2.5),
            ]),
        )]);
        let clean = sanitize(doc);
        assert_eq!(
            clean.try_to_json().unwrap(),
            "{\"results\":[null,{\"x\":null},2.5]}"
        );
    }

    #[test]
    fn write_report_survives_poisoned_metrics() {
        let path = std::env::temp_dir().join(format!("osa_bench_nan_{}.json", std::process::id()));
        let report = obj(vec![("qoe", Value::Num(f64::NAN))]);
        write_report(&path, report).expect("write");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text, "{\"qoe\":null}\n");
    }
}
