//! Figure 1 — in-distribution QoE parity (§3.3).
//!
//! The safety layer must be free when nothing is wrong: each guarded
//! agent (U_S, U_π, U_V, calibrated on the validation split) streams
//! the held-out Norway test split and must match the unguarded
//! ensemble-mean policy's QoE with zero false switches. Anchored
//! scoring: 0 = Random, 1 = Buffer-Based.
//!
//! Writes `artifacts/figures/fig1_in_distribution.json` (deterministic
//! at any `OSA_THREADS` — diff it across runs).

use osa_abr::prelude::*;
use osa_bench::osap;
use osa_core::prelude::*;
use osa_nn::json::{obj, Value};

fn main() {
    let split = osap::corpus();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let ens = osap::load_ensemble();
    let anch = anchors(&video, &cfg, &split.test, osap::CORPUS_SEED);
    let mut rows = Vec::new();

    println!("policy            norm QoE   rebuf s/sess   switched");
    let mut push_row = |name: &str, norm: f64, rebuf: f64, switched: i64, alpha: Option<f32>| {
        println!("{name:<16} {norm:+9.3}   {rebuf:12.3}   {switched:>8}");
        let mut fields = vec![
            ("policy", Value::Str(name.into())),
            ("normalized_qoe", Value::Num(norm)),
            ("rebuffer_s_per_session", Value::Num(rebuf)),
            ("switched_sessions", Value::Num(switched as f64)),
        ];
        if let Some(a) = alpha {
            fields.push(("alpha", Value::Num(a as f64)));
        }
        rows.push(obj(fields));
    };

    push_row("random", 0.0, f64::NAN, -1, None);
    push_row("bb", 1.0, f64::NAN, -1, None);

    let svm = osap::fit_us_svm(&ens, &video, &cfg, &split.train);
    let mut unguarded = abr_safe_agent(
        ens.clone(),
        NullSignal,
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    let score = evaluate_safe_agent(&mut unguarded, &video, &cfg, &split.test);
    push_row(
        "ensemble-mean",
        normalized(score.mean_qoe, &anch),
        score.mean_rebuffer_s,
        score.switched_sessions as i64,
        None,
    );

    for (name, mut agent, cal) in osap::calibrated_signal_agents(
        &ens,
        svm.clone(),
        &video,
        &cfg,
        &split.validation,
        DEFAULT_MARGIN,
    ) {
        let score = evaluate_safe_agent(&mut agent, &video, &cfg, &split.test);
        push_row(
            name,
            normalized(score.mean_qoe, &anch),
            score.mean_rebuffer_s,
            score.switched_sessions as i64,
            Some(cal.alpha),
        );
    }

    let report = obj(vec![
        ("figure", Value::Str("fig1_in_distribution".into())),
        ("dataset", Value::Str("norway-test".into())),
        ("margin", Value::Num(DEFAULT_MARGIN as f64)),
        ("random_qoe", Value::Num(anch.random_qoe)),
        ("bb_qoe", Value::Num(anch.bb_qoe)),
        ("rows", Value::Arr(rows)),
    ]);
    let path = osap::figure_path("fig1_in_distribution.json");
    osa_bench::write_report(&path, report).expect("write figure artifact");
    println!("written to {}", path.display());
}
