//! Figure 2 — QoE under distribution shift (§2.2 / §3.3).
//!
//! The Norway-trained system streams six Belgium 4G sessions. The
//! unguarded ensemble-mean policy is out of its depth there; each
//! guarded agent should detect the shift and hand over to Buffer-Based,
//! recovering most of the gap to a BB-from-the-start oracle. Anchors
//! (0 = Random, 1 = BB) are recomputed *on the Belgium set*, so 1.0 is
//! what a perfectly-timed switch could approach.
//!
//! Writes `artifacts/figures/fig2_distribution_shift.json`.

use osa_abr::prelude::*;
use osa_bench::osap;
use osa_core::prelude::*;
use osa_nn::json::{obj, Value};
use osa_trace::prelude::*;

fn main() {
    let split = osap::corpus();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let ens = osap::load_ensemble();
    let shifted = Dataset::Belgium.generate(6, osap::CORPUS_LEN, 77);
    let anch = anchors(&video, &cfg, &shifted, osap::CORPUS_SEED);
    let mut rows = Vec::new();

    println!("policy            norm QoE   switched/6   mean switch idx");
    let mut push_row = |name: &str, score: &SafeScore, alpha: Option<f32>| {
        let norm = normalized(score.mean_qoe, &anch);
        println!(
            "{name:<16} {norm:+9.3}   {:>10}   {:>15.1}",
            score.switched_sessions, score.mean_switch_index
        );
        let mut fields = vec![
            ("policy", Value::Str(name.into())),
            ("normalized_qoe", Value::Num(norm)),
            (
                "switched_sessions",
                Value::Num(score.switched_sessions as f64),
            ),
            ("mean_switch_index", Value::Num(score.mean_switch_index)),
            ("rebuffer_s_per_session", Value::Num(score.mean_rebuffer_s)),
        ];
        if let Some(a) = alpha {
            fields.push(("alpha", Value::Num(a as f64)));
        }
        rows.push(obj(fields));
    };

    let svm = osap::fit_us_svm(&ens, &video, &cfg, &split.train);
    let mut unguarded = abr_safe_agent(
        ens.clone(),
        NullSignal,
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    let score = evaluate_safe_agent(&mut unguarded, &video, &cfg, &shifted);
    push_row("ensemble-mean", &score, None);

    for (name, mut agent, cal) in osap::calibrated_signal_agents(
        &ens,
        svm.clone(),
        &video,
        &cfg,
        &split.validation,
        DEFAULT_MARGIN,
    ) {
        let score = evaluate_safe_agent(&mut agent, &video, &cfg, &shifted);
        push_row(name, &score, Some(cal.alpha));
    }

    let report = obj(vec![
        ("figure", Value::Str("fig2_distribution_shift".into())),
        ("dataset", Value::Str("belgium-4g".into())),
        ("margin", Value::Num(DEFAULT_MARGIN as f64)),
        ("random_qoe", Value::Num(anch.random_qoe)),
        ("bb_qoe", Value::Num(anch.bb_qoe)),
        ("rows", Value::Arr(rows)),
    ]);
    let path = osap::figure_path("fig2_distribution_shift.json");
    osa_bench::write_report(&path, report).expect("write figure artifact");
    println!("written to {}", path.display());
}
