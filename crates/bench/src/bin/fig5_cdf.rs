//! Figure 5 — per-session QoE distribution under shift (§3.3).
//!
//! The sorted per-session normalized QoE (an empirical CDF) over the
//! OOD scenario suite, for the unguarded ensemble-mean policy, the
//! three guarded agents, and Buffer-Based throughout. Guarding shears
//! off the distribution's bad tail — the sessions where the learned
//! policy would have thrashed — while the upper tail (scenarios the
//! policy handles fine) is preserved.
//!
//! Writes `artifacts/figures/fig5_cdf.json`.

use osa_abr::prelude::*;
use osa_bench::osap;
use osa_core::prelude::*;
use osa_nn::json::{obj, Value};

fn main() {
    let split = osap::corpus();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let ens = osap::load_ensemble();
    let svm = osap::fit_us_svm(&ens, &video, &cfg, &split.train);
    let scenarios = osap::ood_scenarios(&split);
    let traces: Vec<_> = scenarios.iter().map(|(_, t)| t.clone()).collect();
    let anch = anchors(&video, &cfg, &traces, osap::CORPUS_SEED);
    let mut rows = Vec::new();

    let mut push_row = |name: &str, mut per_session: Vec<f64>| {
        per_session.sort_by(f64::total_cmp);
        let median = per_session[per_session.len() / 2];
        let worst = per_session[0];
        println!("{name:<16} worst {worst:+7.3}   median {median:+7.3}");
        rows.push(obj(vec![
            ("policy", Value::Str(name.into())),
            (
                "sorted_normalized_qoe",
                Value::Arr(per_session.into_iter().map(Value::Num).collect()),
            ),
        ]));
    };

    println!(
        "policy           per-session normalized QoE over {} scenarios",
        traces.len()
    );
    let mut unguarded = abr_safe_agent(
        ens.clone(),
        NullSignal,
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    let sessions: Vec<f64> = traces
        .iter()
        .map(|t| {
            let run = run_session(&mut unguarded, &video, &cfg, t);
            normalized(run.qoe / run.chunks as f64, &anch)
        })
        .collect();
    push_row("ensemble-mean", sessions);

    for (name, mut agent, _cal) in osap::calibrated_signal_agents(
        &ens,
        svm.clone(),
        &video,
        &cfg,
        &split.validation,
        DEFAULT_MARGIN,
    ) {
        let sessions: Vec<f64> = traces
            .iter()
            .map(|t| {
                let run = run_session(&mut agent, &video, &cfg, t);
                normalized(run.qoe / run.chunks as f64, &anch)
            })
            .collect();
        push_row(name, sessions);
    }

    let report = obj(vec![
        ("figure", Value::Str("fig5_cdf".into())),
        ("margin", Value::Num(DEFAULT_MARGIN as f64)),
        ("random_qoe", Value::Num(anch.random_qoe)),
        ("bb_qoe", Value::Num(anch.bb_qoe)),
        ("rows", Value::Arr(rows)),
    ]);
    let path = osap::figure_path("fig5_cdf.json");
    osa_bench::write_report(&path, report).expect("write figure artifact");
    println!("written to {}", path.display());
}
