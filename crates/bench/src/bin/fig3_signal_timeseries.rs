//! Figure 3 — per-decision signal time series (§3.2).
//!
//! The raw uncertainty value and its k-window variance for each signal,
//! decision by decision, over one in-distribution Norway session and
//! one Belgium 4G session, with the calibrated threshold α and the trip
//! index. This is the figure that shows *why* the monitors fire: in
//! distribution the variance hugs the floor; under shift it jumps and
//! stays above α.
//!
//! Writes `artifacts/figures/fig3_signal_timeseries.json`.

use osa_abr::prelude::*;
use osa_bench::osap;
use osa_core::prelude::*;
use osa_nn::json::{obj, Value};
use osa_trace::prelude::*;

fn series(values: &[f32]) -> Value {
    Value::Arr(values.iter().map(|&v| Value::Num(v as f64)).collect())
}

fn main() {
    let split = osap::corpus();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let ens = osap::load_ensemble();
    let svm = osap::fit_us_svm(&ens, &video, &cfg, &split.train);
    let quiet = split.test[0].clone();
    let shifted = Dataset::Belgium
        .generate(1, osap::CORPUS_LEN, 77)
        .pop()
        .expect("one Belgium trace");
    let mut rows = Vec::new();

    for (name, mut agent, cal) in osap::calibrated_signal_agents(
        &ens,
        svm.clone(),
        &video,
        &cfg,
        &split.validation,
        DEFAULT_MARGIN,
    ) {
        for (setting, trace) in [("norway", &quiet), ("belgium", &shifted)] {
            let run = run_session(&mut agent, &video, &cfg, trace);
            println!(
                "{name:<5} {setting:<8} {} decisions, switch {:?}",
                run.raw.len(),
                run.switch_index
            );
            rows.push(obj(vec![
                ("signal", Value::Str(name.into())),
                ("setting", Value::Str(setting.into())),
                ("alpha", Value::Num(cal.alpha as f64)),
                ("raw", series(&run.raw)),
                ("variance", series(&run.variance)),
                (
                    "switch_index",
                    match run.switch_index {
                        Some(i) => Value::Num(i as f64),
                        None => Value::Null,
                    },
                ),
            ]));
        }
    }

    let report = obj(vec![
        ("figure", Value::Str("fig3_signal_timeseries".into())),
        ("margin", Value::Num(DEFAULT_MARGIN as f64)),
        ("k", Value::Num(DEFAULT_K as f64)),
        ("l", Value::Num(DEFAULT_L as f64)),
        ("rows", Value::Arr(rows)),
    ]);
    let path = osap::figure_path("fig3_signal_timeseries.json");
    osa_bench::write_report(&path, report).expect("write figure artifact");
    println!("written to {}", path.display());
}
