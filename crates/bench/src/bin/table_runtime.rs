//! Runtime-cost table (§4 remarks) — the safety layer's price tag.
//!
//! A compact re-measurement of the `osap_signals` microbench shaped as
//! the paper's runtime table: per-decision cost of each guarded signal,
//! the stacked-vs-sequential ensemble forward, and the offline SMO fit,
//! alongside the structural quantities that explain them (support
//! vector count, replica count). Timings vary run to run — the
//! authoritative tracked baseline is `BENCH_osap.json`; this artifact
//! exists so the figure set is self-contained.
//!
//! Writes `artifacts/figures/table_runtime.json`.

use osa_abr::prelude::*;
use osa_bench::osap;
use osa_bench::{counting_alloc::CountingAlloc, hardware_threads, run_bench};
use osa_core::prelude::*;
use osa_mdp::Policy;
use osa_nn::json::{obj, Value};
use osa_nn::rng::Rng;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const DECISIONS_PER_ITER: usize = 64;
const SAMPLES: usize = 40;

fn main() {
    let split = osap::corpus();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let ens = osap::load_ensemble();
    let svm = osap::fit_us_svm(&ens, &video, &cfg, &split.train);
    let sv_count = svm.diag().expect("fitted").support_vectors;
    let mut rng = Rng::seed_from_u64(9);
    let bank: Vec<Vec<f32>> = (0..16)
        .map(|_| (0..OBS_DIM).map(|_| rng.next_f32() * 0.5).collect())
        .collect();
    let mut rows = Vec::new();

    for (name, mut agent) in osap::signal_agents(&ens, svm.clone()) {
        let mut i = 0usize;
        let stats = run_bench(&format!("{name}_decision"), SAMPLES, || {
            for _ in 0..DECISIONS_PER_ITER {
                std::hint::black_box(agent.decide(&bank[i % bank.len()]));
                i += 1;
            }
        });
        rows.push(obj(vec![
            ("item", Value::Str(format!("{name}_per_decision"))),
            (
                "ns",
                Value::Num((stats.median_ns as f64 / DECISIONS_PER_ITER as f64).round()),
            ),
        ]));
    }

    let text = std::fs::read_to_string(osap::ARTIFACT).expect("artifact");
    let mut agents = PensieveEnsemble::agents_from_json(&text).expect("replicas parse");
    let mut i = 0usize;
    let stacked = run_bench("stacked_forward", SAMPLES, || {
        let mut e = ens.borrow_mut();
        for _ in 0..DECISIONS_PER_ITER {
            e.policy_eval(&bank[i % bank.len()]);
            std::hint::black_box(e.mean_probs());
            i += 1;
        }
    });
    let mut probs = Vec::new();
    let mut i = 0usize;
    let sequential = run_bench("sequential_forward", SAMPLES, || {
        for _ in 0..DECISIONS_PER_ITER {
            let obs = &bank[i % bank.len()];
            for agent in agents.iter_mut() {
                agent.actor_critic_mut().action_probs_into(obs, &mut probs);
                std::hint::black_box(&probs);
            }
            i += 1;
        }
    });
    let speedup = sequential.median_ns as f64 / stacked.median_ns as f64;
    rows.push(obj(vec![
        ("item", Value::Str("stacked_forward".into())),
        (
            "ns",
            Value::Num((stacked.median_ns as f64 / DECISIONS_PER_ITER as f64).round()),
        ),
        (
            "speedup_vs_sequential",
            Value::Num((speedup * 100.0).round() / 100.0),
        ),
    ]));
    println!("stacked over sequential: {speedup:.2}x");

    let report = obj(vec![
        ("figure", Value::Str("table_runtime".into())),
        ("hardware_threads", Value::Num(hardware_threads() as f64)),
        (
            "kernel_variant",
            Value::Str(osa_bench::kernel_variant().into()),
        ),
        ("target_cpu", Value::Str(osa_bench::target_cpu().into())),
        ("support_vectors", Value::Num(sv_count as f64)),
        ("replicas", Value::Num(ENSEMBLE_SIZE as f64)),
        ("rows", Value::Arr(rows)),
    ]);
    let path = osap::figure_path("table_runtime.json");
    osa_bench::write_report(&path, report).expect("write figure artifact");
    println!("written to {}", path.display());
}
