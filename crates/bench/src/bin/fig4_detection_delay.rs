//! Figure 4 — detection delay across out-of-distribution scenarios
//! (§3.2).
//!
//! The trip decision index of each calibrated signal on the shared OOD
//! suite (six Belgium sessions, an outage, a rate cap, a throughput
//! spike). The paper's headline lives here: the decision-aware U_V
//! fires within a handful of decisions of the shift, while the classic
//! U_S detector cannot fire before its 14-push feature window is warm —
//! and U_π, at this reduced replica scale, detects nothing (see
//! EXPERIMENTS.md for the honest accounting).
//!
//! Writes `artifacts/figures/fig4_detection_delay.json`.

use osa_abr::prelude::*;
use osa_bench::osap;
use osa_core::prelude::*;
use osa_nn::json::{obj, Value};

fn main() {
    let split = osap::corpus();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let ens = osap::load_ensemble();
    let svm = osap::fit_us_svm(&ens, &video, &cfg, &split.train);
    let scenarios = osap::ood_scenarios(&split);
    let mut agents =
        osap::calibrated_signal_agents(&ens, svm, &video, &cfg, &split.validation, DEFAULT_MARGIN);
    let mut rows = Vec::new();

    println!(
        "scenario      {}",
        agents
            .iter()
            .map(|(n, _, _)| format!("{n:>6}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for (scenario, trace) in &scenarios {
        let mut fields = vec![("scenario", Value::Str(scenario.clone()))];
        let mut line = format!("{scenario:<13}");
        for (name, agent, _) in agents.iter_mut() {
            let run = run_session(agent, &video, &cfg, trace);
            line.push_str(&format!(
                " {:>6}",
                run.switch_index.map_or("-".to_string(), |i| i.to_string())
            ));
            fields.push((
                *name,
                match run.switch_index {
                    Some(i) => Value::Num(i as f64),
                    None => Value::Null,
                },
            ));
        }
        println!("{line}");
        rows.push(obj(fields));
    }

    let report = obj(vec![
        ("figure", Value::Str("fig4_detection_delay".into())),
        ("margin", Value::Num(DEFAULT_MARGIN as f64)),
        ("rows", Value::Arr(rows)),
    ]);
    let path = osap::figure_path("fig4_detection_delay.json");
    osa_bench::write_report(&path, report).expect("write figure artifact");
    println!("written to {}", path.display());
}
