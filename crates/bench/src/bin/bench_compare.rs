//! Regression gate: diff freshly generated `BENCH_*.json` reports against
//! committed baselines and exit non-zero when a latency metric regressed
//! by more than [`osa_bench::compare::TOLERANCE`] (or a steady-state
//! allocation appeared).
//!
//! ```sh
//! cargo run -p osa-bench --bin bench_compare -- \
//!     baseline/BENCH_nn.json BENCH_nn.json \
//!     baseline/BENCH_mdp.json BENCH_mdp.json
//! ```
//!
//! Arguments come in `<baseline> <current>` pairs; every pair is checked
//! and all regressions are printed before the process exits. CI snapshots
//! the committed baselines before re-running the benches in smoke mode,
//! then points this binary at both copies.
//!
//! Reports taken under different thread budgets (`hardware_threads`, or
//! any per-entry thread-count field) are **refused**, not compared: a
//! pooled run and a single-thread run measure different workloads, and
//! diffing them would produce false regression verdicts. Refusal is a
//! distinct outcome — exit code 3 and an `INCOMPARABLE` message — so CI
//! can tell "this host/config changed" from "this code got slower".
//!
//! Exit codes: 0 ok, 1 regression(s), 2 usage/load error, 3 incomparable.

use std::process::ExitCode;

use osa_bench::compare::{check_comparable, compare_reports};
use osa_nn::json::Value;

fn load(path: &str) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read report {path}: {e}"))?;
    Value::parse(&text).map_err(|e| format!("cannot parse report {path}: {e:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: bench_compare <baseline.json> <current.json> [<baseline> <current>]...");
        return ExitCode::from(2);
    }

    let mut total = 0usize;
    for pair in args.chunks(2) {
        let (base_path, cur_path) = (&pair[0], &pair[1]);
        let (base, cur) = match (load(base_path), load(cur_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        if let Err(why) = check_comparable(&base, &cur) {
            eprintln!("INCOMPARABLE {cur_path} vs {base_path}: {why}");
            return ExitCode::from(3);
        }
        let regressions = compare_reports(&base, &cur);
        if regressions.is_empty() {
            println!("ok: {cur_path} within tolerance of {base_path}");
        } else {
            for r in &regressions {
                println!("REGRESSION {cur_path}: {r}");
            }
            total += regressions.len();
        }
    }

    if total > 0 {
        println!("{total} regression(s) found");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
