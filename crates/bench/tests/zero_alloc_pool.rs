//! Proof that the steady-state A2C training round stays allocation-free
//! when it runs on a real multi-worker `osa_runtime::ThreadPool`.
//!
//! `tests/zero_alloc.rs` pins the single-stream hot path by inlining it;
//! this binary pins the *dispatch* layer on top: `Trainer::round` with
//! four logical streams fanned out over a four-lane pool must not touch
//! the heap either. The pool's epoch-based task publication carries a
//! borrowed closure (no boxing), `parallel_for_slice` hands each lane a
//! disjoint sub-slice of the stream array, and every stream owns
//! persistent rollout/gradient buffers sized during warmup — so after
//! the first rounds there is nothing left to allocate.
//!
//! Like its sibling, this test lives in its own integration-test binary
//! because `CountingAlloc` is process-global state.

use osa_bench::counting_alloc::{min_window_allocations, CountingAlloc};
use osa_mdp::envs::chain::ChainEnv;
use osa_mdp::prelude::*;
use osa_nn::rng::Rng;
use osa_runtime::ThreadPool;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const POOL_WORKERS: usize = 4;
const STREAMS: usize = 4;
const WARMUP_ROUNDS: usize = 10;
// Min-over-windows isolates the trainer's own allocations from
// concurrent libtest-harness noise (see `min_window_allocations`).
const WINDOWS: usize = 5;
const ROUNDS_PER_WINDOW: usize = 5;
const MEASURED_ROUNDS: usize = WINDOWS * ROUNDS_PER_WINDOW;

#[test]
fn steady_state_pooled_a2c_round_is_allocation_free() {
    let env = ChainEnv::new(6);
    let cfg = A2cConfig {
        workers: STREAMS,
        // Large enough that warmup + measurement never hits the
        // end-of-training tail truncation.
        updates: ((WARMUP_ROUNDS + MEASURED_ROUNDS + 1) * STREAMS),
        rollout_len: 32,
        gamma: 0.95,
        ..A2cConfig::default()
    };
    let mut rng = Rng::seed_from_u64(9);
    let ac = ActorCritic::mlp(env.num_states(), 32, 2, &mut rng);

    let pool = ThreadPool::new(POOL_WORKERS);
    let mut trainer = Trainer::new(ac, &env, &cfg);
    // Report-side episode vectors grow amortized as episodes complete;
    // give them headroom up front so that growth can't masquerade as a
    // hot-path allocation.
    trainer.reserve_episode_capacity(4096);

    for _ in 0..WARMUP_ROUNDS {
        trainer.round(&pool);
    }

    let min = min_window_allocations(WINDOWS, ROUNDS_PER_WINDOW, || {
        trainer.round(&pool);
    });
    assert_eq!(
        min, 0,
        "steady-state pooled A2C round touched the heap ({min} allocations \
         in the cleanest of {WINDOWS} windows of {ROUNDS_PER_WINDOW} rounds \
         on a {POOL_WORKERS}-worker pool)"
    );

    // Sanity: the rounds above genuinely trained.
    let done = trainer.updates_done();
    assert_eq!(
        done,
        ((WARMUP_ROUNDS + MEASURED_ROUNDS) * STREAMS) as u64,
        "expected every round to apply all {STREAMS} stream gradients"
    );
    let (_, report) = trainer.finish();
    assert!(
        !report.episode_returns.is_empty()
            && report.episode_returns.len() == report.episode_lengths.len(),
        "expected completed episodes during the measured window"
    );
}
