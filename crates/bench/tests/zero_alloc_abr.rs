//! Proof that the steady-state ABR rollout loop is allocation-free:
//! `fill_observations` → batched Pensieve inference → `step_all`, with
//! auto-reset keeping every session live, must not touch the heap after
//! warm-up.
//!
//! Everything in the loop reuses preallocated storage: the observation
//! matrix resizes in place, the engine's outcome scratch and state
//! arrays are sized at construction, the agent's softmax scratch and
//! workspace tensors are pooled, and auto-reset just zeroes state.
//! `step_all` fans out over the ambient `osa_runtime` pool, whose
//! dispatch layer is itself allocation-free (`zero_alloc_pool.rs`) — so
//! this test holds at any `OSA_THREADS` budget, and CI runs it at 1 and
//! 4.
//!
//! Lives in its own integration-test binary because `CountingAlloc` is
//! process-global state.

use osa_abr::prelude::*;
use osa_bench::counting_alloc::{min_window_allocations, CountingAlloc};
use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;
use osa_pensieve::{PensieveAgent, PensieveConfig};
use osa_trace::Dataset;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SESSIONS: usize = 64;
const WARMUP_ROUNDS: usize = 10;
// Min-over-windows isolates the rollout loop's own allocations from
// concurrent libtest-harness noise (see `min_window_allocations`).
const WINDOWS: usize = 5;
const ROUNDS_PER_WINDOW: usize = 5;
const MEASURED_ROUNDS: usize = WINDOWS * ROUNDS_PER_WINDOW;

#[test]
fn steady_state_abr_rollout_is_allocation_free() {
    let traces = Dataset::Norway.generate(8, 240, 3);
    let mut sim = MultiSession::new(
        VideoModel::envivio(),
        AbrConfig::default(),
        traces,
        SESSIONS,
        true,
    );
    let mut agent = PensieveAgent::new(PensieveConfig::default(), &mut Rng::seed_from_u64(1));
    let mut obs = Tensor::zeros(SESSIONS, OBS_DIM);
    let mut actions = vec![0usize; SESSIONS];
    let mut rng = Rng::seed_from_u64(2);

    let mut round = |sim: &mut MultiSession, agent: &mut PensieveAgent| {
        sim.fill_observations(&mut obs);
        agent.decide_all(sim, &obs, &mut actions, &mut rng);
        std::hint::black_box(sim.step_all(&actions));
    };

    for _ in 0..WARMUP_ROUNDS {
        round(&mut sim, &mut agent);
    }

    let min = min_window_allocations(WINDOWS, ROUNDS_PER_WINDOW, || {
        round(&mut sim, &mut agent);
    });
    assert_eq!(
        min, 0,
        "steady-state ABR rollout touched the heap ({min} allocations in \
         the cleanest of {WINDOWS} windows of {ROUNDS_PER_WINDOW} rounds \
         of {SESSIONS} sessions)"
    );

    // Sanity: the rounds above genuinely streamed chunks.
    let total: u64 = (0..SESSIONS).map(|i| sim.chunks_total(i)).sum();
    assert_eq!(total, ((WARMUP_ROUNDS + MEASURED_ROUNDS) * SESSIONS) as u64);
}
