//! Proof that the OSAP steady-state decision loop is allocation-free:
//! signal observe → k-window variance → threshold → act, for all three
//! signals, must not touch the heap after warm-up.
//!
//! Everything in the loop reuses preallocated storage: the ensemble's
//! stacked forward writes into workspace tensors, U_π/U_V deviations
//! go into a capacity-5 scratch vec, U_S's feature window is an
//! incremental ring writing into a fixed array, and the monitor is a
//! fixed ring. The safety layer adds *zero* allocations on top of the
//! policy it guards.
//!
//! Lives in its own integration-test binary because `CountingAlloc` is
//! process-global state.

use osa_abr::prelude::*;
use osa_bench::counting_alloc::{min_window_allocations, CountingAlloc};
use osa_core::prelude::*;
use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;
use osa_ocsvm::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARMUP_DECISIONS: usize = 32;
// Min-over-windows isolates the decision loop's own allocations from
// concurrent libtest-harness noise (see `min_window_allocations`).
const WINDOWS: usize = 5;
const DECISIONS_PER_WINDOW: usize = 50;

const ARTIFACT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../artifacts/pensieve_ensemble_norway.json"
);

/// A bank of plausible observations to cycle through, so the loop sees
/// changing inputs (constant inputs would let a lazy cache hide
/// allocations that real traffic triggers).
fn obs_bank(rng: &mut Rng) -> Vec<Vec<f32>> {
    (0..16)
        .map(|_| (0..OBS_DIM).map(|_| rng.next_f32() * 0.5).collect())
        .collect()
}

fn fitted_svm(rng: &mut Rng) -> OcSvm {
    let rates: Vec<f32> = (0..160).map(|_| 1.0 + rng.next_f32() * 3.0).collect();
    let windows = window_features(&rates);
    let mut x = Tensor::zeros(windows.len(), FEATURE_DIM);
    for (i, w) in windows.iter().enumerate() {
        x.row_mut(i).copy_from_slice(w);
    }
    let mut svm = OcSvm::new(OcSvmConfig::default());
    svm.fit(&x);
    svm
}

#[test]
fn steady_state_safe_agent_loop_is_allocation_free() {
    let mut rng = Rng::seed_from_u64(7);
    let text = std::fs::read_to_string(ARTIFACT)
        .expect("missing artifact — run `cargo run --release --example osap_ensemble_train`");
    let ens = shared(PensieveEnsemble::from_json(&text).expect("artifact parses"));
    let bank = obs_bank(&mut rng);

    // Monitors with an infinite threshold: the measured loop is the
    // quiet steady state (observe → variance → compare → learned act),
    // which is where every in-distribution decision lives.
    let mut u_s = abr_safe_agent(
        ens.clone(),
        NoveltySignal::new(fitted_svm(&mut rng)),
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    let mut u_pi = abr_safe_agent(
        ens.clone(),
        PolicyDisagreement::new(ens.clone()),
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    let mut u_v = abr_safe_agent(
        ens.clone(),
        ValueDisagreement::new(ens.clone()),
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );

    let mut i = 0usize;
    let mut round =
        |u_s: &mut AbrSafeAgent<_>, u_pi: &mut AbrSafeAgent<_>, u_v: &mut AbrSafeAgent<_>| {
            let obs: &[f32] = &bank[i % bank.len()];
            i += 1;
            std::hint::black_box(u_s.decide(obs));
            std::hint::black_box(u_pi.decide(obs));
            std::hint::black_box(u_v.decide(obs));
        };

    for _ in 0..WARMUP_DECISIONS {
        round(&mut u_s, &mut u_pi, &mut u_v);
    }

    let min = min_window_allocations(WINDOWS, DECISIONS_PER_WINDOW, || {
        round(&mut u_s, &mut u_pi, &mut u_v);
    });
    assert_eq!(
        min, 0,
        "steady-state safe-agent loop touched the heap ({min} allocations \
         in the cleanest of {WINDOWS} windows of {DECISIONS_PER_WINDOW} \
         decisions across U_S, U_pi, and U_V)"
    );
}
