//! Proof that the steady-state A2C training step is allocation-free.
//!
//! This test lives in its own integration-test binary because it installs
//! [`CountingAlloc`] as the process-wide `#[global_allocator]`: the
//! counters are global, so the measured window must be the only code
//! running. (`cargo test` runs each integration test binary as a separate
//! process, and within the binary this is the only `#[test]`.)
//!
//! It replicates the single-stream body of the `osa_mdp::a2c` trainer
//! (`Stream::step` plus the serial gradient application) inline — same
//! calls, same order, but without the thread pool, which belongs to the
//! concurrency layer, not the hot path. The pooled counterpart is
//! `tests/zero_alloc_pool.rs`, which drives the real `Trainer` through a
//! multi-worker `osa_runtime::ThreadPool`.
//! The first iterations size every buffer (workspace pool, rollout
//! buffers, Adam moments, parameter/gradient vectors); after that warmup
//! the loop must not touch the heap at all. If someone reintroduces a
//! per-step `clone()`, `to_vec()`, or unpooled temporary anywhere in
//! collect → GAE → forward → backward → optimize, this assertion catches
//! it exactly.

use osa_bench::counting_alloc::{min_window_allocations, CountingAlloc};
use osa_mdp::envs::chain::ChainEnv;
use osa_mdp::prelude::*;
use osa_nn::loss;
use osa_nn::optim::Adam;
use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;
use osa_nn::workspace::Workspace;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARMUP: usize = 10;
// 5 windows × 5 updates: the minimum window isolates the loop's own
// allocations from concurrent libtest-harness noise (see
// `min_window_allocations`); a real per-update allocation taints all 5.
const WINDOWS: usize = 5;
const UPDATES_PER_WINDOW: usize = 5;

#[test]
fn steady_state_a2c_update_is_allocation_free() {
    let env = ChainEnv::new(6);
    let cfg = A2cConfig {
        gamma: 0.95,
        rollout_len: 32,
        ..A2cConfig::default()
    };
    let mut rng = Rng::seed_from_u64(9);

    // Parameter-server side: the shared nets, optimizers and stats.
    let mut server = ActorCritic::mlp(env.num_states(), 32, 2, &mut rng);
    let mut actor_opt = Adam::new(cfg.actor_lr);
    let mut critic_opt = Adam::new(cfg.critic_lr);
    let mut episode_returns: Vec<f32> = Vec::new();
    let mut episode_lengths: Vec<usize> = Vec::new();
    episode_returns.reserve(1024);
    episode_lengths.reserve(1024);

    // Worker side: replica, collector, and the persistent buffers from
    // `worker_loop`.
    let mut local = server.replicate();
    let mut collector = Collector::new(env, &mut rng);
    let mut ro = Rollout::default();
    // The fragment shape repeats exactly, but the episode mix inside it
    // shifts as the policy learns; give the per-fragment episode vectors
    // headroom up front so amortized `Vec` growth can't masquerade as a
    // hot-path allocation.
    ro.episode_returns.reserve(64);
    ro.episode_lengths.reserve(64);
    let mut adv: Vec<f32> = Vec::new();
    let mut targets: Vec<f32> = Vec::new();
    let mut actor_params: Vec<f32> = Vec::new();
    let mut critic_params: Vec<f32> = Vec::new();
    let mut actor_grads: Vec<f32> = Vec::new();
    let mut critic_grads: Vec<f32> = Vec::new();
    let mut ws = Workspace::new();
    let mut grad_logits = Tensor::default();
    let mut target_mat = Tensor::default();
    let mut grad_values = Tensor::default();

    let mut iterate = |rng: &mut Rng| {
        // 1. Sync the replica to the server's parameters.
        server.actor.copy_params_into(&mut actor_params);
        server.critic.copy_params_into(&mut critic_params);
        local.actor.set_params_from_vec(&actor_params);
        local.critic.set_params_from_vec(&critic_params);

        // 2–4. Rollout, advantages, both backward passes.
        collector.collect_into(&mut local, cfg.rollout_len, rng, &mut ro);
        gae_into(
            &ro.rewards,
            &ro.values,
            &ro.dones,
            ro.bootstrap,
            cfg.gamma,
            cfg.lambda,
            &mut adv,
        );
        targets.clear();
        targets.extend(adv.iter().zip(&ro.values).map(|(a, v)| a + v));
        if cfg.normalize_advantages {
            normalize_advantages(&mut adv);
        }

        let obs = ro.observation_matrix();
        let logits = local.actor.forward_ws(obs, &mut ws);
        policy_gradient_loss_into(
            &logits,
            &ro.actions,
            &adv,
            cfg.entropy_coef,
            &mut grad_logits,
        );
        ws.recycle(logits);
        let g = local.actor.backward_ws(&grad_logits, &mut ws);
        ws.recycle(g);
        local.actor.clip_grad_global_norm(cfg.max_grad_norm);

        let predicted = local.critic.forward_ws(obs, &mut ws);
        target_mat.resize_shape(targets.len(), 1);
        target_mat.data_mut().copy_from_slice(&targets);
        loss::mse_into(&predicted, &target_mat, &mut grad_values);
        ws.recycle(predicted);
        let g = local.critic.backward_ws(&grad_values, &mut ws);
        ws.recycle(g);
        local.critic.clip_grad_global_norm(cfg.max_grad_norm);

        local.actor.copy_grads_into(&mut actor_grads);
        local.critic.copy_grads_into(&mut critic_grads);

        // 5. Apply to the server and record stats.
        server.actor.set_grads_from_vec(&actor_grads);
        server.actor.step(&mut actor_opt);
        server.critic.set_grads_from_vec(&critic_grads);
        server.critic.step(&mut critic_opt);
        episode_returns.extend_from_slice(&ro.episode_returns);
        episode_lengths.extend_from_slice(&ro.episode_lengths);
    };

    for _ in 0..WARMUP {
        iterate(&mut rng);
    }

    let min = min_window_allocations(WINDOWS, UPDATES_PER_WINDOW, || iterate(&mut rng));
    assert_eq!(
        min, 0,
        "steady-state A2C training step touched the heap \
         ({min} allocations in the cleanest of {WINDOWS} windows of \
         {UPDATES_PER_WINDOW} updates)"
    );
    // Sanity: the loop above genuinely trained.
    assert!(
        !episode_returns.is_empty() && episode_returns.len() == episode_lengths.len(),
        "expected completed episodes during the measured window"
    );
}
