//! Proof that the fleet serving engine's decision rounds are
//! allocation-free in steady state: observation fill → session-major
//! stacked forwards → softmax/mean/argmax → signal scalars → monitor
//! updates → simulator step, for a whole fleet, without touching the
//! heap after warm-up.
//!
//! Everything a round needs is preallocated: per-lane workspaces and
//! forward tensors ([`LaneScratch`] inside `LaneSlots`), the SoA
//! monitor arrays, the per-session slots, and the simulator's outcome
//! scratch. `auto_reset` session rollover is exercised too — a rolling
//! fleet is the steady state this engine exists for.
//!
//! Lives in its own integration-test binary because `CountingAlloc` is
//! process-global state.

use osa_abr::prelude::*;
use osa_bench::counting_alloc::{min_window_allocations, CountingAlloc};
use osa_bench::osap::{corpus, fit_us_svm, load_ensemble, ARTIFACT};
use osa_core::prelude::*;
use osa_core::serve::FleetEngine;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SESSIONS: usize = 64;
const WARMUP_ROUNDS: usize = 16;
// Min-over-windows isolates the round loop's own allocations from
// concurrent libtest-harness noise (see `min_window_allocations`).
const WINDOWS: usize = 4;
const ROUNDS_PER_WINDOW: usize = 20;

fn owned_ensemble() -> PensieveEnsemble {
    let text = std::fs::read_to_string(ARTIFACT)
        .expect("missing artifact — run `cargo run --release --example osap_ensemble_train`");
    PensieveEnsemble::from_json(&text).expect("artifact parses")
}

#[test]
fn steady_state_fleet_rounds_are_allocation_free() {
    let split = corpus();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let svm = fit_us_svm(&load_ensemble(), &video, &cfg, &split.train);
    let traces = split.test[..8].to_vec();

    // Reverse switching on and a finite threshold: the measured loop
    // includes trips, recoveries, and auto-reset session rollovers —
    // the full steady state, not just the quiet path.
    let serve = ServeConfig {
        alpha: 1e-4,
        reverse: Some(ReverseConfig::new(3, 8)),
        shard: 32,
        auto_reset: true,
        ..ServeConfig::default()
    };
    let mut u_v = FleetEngine::new(
        owned_ensemble(),
        FleetSignal::ValueDisagreement,
        video.clone(),
        cfg.clone(),
        traces.clone(),
        SESSIONS,
        &serve,
    );
    let mut u_s = FleetEngine::new(
        owned_ensemble(),
        FleetSignal::Novelty(svm),
        video,
        cfg,
        traces,
        SESSIONS,
        &serve,
    );

    for _ in 0..WARMUP_ROUNDS {
        u_v.round();
        u_s.round();
    }

    let min = min_window_allocations(WINDOWS, ROUNDS_PER_WINDOW, || {
        std::hint::black_box(u_v.round());
        std::hint::black_box(u_s.round());
    });
    assert_eq!(
        min, 0,
        "steady-state fleet round touched the heap ({min} allocations in \
         the cleanest of {WINDOWS} windows of {ROUNDS_PER_WINDOW} rounds \
         across U_V and U_S engines of {SESSIONS} sessions)"
    );
    // The loop must have exercised the trip path, not idled quietly
    // (recovery is the same allocation-free state-machine write; its
    // behavior is pinned in `serve_determinism.rs`).
    let t = u_v.telemetry();
    assert!(t.total_switches > 0, "α = 1e-4 must trip U_V sessions");
    // Same for U_S: trips prove the batched scoring arm ran with a
    // shrinking-then-regrowing batch (tripped sessions stop observing,
    // rollovers restart warm-up) without falling back to the heap.
    let t = u_s.telemetry();
    assert!(t.total_switches > 0, "α = 1e-4 must trip U_S sessions");
}
