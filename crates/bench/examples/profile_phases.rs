//! Phase profiler for the Pensieve-actor hot path: wall-clock per network
//! stage (branch forwards, merge GEMMs, backward splits) plus the raw
//! GEMM/transpose pieces of the merge layer's backward pass.
//!
//! Not a regression gate — `benches/nn_forward_backward.rs` is — but the
//! first thing to run when the end-to-end numbers move and you need to
//! know which stage did it:
//!
//! ```sh
//! cargo run --release -p osa-bench --example profile_phases
//! ```

use osa_nn::prelude::*;
use osa_nn::tensor::Act;
use std::time::Instant;

fn main() {
    let mut rng = Rng::seed_from_u64(42);
    let mut c1 = Conv1d::new(1, 8, 128, 4, Init::HeUniform, &mut rng).with_act(Act::Relu);
    let mut c2 = Conv1d::new(1, 8, 128, 4, Init::HeUniform, &mut rng).with_act(Act::Relu);
    let mut c3 = Conv1d::new(1, 6, 128, 4, Init::HeUniform, &mut rng).with_act(Act::Relu);
    let mut ds = Dense::new(3, 128, Init::HeUniform, &mut rng).with_act(Act::Relu);
    let merge_in = c1.out_dim() + c2.out_dim() + c3.out_dim() + 128;
    let mut merge = Dense::new(merge_in, 128, Init::HeUniform, &mut rng).with_act(Act::Relu);
    let mut head = Dense::new(128, 6, Init::XavierUniform, &mut rng);
    let mut sm = Softmax::new();

    let rand_t = |rows: usize, cols: usize, rng: &mut Rng| {
        let data = (0..rows * cols).map(|_| rng.range_f32(0.0, 1.0)).collect();
        Tensor::from_vec(rows, cols, data)
    };
    let x1 = rand_t(32, 8, &mut rng);
    let x2 = rand_t(32, 8, &mut rng);
    let x3 = rand_t(32, 6, &mut rng);
    let xs = rand_t(32, 3, &mut rng);
    let up = rand_t(32, 6, &mut rng);
    let mut ws = Workspace::new();

    let reps = 100;
    let mut t_convf = 0.0;
    let mut t_mergef = 0.0;
    let mut t_headf = 0.0;
    let mut t_smb = 0.0;
    let mut t_headb = 0.0;
    let mut t_mergeb = 0.0;
    let mut t_convb = 0.0;

    for _ in 0..reps + 5 {
        let t0 = Instant::now();
        let a = c1.forward_ws(&x1, &mut ws);
        let b = c2.forward_ws(&x2, &mut ws);
        let c = c3.forward_ws(&x3, &mut ws);
        let d = ds.forward_ws(&xs, &mut ws);
        let t1 = Instant::now();
        let mut merged = ws.take(32, merge_in);
        for r in 0..32 {
            let orow = merged.row_mut(r);
            let mut off = 0;
            for p in [&a, &b, &c, &d] {
                orow[off..off + p.cols()].copy_from_slice(p.row(r));
                off += p.cols();
            }
        }
        ws.recycle(a);
        ws.recycle(b);
        ws.recycle(c);
        ws.recycle(d);
        let m = merge.forward_ws(&merged, &mut ws);
        ws.recycle(merged);
        let t2 = Instant::now();
        let h = head.forward_ws(&m, &mut ws);
        ws.recycle(m);
        let p = sm.forward_ws(&h, &mut ws);
        ws.recycle(h);
        let t3 = Instant::now();
        let g = sm.backward_ws(&up, &mut ws);
        ws.recycle(p);
        let t4 = Instant::now();
        let g2 = head.backward_ws(&g, &mut ws);
        ws.recycle(g);
        let t5 = Instant::now();
        let g3 = merge.backward_ws(&g2, &mut ws);
        ws.recycle(g2);
        let t6 = Instant::now();
        let widths = [c1.out_dim(), c2.out_dim(), c3.out_dim(), 128];
        let mut off = 0;
        for (i, &w) in widths.iter().enumerate() {
            let mut part = ws.take(32, w);
            for r in 0..32 {
                part.row_mut(r).copy_from_slice(&g3.row(r)[off..off + w]);
            }
            let gi = match i {
                0 => c1.backward_ws(&part, &mut ws),
                1 => c2.backward_ws(&part, &mut ws),
                2 => c3.backward_ws(&part, &mut ws),
                _ => ds.backward_ws(&part, &mut ws),
            };
            ws.recycle(gi);
            ws.recycle(part);
            off += w;
        }
        ws.recycle(g3);
        let t7 = Instant::now();

        t_convf += (t1 - t0).as_secs_f64();
        t_mergef += (t2 - t1).as_secs_f64();
        t_headf += (t3 - t2).as_secs_f64();
        t_smb += (t4 - t3).as_secs_f64();
        t_headb += (t5 - t4).as_secs_f64();
        t_mergeb += (t6 - t5).as_secs_f64();
        t_convb += (t7 - t6).as_secs_f64();
    }
    let s = 1e6 / reps as f64;
    println!("conv+scalar fwd : {:>8.0} us", t_convf * s);
    println!("concat+merge fwd: {:>8.0} us", t_mergef * s);
    println!("head+softmax fwd: {:>8.0} us", t_headf * s);
    println!("softmax bwd     : {:>8.0} us", t_smb * s);
    println!("head bwd        : {:>8.0} us", t_headb * s);
    println!("merge bwd       : {:>8.0} us", t_mergeb * s);
    println!("split+branch bwd: {:>8.0} us", t_convb * s);

    // Raw pieces of merge backward.
    let g = rand_t(32, 128, &mut rng);
    let w = rand_t(merge_in, 128, &mut rng);
    let x = rand_t(32, merge_in, &mut rng);
    let mut wt = Tensor::zeros(128, merge_in);
    let mut dx = Tensor::zeros(32, merge_in);
    let mut dw = Tensor::zeros(merge_in, 128);

    let time = |label: &str, f: &mut dyn FnMut()| {
        for _ in 0..5 {
            f();
        }
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        println!("{label}: {:>8.0} us", t0.elapsed().as_secs_f64() * s);
    };
    time("transpose w      ", &mut || w.transpose_into(&mut wt));
    time("dx = g*wT matmul ", &mut || g.matmul_into(&wt, &mut dx));
    time("dx matmul_t      ", &mut || g.matmul_t_into(&w, &mut dx));
    time("dw = xT*g tmatmul", &mut || x.tmatmul_into(&g, &mut dw));
}
