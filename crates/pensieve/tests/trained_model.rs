//! Pin the committed trained agent: `artifacts/pensieve_norway.json`
//! (produced by `examples/pensieve_train.rs`) must load and beat
//! Buffer-Based on the Norway test split — normalized score > 1.0,
//! where 0 = Random and 1 = BB (ROADMAP convention).
//!
//! The corpus constants are the contract with the trainer: the split is
//! regenerated from the same (count, len, seed), so the test evaluates
//! on exactly the held-out traces the artifact was selected against.

use osa_abr::prelude::*;
use osa_pensieve::PensieveAgent;
use osa_trace::prelude::*;

/// Must match `examples/pensieve_train.rs`.
const CORPUS_COUNT: usize = 60;
const CORPUS_LEN: usize = 400;
const CORPUS_SEED: u64 = 2020;

const ARTIFACT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../artifacts/pensieve_norway.json"
);

#[test]
fn committed_agent_beats_bb_on_norway_test_split() {
    let text = std::fs::read_to_string(ARTIFACT).expect("read artifacts/pensieve_norway.json");
    let mut agent = PensieveAgent::from_json(&text).expect("parse committed agent");

    let split = Split::generate(Dataset::Norway, CORPUS_COUNT, CORPUS_LEN, CORPUS_SEED);
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();

    let rnd = evaluate_policy(&video, &cfg, &split.test, &mut RandomPolicy, CORPUS_SEED);
    let bb = evaluate_policy(
        &video,
        &cfg,
        &split.test,
        &mut BufferBased::default(),
        CORPUS_SEED,
    );
    let pen = evaluate_policy(&video, &cfg, &split.test, &mut agent, CORPUS_SEED);

    assert!(
        bb.mean_qoe > rnd.mean_qoe,
        "anchors inverted: bb {} vs random {}",
        bb.mean_qoe,
        rnd.mean_qoe
    );
    let norm = normalized_score(pen.mean_qoe, rnd.mean_qoe, bb.mean_qoe);
    assert!(
        norm > 1.0,
        "committed Pensieve no longer beats BB: normalized {norm:.3} \
         (qoe {:.3} vs bb {:.3}, random {:.3})",
        pen.mean_qoe,
        bb.mean_qoe,
        rnd.mean_qoe
    );
}
