//! `osa-pensieve` — the learned ABR policy (DESIGN.md §1 row 5).
//!
//! # Contract
//!
//! This crate will reimplement Pensieve on top of [`osa_nn`] and
//! [`osa_mdp`]:
//!
//! - the Pensieve state encoding: past-throughput and download-time
//!   histories, current buffer, chunks remaining, last bitrate, and
//!   next-chunk sizes per bitrate;
//! - actor and critic networks with per-feature Conv1d branches merged into
//!   a 128-unit dense layer (softmax actor over bitrates, scalar critic),
//!   built from `osa_nn` layers;
//! - entropy-regularized A3C training against the [`osa_abr`] environment
//!   at reduced scale (DESIGN.md §2.3);
//! - deterministic argmax inference and serde-JSON model persistence so the
//!   bench harness can cache trained agents and ensembles.
#![forbid(unsafe_code)]

/// Marks the crate as scaffolded but not yet implemented; removed once the
/// agent lands.
pub const IMPLEMENTED: bool = false;

/// Length of the throughput / download-time history windows in the Pensieve
/// state encoding.
pub const HISTORY_LEN: usize = 8;

/// Hidden width of the dense merge layer in the Pensieve networks.
pub const MERGE_UNITS: usize = 128;

#[cfg(test)]
mod tests {
    #[test]
    fn scaffold_compiles() {
        assert_eq!(super::HISTORY_LEN, 8);
        assert_eq!(super::MERGE_UNITS, 128);
    }
}
