//! `osa-pensieve` — the learned ABR policy (DESIGN.md §1 row 5).
//!
//! Reimplements Pensieve on top of [`osa_nn`] and [`osa_mdp`]:
//!
//! - the paper's state encoding comes from
//!   [`osa_abr::sim::MultiSession::fill_observations`] / `AbrEnv` —
//!   past-throughput and download-time histories, next-chunk sizes,
//!   buffer, chunks remaining, and previous bitrate
//!   ([`osa_abr::OBS_DIM`] = 25 columns);
//! - actor and critic are built from per-feature [`Conv1d`] branches
//!   (one per history window, one over the next-chunk size ladder)
//!   merged with a dense branch over the three scalars, then a dense
//!   merge layer and a linear head — the Pensieve architecture, with a
//!   configurable filter count so CI can train a reduced-scale agent
//!   (DESIGN.md §2.3) while [`PensieveConfig::paper`] matches the
//!   original 128-filter network;
//! - training delegates to the workspace's synchronous-streams A2C
//!   ([`osa_mdp::a2c::train`]) over [`AbrEnv`], so runs are
//!   bit-identical at any pool width;
//! - inference is batched deterministic argmax through
//!   [`osa_mdp::Policy::action_probs_batch_into`], allocation-free
//!   after warm-up, exposed as an [`osa_abr::AbrPolicy`];
//! - [`PensieveAgent::to_json`] / [`PensieveAgent::from_json`] persist
//!   the agent through the bit-exact `osa_nn` model format.
#![forbid(unsafe_code)]

use osa_abr::policy::AbrPolicy;
use osa_abr::sim::{AbrConfig, MultiSession};
use osa_abr::video::VideoModel;
use osa_abr::{AbrEnv, HISTORY_LEN as ABR_HISTORY_LEN, NUM_BITRATES, OBS_DIM};
use osa_mdp::a2c::{train, A2cConfig, ActorCritic, TrainReport};
use osa_mdp::Policy;
use osa_nn::json::{obj, Value};
use osa_nn::prelude::{
    Act, Branch, Branches, Conv1d, Dense, Init, LayerSpec, Rng, Sequential, Tensor,
};
use osa_trace::Trace;

/// Length of the throughput / download-time history windows in the
/// Pensieve state encoding (fixed by the `osa_abr` observation layout).
pub const HISTORY_LEN: usize = ABR_HISTORY_LEN;

/// Hidden width of the dense merge layer in the paper's networks.
pub const MERGE_UNITS: usize = 128;

/// Kernel width of the history convolutions (the paper's 1-D CNN uses
/// width-4 filters over the 8-sample windows).
pub const CONV_KERNEL: usize = 4;

/// Serialized-agent format version (bumped on any layout change).
pub const FORMAT_VERSION: u32 = 1;

/// Architecture hyper-parameters for [`PensieveAgent`].
///
/// `Default` is the reduced-scale network the workspace trains in CI on
/// a single core; [`PensieveConfig::paper`] is the original Pensieve
/// size; [`PensieveConfig::tiny`] is the quickstart/smoke size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PensieveConfig {
    /// Output channels of each Conv1d branch (paper: 128).
    pub filters: usize,
    /// Width of the dense merge layer (paper: 128).
    pub merge: usize,
}

impl Default for PensieveConfig {
    fn default() -> Self {
        PensieveConfig {
            filters: 16,
            merge: MERGE_UNITS,
        }
    }
}

impl PensieveConfig {
    /// The original Pensieve network size (128 filters, 128 merge).
    pub fn paper() -> Self {
        PensieveConfig {
            filters: 128,
            merge: MERGE_UNITS,
        }
    }

    /// Smallest useful network, for quickstarts and smoke tests.
    pub fn tiny() -> Self {
        PensieveConfig {
            filters: 4,
            merge: 16,
        }
    }

    /// Width of the concatenated branch outputs feeding the merge
    /// layer: two history convs (out_len 5), the size-ladder conv
    /// (out_len 3), and the scalar dense branch (width `filters`).
    pub fn merge_in(&self) -> usize {
        let hist_out = HISTORY_LEN - CONV_KERNEL + 1; // 5
        let sizes_out = NUM_BITRATES - CONV_KERNEL + 1; // 3
        (2 * hist_out + sizes_out + 1) * self.filters
    }
}

/// Build one Pensieve tower: per-feature branches over the `osa_abr`
/// observation layout → dense merge → linear head of `out_dim` units.
///
/// Branch column spans must tile the observation exactly:
/// `[0,8)` throughput history, `[8,16)` delay history, `[16,22)`
/// next-chunk sizes, `[22,25)` scalars.
fn build_tower(cfg: &PensieveConfig, out_dim: usize, rng: &mut Rng) -> Sequential {
    let f = cfg.filters;
    let conv = |len: usize, rng: &mut Rng| {
        Conv1d::new(1, len, f, CONV_KERNEL, Init::HeUniform, rng).with_act(Act::Relu)
    };
    let branches = Branches::new(vec![
        Branch::from(conv(HISTORY_LEN, rng)),
        Branch::from(conv(HISTORY_LEN, rng)),
        Branch::from(conv(NUM_BITRATES, rng)),
        Branch::from(Dense::new(3, f, Init::HeUniform, rng).with_act(Act::Relu)),
    ]);
    assert_eq!(
        branches.in_dim(),
        OBS_DIM,
        "branches must tile the observation"
    );
    assert_eq!(branches.out_dim(), cfg.merge_in());
    Sequential::new()
        .with(branches)
        .with(Dense::new(cfg.merge_in(), cfg.merge, Init::HeUniform, rng).with_act(Act::Relu))
        .with(Dense::new(cfg.merge, out_dim, Init::XavierUniform, rng))
}

/// Input/output width of one layer spec, `None` for shape-preserving
/// activation layers.
fn spec_dims(spec: &LayerSpec) -> Option<(usize, usize)> {
    match spec {
        LayerSpec::Dense { w, .. } => Some((w.rows(), w.cols())),
        LayerSpec::Conv1d {
            in_channels,
            length,
            out_channels,
            kernel,
            ..
        } => Some((in_channels * length, out_channels * (length - kernel + 1))),
        LayerSpec::Branches { parts } => {
            let mut dims = (0, 0);
            for p in parts {
                let (i, o) = spec_dims(p)?;
                dims.0 += i;
                dims.1 += o;
            }
            Some(dims)
        }
        LayerSpec::ReLU | LayerSpec::Softmax => None,
    }
}

/// The (input, output) widths of every sized layer in a network, in
/// order, read off its spec.
fn sized_dims(net: &Sequential) -> Vec<(usize, usize)> {
    net.to_spec().layers.iter().filter_map(spec_dims).collect()
}

/// A Pensieve actor-critic: branched towers wrapped in the workspace's
/// [`ActorCritic`] so they ride the standard trainer, workspace
/// pooling, and persistence.
pub struct PensieveAgent {
    cfg: PensieveConfig,
    ac: ActorCritic,
    /// Scratch for batched inference; reused across `decide_all` calls
    /// so steady-state decisions are allocation-free.
    probs: Tensor,
}

impl PensieveAgent {
    /// Fresh agent with randomly initialized towers.
    pub fn new(cfg: PensieveConfig, rng: &mut Rng) -> Self {
        let actor = build_tower(&cfg, NUM_BITRATES, rng);
        let critic = build_tower(&cfg, 1, rng);
        PensieveAgent {
            cfg,
            ac: ActorCritic::from_nets(actor, critic),
            probs: Tensor::zeros(0, 0),
        }
    }

    pub fn config(&self) -> PensieveConfig {
        self.cfg
    }

    /// The underlying actor-critic, read-only (e.g. for snapshotting
    /// weights into a [`osa_nn::stacked::StackedNet`] ensemble).
    pub fn actor_critic(&self) -> &ActorCritic {
        &self.ac
    }

    /// The underlying actor-critic (e.g. for custom rollout loops).
    pub fn actor_critic_mut(&mut self) -> &mut ActorCritic {
        &mut self.ac
    }

    /// Train with the synchronous-streams A2C on an [`AbrEnv`] over
    /// `traces` (random trace choice and start offset per episode).
    /// Deterministic for a given `a2c` config at any pool width.
    pub fn train_on_traces(
        &mut self,
        video: &VideoModel,
        abr_cfg: &AbrConfig,
        traces: &[Trace],
        a2c: &A2cConfig,
    ) -> TrainReport {
        let env = AbrEnv::new(video.clone(), abr_cfg.clone(), traces.to_vec());
        train(&mut self.ac, &env, a2c)
    }

    /// Serialize to the workspace JSON model format: architecture
    /// hyper-parameters plus both towers as `osa_nn` net documents.
    /// Bit-exact: `from_json(to_json())` reproduces identical weights.
    pub fn to_json(&self) -> String {
        let actor = Value::parse(&self.ac.actor.to_json()).expect("actor spec is valid JSON");
        let critic = Value::parse(&self.ac.critic.to_json()).expect("critic spec is valid JSON");
        obj(vec![
            ("format_version", Value::Num(FORMAT_VERSION as f64)),
            ("history", Value::Num(HISTORY_LEN as f64)),
            ("filters", Value::Num(self.cfg.filters as f64)),
            ("merge", Value::Num(self.cfg.merge as f64)),
            ("actor", actor),
            ("critic", critic),
        ])
        .to_json()
    }

    /// Load an agent saved by [`PensieveAgent::to_json`].
    pub fn from_json(text: &str) -> Result<PensieveAgent, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let num = |k: &str| {
            field(k)?
                .as_usize()
                .ok_or_else(|| format!("field {k:?} must be a non-negative integer"))
        };
        let version = num("format_version")?;
        if version != FORMAT_VERSION as usize {
            return Err(format!("unsupported format_version {version}"));
        }
        let history = num("history")?;
        if history != HISTORY_LEN {
            return Err(format!(
                "history {history} does not match the observation layout ({HISTORY_LEN})"
            ));
        }
        let cfg = PensieveConfig {
            filters: num("filters")?,
            merge: num("merge")?,
        };
        let actor =
            Sequential::from_json(&field("actor")?.to_json()).map_err(|e| format!("actor: {e}"))?;
        let critic = Sequential::from_json(&field("critic")?.to_json())
            .map_err(|e| format!("critic: {e}"))?;
        // The loaded weights must realize exactly the architecture the
        // header declares — a tower that merely maps OBS_DIM to the
        // right output width but with different internal widths would
        // silently disagree with `cfg` (e.g. a forged `filters` field).
        for (name, net, out) in [("actor", &actor, NUM_BITRATES), ("critic", &critic, 1)] {
            let dims = sized_dims(net);
            let expected = vec![
                (OBS_DIM, cfg.merge_in()),
                (cfg.merge_in(), cfg.merge),
                (cfg.merge, out),
            ];
            if dims != expected {
                return Err(format!(
                    "{name} tower layers are {dims:?}, but the declared \
                     filters/merge require {expected:?}"
                ));
            }
        }
        Ok(PensieveAgent {
            cfg,
            ac: ActorCritic::from_nets(actor, critic),
            probs: Tensor::zeros(0, 0),
        })
    }
}

impl AbrPolicy for PensieveAgent {
    fn name(&self) -> &'static str {
        "Pensieve"
    }

    /// One batched forward pass, then per-row argmax (ties → lowest
    /// level, matching [`osa_mdp::Policy::greedy`]).
    fn decide_all(
        &mut self,
        _sim: &MultiSession,
        obs: &Tensor,
        actions: &mut [usize],
        _rng: &mut Rng,
    ) {
        self.ac.action_probs_batch_into(obs, &mut self.probs);
        for (i, a) in actions.iter_mut().enumerate() {
            let row = self.probs.row(i);
            let mut best = 0;
            for (j, &p) in row.iter().enumerate() {
                if p > row[best] {
                    best = j;
                }
            }
            *a = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_mdp::ValueFunction;

    fn rng() -> Rng {
        Rng::seed_from_u64(17)
    }

    fn random_obs(rows: usize, rng: &mut Rng) -> Tensor {
        let mut t = Tensor::zeros(rows, OBS_DIM);
        for x in t.data_mut() {
            *x = rng.range_f32(0.0, 1.0);
        }
        t
    }

    #[test]
    fn towers_have_the_documented_shapes() {
        let cfg = PensieveConfig::default();
        assert_eq!(cfg.merge_in(), 14 * cfg.filters);
        let mut agent = PensieveAgent::new(cfg, &mut rng());
        let expect = |out| {
            vec![
                (OBS_DIM, cfg.merge_in()),
                (cfg.merge_in(), cfg.merge),
                (cfg.merge, out),
            ]
        };
        assert_eq!(sized_dims(&agent.ac.actor), expect(NUM_BITRATES));
        assert_eq!(sized_dims(&agent.ac.critic), expect(1));

        let obs = random_obs(3, &mut rng());
        let mut probs = Tensor::zeros(0, 0);
        agent.ac.action_probs_batch_into(&obs, &mut probs);
        assert_eq!((probs.rows(), probs.cols()), (3, NUM_BITRATES));
        for r in 0..3 {
            let sum: f32 = probs.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        let mut values = Vec::new();
        agent.ac.values_into(&obs, &mut values);
        assert_eq!(values.len(), 3);
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let mut agent = PensieveAgent::new(PensieveConfig::tiny(), &mut rng());
        let json = agent.to_json();
        let mut twin = PensieveAgent::from_json(&json).unwrap();
        assert_eq!(twin.config(), agent.config());
        assert_eq!(twin.to_json(), json, "second save must be byte-identical");

        let obs = random_obs(4, &mut rng());
        let (mut a, mut b) = (Tensor::zeros(0, 0), Tensor::zeros(0, 0));
        agent.ac.action_probs_batch_into(&obs, &mut a);
        twin.ac.action_probs_batch_into(&obs, &mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn from_json_rejects_mismatched_documents() {
        let agent = PensieveAgent::new(PensieveConfig::tiny(), &mut rng());
        let json = agent.to_json();
        assert!(PensieveAgent::from_json("{}").is_err());
        assert!(PensieveAgent::from_json(&json.replace("\"history\":8", "\"history\":4")).is_err());
        assert!(PensieveAgent::from_json(
            &json.replace("\"format_version\":1", "\"format_version\":9")
        )
        .is_err());
        // A header that contradicts the stored weights must be rejected,
        // not silently accepted with a config/weights mismatch.
        let forged = json.replacen("\"filters\":4", "\"filters\":8", 1);
        assert_ne!(forged, json, "replacen must hit the filters field");
        assert!(PensieveAgent::from_json(&forged).is_err());
    }

    #[test]
    fn decide_all_matches_per_row_greedy() {
        let mut agent = PensieveAgent::new(PensieveConfig::tiny(), &mut rng());
        let video = VideoModel::envivio();
        let traces = vec![Trace::new("t", 1.0, vec![2.0; 20])];
        let sim = MultiSession::new(video, AbrConfig::default(), traces, 5, true);
        let mut obs = random_obs(5, &mut rng());
        sim.fill_observations(&mut obs);
        let mut actions = vec![0usize; 5];
        let mut r = rng();
        agent.decide_all(&sim, &obs, &mut actions, &mut r);
        for (i, &a) in actions.iter().enumerate() {
            assert!(a < NUM_BITRATES);
            assert_eq!(a, agent.ac.greedy(obs.row(i)), "row {i}");
        }
    }

    #[test]
    fn tiny_training_run_improves_and_is_deterministic() {
        let video = VideoModel::envivio();
        let abr_cfg = AbrConfig::default();
        let traces: Vec<Trace> = (0..3)
            .map(|i| Trace::new(format!("t{i}"), 1.0, vec![1.0 + i as f32; 60]))
            .collect();
        let a2c = A2cConfig {
            updates: 4,
            rollout_len: 24,
            workers: 2,
            seed: 5,
            ..A2cConfig::default()
        };
        let run = || {
            let mut agent = PensieveAgent::new(PensieveConfig::tiny(), &mut rng());
            let report = agent.train_on_traces(&video, &abr_cfg, &traces, &a2c);
            (agent.to_json(), report.env_steps)
        };
        let (json_a, steps_a) = run();
        let (json_b, steps_b) = run();
        assert_eq!(steps_a, steps_b);
        assert_eq!(json_a, json_b, "training must be deterministic");
        // `updates` counts gradient updates across all streams: one
        // rollout fragment is consumed per update.
        assert_eq!(steps_a, 4 * 24);
    }
}
