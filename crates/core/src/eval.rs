//! Session-level evaluation of a [`SafeAgent`] and the normalized
//! scoring (0 = Random, 1 = Buffer-Based, §3.3) every figure binary
//! shares.

use osa_abr::eval::evaluate_policy;
use osa_abr::policy::{BufferBased, RandomPolicy};
use osa_abr::sim::{AbrConfig, SessionCursor};
use osa_abr::video::VideoModel;
use osa_abr::OBS_DIM;
use osa_nn::tensor::Tensor;
use osa_trace::Trace;

use crate::ensemble::PensieveEnsemble;
use crate::safe_agent::{SafeAgent, SafetyPolicy};
use crate::signal::UncertaintySignal;

/// Everything one trace's streaming session produced: QoE accounting
/// plus the per-decision signal time series the paper's figures plot.
#[derive(Clone, Debug, Default)]
pub struct SessionRun {
    /// Sum of per-chunk linear QoE.
    pub qoe: f64,
    pub rebuffer_s: f64,
    pub bitrate_mbps: f64,
    pub chunks: u64,
    /// Raw signal value at each decision (frozen at the last observed
    /// value while the signal is skipped on a sticky fallback).
    pub raw: Vec<f32>,
    /// k-window variance at each decision.
    pub variance: Vec<f32>,
    /// Decision index at which the agent *first* switched to the
    /// fallback.
    pub switch_index: Option<usize>,
    /// Learned→fallback switches (> 1 only with reverse switching).
    pub switches: usize,
    /// Fallback→learned recoveries (0 without reverse switching).
    pub recoveries: usize,
}

impl SessionRun {
    /// Empty the accounting while keeping the time-series capacity, so
    /// a reused buffer stays allocation-free across sessions.
    fn clear(&mut self) {
        self.qoe = 0.0;
        self.rebuffer_s = 0.0;
        self.bitrate_mbps = 0.0;
        self.chunks = 0;
        self.raw.clear();
        self.variance.clear();
        self.switch_index = None;
        self.switches = 0;
        self.recoveries = 0;
    }
}

/// Stream one trace end to end under `agent` (reset first), recording
/// the signal time series. One 48-chunk session, started at trace
/// time 0 — the same protocol as `osa_abr::evaluate_policy`.
///
/// Allocates a fresh [`SessionRun`] per call; loops that run many
/// sessions (calibration, [`evaluate_safe_agent`]) use
/// [`run_session_into`] with a reused buffer instead.
pub fn run_session<S, P, F>(
    agent: &mut SafeAgent<[f32], S, P, F>,
    video: &VideoModel,
    cfg: &AbrConfig,
    trace: &Trace,
) -> SessionRun
where
    S: UncertaintySignal<[f32]>,
    P: SafetyPolicy<[f32]>,
    F: SafetyPolicy<[f32]>,
{
    let mut out = SessionRun::default();
    run_session_into(agent, video, cfg, trace, &mut out);
    out
}

/// [`run_session`] into a caller-owned buffer, borrowing every input:
/// no `VideoModel`/`Trace` clones, no per-session vector allocations
/// once `out`'s time series have warmed up. The single-session engine
/// is a stack-held [`SessionCursor`], which shares `step_chunk` /
/// `encode_obs` with the batched `MultiSession` path — same bits,
/// none of the per-session setup cost.
pub fn run_session_into<S, P, F>(
    agent: &mut SafeAgent<[f32], S, P, F>,
    video: &VideoModel,
    cfg: &AbrConfig,
    trace: &Trace,
    out: &mut SessionRun,
) where
    S: UncertaintySignal<[f32]>,
    P: SafetyPolicy<[f32]>,
    F: SafetyPolicy<[f32]>,
{
    agent.reset();
    out.clear();
    let mut cur = SessionCursor::new();
    let mut obs = [0.0f32; OBS_DIM];
    while !cur.done(video) {
        cur.encode_obs(video, &mut obs);
        let level = agent.decide(&obs[..]);
        out.raw.push(agent.last_raw());
        out.variance.push(agent.last_variance());
        let o = cur.step(video, cfg, trace, level);
        out.qoe += o.reward;
        out.rebuffer_s += o.rebuffer_s;
        out.bitrate_mbps += video.bitrate_mbps(level);
        out.chunks += 1;
    }
    out.switch_index = agent.switch_index();
    out.switches = agent.switches();
    out.recoveries = agent.recoveries();
}

/// Collect the observation rows the learned policy actually sees while
/// streaming `traces` — the calibration set for
/// [`PensieveEnsemble::calibrate_int8`]. Each trace is streamed end to
/// end under the ensemble's own (f32) decisions, so the recorded
/// distribution matches serving, and the first `max_per_trace`
/// observations of each session are kept. Fully deterministic: same
/// ensemble + traces → bit-identical rows, and therefore bit-identical
/// calibrated activation scales.
pub fn calibration_observations(
    ens: &mut PensieveEnsemble,
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
    max_per_trace: usize,
) -> Tensor {
    assert!(!traces.is_empty(), "calibration needs traces");
    assert!(max_per_trace >= 1, "max_per_trace must be >= 1");
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut obs = [0.0f32; OBS_DIM];
    for trace in traces {
        let mut cur = SessionCursor::new();
        let mut kept = 0usize;
        while !cur.done(video) {
            cur.encode_obs(video, &mut obs);
            if kept < max_per_trace {
                rows.push(obs.to_vec());
                kept += 1;
            }
            let level = ens.act(&obs[..]);
            cur.step(video, cfg, trace, level);
        }
    }
    Tensor::from_rows(&rows)
}

/// Aggregate of a safe agent over a trace set (one session per trace).
#[derive(Clone, Debug)]
pub struct SafeScore {
    /// Mean linear QoE per chunk — comparable to
    /// `osa_abr::PolicyScore::mean_qoe`.
    pub mean_qoe: f64,
    pub mean_rebuffer_s: f64,
    pub sessions: usize,
    pub chunks: u64,
    /// Sessions in which the agent switched to the fallback.
    pub switched_sessions: usize,
    /// Mean switch decision index over the switched sessions.
    pub mean_switch_index: f64,
}

/// Run one session per trace and aggregate.
pub fn evaluate_safe_agent<S, P, F>(
    agent: &mut SafeAgent<[f32], S, P, F>,
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
) -> SafeScore
where
    S: UncertaintySignal<[f32]>,
    P: SafetyPolicy<[f32]>,
    F: SafetyPolicy<[f32]>,
{
    assert!(!traces.is_empty(), "evaluate_safe_agent needs traces");
    let (mut qoe, mut rebuf, mut chunks) = (0.0f64, 0.0f64, 0u64);
    let mut switched = 0usize;
    let mut switch_sum = 0.0f64;
    let mut run = SessionRun::default();
    for t in traces {
        run_session_into(agent, video, cfg, t, &mut run);
        qoe += run.qoe;
        rebuf += run.rebuffer_s;
        chunks += run.chunks;
        if let Some(i) = run.switch_index {
            switched += 1;
            switch_sum += i as f64;
        }
    }
    SafeScore {
        mean_qoe: qoe / chunks as f64,
        mean_rebuffer_s: rebuf / traces.len() as f64,
        sessions: traces.len(),
        chunks,
        switched_sessions: switched,
        mean_switch_index: if switched > 0 {
            switch_sum / switched as f64
        } else {
            f64::NAN
        },
    }
}

/// The two QoE anchors of the normalized score.
#[derive(Clone, Copy, Debug)]
pub struct Anchors {
    pub random_qoe: f64,
    pub bb_qoe: f64,
}

/// Evaluate Random and Buffer-Based over `traces` to anchor the
/// normalized scale. Deterministic given `seed` (which only feeds the
/// Random policy).
pub fn anchors(video: &VideoModel, cfg: &AbrConfig, traces: &[Trace], seed: u64) -> Anchors {
    let rnd = evaluate_policy(video, cfg, traces, &mut RandomPolicy, seed);
    let bb = evaluate_policy(video, cfg, traces, &mut BufferBased::default(), seed);
    Anchors {
        random_qoe: rnd.mean_qoe,
        bb_qoe: bb.mean_qoe,
    }
}

/// The §3.3 normalized score: 0 at Random's QoE, 1 at Buffer-Based's.
pub fn normalized(qoe: f64, anchors: &Anchors) -> f64 {
    osa_abr::eval::normalized_score(qoe, anchors.random_qoe, anchors.bb_qoe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Monitor;
    use crate::safe_agent::BufferFallback;

    struct Quiet;
    impl UncertaintySignal<[f32]> for Quiet {
        fn name(&self) -> &'static str {
            "quiet"
        }
        fn observe(&mut self, _obs: &[f32]) -> f32 {
            0.0
        }
        fn reset(&mut self) {}
    }

    fn trace() -> Trace {
        Trace::new("flat", 1.0, vec![3.0; 300])
    }

    #[test]
    fn quiet_safe_agent_reproduces_its_policy_exactly() {
        // With a never-tripping signal and BB on both sides, the safe
        // agent must score exactly like plain BB.
        let video = VideoModel::envivio();
        let cfg = AbrConfig::default();
        let mut agent = SafeAgent::new(
            Quiet,
            Monitor::new(5, f32::INFINITY, 3),
            BufferFallback::default(),
            BufferFallback::default(),
        );
        let run = run_session(&mut agent, &video, &cfg, &trace());
        let bb = evaluate_policy(&video, &cfg, &[trace()], &mut BufferBased::default(), 0);
        assert_eq!(run.qoe / run.chunks as f64, bb.mean_qoe);
        assert_eq!(run.switch_index, None);
        assert_eq!(run.raw.len(), run.chunks as usize);
    }

    #[test]
    fn anchors_order_on_steady_links() {
        let video = VideoModel::envivio();
        let cfg = AbrConfig::default();
        let a = anchors(&video, &cfg, &[trace()], 7);
        assert!(a.bb_qoe > a.random_qoe);
        assert_eq!(normalized(a.bb_qoe, &a), 1.0);
        assert_eq!(normalized(a.random_qoe, &a), 0.0);
    }
}
