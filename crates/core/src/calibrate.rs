//! (α, l) calibration against in-distribution traces (§3.1).
//!
//! The trip threshold cannot be universal — each signal lives on its own
//! scale (KL nats, value units, SVM margins). The paper calibrates on
//! traces drawn from the training distribution: run the safe agent with
//! an infinite threshold (so it never switches), then find the smallest
//! α that produces zero false switches on those sessions *under the
//! l-consecutive rule* — the largest min-of-l-consecutive window
//! variances observed — and install `α = margin × that`.
//! In-distribution sessions keep the learned policy's QoE (no false
//! switches on the calibration set by construction), while genuinely
//! out-of-distribution inputs hold the variance above α for l straight
//! decisions within a few steps of the shift.
//!
//! Calibration respects whatever anchor mode the monitor is in (see
//! [`Monitor::set_anchor`](crate::monitor::Monitor::set_anchor)) and
//! does not change it: on this corpus, anchoring the variance at the
//! quiet level traded away U_V's outage and rate-cap detections without
//! rescuing any signal, so the sample-mean default stands.

use osa_abr::sim::AbrConfig;
use osa_abr::video::VideoModel;
use osa_ocsvm::detector::NoveltyDetector;
use osa_trace::Trace;

use crate::eval::{run_session_into, SessionRun};
use crate::safe_agent::{SafeAgent, SafetyPolicy};
use crate::signal::{NoveltySignal, UncertaintySignal};

/// Headroom factor over the in-distribution maximum variance.
pub const DEFAULT_MARGIN: f32 = 2.0;

/// A calibrated (α, l) pair plus the statistics it came from.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    pub alpha: f32,
    pub l: usize,
    pub k: usize,
    /// Mean in-distribution raw signal level (diagnostic; also the
    /// value to hand [`Monitor::set_anchor`](crate::monitor::Monitor::set_anchor)
    /// when opting into anchored variance).
    pub mu: f32,
    /// Smallest threshold with zero calibration-set switches given l
    /// (largest in-distribution min-of-l-consecutive window variance).
    pub max_variance: f32,
}

/// Calibrate `agent`'s monitor on in-distribution `traces` and install
/// the resulting α. The agent is left reset and ready to deploy.
pub fn calibrate<S, P, F>(
    agent: &mut SafeAgent<[f32], S, P, F>,
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
    margin: f32,
) -> Calibration
where
    S: UncertaintySignal<[f32]>,
    P: SafetyPolicy<[f32]>,
    F: SafetyPolicy<[f32]>,
{
    assert!(!traces.is_empty(), "calibration needs traces");
    assert!(margin >= 1.0, "margin below 1 would trip in distribution");
    agent.monitor_mut().set_alpha(f32::INFINITY);
    let l = agent.monitor().l();

    // A session trips at threshold α iff some run of l consecutive
    // variances all exceed α — i.e. iff the max-over-runs of the
    // min-within-run exceeds α. That statistic (not the plain max) is
    // the smallest non-tripping threshold: isolated spikes, which the
    // l-consecutive rule already forgives, must not inflate α, or
    // spiky-but-quiet signals end up with a ceiling no sustained shift
    // can clear. μ₀ rides along in the same pass as a diagnostic.
    let mut raw_sum = 0.0f64;
    let mut raw_n = 0usize;
    let mut max_variance = 0.0f32;
    let mut run = SessionRun::default();
    for t in traces {
        run_session_into(agent, video, cfg, t, &mut run);
        raw_sum += run.raw.iter().map(|&v| v as f64).sum::<f64>();
        raw_n += run.raw.len();
        for w in run.variance.windows(l) {
            let run_min = w.iter().copied().fold(f32::INFINITY, f32::min);
            max_variance = max_variance.max(run_min);
        }
    }
    let mu = (raw_sum / raw_n.max(1) as f64) as f32;
    // A degenerate constant signal has zero variance everywhere; keep α
    // strictly positive so exact zeros never count as exceedances.
    let alpha = (max_variance * margin).max(1e-12);
    agent.monitor_mut().set_alpha(alpha);
    agent.reset();
    Calibration {
        alpha,
        l: agent.monitor().l(),
        k: agent.monitor().k(),
        mu,
        max_variance,
    }
}

/// [`calibrate`] specialized to [`NoveltySignal`] agents: same result,
/// bit for bit, with the U_S scores computed through the batched engine
/// instead of one detector call per decision.
///
/// Calibration runs under `α = ∞`, so the raw signal can never affect
/// an action — which makes scoring *deferrable*. Each session streams
/// with the signal in deferred mode (collecting throughput rates,
/// returning the quiet value); afterwards the session's raw series is
/// reconstructed in one [`NoveltyDetector::score_batch_into`] call and
/// replayed through a clone of the agent's monitor to recover the
/// variance series the live run would have produced. Equivalence with
/// the generic path is pinned by `tests/novelty_fidelity.rs`.
pub fn calibrate_novelty<D, P, F>(
    agent: &mut SafeAgent<[f32], NoveltySignal<D>, P, F>,
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
    margin: f32,
) -> Calibration
where
    D: NoveltyDetector,
    P: SafetyPolicy<[f32]>,
    F: SafetyPolicy<[f32]>,
{
    assert!(!traces.is_empty(), "calibration needs traces");
    assert!(margin >= 1.0, "margin below 1 would trip in distribution");
    agent.monitor_mut().set_alpha(f32::INFINITY);
    let l = agent.monitor().l();
    // The replay monitor starts from the same post-reset state the live
    // agent's monitor is in at each session start, so feeding it the
    // reconstructed raw series reproduces the live variance series
    // exactly (the monitor is a deterministic function of its inputs).
    let mut replay = agent.monitor().clone();

    let mut raw_sum = 0.0f64;
    let mut raw_n = 0usize;
    let mut max_variance = 0.0f32;
    let mut run = SessionRun::default();
    let mut raw = Vec::new();
    let mut variance = Vec::new();
    agent.signal_mut().begin_deferred();
    for t in traces {
        run_session_into(agent, video, cfg, t, &mut run);
        agent.signal().deferred_raw_series(&mut raw);
        replay.reset();
        variance.clear();
        for &r in &raw {
            replay.update(r);
            variance.push(replay.variance());
        }
        raw_sum += raw.iter().map(|&v| v as f64).sum::<f64>();
        raw_n += raw.len();
        for w in variance.windows(l) {
            let run_min = w.iter().copied().fold(f32::INFINITY, f32::min);
            max_variance = max_variance.max(run_min);
        }
    }
    agent.signal_mut().end_deferred();
    let mu = (raw_sum / raw_n.max(1) as f64) as f32;
    let alpha = (max_variance * margin).max(1e-12);
    agent.monitor_mut().set_alpha(alpha);
    agent.reset();
    Calibration {
        alpha,
        l: agent.monitor().l(),
        k: agent.monitor().k(),
        mu,
        max_variance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::run_session;
    use crate::monitor::Monitor;
    use crate::safe_agent::BufferFallback;

    /// Echoes the newest-throughput column — noisy in proportion to the
    /// link itself.
    struct Echo;
    impl UncertaintySignal<[f32]> for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn observe(&mut self, obs: &[f32]) -> f32 {
            obs[osa_abr::HISTORY_LEN - 1]
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn calibrated_agent_never_trips_on_its_calibration_set() {
        let video = VideoModel::envivio();
        let cfg = AbrConfig::default();
        let traces: Vec<Trace> = (0..3)
            .map(|i| {
                let mbps: Vec<f32> = (0..200)
                    .map(|t| 2.5 + 0.8 * ((t as f32 * 0.7 + i as f32).sin()))
                    .collect();
                Trace::new(format!("wavy{i}"), 1.0, mbps)
            })
            .collect();
        let mut agent = SafeAgent::new(
            Echo,
            Monitor::new(5, f32::INFINITY, 3),
            BufferFallback::default(),
            BufferFallback::default(),
        );
        let cal = calibrate(&mut agent, &video, &cfg, &traces, 2.0);
        assert!(cal.max_variance > 0.0, "echo signal must vary");
        assert!((cal.alpha - cal.max_variance * 2.0).abs() < 1e-9);
        for t in &traces {
            let run = run_session(&mut agent, &video, &cfg, t);
            assert_eq!(run.switch_index, None, "false switch on {}", t.id);
        }
    }
}
