//! The Pensieve agent/value ensemble behind U_π and U_V (§3.1).
//!
//! The paper trains i = 5 replicas of the agent from different seeds and
//! reads uncertainty off their disagreement: U_π is the KL divergence of
//! each replica's action distribution from the ensemble mean, U_V the
//! distance of each replica's value estimate from the mean value — in
//! both cases the top-2 outliers are discarded and the kept 3 averaged,
//! so one diverged replica cannot fake (or mask) uncertainty.
//!
//! # One GEMM, not five
//!
//! Every decision needs all replicas' outputs, so the ensemble snapshots
//! the replica weights into two [`StackedNet`]s (actor towers, critic
//! towers) and evaluates each layer for all replicas in a **single
//! grouped GEMM** — see `osa_nn::stacked`. `BENCH_osap.json` pins this
//! against five sequential `Sequential` forwards.
//!
//! # Shared forward between acting and U_π
//!
//! The safe agent *acts* with the ensemble-mean distribution (argmax),
//! which needs exactly the stacked actor forward U_π also needs. The
//! ensemble therefore caches the most recent policy evaluation with a
//! `fresh` flag: when the U_π signal observes an observation first, the
//! subsequent [`PensieveEnsemble::act`] on the same observation reuses
//! the cached mean — the *marginal* cost of U_π is just the KL sums.

use std::cell::RefCell;
use std::rc::Rc;

use osa_abr::{NUM_BITRATES, OBS_DIM};
use osa_nn::json::{obj, JsonError, Value};
use osa_nn::quant::{QuantScratch, QuantStacked};
use osa_nn::stacked::StackedNet;
use osa_nn::tensor::Tensor;
use osa_nn::workspace::Workspace;
use osa_pensieve::{PensieveAgent, PensieveConfig};

use crate::signal::UncertaintySignal;

/// Serialized-ensemble format version (bumped on any layout change).
pub const ENSEMBLE_FORMAT_VERSION: u32 = 1;

/// Numeric precision the serving forwards run at: train f32, serve
/// either f32 or int8-quantized (see `osa_nn::quant`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServePrecision {
    /// The f32 stacked kernels (bit-identical to training forwards).
    #[default]
    F32,
    /// Post-training int8: ~4× smaller weight traffic, decisions match
    /// f32 within quantization error (pinned by the switch-fidelity
    /// e2e test). Requires [`PensieveEnsemble::calibrate_int8`] first.
    Int8,
}

/// Probability floor for the U_π KL sum (see
/// [`PensieveEnsemble::policy_disagreement`]).
pub const KL_FLOOR: f32 = 1e-6;

/// A stacked ensemble of Pensieve replicas: the mean-policy actor the
/// safe agent runs, and the disagreement statistics behind U_π and U_V.
pub struct PensieveEnsemble {
    cfg: PensieveConfig,
    replicas: usize,
    /// Members averaged after discarding the `replicas − keep` largest
    /// disagreements (§3.1: keep 3 of 5).
    keep: usize,
    actor: StackedNet,
    critic: StackedNet,
    /// Int8 serving nets, present once [`calibrate_int8`] has run.
    ///
    /// [`calibrate_int8`]: PensieveEnsemble::calibrate_int8
    quant: Option<(QuantStacked, QuantStacked)>,
    precision: ServePrecision,
    // Reused scratch — all paths below are allocation-free after warm-up.
    ws: Workspace,
    qscratch: QuantScratch,
    x: Tensor,
    logits: Tensor,
    values: Tensor,
    probs: Tensor,
    mean_probs: Vec<f32>,
    devs: Vec<f32>,
    fresh: bool,
}

impl PensieveEnsemble {
    /// Snapshot trained replicas into stacked actor/critic nets. All
    /// replicas must share one architecture; needs at least 2 (no
    /// disagreement exists among fewer).
    pub fn from_agents(agents: &[PensieveAgent]) -> Result<PensieveEnsemble, String> {
        if agents.len() < 2 {
            return Err("ensemble needs at least 2 replicas".into());
        }
        let cfg = agents[0].config();
        for (r, a) in agents.iter().enumerate() {
            if a.config() != cfg {
                return Err(format!("replica {r} architecture differs from replica 0"));
            }
        }
        let actors: Vec<&osa_nn::Sequential> =
            agents.iter().map(|a| &a.actor_critic().actor).collect();
        let critics: Vec<&osa_nn::Sequential> =
            agents.iter().map(|a| &a.actor_critic().critic).collect();
        let actor = StackedNet::from_nets(&actors).map_err(|e| e.to_string())?;
        let critic = StackedNet::from_nets(&critics).map_err(|e| e.to_string())?;
        let replicas = agents.len();
        Ok(PensieveEnsemble {
            cfg,
            replicas,
            keep: replicas.saturating_sub(2).max(1),
            actor,
            critic,
            quant: None,
            precision: ServePrecision::F32,
            ws: Workspace::new(),
            qscratch: QuantScratch::new(),
            x: Tensor::zeros(1, OBS_DIM),
            logits: Tensor::zeros(0, 0),
            values: Tensor::zeros(0, 0),
            probs: Tensor::zeros(replicas, NUM_BITRATES),
            mean_probs: vec![0.0; NUM_BITRATES],
            devs: Vec::with_capacity(replicas),
            fresh: false,
        })
    }

    pub fn replicas(&self) -> usize {
        self.replicas
    }

    pub fn keep(&self) -> usize {
        self.keep
    }

    /// The stacked actor towers, for batched serving paths
    /// ([`crate::serve`]) that run their own forwards.
    pub fn actor(&self) -> &StackedNet {
        &self.actor
    }

    /// The stacked critic towers (see [`PensieveEnsemble::actor`]).
    pub fn critic(&self) -> &StackedNet {
        &self.critic
    }

    /// Consume the ensemble into its stacked (actor, critic) pair — the
    /// serving engine owns the nets directly and drops the per-call
    /// scratch this wrapper carries.
    pub fn into_nets(self) -> (StackedNet, StackedNet) {
        (self.actor, self.critic)
    }

    /// Quantize the serving forwards to int8, calibrating per-layer
    /// activation scales on `calib` (`rows × OBS_DIM` validation-split
    /// observations — see `crate::eval::calibration_observations`).
    /// Keeps the f32 nets; call [`set_precision`] to pick which one
    /// serves.
    ///
    /// [`set_precision`]: PensieveEnsemble::set_precision
    pub fn calibrate_int8(&mut self, calib: &Tensor) {
        let qa = QuantStacked::from_stacked(&self.actor, calib, &mut self.ws);
        let qc = QuantStacked::from_stacked(&self.critic, calib, &mut self.ws);
        self.quant = Some((qa, qc));
    }

    /// Switch the serving precision. `Int8` requires a prior
    /// [`calibrate_int8`]; the cached policy evaluation is dropped
    /// because the two paths do not produce bit-identical logits.
    ///
    /// [`calibrate_int8`]: PensieveEnsemble::calibrate_int8
    pub fn set_precision(&mut self, precision: ServePrecision) -> Result<(), String> {
        if precision == ServePrecision::Int8 && self.quant.is_none() {
            return Err("set_precision(Int8) before calibrate_int8".into());
        }
        self.precision = precision;
        self.fresh = false;
        Ok(())
    }

    pub fn precision(&self) -> ServePrecision {
        self.precision
    }

    /// The calibrated int8 (actor, critic) pair, if any.
    pub fn quantized(&self) -> Option<&(QuantStacked, QuantStacked)> {
        self.quant.as_ref()
    }

    /// Consume the ensemble into every serving net it carries:
    /// `(actor, critic, quantized pair)` — the fleet engine's intake.
    pub fn into_serving_nets(
        self,
    ) -> (StackedNet, StackedNet, Option<(QuantStacked, QuantStacked)>) {
        (self.actor, self.critic, self.quant)
    }

    pub fn config(&self) -> PensieveConfig {
        self.cfg
    }

    /// Drop any cached policy evaluation (session boundary).
    pub fn invalidate(&mut self) {
        self.fresh = false;
    }

    /// Stacked actor forward of one observation: per-replica softmax and
    /// the ensemble-mean distribution, cached for the next [`act`].
    ///
    /// [`act`]: PensieveEnsemble::act
    pub fn policy_eval(&mut self, obs: &[f32]) {
        self.x.row_mut(0).copy_from_slice(obs);
        match (self.precision, &self.quant) {
            (ServePrecision::Int8, Some((qa, _))) => {
                qa.forward_into(&self.x, &mut self.qscratch, &mut self.logits)
            }
            _ => self
                .actor
                .forward_into(&self.x, &mut self.ws, &mut self.logits),
        }
        for r in 0..self.replicas {
            softmax_row(self.logits.row(r), self.probs.row_mut(r));
        }
        for j in 0..NUM_BITRATES {
            let mut s = 0.0f32;
            for r in 0..self.replicas {
                s += self.probs.get(r, j);
            }
            self.mean_probs[j] = s / self.replicas as f32;
        }
        self.fresh = true;
    }

    /// Ensemble-mean action distribution of the last [`policy_eval`].
    ///
    /// [`policy_eval`]: PensieveEnsemble::policy_eval
    pub fn mean_probs(&self) -> &[f32] {
        &self.mean_probs
    }

    /// Per-replica action distributions of the last [`policy_eval`]
    /// (`replicas × NUM_BITRATES`), e.g. for disagreement ablations.
    ///
    /// [`policy_eval`]: PensieveEnsemble::policy_eval
    pub fn replica_probs(&self) -> &Tensor {
        &self.probs
    }

    /// Act with the ensemble-mean policy: argmax of the mean
    /// distribution (ties → lowest level, matching `Policy::greedy`).
    /// Reuses the cached forward when a U_π observation of this decision
    /// already ran it; the cache is consumed, so each decision computes
    /// at most one actor forward.
    pub fn act(&mut self, obs: &[f32]) -> usize {
        if !self.fresh {
            self.policy_eval(obs);
        }
        self.fresh = false;
        let mut best = 0;
        for (j, &p) in self.mean_probs.iter().enumerate() {
            if p > self.mean_probs[best] {
                best = j;
            }
        }
        best
    }

    /// Raw U_π: per-replica `KL(π_r ‖ π_mean)`, discard the top-2
    /// outliers, average the kept members.
    ///
    /// Actions carrying less than [`KL_FLOOR`] probability in a replica
    /// are skipped and the mean is floored at the same value: trained
    /// softmaxes routinely push losing actions into denormals (and a
    /// denormal divided by the replica count underflows to 0), turning
    /// the textbook sum into `±inf` over action mass that couldn't
    /// matter less. The floored KL stays within `ln(1/KL_FLOOR)` per
    /// action of the exact value on any meaningful disagreement.
    pub fn policy_disagreement(&mut self, obs: &[f32]) -> f32 {
        self.policy_eval(obs);
        self.devs.clear();
        for r in 0..self.replicas {
            let mut kl = 0.0f32;
            for (j, &p) in self.probs.row(r).iter().enumerate() {
                if p > KL_FLOOR {
                    kl += p * (p / self.mean_probs[j].max(KL_FLOOR)).ln();
                }
            }
            self.devs.push(kl.max(0.0));
        }
        self.keep_mean()
    }

    /// Stacked critic forward: per-replica state values into `values`
    /// (`replicas × 1`).
    pub fn value_eval(&mut self, obs: &[f32]) {
        self.x.row_mut(0).copy_from_slice(obs);
        match (self.precision, &self.quant) {
            (ServePrecision::Int8, Some((_, qc))) => {
                qc.forward_into(&self.x, &mut self.qscratch, &mut self.values)
            }
            _ => self
                .critic
                .forward_into(&self.x, &mut self.ws, &mut self.values),
        }
    }

    /// Raw U_V: per-replica distance of the value estimate from the
    /// ensemble mean, discard the top-2 outliers, average the kept
    /// members.
    pub fn value_disagreement(&mut self, obs: &[f32]) -> f32 {
        self.value_eval(obs);
        let mut mean = 0.0f32;
        for r in 0..self.replicas {
            mean += self.values.get(r, 0);
        }
        mean /= self.replicas as f32;
        self.devs.clear();
        for r in 0..self.replicas {
            self.devs.push((self.values.get(r, 0) - mean).abs());
        }
        self.keep_mean()
    }

    /// Mean of the `keep` smallest entries of `devs` (outlier discard).
    fn keep_mean(&mut self) -> f32 {
        trimmed_mean(&mut self.devs, self.keep)
    }

    /// Serialize as `{format_version, replicas: [PensieveAgent docs]}`.
    /// This is the *source* representation — re-loading rebuilds the
    /// stacked nets from the replica weights, bit-exactly.
    ///
    /// A replica whose document fails to parse surfaces as the
    /// workspace's typed [`JsonError`] (with the replica index prefixed
    /// to the message) instead of panicking mid-save.
    pub fn agents_to_json(agents: &[PensieveAgent]) -> Result<String, JsonError> {
        let docs: Vec<Value> = agents
            .iter()
            .enumerate()
            .map(|(r, a)| {
                Value::parse(&a.to_json()).map_err(|e| JsonError {
                    msg: format!("replica {r}: {}", e.msg),
                    pos: e.pos,
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(obj(vec![
            ("format_version", Value::Num(ENSEMBLE_FORMAT_VERSION as f64)),
            ("replicas", Value::Arr(docs)),
        ])
        .to_json())
    }

    /// Load the replica agents saved by [`agents_to_json`].
    ///
    /// Never panics on a corrupt artifact: parse failures, schema
    /// mismatches, and non-finite weight values (the lexer accepts
    /// overflowing literals like `1e999` as ±∞, which JSON cannot
    /// re-serialize) all come back as `Err`.
    ///
    /// [`agents_to_json`]: PensieveEnsemble::agents_to_json
    pub fn agents_from_json(text: &str) -> Result<Vec<PensieveAgent>, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        let version = v
            .get("format_version")
            .and_then(Value::as_usize)
            .ok_or("missing format_version")?;
        if version != ENSEMBLE_FORMAT_VERSION as usize {
            return Err(format!("unsupported ensemble format_version {version}"));
        }
        let docs = v
            .get("replicas")
            .and_then(Value::as_arr)
            .ok_or("missing replicas array")?;
        docs.iter()
            .enumerate()
            .map(|(r, d)| {
                let doc = d.try_to_json().map_err(|e| format!("replica {r}: {e}"))?;
                PensieveAgent::from_json(&doc).map_err(|e| format!("replica {r}: {e}"))
            })
            .collect()
    }

    /// Load an ensemble straight from its JSON document.
    pub fn from_json(text: &str) -> Result<PensieveEnsemble, String> {
        PensieveEnsemble::from_agents(&PensieveEnsemble::agents_from_json(text)?)
    }
}

/// Mean of the `keep` smallest entries (the §3.1 outlier discard),
/// sorting in place with `total_cmp` so the reduction order — and the
/// bits — never depend on the caller. Shared with the batched serving
/// path so fleet U_V is bit-equal to the per-session signal.
pub(crate) fn trimmed_mean(devs: &mut [f32], keep: usize) -> f32 {
    devs.sort_unstable_by(f32::total_cmp);
    let kept = &devs[..keep];
    kept.iter().sum::<f32>() / keep as f32
}

/// Row-wise max-subtracted softmax (the same math as
/// `osa_mdp::ActorCritic::action_probs_batch_into`).
pub(crate) fn softmax_row(logits: &[f32], probs: &mut [f32]) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (p, &l) in probs.iter_mut().zip(logits) {
        *p = (l - max).exp();
        sum += *p;
    }
    for p in probs {
        *p /= sum;
    }
}

/// The ensemble shared between the acting policy and the U_π/U_V
/// signals of one [`crate::safe_agent::SafeAgent`].
pub type SharedEnsemble = Rc<RefCell<PensieveEnsemble>>;

/// Wrap an ensemble for sharing.
pub fn shared(ens: PensieveEnsemble) -> SharedEnsemble {
    Rc::new(RefCell::new(ens))
}

/// U_π — agent-ensemble KL-divergence-to-mean (§3.1). Observing runs
/// the stacked actor forward and leaves it cached for the decision's
/// `act`, so this signal's marginal cost is the KL computation alone.
pub struct PolicyDisagreement {
    ens: SharedEnsemble,
}

impl PolicyDisagreement {
    pub fn new(ens: SharedEnsemble) -> Self {
        PolicyDisagreement { ens }
    }
}

impl UncertaintySignal<[f32]> for PolicyDisagreement {
    fn name(&self) -> &'static str {
        "u_pi"
    }

    fn observe(&mut self, obs: &[f32]) -> f32 {
        self.ens.borrow_mut().policy_disagreement(obs)
    }

    fn reset(&mut self) {
        self.ens.borrow_mut().invalidate();
    }
}

/// U_V — value-ensemble distance-to-mean (§3.1). Costs one stacked
/// critic forward per decision on top of the acting forward.
pub struct ValueDisagreement {
    ens: SharedEnsemble,
}

impl ValueDisagreement {
    pub fn new(ens: SharedEnsemble) -> Self {
        ValueDisagreement { ens }
    }
}

impl UncertaintySignal<[f32]> for ValueDisagreement {
    fn name(&self) -> &'static str {
        "u_v"
    }

    fn observe(&mut self, obs: &[f32]) -> f32 {
        self.ens.borrow_mut().value_disagreement(obs)
    }

    fn reset(&mut self) {
        self.ens.borrow_mut().invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_mdp::Policy;
    use osa_nn::rng::Rng;

    fn agents(n: usize) -> Vec<PensieveAgent> {
        (0..n)
            .map(|s| PensieveAgent::new(PensieveConfig::tiny(), &mut Rng::seed_from_u64(s as u64)))
            .collect()
    }

    fn obs(seed: u64) -> Vec<f32> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..OBS_DIM).map(|_| rng.range_f32(0.0, 1.0)).collect()
    }

    #[test]
    fn mean_probs_match_per_replica_forwards() {
        let mut reps = agents(5);
        let mut ens = PensieveEnsemble::from_agents(&reps).unwrap();
        let o = obs(3);
        ens.policy_eval(&o);
        let mut expect = vec![0.0f32; NUM_BITRATES];
        for a in reps.iter_mut() {
            let p = a.actor_critic_mut().action_probs(&o);
            for (e, &pv) in expect.iter_mut().zip(&p) {
                *e += pv / 5.0;
            }
        }
        // Conv-lowered stacked layers match the replica forward to
        // rounding, not bit-for-bit (see osa_nn::stacked docs).
        for (a, b) in ens.mean_probs().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5, "stacked {a} vs sequential {b}");
        }
    }

    #[test]
    fn disagreement_of_identical_replicas_is_zero() {
        let one = PensieveAgent::new(PensieveConfig::tiny(), &mut Rng::seed_from_u64(9));
        let clones: Vec<PensieveAgent> = (0..5)
            .map(|_| PensieveAgent::from_json(&one.to_json()).unwrap())
            .collect();
        let mut ens = PensieveEnsemble::from_agents(&clones).unwrap();
        let o = obs(1);
        // Mathematically zero; the mean-of-5 rounds in f32, so the KL
        // comes out at ~1e-8 rather than exactly 0.
        assert!(ens.policy_disagreement(&o).abs() < 1e-6);
        assert!(ens.value_disagreement(&o).abs() < 1e-6);
        // Distinct replicas must actually disagree.
        let mut ens = PensieveEnsemble::from_agents(&agents(5)).unwrap();
        assert!(ens.policy_disagreement(&o) > 0.0);
        assert!(ens.value_disagreement(&o) > 0.0);
    }

    #[test]
    fn act_consumes_the_cached_forward() {
        let mut ens = PensieveEnsemble::from_agents(&agents(5)).unwrap();
        let o = obs(7);
        ens.policy_disagreement(&o);
        let cached = ens.act(&o);
        let fresh = ens.act(&o);
        assert_eq!(cached, fresh);
    }

    #[test]
    fn ensemble_round_trips_through_json() {
        let reps = agents(3);
        let text = PensieveEnsemble::agents_to_json(&reps).unwrap();
        let loaded = PensieveEnsemble::agents_from_json(&text).unwrap();
        assert_eq!(loaded.len(), 3);
        let mut a = PensieveEnsemble::from_agents(&reps).unwrap();
        let mut b = PensieveEnsemble::from_agents(&loaded).unwrap();
        let o = obs(11);
        assert_eq!(
            a.policy_disagreement(&o).to_bits(),
            b.policy_disagreement(&o).to_bits()
        );
        assert_eq!(
            a.value_disagreement(&o).to_bits(),
            b.value_disagreement(&o).to_bits()
        );
    }

    #[test]
    fn corrupt_artifacts_error_instead_of_panicking() {
        // Truncated document.
        assert!(PensieveEnsemble::agents_from_json("{\"format_ver").is_err());
        // Wrong version.
        assert!(
            PensieveEnsemble::agents_from_json("{\"format_version\":99,\"replicas\":[]}").is_err()
        );
        // A number overflowed to ±∞ in the file (the lexer accepts
        // `1e999` as inf): re-serializing the replica doc used to panic
        // inside `to_json`; it must surface as a replica-indexed error.
        let good = PensieveEnsemble::agents_to_json(&agents(2)).unwrap();
        let spliced = good.replacen("\"history\":8", "\"history\":1e999", 1);
        assert_ne!(spliced, good, "corruption splice must land");
        let err = match PensieveEnsemble::agents_from_json(&spliced) {
            Err(e) => e,
            Ok(_) => panic!("non-finite number in artifact must not load"),
        };
        assert!(err.contains("replica 0"), "error names the replica: {err}");
    }

    #[test]
    fn keep_discards_the_top_two() {
        let mut ens = PensieveEnsemble::from_agents(&agents(5)).unwrap();
        assert_eq!(ens.keep(), 3);
        ens.devs = vec![5.0, 0.5, 100.0, 1.0, 1.5];
        assert!((ens.keep_mean() - 1.0).abs() < 1e-6);
    }
}
