//! k-window variance smoothing and l-consecutive-exceedance
//! thresholding (§2.5), with optional hysteresis-based reverse
//! switching.
//!
//! Raw signal values are noisy; the paper smooths them by monitoring the
//! *variance of the last k values* and only declares uncertainty when
//! that variance exceeds a calibrated threshold α for l consecutive
//! decisions. Once tripped, a monitor stays tripped — the paper's
//! SafeAgent defaults to the safe policy for the rest of the session
//! (no reverse switching). That sticky behavior is the default here.
//!
//! # Reverse switching
//!
//! The Neural Simplex line of work treats the opposite transition as a
//! first-class event: once the uncertainty signal goes quiet again,
//! control can be handed *back* to the learned policy. A [`Monitor`]
//! built with a [`ReverseConfig`] keeps folding raw values into its ring
//! while on the fallback and recovers after `quiet_windows` consecutive
//! in-threshold variances (`variance ≤ α`). Oscillation is damped two
//! ways: the quiet streak resets to zero at every trip (so recovery can
//! never happen fewer than `quiet_windows` decisions after a trip), and
//! a re-trip within `retrip_guard` decisions of a recovery *locks* the
//! monitor onto the fallback for the rest of the session — a signal that
//! goes loud right after it went quiet has proven its quiet spells are
//! not trustworthy.
//!
//! Determinism: the variance is summed in chronological order over the
//! ring, so a monitor's state is a pure function of the raw value
//! sequence — bit-identical at any pool width by construction.

/// Default window length k for the signal variance.
pub const DEFAULT_K: usize = 5;

/// Hysteresis parameters for reverse switching (off by default).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReverseConfig {
    /// Consecutive in-threshold (`variance ≤ α`) decisions required
    /// while on the fallback before control returns to the learned
    /// policy. Must be ≥ 1.
    pub quiet_windows: usize,
    /// A re-trip at most this many decisions after a recovery locks the
    /// monitor onto the fallback permanently (until `reset`). 0 still
    /// locks on an immediate re-trip, `usize::MAX` locks on any re-trip.
    pub retrip_guard: usize,
}

impl ReverseConfig {
    pub fn new(quiet_windows: usize, retrip_guard: usize) -> ReverseConfig {
        assert!(quiet_windows >= 1, "quiet_windows m must be >= 1");
        ReverseConfig {
            quiet_windows,
            retrip_guard,
        }
    }
}

/// Rolling variance of the last k raw values plus the l-consecutive
/// trip counter and (optionally) the reverse-switching state machine.
#[derive(Clone, Debug)]
pub struct Monitor {
    k: usize,
    alpha: f32,
    l: usize,
    /// Anchor for the variance: `None` → the window's own sample mean
    /// (pure instability detection); `Some(μ₀)` → the calibrated
    /// in-distribution signal level. Anchoring matters: a sustained
    /// shift can hold the signal at a *constant* elevated value (U_π
    /// saturates like this out of distribution), and the sample-mean
    /// variance of a constant window is 0 — anchored at μ₀ the same
    /// window reads `(v − μ₀)²`.
    anchor: Option<f32>,
    reverse: Option<ReverseConfig>,
    ring: Vec<f32>,
    len: usize,
    pos: usize,
    consecutive: usize,
    /// Consecutive in-threshold decisions while on the fallback.
    quiet: usize,
    on_fallback: bool,
    locked: bool,
    tripped_at: Option<usize>,
    last_trip: Option<usize>,
    last_recovery: Option<usize>,
    switches: usize,
    recoveries: usize,
    decisions: usize,
    variance: f32,
}

impl Monitor {
    /// Sticky monitor (the paper's behavior: no reverse switching).
    /// Panics if `k == 0` or `l == 0`.
    pub fn new(k: usize, alpha: f32, l: usize) -> Monitor {
        assert!(k >= 1, "variance window k must be >= 1");
        assert!(l >= 1, "consecutive exceedances l must be >= 1");
        Monitor {
            k,
            alpha,
            l,
            anchor: None,
            reverse: None,
            ring: vec![0.0; k],
            len: 0,
            pos: 0,
            consecutive: 0,
            quiet: 0,
            on_fallback: false,
            locked: false,
            tripped_at: None,
            last_trip: None,
            last_recovery: None,
            switches: 0,
            recoveries: 0,
            decisions: 0,
            variance: 0.0,
        }
    }

    /// Monitor with hysteresis-based reverse switching enabled.
    pub fn with_reverse(k: usize, alpha: f32, l: usize, reverse: ReverseConfig) -> Monitor {
        assert!(reverse.quiet_windows >= 1, "quiet_windows m must be >= 1");
        let mut m = Monitor::new(k, alpha, l);
        m.reverse = Some(reverse);
        m
    }

    /// Replace the threshold (used once by calibration). Resets all
    /// rolling state: a threshold chosen *after* watching a stretch of
    /// traffic must not inherit that stretch's exceedance streak.
    pub fn set_alpha(&mut self, alpha: f32) {
        self.alpha = alpha;
        self.reset();
    }

    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Anchor the variance at the calibrated in-distribution level
    /// (used once by calibration); `None` restores sample-mean variance.
    /// Resets all rolling state — ring contents measured under the old
    /// anchor are meaningless under the new one.
    pub fn set_anchor(&mut self, anchor: Option<f32>) {
        self.anchor = anchor;
        self.reset();
    }

    pub fn anchor(&self) -> Option<f32> {
        self.anchor
    }

    /// Enable (`Some`) or disable (`None`) reverse switching. Resets
    /// all rolling state, like the other calibration setters.
    pub fn set_reverse(&mut self, reverse: Option<ReverseConfig>) {
        if let Some(r) = reverse {
            assert!(r.quiet_windows >= 1, "quiet_windows m must be >= 1");
        }
        self.reverse = reverse;
        self.reset();
    }

    pub fn reverse(&self) -> Option<ReverseConfig> {
        self.reverse
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn l(&self) -> usize {
        self.l
    }

    /// Forget all rolling state (session boundary); keeps (k, α, l),
    /// the anchor, and the reverse configuration.
    pub fn reset(&mut self) {
        self.ring.fill(0.0);
        self.len = 0;
        self.pos = 0;
        self.consecutive = 0;
        self.quiet = 0;
        self.on_fallback = false;
        self.locked = false;
        self.tripped_at = None;
        self.last_trip = None;
        self.last_recovery = None;
        self.switches = 0;
        self.recoveries = 0;
        self.decisions = 0;
        self.variance = 0.0;
    }

    /// Feed one raw signal value; returns the tripped state after this
    /// decision. Exceedances only count once the window is full.
    ///
    /// Without reverse switching a tripped monitor ignores `raw`
    /// entirely (the ring freezes at the trip); with it the ring keeps
    /// rolling so the quiet streak can be measured.
    pub fn update(&mut self, raw: f32) -> bool {
        let index = self.decisions;
        self.decisions += 1;
        if self.on_fallback && !self.reverse_enabled() {
            return true;
        }
        self.ring[self.pos] = raw;
        self.pos = (self.pos + 1) % self.k;
        if self.len < self.k {
            self.len += 1;
        }
        if self.len < self.k {
            return self.on_fallback;
        }
        self.variance = self.window_variance();
        if self.on_fallback {
            if self.variance > self.alpha {
                self.quiet = 0;
            } else {
                self.quiet += 1;
                let m = self.reverse.expect("on_fallback update implies reverse");
                if self.quiet >= m.quiet_windows {
                    self.on_fallback = false;
                    self.recoveries += 1;
                    self.last_recovery = Some(index);
                    self.quiet = 0;
                    self.consecutive = 0;
                }
            }
        } else if self.variance > self.alpha {
            self.consecutive += 1;
            if self.consecutive >= self.l {
                self.trip(index);
            }
        } else {
            self.consecutive = 0;
        }
        self.on_fallback
    }

    /// Switch to the fallback at decision `index`, arming the re-trip
    /// lock when this trip lands inside the guard window of a recovery.
    fn trip(&mut self, index: usize) {
        self.on_fallback = true;
        self.switches += 1;
        if self.tripped_at.is_none() {
            self.tripped_at = Some(index);
        }
        self.last_trip = Some(index);
        self.consecutive = 0;
        self.quiet = 0;
        if let (Some(rev), Some(rec)) = (self.reverse, self.last_recovery) {
            if index - rec <= rev.retrip_guard {
                self.locked = true;
            }
        }
    }

    fn reverse_enabled(&self) -> bool {
        self.reverse.is_some() && !self.locked
    }

    /// Variance of the full ring about the anchor (or the window's own
    /// sample mean when unanchored), summed oldest-first so the ring
    /// phase never changes the bits.
    fn window_variance(&self) -> f32 {
        let n = self.k as f32;
        let mean = match self.anchor {
            Some(mu) => mu,
            None => {
                let mut sum = 0.0f32;
                for i in 0..self.k {
                    sum += self.ring[(self.pos + i) % self.k];
                }
                sum / n
            }
        };
        let mut var = 0.0f32;
        for i in 0..self.k {
            let d = self.ring[(self.pos + i) % self.k] - mean;
            var += d * d;
        }
        var / n
    }

    /// The smoothed value compared against α at the last update (0 until
    /// the window fills).
    pub fn variance(&self) -> f32 {
        self.variance
    }

    /// Currently acting through the fallback. Sticky monitors stay
    /// tripped forever; reverse monitors may clear this on recovery.
    pub fn tripped(&self) -> bool {
        self.on_fallback
    }

    /// True while this update's raw value is still being consumed: not
    /// on the fallback, or on it with a live chance of recovering. A
    /// sticky (or locked) fallback never observes again.
    pub fn observing(&self) -> bool {
        !self.on_fallback || self.reverse_enabled()
    }

    /// Decision index (0-based) at which the monitor *first* tripped.
    pub fn tripped_at(&self) -> Option<usize> {
        self.tripped_at
    }

    /// Decision index of the most recent trip (equals
    /// [`Monitor::tripped_at`] unless the monitor recovered in between).
    pub fn last_trip(&self) -> Option<usize> {
        self.last_trip
    }

    /// Decision index of the most recent recovery to the learned policy.
    pub fn last_recovery(&self) -> Option<usize> {
        self.last_recovery
    }

    /// Learned→fallback switches so far (1 at most without reverse).
    pub fn switches(&self) -> usize {
        self.switches
    }

    /// Fallback→learned recoveries so far (always 0 without reverse).
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// Re-trip lock engaged: the monitor re-tripped within the guard
    /// window of a recovery and now behaves like a sticky monitor.
    pub fn locked(&self) -> bool {
        self.locked
    }

    /// Updates consumed so far.
    pub fn decisions(&self) -> usize {
        self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_only_after_l_consecutive_exceedances() {
        // A single spike stays inside the k = 3 window for exactly 3
        // updates, so l = 4 separates "one transient" from "sustained".
        let mut m = Monitor::new(3, 0.1, 4);
        // Constant values: variance 0, never trips.
        for _ in 0..5 {
            assert!(!m.update(1.0));
        }
        // One spike → 3 consecutive exceedances while it traverses the
        // window, then calm: the counter must reset without tripping.
        assert!(!m.update(5.0));
        assert_eq!(m.consecutive, 1);
        for _ in 0..2 {
            assert!(!m.update(1.0));
        }
        assert_eq!(m.consecutive, 3);
        assert!(!m.update(1.0));
        assert_eq!(m.consecutive, 0);
        assert!(!m.tripped());
        // Sustained noise keeps the variance up for l = 4 consecutive
        // decisions → trip, and stay tripped.
        m.update(9.0);
        m.update(1.0);
        m.update(9.0);
        let tripped = m.update(1.0);
        assert!(tripped);
        let at = m.tripped_at().unwrap();
        assert!(m.update(1.0));
        assert_eq!(m.tripped_at(), Some(at), "trip index is sticky");
        assert_eq!(m.switches(), 1);
        assert_eq!(m.recoveries(), 0);
    }

    #[test]
    fn variance_matches_direct_computation() {
        let mut m = Monitor::new(4, f32::INFINITY, 1);
        let vals = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &v in &vals {
            m.update(v);
        }
        // Last 4 values: 5, 5, 7, 9 → mean 6.5, var (2.25+2.25+.25+6.25)/4.
        assert!((m.variance() - 11.0 / 4.0).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_trip_state() {
        let mut m = Monitor::new(2, 0.0, 1);
        m.update(0.0);
        m.update(10.0);
        assert!(m.tripped());
        m.reset();
        assert!(!m.tripped());
        assert_eq!(m.decisions(), 0);
    }

    /// The calibration footgun: exceedances counted under the throwaway
    /// pre-calibration threshold must not survive `set_alpha` — a
    /// monitor calibrated mid-stream would otherwise trip up to l − 1
    /// decisions early.
    #[test]
    fn set_alpha_discards_stale_rolling_state() {
        let mut m = Monitor::new(2, 0.0, 3);
        // α = 0: every full window exceeds, driving consecutive to l − 1.
        m.update(1.0);
        m.update(5.0);
        m.update(1.0);
        assert_eq!(m.consecutive, 2);
        m.set_alpha(0.5);
        assert_eq!(m.consecutive, 0, "set_alpha must reset the streak");
        assert_eq!(m.decisions(), 0);
        // One post-calibration exceedance is not l consecutive ones.
        m.update(0.0);
        assert!(!m.update(10.0), "stale streak would have tripped here");
        assert_eq!(m.consecutive, 1);
        // l genuine consecutive exceedances still trip.
        assert!(!m.update(0.0));
        assert!(m.update(10.0));
        assert!(m.tripped());
    }

    #[test]
    fn set_anchor_discards_stale_rolling_state() {
        let mut m = Monitor::new(2, 0.1, 1);
        m.update(3.0);
        m.update(3.0);
        assert!(m.variance() < 0.1);
        m.set_anchor(Some(0.0));
        assert_eq!(m.decisions(), 0);
        assert_eq!(m.variance(), 0.0, "old-anchor variance must not leak");
        // The ring was cleared: the anchored variance sees only fresh
        // values, not the pre-anchor 3.0s.
        m.update(0.0);
        assert!(!m.update(0.0));
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn reverse_recovers_after_quiet_windows_and_counts_switches() {
        let mut m = Monitor::with_reverse(2, 0.5, 1, ReverseConfig::new(3, 0));
        m.update(0.0);
        assert!(m.update(9.0)); // trip: window (0, 9) is loud
        assert_eq!(m.switches(), 1);
        assert!(m.observing(), "reverse monitors keep observing");
        // Constant from here on → every window (9, 9) is quiet; recovery
        // needs 3 consecutive ones.
        assert!(m.update(9.0)); // quiet 1
        assert!(m.update(9.0)); // quiet 2
        assert!(!m.update(9.0), "third quiet window recovers");
        assert_eq!(m.recoveries(), 1);
        assert!(m.last_recovery().is_some());
        assert!(!m.tripped());
    }

    #[test]
    fn never_recovers_within_m_windows_of_a_trip() {
        let m_windows = 4;
        let mut m = Monitor::with_reverse(2, 0.5, 1, ReverseConfig::new(m_windows, 0));
        m.update(0.0);
        m.update(9.0); // trip at index 1
        let trip = m.last_trip().unwrap();
        // Perfectly quiet from here on — recovery still takes m updates.
        let mut steps = 0;
        while m.tripped() {
            m.update(9.0);
            steps += 1;
            assert!(steps <= 16, "never recovered");
        }
        let rec = m.last_recovery().unwrap();
        assert!(
            rec - trip >= m_windows,
            "recovered {} decisions after the trip (m = {m_windows})",
            rec - trip
        );
    }

    #[test]
    fn retrip_inside_guard_locks_onto_fallback() {
        let mut m = Monitor::with_reverse(2, 0.5, 1, ReverseConfig::new(1, 8));
        m.update(0.0);
        m.update(9.0); // switch 1
        assert!(!m.update(9.0)); // window (9, 9) is quiet → recovers (m = 1)
        assert!(!m.tripped());
        assert_eq!(m.recoveries(), 1);
        // Immediately loud again → second switch, inside the guard → lock.
        assert!(m.update(0.0));
        assert_eq!(m.switches(), 2, "re-trip recorded as a second switch");
        assert!(m.locked());
        assert!(!m.observing());
        // Locked = sticky: quiet forever, never recovers.
        for _ in 0..32 {
            assert!(m.update(0.0));
        }
        assert_eq!(m.recoveries(), 1);
        // Reset clears the lock.
        m.reset();
        assert!(!m.locked());
        assert!(!m.tripped());
    }

    #[test]
    fn sticky_monitor_freezes_ring_after_trip() {
        // The reverse-off ring freeze is what keeps fig1–fig5 byte-
        // identical: post-trip raw values must not touch the variance.
        let mut m = Monitor::new(2, 0.5, 1);
        m.update(0.0);
        m.update(9.0);
        assert!(m.tripped());
        let frozen = m.variance();
        m.update(1234.5);
        assert_eq!(m.variance().to_bits(), frozen.to_bits());
        assert!(!m.observing());
    }
}
