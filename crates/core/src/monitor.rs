//! k-window variance smoothing and l-consecutive-exceedance
//! thresholding (§2.5).
//!
//! Raw signal values are noisy; the paper smooths them by monitoring the
//! *variance of the last k values* and only declares uncertainty when
//! that variance exceeds a calibrated threshold α for l consecutive
//! decisions. Once tripped, a monitor stays tripped — the paper's
//! SafeAgent defaults to the safe policy for the rest of the session
//! (no reverse switching).
//!
//! Determinism: the variance is summed in chronological order over the
//! ring, so a monitor's state is a pure function of the raw value
//! sequence — bit-identical at any pool width by construction.

/// Default window length k for the signal variance.
pub const DEFAULT_K: usize = 5;

/// Rolling variance of the last k raw values plus the l-consecutive
/// trip counter.
#[derive(Clone, Debug)]
pub struct Monitor {
    k: usize,
    alpha: f32,
    l: usize,
    /// Anchor for the variance: `None` → the window's own sample mean
    /// (pure instability detection); `Some(μ₀)` → the calibrated
    /// in-distribution signal level. Anchoring matters: a sustained
    /// shift can hold the signal at a *constant* elevated value (U_π
    /// saturates like this out of distribution), and the sample-mean
    /// variance of a constant window is 0 — anchored at μ₀ the same
    /// window reads `(v − μ₀)²`.
    anchor: Option<f32>,
    ring: Vec<f32>,
    len: usize,
    pos: usize,
    consecutive: usize,
    tripped_at: Option<usize>,
    decisions: usize,
    variance: f32,
}

impl Monitor {
    /// Panics if `k == 0` or `l == 0`.
    pub fn new(k: usize, alpha: f32, l: usize) -> Monitor {
        assert!(k >= 1, "variance window k must be >= 1");
        assert!(l >= 1, "consecutive exceedances l must be >= 1");
        Monitor {
            k,
            alpha,
            l,
            anchor: None,
            ring: vec![0.0; k],
            len: 0,
            pos: 0,
            consecutive: 0,
            tripped_at: None,
            decisions: 0,
            variance: 0.0,
        }
    }

    /// Replace the threshold (used once by calibration); resets nothing
    /// else, so call [`Monitor::reset`] afterwards.
    pub fn set_alpha(&mut self, alpha: f32) {
        self.alpha = alpha;
    }

    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Anchor the variance at the calibrated in-distribution level
    /// (used once by calibration); `None` restores sample-mean variance.
    pub fn set_anchor(&mut self, anchor: Option<f32>) {
        self.anchor = anchor;
    }

    pub fn anchor(&self) -> Option<f32> {
        self.anchor
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn l(&self) -> usize {
        self.l
    }

    /// Forget all rolling state (session boundary); keeps (k, α, l).
    pub fn reset(&mut self) {
        self.ring.fill(0.0);
        self.len = 0;
        self.pos = 0;
        self.consecutive = 0;
        self.tripped_at = None;
        self.decisions = 0;
        self.variance = 0.0;
    }

    /// Feed one raw signal value; returns the tripped state after this
    /// decision. Exceedances only count once the window is full.
    pub fn update(&mut self, raw: f32) -> bool {
        let index = self.decisions;
        self.decisions += 1;
        if self.tripped_at.is_some() {
            return true;
        }
        self.ring[self.pos] = raw;
        self.pos = (self.pos + 1) % self.k;
        if self.len < self.k {
            self.len += 1;
        }
        if self.len < self.k {
            return false;
        }
        self.variance = self.window_variance();
        if self.variance > self.alpha {
            self.consecutive += 1;
            if self.consecutive >= self.l {
                self.tripped_at = Some(index);
            }
        } else {
            self.consecutive = 0;
        }
        self.tripped_at.is_some()
    }

    /// Variance of the full ring about the anchor (or the window's own
    /// sample mean when unanchored), summed oldest-first so the ring
    /// phase never changes the bits.
    fn window_variance(&self) -> f32 {
        let n = self.k as f32;
        let mean = match self.anchor {
            Some(mu) => mu,
            None => {
                let mut sum = 0.0f32;
                for i in 0..self.k {
                    sum += self.ring[(self.pos + i) % self.k];
                }
                sum / n
            }
        };
        let mut var = 0.0f32;
        for i in 0..self.k {
            let d = self.ring[(self.pos + i) % self.k] - mean;
            var += d * d;
        }
        var / n
    }

    /// The smoothed value compared against α at the last update (0 until
    /// the window fills).
    pub fn variance(&self) -> f32 {
        self.variance
    }

    pub fn tripped(&self) -> bool {
        self.tripped_at.is_some()
    }

    /// Decision index (0-based) at which the monitor tripped.
    pub fn tripped_at(&self) -> Option<usize> {
        self.tripped_at
    }

    /// Updates consumed so far.
    pub fn decisions(&self) -> usize {
        self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_only_after_l_consecutive_exceedances() {
        // A single spike stays inside the k = 3 window for exactly 3
        // updates, so l = 4 separates "one transient" from "sustained".
        let mut m = Monitor::new(3, 0.1, 4);
        // Constant values: variance 0, never trips.
        for _ in 0..5 {
            assert!(!m.update(1.0));
        }
        // One spike → 3 consecutive exceedances while it traverses the
        // window, then calm: the counter must reset without tripping.
        assert!(!m.update(5.0));
        assert_eq!(m.consecutive, 1);
        for _ in 0..2 {
            assert!(!m.update(1.0));
        }
        assert_eq!(m.consecutive, 3);
        assert!(!m.update(1.0));
        assert_eq!(m.consecutive, 0);
        assert!(!m.tripped());
        // Sustained noise keeps the variance up for l = 4 consecutive
        // decisions → trip, and stay tripped.
        m.update(9.0);
        m.update(1.0);
        m.update(9.0);
        let tripped = m.update(1.0);
        assert!(tripped);
        let at = m.tripped_at().unwrap();
        assert!(m.update(1.0));
        assert_eq!(m.tripped_at(), Some(at), "trip index is sticky");
    }

    #[test]
    fn variance_matches_direct_computation() {
        let mut m = Monitor::new(4, f32::INFINITY, 1);
        let vals = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &v in &vals {
            m.update(v);
        }
        // Last 4 values: 5, 5, 7, 9 → mean 6.5, var (2.25+2.25+.25+6.25)/4.
        assert!((m.variance() - 11.0 / 4.0).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_trip_state() {
        let mut m = Monitor::new(2, 0.0, 1);
        m.update(0.0);
        m.update(10.0);
        assert!(m.tripped());
        m.reset();
        assert!(!m.tripped());
        assert_eq!(m.decisions(), 0);
    }
}
