//! `osa-core` — the OSAP framework, the paper's contribution
//! (DESIGN.md §1 row 8).
//!
//! # Contract
//!
//! This crate will implement online safety assurance as described in §2 of
//! the paper:
//!
//! - an `UncertaintySignal<O>` trait generic over the observation type, so
//!   the same machinery guards both the ABR and congestion-control domains;
//! - the three concrete signals: U_S (novelty detection via
//!   [`osa_ocsvm`]), U_π (agent-ensemble KL-divergence-to-mean), and U_V
//!   (value-ensemble distance-to-mean), the ensembles sized i=5 with the
//!   top-2 outliers discarded (§3.1);
//! - k-window variance smoothing and l-consecutive-exceedance thresholding
//!   (§2.5), plus calibration of (α, l) to match the novelty detector's
//!   in-distribution QoE;
//! - a `SafeAgent<O>` wrapper that runs the learned policy while the signal
//!   is quiet and defaults to the Buffer-Based policy when it trips;
//! - normalized scoring (0 = Random's QoE, 1 = BB's QoE, §3.3) used by
//!   every figure binary.
#![forbid(unsafe_code)]

/// Marks the crate as scaffolded but not yet implemented; removed once the
/// uncertainty signals land.
pub const IMPLEMENTED: bool = false;

/// Ensemble size the paper uses for U_π and U_V (§3.1).
pub const ENSEMBLE_SIZE: usize = 5;

/// Ensemble members kept after discarding the top-2 outliers (§3.1).
pub const ENSEMBLE_KEEP: usize = 3;

/// Consecutive threshold exceedances required before defaulting (§3.1).
pub const DEFAULT_L: usize = 3;

#[cfg(test)]
mod tests {
    #[test]
    fn scaffold_compiles() {
        assert!(std::hint::black_box(super::ENSEMBLE_KEEP) <= super::ENSEMBLE_SIZE);
    }
}
