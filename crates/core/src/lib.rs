//! `osa-core` — the OSAP framework, the paper's contribution
//! (DESIGN.md §1 row 8).
//!
//! Online safety assurance as described in §2 of the paper:
//!
//! - [`signal`] — the [`UncertaintySignal`] trait, generic over the
//!   observation type, plus U_S ([`NoveltySignal`], novelty detection
//!   via [`osa_ocsvm`]);
//! - [`ensemble`] — the stacked Pensieve replica ensemble (i = 5,
//!   top-2 outliers discarded) with U_π ([`PolicyDisagreement`],
//!   KL-to-mean) and U_V ([`ValueDisagreement`], value
//!   distance-to-mean); inference is one grouped GEMM per layer across
//!   all replicas (`osa_nn::stacked`), never five sequential forwards;
//! - [`monitor`] — k-window variance smoothing and
//!   l-consecutive-exceedance thresholding (§2.5);
//! - [`calibrate`] — (α, l) calibration against in-distribution traces;
//! - [`safe_agent`] — the [`SafeAgent`] wrapper: learned policy while
//!   quiet, Buffer-Based once tripped, sticky by default with opt-in
//!   hysteresis-based reverse switching
//!   ([`ReverseConfig`](monitor::ReverseConfig));
//! - [`eval`] — session runs with signal time series, and the
//!   normalized 0 = Random / 1 = BB scoring (§3.3) shared by every
//!   figure binary;
//! - [`serve`] — the fleet-scale serving engine: 100k+ concurrent
//!   sessions with struct-of-arrays monitor state, sharded across
//!   `osa-runtime` lanes, decided by session-major batched stacked
//!   forwards.
//!
//! # Determinism
//!
//! Signal values, switch decisions, and calibration are bit-identical
//! at any `osa-runtime` worker count: the stacked forwards ride the
//! deterministic grouped GEMM, and every reduction in this crate
//! (variance rings, KL sums, outlier discard) runs in a fixed order —
//! pinned by `tests/determinism_pool.rs` across pools {1, 2, 4, 8}.
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod ensemble;
pub mod eval;
pub mod monitor;
pub mod safe_agent;
pub mod serve;
pub mod signal;

pub use calibrate::{calibrate, calibrate_novelty, Calibration, DEFAULT_MARGIN};
pub use ensemble::{
    shared, PensieveEnsemble, PolicyDisagreement, ServePrecision, SharedEnsemble,
    ValueDisagreement, ENSEMBLE_FORMAT_VERSION,
};
pub use eval::{
    anchors, calibration_observations, evaluate_safe_agent, normalized, run_session,
    run_session_into, Anchors, SafeScore, SessionRun,
};
pub use monitor::{Monitor, ReverseConfig, DEFAULT_K};
pub use safe_agent::{
    abr_safe_agent, AbrSafeAgent, BufferFallback, EnsemblePolicy, SafeAgent, SafetyPolicy,
    BUFFER_COL,
};
pub use serve::{FleetEngine, FleetSignal, FleetTelemetry, ServeConfig};
pub use signal::{NoveltySignal, NullSignal, UncertaintySignal};

/// Ensemble size the paper uses for U_π and U_V (§3.1).
pub const ENSEMBLE_SIZE: usize = 5;

/// Ensemble members kept after discarding the top-2 outliers (§3.1).
pub const ENSEMBLE_KEEP: usize = 3;

/// Consecutive threshold exceedances required before defaulting (§3.1).
pub const DEFAULT_L: usize = 3;

/// One-stop import for downstream crates, examples, and tests.
pub mod prelude {
    pub use crate::calibrate::{calibrate, calibrate_novelty, Calibration, DEFAULT_MARGIN};
    pub use crate::ensemble::{
        shared, PensieveEnsemble, PolicyDisagreement, ServePrecision, SharedEnsemble,
        ValueDisagreement, ENSEMBLE_FORMAT_VERSION,
    };
    pub use crate::eval::{
        anchors, calibration_observations, evaluate_safe_agent, normalized, run_session,
        run_session_into, Anchors, SafeScore, SessionRun,
    };
    pub use crate::monitor::{Monitor, ReverseConfig, DEFAULT_K};
    pub use crate::safe_agent::{
        abr_safe_agent, AbrSafeAgent, BufferFallback, EnsemblePolicy, SafeAgent, SafetyPolicy,
        BUFFER_COL,
    };
    pub use crate::serve::{FleetEngine, FleetSignal, FleetTelemetry, ServeConfig};
    pub use crate::signal::{NoveltySignal, NullSignal, UncertaintySignal};
    pub use crate::{DEFAULT_L, ENSEMBLE_KEEP, ENSEMBLE_SIZE};
}

const _: () = assert!(
    ENSEMBLE_KEEP <= ENSEMBLE_SIZE && ENSEMBLE_SIZE - ENSEMBLE_KEEP == 2,
    "the paper's i = 5 / keep = 3 trimmed configuration"
);
