//! Fleet-scale SafeAgent serving: 100k+ concurrent guarded ABR
//! sessions, decided by session-major batched ensemble inference.
//!
//! [`crate::run_session`] exercises the safety layer one stream at a
//! time; a CDN front-end runs *fleets*. [`FleetEngine`] holds the whole
//! fleet in struct-of-arrays form — the `osa_abr::MultiSession`
//! simulator for the streaming state, [`FleetMonitors`] for the
//! per-session safety state (k-window variance rings, l-counters, and
//! the switch/recovery state machines), and per-session
//! [`FeatureWindow`]s when the fleet is guarded by U_S.
//!
//! # One decision round
//!
//! 1. **Parallel compute** — sessions are split across the current
//!    `osa-runtime` pool's lanes ([`ThreadPool::parallel_for_slice`]),
//!    and each lane walks its contiguous session range in shard-sized
//!    batches: one observation fill, one stacked actor forward for the
//!    whole shard (`(replicas · shard) × dim` — *session-major*, every
//!    replica of every session in a single grouped GEMM per layer), a
//!    per-session softmax/mean/argmax for the learned action, and the
//!    guarding signal's raw value (a batched critic forward for U_V, a
//!    feature-window score for U_S). Lanes write only their own slice
//!    of [`SessionSlot`]s and their own [`LaneSlots`] scratch.
//! 2. **Serial apply** — in session order: fold each raw value into the
//!    session's monitor, pick the learned or fallback action, then
//!    advance the simulator one chunk (`step_all`, itself two-phase).
//!
//! # Determinism
//!
//! Worker count changes *which lane* computes a session and how big the
//! GEMM batches are — never the bits: `osa_nn::stacked` guarantees row
//! arithmetic independent of batch size and run split, every
//! per-session reduction here runs in a fixed order, and all state
//! mutation happens in the serial phase in session order. Telemetry and
//! per-session switch/recovery indices are bit-identical at any
//! `OSA_THREADS`, pinned by `tests/serve_determinism.rs`.
//!
//! # Reverse switching
//!
//! [`ServeConfig::reverse`] arms the monitors' hysteresis state machine
//! (see [`crate::monitor`]): a tripped session keeps evaluating its
//! signal and returns to the learned policy after `quiet_windows`
//! consecutive in-threshold variances, with a re-trip lock against
//! oscillation. Off by default — the paper's sticky behavior.

use osa_abr::policy::BufferBased;
use osa_abr::sim::{AbrConfig, MultiSession};
use osa_abr::video::VideoModel;
use osa_abr::{HISTORY_LEN, NUM_BITRATES, OBS_DIM};
use osa_nn::stacked::StackedNet;
use osa_nn::tensor::Tensor;
use osa_nn::workspace::Workspace;
use osa_ocsvm::detector::NoveltyDetector;
use osa_ocsvm::features::{FeatureWindow, FEATURE_DIM};
use osa_ocsvm::OcSvm;
use osa_runtime::{LaneSlots, ThreadPool};
use osa_trace::Trace;

use osa_nn::quant::{QuantScratch, QuantStacked};

use crate::ensemble::{softmax_row, trimmed_mean, PensieveEnsemble, ServePrecision};
use crate::monitor::ReverseConfig;
use crate::{DEFAULT_K, DEFAULT_L};

/// Sentinel for "no decision index recorded yet" in the SoA monitor
/// arrays (`u32` indices keep the hot arrays compact).
const NO_INDEX: u32 = u32::MAX;

/// Which uncertainty signal guards the fleet.
// One value per engine (not per session), so the OcSvm payload's size
// difference against the unit variants costs nothing.
#[allow(clippy::large_enum_variant)]
pub enum FleetSignal {
    /// Never trips — the unguarded learned policy (baseline fleets).
    Null,
    /// U_V: per-session value disagreement off the batched stacked
    /// critic forward. The fleet counterpart of
    /// [`crate::ValueDisagreement`].
    ValueDisagreement,
    /// U_S: per-session throughput [`FeatureWindow`]s scored by a
    /// fitted one-class SVM. The fleet counterpart of
    /// [`crate::NoveltySignal`].
    Novelty(OcSvm),
}

/// Fleet-wide safety configuration (every session shares one (k, α, l)
/// and one reverse policy — calibration is per-signal, not per-viewer).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub k: usize,
    pub alpha: f32,
    pub l: usize,
    /// See [`crate::Monitor::set_anchor`].
    pub anchor: Option<f32>,
    /// `Some` arms hysteresis-based reverse switching on every monitor.
    pub reverse: Option<ReverseConfig>,
    /// Max sessions per batched stacked dispatch inside one lane. Caps
    /// scratch size; has no effect on results (batch-size-independent
    /// row arithmetic), only on locality.
    pub shard: usize,
    /// Roll finished sessions onto the next trace round-robin (the
    /// steady-state bench configuration). Off = one video per session,
    /// the evaluation configuration.
    pub auto_reset: bool,
    /// Which precision the fleet's forwards run at. `Int8` requires the
    /// ensemble to have been calibrated ([`PensieveEnsemble::calibrate_int8`])
    /// before it is handed to [`FleetEngine::new`].
    pub precision: ServePrecision,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            k: DEFAULT_K,
            alpha: f32::INFINITY,
            l: DEFAULT_L,
            anchor: None,
            reverse: None,
            shard: 256,
            auto_reset: false,
            precision: ServePrecision::F32,
        }
    }
}

/// Struct-of-arrays monitor state for the whole fleet — field-for-field
/// the state machine of [`crate::Monitor`], laid out per session.
/// `tests/serve_determinism.rs` pins the two implementations bit-equal
/// on shared raw-value streams.
pub struct FleetMonitors {
    k: usize,
    alpha: f32,
    l: usize,
    anchor: Option<f32>,
    reverse: Option<ReverseConfig>,
    /// `n × k` variance rings.
    ring: Vec<f32>,
    len: Vec<u32>,
    pos: Vec<u32>,
    consecutive: Vec<u32>,
    quiet: Vec<u32>,
    on_fallback: Vec<bool>,
    locked: Vec<bool>,
    tripped_at: Vec<u32>,
    last_trip: Vec<u32>,
    last_recovery: Vec<u32>,
    switches: Vec<u32>,
    recoveries: Vec<u32>,
    decisions: Vec<u32>,
    variance: Vec<f32>,
}

impl FleetMonitors {
    pub fn new(n: usize, cfg: &ServeConfig) -> FleetMonitors {
        assert!(cfg.k >= 1, "variance window k must be >= 1");
        assert!(cfg.l >= 1, "consecutive exceedances l must be >= 1");
        if let Some(r) = cfg.reverse {
            assert!(r.quiet_windows >= 1, "quiet_windows m must be >= 1");
        }
        FleetMonitors {
            k: cfg.k,
            alpha: cfg.alpha,
            l: cfg.l,
            anchor: cfg.anchor,
            reverse: cfg.reverse,
            ring: vec![0.0; n * cfg.k],
            len: vec![0; n],
            pos: vec![0; n],
            consecutive: vec![0; n],
            quiet: vec![0; n],
            on_fallback: vec![false; n],
            locked: vec![false; n],
            tripped_at: vec![NO_INDEX; n],
            last_trip: vec![NO_INDEX; n],
            last_recovery: vec![NO_INDEX; n],
            switches: vec![0; n],
            recoveries: vec![0; n],
            decisions: vec![0; n],
            variance: vec![0.0; n],
        }
    }

    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Replace the fleet-wide threshold; resets every session's rolling
    /// state (same contract as [`crate::Monitor::set_alpha`]).
    pub fn set_alpha(&mut self, alpha: f32) {
        self.alpha = alpha;
        for i in 0..self.len() {
            self.reset_session(i);
        }
    }

    fn reverse_enabled(&self, i: usize) -> bool {
        self.reverse.is_some() && !self.locked[i]
    }

    /// Mirror of [`crate::Monitor::observing`] for session `i`.
    pub fn observing(&self, i: usize) -> bool {
        !self.on_fallback[i] || self.reverse_enabled(i)
    }

    /// Mirror of [`crate::Monitor::update`] for session `i` — the same
    /// arithmetic in the same order, so the bits match the scalar
    /// monitor on any shared raw stream.
    pub fn update(&mut self, i: usize, raw: f32) -> bool {
        let index = self.decisions[i];
        self.decisions[i] += 1;
        if self.on_fallback[i] && !self.reverse_enabled(i) {
            return true;
        }
        let k = self.k;
        let ring = &mut self.ring[i * k..(i + 1) * k];
        let mut pos = self.pos[i] as usize;
        ring[pos] = raw;
        pos = (pos + 1) % k;
        self.pos[i] = pos as u32;
        if (self.len[i] as usize) < k {
            self.len[i] += 1;
        }
        if (self.len[i] as usize) < k {
            return self.on_fallback[i];
        }
        let n = k as f32;
        let mean = match self.anchor {
            Some(mu) => mu,
            None => {
                let mut sum = 0.0f32;
                for j in 0..k {
                    sum += ring[(pos + j) % k];
                }
                sum / n
            }
        };
        let mut var = 0.0f32;
        for j in 0..k {
            let d = ring[(pos + j) % k] - mean;
            var += d * d;
        }
        let var = var / n;
        self.variance[i] = var;
        if self.on_fallback[i] {
            if var > self.alpha {
                self.quiet[i] = 0;
            } else {
                self.quiet[i] += 1;
                let m = self.reverse.expect("on-fallback update implies reverse");
                if self.quiet[i] as usize >= m.quiet_windows {
                    self.on_fallback[i] = false;
                    self.recoveries[i] += 1;
                    self.last_recovery[i] = index;
                    self.quiet[i] = 0;
                    self.consecutive[i] = 0;
                }
            }
        } else if var > self.alpha {
            self.consecutive[i] += 1;
            if self.consecutive[i] as usize >= self.l {
                self.on_fallback[i] = true;
                self.switches[i] += 1;
                if self.tripped_at[i] == NO_INDEX {
                    self.tripped_at[i] = index;
                }
                self.last_trip[i] = index;
                self.consecutive[i] = 0;
                self.quiet[i] = 0;
                if let Some(rev) = self.reverse {
                    if self.last_recovery[i] != NO_INDEX
                        && (index - self.last_recovery[i]) as usize <= rev.retrip_guard
                    {
                        self.locked[i] = true;
                    }
                }
            }
        } else {
            self.consecutive[i] = 0;
        }
        self.on_fallback[i]
    }

    /// Session boundary (auto-reset rollover): forget session `i`'s
    /// rolling state and trip/recovery *indices*, keep its lifetime
    /// switch/recovery/decision counters — the same split
    /// `MultiSession` makes between per-video state and lifetime
    /// accounting.
    pub fn reset_session(&mut self, i: usize) {
        self.ring[i * self.k..(i + 1) * self.k].fill(0.0);
        self.len[i] = 0;
        self.pos[i] = 0;
        self.consecutive[i] = 0;
        self.quiet[i] = 0;
        self.on_fallback[i] = false;
        self.locked[i] = false;
        self.tripped_at[i] = NO_INDEX;
        self.last_trip[i] = NO_INDEX;
        self.last_recovery[i] = NO_INDEX;
        self.variance[i] = 0.0;
    }

    pub fn tripped(&self, i: usize) -> bool {
        self.on_fallback[i]
    }

    pub fn locked(&self, i: usize) -> bool {
        self.locked[i]
    }

    /// Lifetime-decision index of session `i`'s first trip.
    pub fn tripped_at(&self, i: usize) -> Option<usize> {
        index_opt(self.tripped_at[i])
    }

    pub fn last_trip(&self, i: usize) -> Option<usize> {
        index_opt(self.last_trip[i])
    }

    pub fn last_recovery(&self, i: usize) -> Option<usize> {
        index_opt(self.last_recovery[i])
    }

    pub fn switches(&self, i: usize) -> usize {
        self.switches[i] as usize
    }

    pub fn recoveries(&self, i: usize) -> usize {
        self.recoveries[i] as usize
    }

    pub fn decisions(&self, i: usize) -> usize {
        self.decisions[i] as usize
    }

    pub fn variance(&self, i: usize) -> f32 {
        self.variance[i]
    }
}

fn index_opt(v: u32) -> Option<usize> {
    if v == NO_INDEX {
        None
    } else {
        Some(v as usize)
    }
}

/// Per-session outputs of the parallel phase, plus the U_S feature
/// window (per-session signal state must live in the sharded slice so
/// lanes can mutate it without aliasing).
struct SessionSlot {
    /// Raw signal value of this round (U_S: the last scored value, held
    /// through warm-up like `NoveltySignal::last`).
    raw: f32,
    /// Learned (ensemble-mean argmax) action of this round.
    learned: u8,
    fw: FeatureWindow,
}

impl SessionSlot {
    fn new() -> SessionSlot {
        SessionSlot {
            raw: 0.0,
            learned: 0,
            fw: FeatureWindow::new(),
        }
    }

    fn reset_signal(&mut self) {
        self.raw = 0.0;
        self.fw.reset();
    }
}

/// Per-lane scratch: workspace + forward tensors sized for one shard.
struct LaneScratch {
    ws: Workspace,
    qscratch: QuantScratch,
    x: Tensor,
    logits: Tensor,
    values: Tensor,
    probs: Tensor,
    mean: [f32; NUM_BITRATES],
    devs: Vec<f32>,
    feat: [f32; FEATURE_DIM],
    /// U_S batch staging: feature rows of this round's ready sessions,
    /// their shard-local indices, and the batched scores — one
    /// `score_batch_into` call per shard instead of one detector call
    /// per session.
    feats: Tensor,
    us_idx: Vec<usize>,
    us_scores: Vec<f32>,
}

impl LaneScratch {
    fn new(replicas: usize, shard: usize) -> LaneScratch {
        LaneScratch {
            ws: Workspace::new(),
            qscratch: QuantScratch::new(),
            x: Tensor::zeros(shard, OBS_DIM),
            logits: Tensor::zeros(0, 0),
            values: Tensor::zeros(0, 0),
            probs: Tensor::zeros(replicas * shard, NUM_BITRATES),
            mean: [0.0; NUM_BITRATES],
            devs: Vec::with_capacity(replicas),
            feat: [0.0; FEATURE_DIM],
            feats: Tensor::zeros(shard, FEATURE_DIM),
            us_idx: Vec::with_capacity(shard),
            us_scores: Vec::with_capacity(shard),
        }
    }
}

/// Aggregate fleet telemetry — a pure, deterministic function of the
/// serial per-session state (bit-identical at any worker count).
#[derive(Clone, Debug)]
pub struct FleetTelemetry {
    pub sessions: usize,
    pub rounds: u64,
    /// Total chunks downloaded (= guarded decisions taken).
    pub decisions: u64,
    /// Mean linear QoE per chunk across the fleet.
    pub mean_qoe_per_chunk: f64,
    /// Mean rebuffering seconds per session.
    pub mean_rebuffer_s: f64,
    /// Percentiles of the per-session lifetime QoE distribution.
    pub qoe_p10: f64,
    pub qoe_p50: f64,
    pub qoe_p90: f64,
    /// Sessions that switched to the fallback at least once.
    pub switched_sessions: usize,
    /// Sessions that recovered to the learned policy at least once.
    pub recovered_sessions: usize,
    /// Sessions whose re-trip lock engaged.
    pub locked_sessions: usize,
    pub total_switches: u64,
    pub total_recoveries: u64,
    /// `switched_sessions / sessions`.
    pub switch_rate: f64,
    /// `recovered_sessions / switched_sessions` (0 when nothing
    /// switched).
    pub recovery_rate: f64,
    /// Mean first-trip decision index over switched sessions (−1 when
    /// nothing switched; never NaN so reports stay JSON-clean).
    pub mean_first_switch: f64,
}

/// The multi-tenant serving engine: one guarded decision per session
/// per [`FleetEngine::round`].
pub struct FleetEngine {
    sim: MultiSession,
    actor: StackedNet,
    critic: StackedNet,
    /// Calibrated int8 actor/critic, present iff the ensemble was
    /// calibrated; consulted only when `precision` is `Int8`.
    quant: Option<(QuantStacked, QuantStacked)>,
    precision: ServePrecision,
    replicas: usize,
    keep: usize,
    signal: FleetSignal,
    monitors: FleetMonitors,
    slots: Vec<SessionSlot>,
    actions: Vec<usize>,
    lanes: Option<LaneSlots<LaneScratch>>,
    bb: BufferBased,
    shard: usize,
    auto_reset: bool,
    completed_seen: Vec<u64>,
    rounds: u64,
}

impl FleetEngine {
    /// Build a fleet of `n` sessions over `traces` (session `i` starts
    /// on trace `i mod traces.len()`), guarded by `signal` under
    /// `serve`'s fleet-wide (k, α, l) and reverse policy. The ensemble
    /// is consumed: its stacked actor/critic become the fleet's shared
    /// inference nets.
    pub fn new(
        ens: PensieveEnsemble,
        signal: FleetSignal,
        video: VideoModel,
        cfg: AbrConfig,
        traces: Vec<Trace>,
        n: usize,
        serve: &ServeConfig,
    ) -> FleetEngine {
        let replicas = ens.replicas();
        let keep = ens.keep();
        let (actor, critic, quant) = ens.into_serving_nets();
        assert!(
            serve.precision != ServePrecision::Int8 || quant.is_some(),
            "ServeConfig precision Int8 requires PensieveEnsemble::calibrate_int8 \
             before FleetEngine::new"
        );
        let sim = MultiSession::new(video, cfg, traces, n, serve.auto_reset);
        FleetEngine {
            sim,
            actor,
            critic,
            quant,
            precision: serve.precision,
            replicas,
            keep,
            signal,
            monitors: FleetMonitors::new(n, serve),
            slots: (0..n).map(|_| SessionSlot::new()).collect(),
            actions: vec![0; n],
            lanes: None,
            bb: BufferBased::default(),
            shard: serve.shard.max(1),
            auto_reset: serve.auto_reset,
            completed_seen: vec![0; n],
            rounds: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.sim.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decision rounds taken so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    pub fn sim(&self) -> &MultiSession {
        &self.sim
    }

    pub fn monitors(&self) -> &FleetMonitors {
        &self.monitors
    }

    /// One decision round for the whole fleet on the current
    /// `osa-runtime` pool. Allocation-free after the first round on a
    /// given pool width. Returns `false` once every session has
    /// finished (never with `auto_reset`).
    pub fn round(&mut self) -> bool {
        osa_runtime::with_current(|pool| self.round_with_pool(pool))
    }

    /// [`FleetEngine::round`] on an explicit pool.
    pub fn round_with_pool(&mut self, pool: &ThreadPool) -> bool {
        let lanes = pool.workers();
        let rebuild = match &self.lanes {
            Some(slots) => slots.len() != lanes,
            None => true,
        };
        if rebuild {
            let (replicas, shard) = (self.replicas, self.shard);
            self.lanes = Some(LaneSlots::new(lanes, |_| LaneScratch::new(replicas, shard)));
        }

        // Phase 1 — parallel: each lane decides its contiguous session
        // range in shard-sized batches, writing only its own slots.
        {
            let FleetEngine {
                sim,
                actor,
                critic,
                quant,
                precision,
                replicas,
                keep,
                signal,
                monitors,
                slots,
                lanes,
                shard,
                ..
            } = self;
            let lanes = lanes.as_ref().expect("lane scratch built above");
            let (replicas, keep, shard) = (*replicas, *keep, *shard);
            // `None` here means "serve f32" — the engine only consults the
            // calibrated nets when the configured precision asks for them.
            let quant = match precision {
                ServePrecision::Int8 => quant.as_ref(),
                ServePrecision::F32 => None,
            };
            let sim = &*sim;
            let monitors = &*monitors;
            pool.parallel_for_slice(slots, 1, |lane, first, chunk| {
                let mut guard = lanes.borrow(lane);
                let scratch = &mut *guard;
                let mut off = 0;
                while off < chunk.len() {
                    let b = (chunk.len() - off).min(shard);
                    decide_shard(
                        sim,
                        monitors,
                        actor,
                        critic,
                        quant,
                        signal,
                        replicas,
                        keep,
                        first + off,
                        &mut chunk[off..off + b],
                        scratch,
                    );
                    off += b;
                }
            });
        }

        // Phase 2 — serial, in session order: monitors, action pick,
        // simulator step.
        let n = self.len();
        for i in 0..n {
            if !self.sim.active(i) {
                self.actions[i] = 0;
                continue;
            }
            if self.monitors.observing(i) {
                self.monitors.update(i, self.slots[i].raw);
            }
            self.actions[i] = if self.monitors.tripped(i) {
                // Same rounding as `BufferFallback`: the observation
                // stores buffer/10 as f32, the policy reads it ×10 in
                // f64 — replicated exactly so fleet and per-session
                // agents pick identical levels at the thresholds.
                let buf_obs = (self.sim.buffer_s(i) / 10.0) as f32;
                self.bb.level_for_buffer(buf_obs as f64 * 10.0)
            } else {
                self.slots[i].learned as usize
            };
        }
        self.sim.step_all_with_pool(&self.actions, pool);
        self.rounds += 1;

        if self.auto_reset {
            // A finished video is a session boundary: the slot rolls
            // onto its next trace with fresh safety state, like a new
            // viewer arriving.
            for i in 0..n {
                let c = self.sim.sessions_completed(i);
                if c != self.completed_seen[i] {
                    self.completed_seen[i] = c;
                    self.monitors.reset_session(i);
                    self.slots[i].reset_signal();
                }
            }
        }
        !self.sim.all_done()
    }

    /// Run up to `max_rounds` rounds (stops early once all sessions
    /// finish, which never happens with `auto_reset`). Returns the
    /// number of rounds taken.
    pub fn run(&mut self, max_rounds: usize) -> usize {
        let mut taken = 0;
        while taken < max_rounds {
            let more = self.round();
            taken += 1;
            if !more {
                break;
            }
        }
        taken
    }

    /// Aggregate the fleet's lifetime accounting. Allocates (sorts the
    /// per-session QoE distribution) — call between runs, not per round.
    pub fn telemetry(&self) -> FleetTelemetry {
        let n = self.len();
        let mut qoe_sum = 0.0f64;
        let mut rebuf_sum = 0.0f64;
        let mut chunks = 0u64;
        let mut switched = 0usize;
        let mut recovered = 0usize;
        let mut locked = 0usize;
        let mut total_switches = 0u64;
        let mut total_recoveries = 0u64;
        let mut first_switch_sum = 0.0f64;
        let mut qoe: Vec<f64> = Vec::with_capacity(n);
        for i in 0..n {
            qoe_sum += self.sim.qoe_total(i);
            rebuf_sum += self.sim.rebuffer_total(i);
            chunks += self.sim.chunks_total(i);
            qoe.push(self.sim.qoe_total(i));
            let s = self.monitors.switches(i);
            let r = self.monitors.recoveries(i);
            total_switches += s as u64;
            total_recoveries += r as u64;
            if s > 0 {
                switched += 1;
            }
            if r > 0 {
                recovered += 1;
            }
            if self.monitors.locked(i) {
                locked += 1;
            }
            if let Some(t) = self.monitors.tripped_at(i) {
                first_switch_sum += t as f64;
            }
        }
        qoe.sort_unstable_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            if qoe.is_empty() {
                return 0.0;
            }
            let idx = ((qoe.len() - 1) as f64 * p).round() as usize;
            qoe[idx]
        };
        FleetTelemetry {
            sessions: n,
            rounds: self.rounds,
            decisions: chunks,
            mean_qoe_per_chunk: if chunks > 0 {
                qoe_sum / chunks as f64
            } else {
                0.0
            },
            mean_rebuffer_s: rebuf_sum / n.max(1) as f64,
            qoe_p10: pct(0.10),
            qoe_p50: pct(0.50),
            qoe_p90: pct(0.90),
            switched_sessions: switched,
            recovered_sessions: recovered,
            locked_sessions: locked,
            total_switches,
            total_recoveries,
            switch_rate: switched as f64 / n.max(1) as f64,
            recovery_rate: if switched > 0 {
                recovered as f64 / switched as f64
            } else {
                0.0
            },
            mean_first_switch: if switched > 0 {
                first_switch_sum / switched as f64
            } else {
                -1.0
            },
        }
    }
}

/// Decide one shard: batched stacked forwards plus per-session signal
/// scalars, writing into `slots` (sessions `first .. first +
/// slots.len()`). Pure with respect to everything but `slots` and
/// `scratch` — the parallel-phase contract.
#[allow(clippy::too_many_arguments)] // the destructured engine, flattened on purpose
fn decide_shard(
    sim: &MultiSession,
    monitors: &FleetMonitors,
    actor: &StackedNet,
    critic: &StackedNet,
    quant: Option<&(QuantStacked, QuantStacked)>,
    signal: &FleetSignal,
    replicas: usize,
    keep: usize,
    first: usize,
    slots: &mut [SessionSlot],
    scratch: &mut LaneScratch,
) {
    let b = slots.len();
    sim.fill_observations_range(first, b, &mut scratch.x);

    // Learned action: one grouped actor GEMM per layer for the whole
    // shard, rows replica-major (`row = r·b + s`), then the same
    // softmax → mean-over-replicas → argmax as `PensieveEnsemble::act`.
    match quant {
        Some((qa, _)) => qa.forward_into(&scratch.x, &mut scratch.qscratch, &mut scratch.logits),
        None => actor.forward_into(&scratch.x, &mut scratch.ws, &mut scratch.logits),
    }
    scratch.probs.resize_shape(replicas * b, NUM_BITRATES);
    for row in 0..replicas * b {
        softmax_row(scratch.logits.row(row), scratch.probs.row_mut(row));
    }
    for (s_i, slot) in slots.iter_mut().enumerate() {
        for (j, m) in scratch.mean.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for r in 0..replicas {
                sum += scratch.probs.get(r * b + s_i, j);
            }
            *m = sum / replicas as f32;
        }
        let mut best = 0;
        for (j, &p) in scratch.mean.iter().enumerate() {
            if p > scratch.mean[best] {
                best = j;
            }
        }
        slot.learned = best as u8;
    }

    // Raw signal values.
    match signal {
        FleetSignal::Null => {
            for slot in slots.iter_mut() {
                slot.raw = 0.0;
            }
        }
        FleetSignal::ValueDisagreement => {
            match quant {
                Some((_, qc)) => {
                    qc.forward_into(&scratch.x, &mut scratch.qscratch, &mut scratch.values)
                }
                None => critic.forward_into(&scratch.x, &mut scratch.ws, &mut scratch.values),
            }
            for (s_i, slot) in slots.iter_mut().enumerate() {
                let mut mean = 0.0f32;
                for r in 0..replicas {
                    mean += scratch.values.get(r * b + s_i, 0);
                }
                mean /= replicas as f32;
                scratch.devs.clear();
                for r in 0..replicas {
                    scratch
                        .devs
                        .push((scratch.values.get(r * b + s_i, 0) - mean).abs());
                }
                slot.raw = trimmed_mean(&mut scratch.devs, keep);
            }
        }
        FleetSignal::Novelty(svm) => {
            // Gather the shard's ready feature windows, score them in
            // ONE batched call (the cross-term GEMM amortizes across
            // sessions), then scatter the scores back. Bit-identical to
            // per-session scoring — the batched engine is the canonical
            // path at every batch size — and still sharded: the staging
            // tensors live in this lane's scratch.
            scratch.feats.reset_rows(FEATURE_DIM);
            scratch.us_idx.clear();
            for (s_i, slot) in slots.iter_mut().enumerate() {
                let i = first + s_i;
                // A sticky (or locked) fallback stops observing — its
                // feature window freezes, exactly like the scalar
                // `NoveltySignal` behind a tripped monitor.
                if !monitors.observing(i) {
                    continue;
                }
                let tput = scratch.x.get(s_i, HISTORY_LEN - 1) * 10.0;
                slot.fw.push(tput);
                if slot.fw.ready() {
                    slot.fw.write(&mut scratch.feat);
                    scratch.feats.push_row(&scratch.feat);
                    scratch.us_idx.push(s_i);
                }
            }
            if !scratch.us_idx.is_empty() {
                scratch.us_scores.clear();
                scratch.us_scores.resize(scratch.us_idx.len(), 0.0);
                svm.score_batch_into(&scratch.feats, &mut scratch.us_scores);
                for (&s_i, &score) in scratch.us_idx.iter().zip(&scratch.us_scores) {
                    slots[s_i].raw = score;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_monitor_matches_scalar_monitor_bit_for_bit() {
        // Shared raw streams through both implementations, sticky and
        // reverse, including post-recovery re-trips.
        let reverse = ReverseConfig::new(2, 3);
        for rev in [None, Some(reverse)] {
            let cfg = ServeConfig {
                k: 3,
                alpha: 0.4,
                l: 2,
                reverse: rev,
                ..ServeConfig::default()
            };
            let mut fleet = FleetMonitors::new(2, &cfg);
            let mut scalar = match rev {
                Some(r) => crate::Monitor::with_reverse(3, 0.4, 2, r),
                None => crate::Monitor::new(3, 0.4, 2),
            };
            // A stream that trips, quiets, and trips again.
            let stream = [
                0.1f32, 0.2, 0.1, 5.0, 0.1, 6.0, 0.2, 0.1, 0.1, 0.1, 0.1, 7.0, 0.1, 8.0, 0.1, 0.1,
                0.1, 0.1,
            ];
            for &raw in &stream {
                let expect = if scalar.observing() {
                    scalar.update(raw)
                } else {
                    scalar.tripped()
                };
                let got = if fleet.observing(0) {
                    fleet.update(0, raw)
                } else {
                    fleet.tripped(0)
                };
                assert_eq!(got, expect, "tripped state diverged (reverse={rev:?})");
                assert_eq!(
                    fleet.variance(0).to_bits(),
                    scalar.variance().to_bits(),
                    "variance bits diverged (reverse={rev:?})"
                );
            }
            assert_eq!(fleet.switches(0), scalar.switches());
            assert_eq!(fleet.recoveries(0), scalar.recoveries());
            assert_eq!(fleet.tripped_at(0), scalar.tripped_at());
            assert_eq!(fleet.last_trip(0), scalar.last_trip());
            assert_eq!(fleet.last_recovery(0), scalar.last_recovery());
            assert_eq!(fleet.locked(0), scalar.locked());
            // Session 1 was never touched.
            assert_eq!(fleet.switches(1), 0);
            assert_eq!(fleet.decisions(1), 0);
        }
    }

    #[test]
    fn session_reset_keeps_lifetime_counters() {
        let cfg = ServeConfig {
            k: 2,
            alpha: 0.1,
            l: 1,
            ..ServeConfig::default()
        };
        let mut m = FleetMonitors::new(1, &cfg);
        m.update(0, 0.0);
        assert!(m.update(0, 9.0));
        assert_eq!(m.switches(0), 1);
        m.reset_session(0);
        assert!(!m.tripped(0));
        assert_eq!(m.tripped_at(0), None);
        assert_eq!(m.switches(0), 1, "lifetime switch count survives");
        assert_eq!(m.decisions(0), 2, "lifetime decision count survives");
    }
}
