//! [`SafeAgent`]: run the learned policy while the uncertainty signal
//! is quiet, default to the safe baseline when it trips (§2).
//!
//! The per-decision protocol is fixed: the signal observes the
//! observation *first*, the monitor folds the raw value into its
//! k-window variance, and only then does a policy act — the fallback if
//! the monitor has tripped (including on this very decision), the
//! learned policy otherwise. Once tripped, a sticky agent (the paper's
//! default) stays on the fallback for the rest of the session and skips
//! signal evaluation entirely; a monitor built with a
//! [`ReverseConfig`](crate::monitor::ReverseConfig) keeps evaluating the
//! signal while on the fallback and hands control back to the learned
//! policy after the configured quiet streak (see [`crate::monitor`]).

use std::marker::PhantomData;

use osa_abr::policy::BufferBased;
use osa_abr::{HISTORY_LEN, NUM_BITRATES};

use crate::ensemble::SharedEnsemble;
use crate::monitor::Monitor;
use crate::signal::UncertaintySignal;

/// Observation column holding the (÷10-normalized) buffer level in the
/// `osa_abr` observation layout.
pub const BUFFER_COL: usize = 2 * HISTORY_LEN + NUM_BITRATES;

/// A single-observation decision policy — the acting side of a
/// [`SafeAgent`] (both the learned policy and the safe fallback).
pub trait SafetyPolicy<O: ?Sized> {
    /// Stable name for score tables and figure artifacts.
    fn name(&self) -> &'static str;
    /// Pick the action for one observation.
    fn decide(&mut self, obs: &O) -> usize;
    /// Forget per-session state (session boundary). Stateless policies
    /// keep the default no-op.
    fn reset(&mut self) {}
}

/// The learned side for ABR: act with the ensemble-mean Pensieve policy
/// (one stacked actor forward per decision, shared with a U_π signal on
/// the same ensemble).
pub struct EnsemblePolicy {
    ens: SharedEnsemble,
}

impl EnsemblePolicy {
    pub fn new(ens: SharedEnsemble) -> Self {
        EnsemblePolicy { ens }
    }
}

impl SafetyPolicy<[f32]> for EnsemblePolicy {
    fn name(&self) -> &'static str {
        "pensieve-ensemble"
    }

    fn decide(&mut self, obs: &[f32]) -> usize {
        self.ens.borrow_mut().act(obs)
    }

    /// Drop any cached actor forward: the cache records `fresh`, not
    /// *which* observation produced it, so a forward left over from a
    /// previous session must never satisfy the next session's first
    /// `act`.
    fn reset(&mut self) {
        self.ens.borrow_mut().invalidate();
    }
}

/// The safe side for ABR: Buffer-Based, reading the buffer level off
/// the observation row.
#[derive(Clone, Copy, Debug, Default)]
pub struct BufferFallback(pub BufferBased);

impl SafetyPolicy<[f32]> for BufferFallback {
    fn name(&self) -> &'static str {
        "bb"
    }

    fn decide(&mut self, obs: &[f32]) -> usize {
        self.0.level_for_buffer(obs[BUFFER_COL] as f64 * 10.0)
    }
}

/// The OSAP wrapper: policy + fallback + uncertainty signal + monitor,
/// generic over the observation type `O`.
pub struct SafeAgent<O: ?Sized, S, P, F>
where
    S: UncertaintySignal<O>,
    P: SafetyPolicy<O>,
    F: SafetyPolicy<O>,
{
    signal: S,
    monitor: Monitor,
    policy: P,
    fallback: F,
    decisions: usize,
    last_raw: f32,
    _obs: PhantomData<fn(&O)>,
}

/// The ABR instantiation every figure binary uses: ensemble-mean
/// Pensieve while quiet, Buffer-Based once tripped.
pub type AbrSafeAgent<S> = SafeAgent<[f32], S, EnsemblePolicy, BufferFallback>;

/// Build the standard ABR safe agent over a shared ensemble.
pub fn abr_safe_agent<S: UncertaintySignal<[f32]>>(
    ens: SharedEnsemble,
    signal: S,
    monitor: Monitor,
) -> AbrSafeAgent<S> {
    SafeAgent::new(
        signal,
        monitor,
        EnsemblePolicy::new(ens),
        BufferFallback::default(),
    )
}

impl<O: ?Sized, S, P, F> SafeAgent<O, S, P, F>
where
    S: UncertaintySignal<O>,
    P: SafetyPolicy<O>,
    F: SafetyPolicy<O>,
{
    pub fn new(signal: S, monitor: Monitor, policy: P, fallback: F) -> Self {
        SafeAgent {
            signal,
            monitor,
            policy,
            fallback,
            decisions: 0,
            last_raw: 0.0,
            _obs: PhantomData,
        }
    }

    /// One decision: observe → smooth → act. Allocation-free after
    /// warm-up.
    pub fn decide(&mut self, obs: &O) -> usize {
        self.decisions += 1;
        if self.monitor.observing() {
            self.last_raw = self.signal.observe(obs);
            self.monitor.update(self.last_raw);
        }
        if self.monitor.tripped() {
            self.fallback.decide(obs)
        } else {
            self.policy.decide(obs)
        }
    }

    /// Forget all per-session state; keeps the calibrated (k, α, l).
    pub fn reset(&mut self) {
        self.signal.reset();
        self.monitor.reset();
        self.policy.reset();
        self.fallback.reset();
        self.decisions = 0;
        self.last_raw = 0.0;
    }

    pub fn signal(&self) -> &S {
        &self.signal
    }

    /// Mutable signal access — for signal-specific protocols around a
    /// session run, e.g. the deferred-scoring mode
    /// [`crate::calibrate::calibrate_novelty`] drives on
    /// [`crate::signal::NoveltySignal`]. Not needed on the per-decision
    /// path, which goes through [`SafeAgent::decide`].
    pub fn signal_mut(&mut self) -> &mut S {
        &mut self.signal
    }

    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    pub fn monitor_mut(&mut self) -> &mut Monitor {
        &mut self.monitor
    }

    /// Raw signal value of the last un-tripped decision.
    pub fn last_raw(&self) -> f32 {
        self.last_raw
    }

    /// Smoothed (k-window variance) value at the last un-tripped
    /// decision.
    pub fn last_variance(&self) -> f32 {
        self.monitor.variance()
    }

    pub fn tripped(&self) -> bool {
        self.monitor.tripped()
    }

    /// Decision index (0-based) at which the agent *first* switched to
    /// the fallback, if it did.
    pub fn switch_index(&self) -> Option<usize> {
        self.monitor.tripped_at()
    }

    /// Learned→fallback switches this session (can exceed 1 only with
    /// reverse switching enabled on the monitor).
    pub fn switches(&self) -> usize {
        self.monitor.switches()
    }

    /// Fallback→learned recoveries this session (0 without reverse
    /// switching).
    pub fn recoveries(&self) -> usize {
        self.monitor.recoveries()
    }

    /// Decisions taken since the last reset.
    pub fn decisions(&self) -> usize {
        self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_abr::OBS_DIM;

    struct ConstPolicy(usize);
    impl SafetyPolicy<[f32]> for ConstPolicy {
        fn name(&self) -> &'static str {
            "const"
        }
        fn decide(&mut self, _obs: &[f32]) -> usize {
            self.0
        }
    }

    /// Echoes a chosen observation column as the raw signal.
    struct ColSignal(usize);
    impl UncertaintySignal<[f32]> for ColSignal {
        fn name(&self) -> &'static str {
            "col"
        }
        fn observe(&mut self, obs: &[f32]) -> f32 {
            obs[self.0]
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn switches_on_the_trip_decision_and_stays_switched() {
        let mut agent = SafeAgent::new(
            ColSignal(0),
            Monitor::new(2, 0.1, 1),
            ConstPolicy(5),
            ConstPolicy(0),
        );
        let mut obs = [0.0f32; OBS_DIM];
        assert_eq!(agent.decide(&obs), 5);
        assert_eq!(agent.decide(&obs), 5);
        // A jump in column 0 spikes the 2-window variance past α = 0.1:
        // the *same* decision must already come from the fallback.
        obs[0] = 10.0;
        assert_eq!(agent.decide(&obs), 0);
        assert!(agent.tripped());
        assert_eq!(agent.switch_index(), Some(2));
        // Calm again — but no reverse switching.
        obs[0] = 0.0;
        assert_eq!(agent.decide(&obs), 0);
        assert_eq!(agent.decisions(), 4);
        agent.reset();
        assert!(!agent.tripped());
        assert_eq!(agent.decide(&obs), 5);
    }

    #[test]
    fn reverse_switching_returns_to_the_learned_policy() {
        use crate::monitor::ReverseConfig;
        let mut agent = SafeAgent::new(
            ColSignal(0),
            Monitor::with_reverse(2, 0.1, 1, ReverseConfig::new(2, 0)),
            ConstPolicy(5),
            ConstPolicy(0),
        );
        let mut obs = [0.0f32; OBS_DIM];
        assert_eq!(agent.decide(&obs), 5);
        obs[0] = 10.0;
        assert_eq!(agent.decide(&obs), 0, "trip decision acts via fallback");
        assert_eq!(agent.switches(), 1);
        // Hold the signal constant: windows go quiet, and after the
        // m = 2 quiet streak control returns to the learned policy.
        assert_eq!(agent.decide(&obs), 0);
        assert_eq!(agent.decide(&obs), 5, "recovered to the learned policy");
        assert_eq!(agent.recoveries(), 1);
        assert_eq!(agent.switch_index(), Some(1), "first trip index is kept");
    }

    #[test]
    fn buffer_fallback_reads_the_buffer_column() {
        let mut fb = BufferFallback::default();
        let mut obs = [0.0f32; OBS_DIM];
        obs[BUFFER_COL] = 0.2; // 2 s — under the 5 s reservoir
        assert_eq!(fb.decide(&obs), 0);
        obs[BUFFER_COL] = 6.0; // 60 s — above reservoir + cushion
        assert_eq!(fb.decide(&obs), NUM_BITRATES - 1);
    }
}
