//! The [`UncertaintySignal`] trait and the U_S novelty signal.
//!
//! A signal maps the stream of per-decision observations to a scalar
//! uncertainty value; the [`crate::monitor::Monitor`] smooths that value
//! with a k-window variance and trips after l consecutive exceedances
//! (§2.5). The trait is generic over the observation type so the same
//! machinery can guard both the ABR case study (`O = [f32]`, the
//! `osa_abr` observation row) and future domains (congestion control).

use osa_abr::HISTORY_LEN;
use osa_nn::tensor::Tensor;
use osa_ocsvm::detector::NoveltyDetector;
use osa_ocsvm::features::{FeatureWindow, FEATURE_DIM};

/// A per-decision uncertainty scalar over observations of type `O`.
///
/// `observe` is called exactly once per decision, *before* the policy
/// acts, and must be allocation-free after warm-up — its cost is the
/// per-decision price of safety that `BENCH_osap.json` records. Signals
/// that need warm-up (feature windows, variance rings) return their
/// quiet value until ready.
pub trait UncertaintySignal<O: ?Sized> {
    /// Stable identifier used in figure artifacts and bench reports
    /// (`"u_s"`, `"u_pi"`, `"u_v"`).
    fn name(&self) -> &'static str;

    /// Consume one observation and return the raw uncertainty value.
    fn observe(&mut self, obs: &O) -> f32;

    /// Forget all per-session state (called at session boundaries).
    fn reset(&mut self);
}

/// Boxed signals forward, so heterogeneous signal sets (the figure
/// binaries sweep U_S/U_π/U_V through one loop) can live in one `Vec`.
impl<O: ?Sized, S: UncertaintySignal<O> + ?Sized> UncertaintySignal<O> for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn observe(&mut self, obs: &O) -> f32 {
        (**self).observe(obs)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// The always-quiet signal: raw value 0 for every observation. Wrapping
/// a [`crate::safe_agent::SafeAgent`] around it yields the *unguarded*
/// learned policy — the baseline every figure compares against.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSignal;

impl<O: ?Sized> UncertaintySignal<O> for NullSignal {
    fn name(&self) -> &'static str {
        "none"
    }

    fn observe(&mut self, _obs: &O) -> f32 {
        0.0
    }

    fn reset(&mut self) {}
}

/// U_S — the paper's classic-ND baseline (§2.4): a novelty detector
/// over the §3.1 throughput features. Each decision pushes the newest
/// throughput sample into the incremental [`FeatureWindow`]; once warm,
/// the raw signal is the detector's novelty score of the current
/// feature vector.
pub struct NoveltySignal<D: NoveltyDetector> {
    detector: D,
    window: FeatureWindow,
    feat: [f32; FEATURE_DIM],
    last: f32,
    /// Deferred-scoring mode (see [`NoveltySignal::begin_deferred`]):
    /// `observe` collects rates instead of scoring.
    deferred: bool,
    rates: Vec<f32>,
}

impl<D: NoveltyDetector> NoveltySignal<D> {
    /// Wrap an already-fitted detector.
    pub fn new(detector: D) -> Self {
        NoveltySignal {
            detector,
            window: FeatureWindow::new(),
            feat: [0.0; FEATURE_DIM],
            last: 0.0,
            deferred: false,
            rates: Vec::new(),
        }
    }

    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// Enter deferred-scoring mode: `observe` records the throughput
    /// rate and returns the quiet value without touching the detector;
    /// [`NoveltySignal::deferred_raw_series`] later reconstructs the
    /// whole session's raw series through one batched scoring call.
    /// Only sound when the raw value cannot influence the session —
    /// i.e. under a monitor with `α = ∞`, which is exactly the
    /// calibration setting ([`crate::calibrate::calibrate_novelty`]).
    /// `reset` (the session boundary) clears the collected rates but
    /// stays in deferred mode until [`NoveltySignal::end_deferred`].
    pub fn begin_deferred(&mut self) {
        self.deferred = true;
        self.rates.clear();
    }

    /// Leave deferred mode; `observe` scores per decision again.
    pub fn end_deferred(&mut self) {
        self.deferred = false;
        self.rates.clear();
    }

    /// Replay the rates collected since the last reset into the raw
    /// signal series `observe` would have produced live, scoring every
    /// ready feature window in one [`NoveltyDetector::score_batch_into`]
    /// call — bit-identical to the per-decision path because the
    /// batched engine is the canonical scorer at every batch size.
    pub fn deferred_raw_series(&self, out: &mut Vec<f32>) {
        assert!(self.deferred, "deferred_raw_series outside deferred mode");
        out.clear();
        let mut window = FeatureWindow::new();
        let mut feat = [0.0f32; FEATURE_DIM];
        let mut feats = Tensor::zeros(0, FEATURE_DIM);
        let mut ready = Vec::with_capacity(self.rates.len());
        for &r in &self.rates {
            window.push(r);
            ready.push(window.ready());
            if window.ready() {
                window.write(&mut feat);
                feats.push_row(&feat);
            }
        }
        let mut scores = vec![0.0f32; feats.rows()];
        self.detector.score_batch_into(&feats, &mut scores);
        let mut last = 0.0f32;
        let mut next = 0usize;
        for was_ready in ready {
            if was_ready {
                last = scores[next];
                next += 1;
            }
            out.push(last);
        }
    }
}

impl<D: NoveltyDetector> UncertaintySignal<[f32]> for NoveltySignal<D> {
    fn name(&self) -> &'static str {
        "u_s"
    }

    /// The newest throughput sample sits at observation column
    /// `HISTORY_LEN − 1`, normalized by ÷10 in `encode_obs` — undo that
    /// so the features live on the same Mbit/s scale the detector was
    /// fitted on.
    fn observe(&mut self, obs: &[f32]) -> f32 {
        let rate = obs[HISTORY_LEN - 1] * 10.0;
        if self.deferred {
            self.rates.push(rate);
            return 0.0;
        }
        self.window.push(rate);
        if self.window.ready() {
            self.window.write(&mut self.feat);
            self.last = self.detector.score(&self.feat);
        }
        // Until warm, hold the quiet value (0.0 initially) so the
        // monitor's variance window sees no spurious jump.
        self.last
    }

    fn reset(&mut self) {
        self.window.reset();
        self.last = 0.0;
        self.rates.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_abr::OBS_DIM;
    use osa_ocsvm::features::FEATURE_PAIRS;
    use osa_ocsvm::features::FEATURE_WINDOW;

    /// Scores a feature vector by its plain sum — enough to check the
    /// plumbing without a real fit.
    struct SumDetector;
    impl NoveltyDetector for SumDetector {
        fn name(&self) -> &'static str {
            "sum"
        }
        fn fit(&mut self, _x: &osa_nn::tensor::Tensor) {}
        fn score(&self, x: &[f32]) -> f32 {
            x.iter().sum()
        }
    }

    #[test]
    fn warmup_then_scores_track_throughput() {
        let mut sig = NoveltySignal::new(SumDetector);
        let mut obs = [0.0f32; OBS_DIM];
        let warm = FEATURE_WINDOW + FEATURE_PAIRS - 1;
        for i in 0..warm - 1 {
            obs[HISTORY_LEN - 1] = 0.3;
            assert_eq!(sig.observe(&obs), 0.0, "push {i} should still be quiet");
        }
        obs[HISTORY_LEN - 1] = 0.3;
        let s = sig.observe(&obs);
        // 5 pairs of (mean 3.0 Mbit/s, std 0): sum = 15.
        assert!((s - 15.0).abs() < 1e-4, "got {s}");
        sig.reset();
        assert_eq!(sig.observe(&obs), 0.0);
    }
}
