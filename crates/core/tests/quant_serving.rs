//! Int8 serving fidelity, end to end: the quantized path must make the
//! *same safety decisions* as the f32 path on the paper's two headline
//! scenarios, and must stay bit-identical across worker counts.
//!
//! # Tolerance contract
//!
//! Quantization perturbs logits and values, so per-decision bits differ
//! by design. What must NOT drift is the safety behavior:
//!
//! - **fig1 scenario (in-distribution Norway):** a calibrated U_V agent
//!   never switches in f32; the int8 agent must not switch either —
//!   zero spurious trips tolerated.
//! - **fig2 scenario (shifted Belgium 4G):** every session the f32
//!   agent trips, the int8 agent must also trip, and the first-switch
//!   decision index must agree within ±2 decisions (one l-run of
//!   exceedances can shift by at most the quantization noise crossing
//!   the threshold one window earlier/later). Sessions quiet in f32
//!   must stay quiet in int8.
//!
//! These bounds are asserted here and quoted in EXPERIMENTS.md — widen
//! them only with a documented reason.
//!
//! # Determinism contract
//!
//! The int8 forward accumulates in i32, which is associative: fleet
//! telemetry under `ServePrecision::Int8` is bit-identical across pools
//! {1, 2, 4, 8} — the same guarantee the f32 lane8 fold-order contract
//! buys, obtained for free from integer arithmetic.

use osa_abr::prelude::*;
use osa_core::prelude::*;
use osa_runtime::{with_pool, ThreadPool};
use osa_trace::prelude::*;

const ARTIFACT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../artifacts/pensieve_ensemble_norway.json"
);

/// First-switch index agreement on tripped sessions (fig2), in
/// decisions. One variance window of quantization noise either way.
const SWITCH_INDEX_TOLERANCE: usize = 2;

const POOL_WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn artifact_text() -> String {
    std::fs::read_to_string(ARTIFACT)
        .expect("missing artifact — run `cargo run --release --example osap_ensemble_train`")
}

fn load_ensemble(text: &str) -> PensieveEnsemble {
    PensieveEnsemble::from_json(text).expect("artifact parses")
}

/// Calibrate the int8 path exactly as production would: activation
/// scales from the observations the f32 policy sees on the validation
/// split.
fn calibrated_int8(text: &str, video: &VideoModel, cfg: &AbrConfig) -> PensieveEnsemble {
    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let mut ens = load_ensemble(text);
    let calib = calibration_observations(&mut ens, video, cfg, &split.validation[..4], 64);
    ens.calibrate_int8(&calib);
    ens
}

/// U_V α calibrated on validation traces — shared by both precisions,
/// like a deployed fleet.
fn calibrated_alpha(text: &str, video: &VideoModel, cfg: &AbrConfig) -> f32 {
    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let ens = shared(load_ensemble(text));
    let mut agent = abr_safe_agent(
        ens.clone(),
        ValueDisagreement::new(ens),
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    calibrate(
        &mut agent,
        video,
        cfg,
        &split.validation[..4],
        DEFAULT_MARGIN,
    )
    .alpha
}

/// Per-trace (first_switch, switches) under a U_V safe agent at the
/// given precision.
fn scalar_switch_profile(
    text: &str,
    video: &VideoModel,
    cfg: &AbrConfig,
    traces: &[Trace],
    alpha: f32,
    precision: ServePrecision,
) -> Vec<(Option<usize>, usize)> {
    let mut ens = calibrated_int8(text, video, cfg);
    ens.set_precision(precision).expect("calibrated above");
    let ens = shared(ens);
    let mut agent = abr_safe_agent(
        ens.clone(),
        ValueDisagreement::new(ens),
        Monitor::new(DEFAULT_K, alpha, DEFAULT_L),
    );
    let mut out = Vec::with_capacity(traces.len());
    let mut run = SessionRun::default();
    for t in traces {
        run_session_into(&mut agent, video, cfg, t, &mut run);
        out.push((run.switch_index, run.switches));
    }
    out
}

#[test]
fn int8_matches_f32_switch_decisions_on_fig1_and_fig2_scenarios() {
    let text = artifact_text();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let alpha = calibrated_alpha(&text, &video, &cfg);

    // fig1 scenario: in-distribution Norway test traces.
    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let in_dist = &split.test[..5];
    let f32_in = scalar_switch_profile(&text, &video, &cfg, in_dist, alpha, ServePrecision::F32);
    let int8_in = scalar_switch_profile(&text, &video, &cfg, in_dist, alpha, ServePrecision::Int8);
    for (i, (f, q)) in f32_in.iter().zip(&int8_in).enumerate() {
        assert_eq!(
            f.0, None,
            "fig1 precondition: calibrated f32 agent switched on in-distribution trace {i}"
        );
        assert_eq!(
            q.0, None,
            "int8 agent spuriously switched on in-distribution trace {i} (f32 stayed quiet)"
        );
    }

    // fig2 scenario: shifted Belgium 4G traces.
    let shifted = Dataset::Belgium.generate(6, 400, 77);
    let f32_sh = scalar_switch_profile(&text, &video, &cfg, &shifted, alpha, ServePrecision::F32);
    let int8_sh = scalar_switch_profile(&text, &video, &cfg, &shifted, alpha, ServePrecision::Int8);
    let tripped = f32_sh.iter().filter(|(s, _)| s.is_some()).count();
    assert!(
        tripped >= shifted.len() / 2,
        "fig2 precondition: the shift must trip most f32 sessions (tripped {tripped}/{})",
        shifted.len()
    );
    for (i, (f, q)) in f32_sh.iter().zip(&int8_sh).enumerate() {
        match (f.0, q.0) {
            (Some(fi), Some(qi)) => {
                let delta = fi.abs_diff(qi);
                assert!(
                    delta <= SWITCH_INDEX_TOLERANCE,
                    "shifted trace {i}: first switch moved {delta} decisions \
                     (f32 @ {fi}, int8 @ {qi}, tolerance {SWITCH_INDEX_TOLERANCE})"
                );
            }
            (None, None) => {}
            (f, q) => panic!("shifted trace {i}: trip decision diverged (f32 {f:?}, int8 {q:?})"),
        }
    }
}

#[test]
fn int8_fleet_telemetry_is_pool_invariant() {
    let text = artifact_text();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let alpha = calibrated_alpha(&text, &video, &cfg);

    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let mut traces: Vec<Trace> = split.test[..5].to_vec();
    traces.extend(Dataset::Belgium.generate(3, 400, 77));

    // 23 sessions: prime, so every pool width splits the fleet ragged;
    // shard 7 forces sub-batching inside lanes.
    let n = 23;
    let rounds = 48;
    let serve = ServeConfig {
        alpha,
        shard: 7,
        auto_reset: true,
        precision: ServePrecision::Int8,
        ..ServeConfig::default()
    };

    let mut reference: Option<(usize, Vec<u64>)> = None;
    for width in POOL_WIDTHS {
        let pool = ThreadPool::new(width);
        let bits = with_pool(&pool, || {
            let mut fleet = FleetEngine::new(
                calibrated_int8(&text, &video, &cfg),
                FleetSignal::ValueDisagreement,
                video.clone(),
                cfg.clone(),
                traces.clone(),
                n,
                &serve,
            );
            fleet.run(rounds);
            let t = fleet.telemetry();
            let mut bits: Vec<u64> = vec![
                t.decisions,
                t.mean_qoe_per_chunk.to_bits(),
                t.qoe_p50.to_bits(),
                t.switched_sessions as u64,
                t.total_switches,
                t.mean_first_switch.to_bits(),
            ];
            for i in 0..n {
                bits.push(fleet.sim().qoe_total(i).to_bits());
                bits.push(fleet.monitors().variance(i).to_bits() as u64);
                bits.push(fleet.monitors().switches(i) as u64);
            }
            bits
        });
        match &reference {
            None => reference = Some((width, bits)),
            Some((w0, want)) => {
                assert_eq!(
                    &bits, want,
                    "int8 serve telemetry: pool width {width} diverged from width {w0}"
                );
            }
        }
    }
}

#[test]
fn int8_fleet_tracks_f32_fleet_switch_behavior() {
    // The fleet engine's int8 dispatch must show the same fidelity as
    // the scalar agent: identical trip/no-trip per session, first
    // switch within tolerance.
    let text = artifact_text();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let alpha = calibrated_alpha(&text, &video, &cfg);

    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let mut traces: Vec<Trace> = split.test[..4].to_vec();
    traces.extend(Dataset::Belgium.generate(4, 400, 77));
    let n = traces.len();

    let profile = |precision: ServePrecision| -> Vec<(Option<usize>, usize)> {
        let serve = ServeConfig {
            alpha,
            shard: 3,
            precision,
            ..ServeConfig::default()
        };
        let mut fleet = FleetEngine::new(
            calibrated_int8(&text, &video, &cfg),
            FleetSignal::ValueDisagreement,
            video.clone(),
            cfg.clone(),
            traces.clone(),
            n,
            &serve,
        );
        while fleet.round() {}
        (0..n)
            .map(|i| (fleet.monitors().tripped_at(i), fleet.monitors().switches(i)))
            .collect()
    };

    let f32_prof = profile(ServePrecision::F32);
    let int8_prof = profile(ServePrecision::Int8);
    let tripped = f32_prof.iter().filter(|(s, _)| s.is_some()).count();
    assert!(tripped >= 2, "scenario must trip some sessions ({tripped})");
    for (i, (f, q)) in f32_prof.iter().zip(&int8_prof).enumerate() {
        match (f.0, q.0) {
            (Some(fi), Some(qi)) => assert!(
                fi.abs_diff(qi) <= SWITCH_INDEX_TOLERANCE,
                "fleet session {i}: first switch f32 @ {fi} vs int8 @ {qi}"
            ),
            (None, None) => {}
            (f, q) => panic!("fleet session {i}: trip diverged (f32 {f:?}, int8 {q:?})"),
        }
    }
}

#[test]
#[should_panic(expected = "calibrate_int8")]
fn int8_serving_without_calibration_panics() {
    let text = artifact_text();
    let serve = ServeConfig {
        precision: ServePrecision::Int8,
        ..ServeConfig::default()
    };
    let traces = vec![Trace::new("flat", 1.0, vec![3.0; 300])];
    let _ = FleetEngine::new(
        load_ensemble(&text), // never calibrated
        FleetSignal::Null,
        VideoModel::envivio(),
        AbrConfig::default(),
        traces,
        1,
        &serve,
    );
}
