//! The serving engine's two contracts, pinned end to end:
//!
//! 1. **Fleet ≡ scalar.** A [`FleetEngine`] session must produce the
//!    exact bits of a per-session [`SafeAgent`] on the same trace —
//!    QoE accounting, switch/recovery indices, lifetime counters —
//!    sticky and reverse-switching alike. The fleet path re-implements
//!    the decision arithmetic in struct-of-arrays form; this test is
//!    what keeps the two implementations from drifting.
//! 2. **Pool invariance.** Fleet telemetry and per-session monitor
//!    state are bit-identical at any worker count, including uneven
//!    session counts that split ragged across lanes and shard sizes
//!    that force sub-batching inside a lane.

use osa_abr::prelude::*;
use osa_core::prelude::*;
use osa_core::serve::FleetMonitors;
use osa_nn::rng::Rng;
use osa_nn::tensor::Tensor;
use osa_ocsvm::prelude::*;
use osa_runtime::{with_pool, ThreadPool};
use osa_trace::prelude::*;

const ARTIFACT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../artifacts/pensieve_ensemble_norway.json"
);

const POOL_WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn artifact_text() -> String {
    std::fs::read_to_string(ARTIFACT)
        .expect("missing artifact — run `cargo run --release --example osap_ensemble_train`")
}

fn load_ensemble(text: &str) -> PensieveEnsemble {
    PensieveEnsemble::from_json(text).expect("artifact parses")
}

/// A trace mix with both in-distribution and shifted links, so some
/// sessions trip and some stay quiet.
fn mixed_traces() -> Vec<Trace> {
    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let mut traces: Vec<Trace> = split.test[..5].to_vec();
    traces.extend(Dataset::Belgium.generate(3, 400, 77));
    traces
}

fn fitted_svm() -> OcSvm {
    let mut rng = Rng::seed_from_u64(41);
    let rates: Vec<f32> = (0..160).map(|_| 1.0 + rng.next_f32() * 3.0).collect();
    let windows = window_features(&rates);
    let mut x = Tensor::zeros(windows.len(), FEATURE_DIM);
    for (i, w) in windows.iter().enumerate() {
        x.row_mut(i).copy_from_slice(w);
    }
    let mut svm = OcSvm::new(OcSvmConfig::default());
    svm.fit(&x);
    svm
}

/// Everything a session pair must agree on, in bits.
#[derive(Debug, PartialEq)]
struct SessionBits {
    qoe: u64,
    rebuffer: u64,
    first_switch: Option<usize>,
    switches: usize,
    recoveries: usize,
    tripped: bool,
    locked: bool,
}

/// Run `traces.len()` fleet sessions (one per trace) to completion and
/// the scalar safe agent over the same traces, and demand bit-equality.
fn assert_fleet_matches_scalar(
    signal_fleet: impl Fn() -> FleetSignal,
    scalar_run: impl Fn(&Trace, f32, Option<ReverseConfig>) -> SessionBits,
    alpha: f32,
    reverse: Option<ReverseConfig>,
) {
    let text = artifact_text();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let traces = mixed_traces();
    let n = traces.len();

    let serve = ServeConfig {
        alpha,
        reverse,
        shard: 3, // smaller than the fleet: forces sub-batched lanes
        ..ServeConfig::default()
    };
    let mut fleet = FleetEngine::new(
        load_ensemble(&text),
        signal_fleet(),
        video.clone(),
        cfg.clone(),
        traces.clone(),
        n,
        &serve,
    );
    while fleet.round() {}

    for (i, trace) in traces.iter().enumerate() {
        let want = scalar_run(trace, alpha, reverse);
        let got = SessionBits {
            qoe: fleet.sim().qoe_total(i).to_bits(),
            rebuffer: fleet.sim().rebuffer_total(i).to_bits(),
            first_switch: fleet.monitors().tripped_at(i),
            switches: fleet.monitors().switches(i),
            recoveries: fleet.monitors().recoveries(i),
            tripped: fleet.monitors().tripped(i),
            locked: fleet.monitors().locked(i),
        };
        assert_eq!(got, want, "fleet session {i} ({}) diverged", trace.id);
    }
}

fn scalar_bits<S: UncertaintySignal<[f32]>>(
    signal: S,
    trace: &Trace,
    alpha: f32,
    reverse: Option<ReverseConfig>,
    video: &VideoModel,
    cfg: &AbrConfig,
    text: &str,
) -> SessionBits {
    let ens = shared(load_ensemble(text));
    let monitor = match reverse {
        Some(r) => Monitor::with_reverse(DEFAULT_K, alpha, DEFAULT_L, r),
        None => Monitor::new(DEFAULT_K, alpha, DEFAULT_L),
    };
    let mut agent = abr_safe_agent(ens, signal, monitor);
    let run = run_session(&mut agent, video, cfg, trace);
    SessionBits {
        qoe: run.qoe.to_bits(),
        rebuffer: run.rebuffer_s.to_bits(),
        first_switch: run.switch_index,
        switches: run.switches,
        recoveries: run.recoveries,
        tripped: agent.tripped(),
        locked: agent.monitor().locked(),
    }
}

/// Calibrate U_V once on in-distribution traces — both implementations
/// then deploy the same α, like production would.
fn calibrated_alpha(text: &str, video: &VideoModel, cfg: &AbrConfig) -> f32 {
    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let ens = shared(load_ensemble(text));
    let mut agent = abr_safe_agent(
        ens.clone(),
        ValueDisagreement::new(ens),
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    calibrate(
        &mut agent,
        video,
        cfg,
        &split.validation[..4],
        DEFAULT_MARGIN,
    )
    .alpha
}

#[test]
fn fleet_value_disagreement_matches_scalar_sticky() {
    let text = artifact_text();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let alpha = calibrated_alpha(&text, &video, &cfg);
    assert_fleet_matches_scalar(
        || FleetSignal::ValueDisagreement,
        |trace, alpha, reverse| {
            let ens = shared(load_ensemble(&text));
            scalar_bits(
                ValueDisagreement::new(ens),
                trace,
                alpha,
                reverse,
                &video,
                &cfg,
                &text,
            )
        },
        alpha,
        None,
    );
}

#[test]
fn fleet_value_disagreement_matches_scalar_with_reverse_switching() {
    let text = artifact_text();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let alpha = calibrated_alpha(&text, &video, &cfg);
    assert_fleet_matches_scalar(
        || FleetSignal::ValueDisagreement,
        |trace, alpha, reverse| {
            let ens = shared(load_ensemble(&text));
            scalar_bits(
                ValueDisagreement::new(ens),
                trace,
                alpha,
                reverse,
                &video,
                &cfg,
                &text,
            )
        },
        alpha,
        Some(ReverseConfig::new(3, 8)),
    );
}

#[test]
fn fleet_novelty_matches_scalar() {
    let text = artifact_text();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    // U_S margins live on their own scale; a small fixed α that trips on
    // the shifted links exercises the freeze-while-tripped path.
    let alpha = 0.05f32;
    let svm = fitted_svm();
    assert_fleet_matches_scalar(
        || FleetSignal::Novelty(svm.clone()),
        |trace, alpha, reverse| {
            scalar_bits(
                NoveltySignal::new(svm.clone()),
                trace,
                alpha,
                reverse,
                &video,
                &cfg,
                &text,
            )
        },
        alpha,
        None,
    );
}

#[test]
fn fleet_telemetry_is_pool_invariant() {
    let text = artifact_text();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let traces = mixed_traces();
    let alpha = calibrated_alpha(&text, &video, &cfg);

    // 37 sessions: prime, so every pool width splits the fleet unevenly
    // across lanes; shard 16 forces sub-batching inside lanes too.
    let n = 37;
    let rounds = 60;
    let serve = ServeConfig {
        alpha,
        reverse: Some(ReverseConfig::new(2, 4)),
        shard: 16,
        auto_reset: true,
        ..ServeConfig::default()
    };

    let mut reference: Option<(usize, Vec<u64>)> = None;
    for width in POOL_WIDTHS {
        let pool = ThreadPool::new(width);
        let bits = with_pool(&pool, || {
            let mut fleet = FleetEngine::new(
                load_ensemble(&text),
                FleetSignal::ValueDisagreement,
                video.clone(),
                cfg.clone(),
                traces.clone(),
                n,
                &serve,
            );
            fleet.run(rounds);
            let t = fleet.telemetry();
            let mut bits: Vec<u64> = vec![
                t.sessions as u64,
                t.rounds,
                t.decisions,
                t.mean_qoe_per_chunk.to_bits(),
                t.mean_rebuffer_s.to_bits(),
                t.qoe_p10.to_bits(),
                t.qoe_p50.to_bits(),
                t.qoe_p90.to_bits(),
                t.switched_sessions as u64,
                t.recovered_sessions as u64,
                t.locked_sessions as u64,
                t.total_switches,
                t.total_recoveries,
                t.mean_first_switch.to_bits(),
            ];
            for i in 0..n {
                bits.push(fleet.sim().qoe_total(i).to_bits());
                bits.push(fleet.monitors().variance(i).to_bits() as u64);
                bits.push(fleet.monitors().switches(i) as u64);
                bits.push(fleet.monitors().recoveries(i) as u64);
                bits.push(fleet.monitors().last_trip(i).map_or(u64::MAX, |v| v as u64));
                bits.push(
                    fleet
                        .monitors()
                        .last_recovery(i)
                        .map_or(u64::MAX, |v| v as u64),
                );
                bits.push(fleet.monitors().locked(i) as u64);
            }
            bits
        });
        match &reference {
            None => reference = Some((width, bits)),
            Some((w0, want)) => {
                assert_eq!(
                    &bits, want,
                    "serve telemetry: pool width {width} diverged from width {w0}"
                );
            }
        }
    }
    let switched = reference.expect("ran").1[8];
    assert!(switched > 0, "the shifted links must trip some sessions");
}

#[test]
fn fleet_monitor_hysteresis_properties_hold_on_random_streams() {
    // Drive SoA monitors with pseudo-random variance streams and check
    // the reverse-switching invariants the paper's hysteresis needs:
    // no recovery within m windows of a trip, every recovery is
    // preceded by a trip, a re-trip is a counted second switch, and a
    // locked session never recovers again.
    let m = 3usize;
    let guard = 5usize;
    let cfg = ServeConfig {
        k: 4,
        alpha: 0.3,
        l: 2,
        reverse: Some(ReverseConfig::new(m, guard)),
        ..ServeConfig::default()
    };
    let sessions = 24usize;
    let mut mon = FleetMonitors::new(sessions, &cfg);
    let mut rng = Rng::seed_from_u64(2026);
    let mut was_tripped = vec![false; sessions];
    let mut last_trip = vec![None::<usize>; sessions];
    let mut observed_switches = vec![0usize; sessions];
    let mut observed_recoveries = vec![0usize; sessions];

    for step in 0..600 {
        for i in 0..sessions {
            // Bursty stream: mostly quiet, occasional loud stretches.
            let loud = rng.next_f32() < 0.18;
            let raw = if loud {
                2.0 + rng.next_f32() * 3.0
            } else {
                0.1 * rng.next_f32()
            };
            let locked_before = mon.locked(i);
            let tripped = if mon.observing(i) {
                mon.update(i, raw)
            } else {
                mon.tripped(i)
            };
            if tripped && !was_tripped[i] {
                observed_switches[i] += 1;
                last_trip[i] = Some(step);
            }
            if !tripped && was_tripped[i] {
                observed_recoveries[i] += 1;
                let t = last_trip[i].expect("recovery implies a prior trip");
                assert!(
                    step - t >= m,
                    "session {i} recovered {} steps after its trip (< m = {m})",
                    step - t
                );
            }
            if locked_before {
                assert!(tripped, "session {i} recovered after locking");
            }
            was_tripped[i] = tripped;
        }
    }

    let mut total_switches = 0usize;
    let mut total_recoveries = 0usize;
    for i in 0..sessions {
        assert_eq!(mon.switches(i), observed_switches[i], "session {i}");
        assert_eq!(mon.recoveries(i), observed_recoveries[i], "session {i}");
        total_switches += mon.switches(i);
        total_recoveries += mon.recoveries(i);
    }
    // The bursty streams must actually exercise the machine.
    assert!(total_switches > sessions, "streams too quiet to test trips");
    assert!(total_recoveries > 0, "streams never recovered");
}
