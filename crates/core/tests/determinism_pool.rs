//! Bit-identity of the whole safety layer across worker-pool widths.
//!
//! The OSAP contract is that deployment behavior is a pure function of
//! the inputs — never of the thread budget. These tests run the same
//! workloads under pools of 1, 2, 4, and 8 workers (via
//! `osa_runtime::with_pool`, overriding `OSA_THREADS`) and demand the
//! exact bits back every time: ensemble inference (the stacked batched
//! GEMM fans out over the pool), each signal's raw/variance time
//! series, and the SafeAgent's switch decisions.

use osa_abr::prelude::*;
use osa_core::prelude::*;
use osa_runtime::{with_pool, ThreadPool};
use osa_trace::prelude::*;

const ARTIFACT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../artifacts/pensieve_ensemble_norway.json"
);

const POOL_WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn artifact_text() -> String {
    std::fs::read_to_string(ARTIFACT)
        .expect("missing artifact — run `cargo run --release --example osap_ensemble_train`")
}

/// Fresh ensemble per invocation: the scratch caches inside a shared
/// ensemble carry across calls, which would make later pool widths see
/// different warm-up state than the first.
fn load_shared(text: &str) -> SharedEnsemble {
    shared(PensieveEnsemble::from_json(text).expect("artifact parses"))
}

/// Run `f` under each pool width and assert every width reproduces the
/// first width's bits.
fn assert_pool_invariant<T: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> T) {
    let mut reference: Option<(usize, T)> = None;
    for width in POOL_WIDTHS {
        let pool = ThreadPool::new(width);
        let got = with_pool(&pool, &f);
        match &reference {
            None => reference = Some((width, got)),
            Some((w0, want)) => {
                assert_eq!(
                    &got, want,
                    "{label}: pool width {width} diverged from width {w0}"
                );
            }
        }
    }
}

#[test]
fn ensemble_inference_bits_are_pool_invariant() {
    let text = artifact_text();
    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    assert_pool_invariant("stacked policy/value forward", || {
        // Drive real observations through the ensemble via a session,
        // then capture the last decision's full probability tensor.
        let ens = load_shared(&text);
        let mut agent = abr_safe_agent(
            ens.clone(),
            NullSignal,
            Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
        );
        let run = run_session(&mut agent, &video, &cfg, &split.test[0]);
        let mut e = ens.borrow_mut();
        let obs = vec![0.25f32; osa_abr::OBS_DIM];
        e.policy_eval(&obs);
        let mut bits: Vec<u32> = e.mean_probs().iter().map(|p| p.to_bits()).collect();
        bits.extend(e.replica_probs().data().iter().map(|p| p.to_bits()));
        bits.push(e.value_disagreement(&obs).to_bits());
        (run.qoe.to_bits(), run.chunks, bits)
    });
}

#[test]
fn signal_series_and_switches_are_pool_invariant() {
    let text = artifact_text();
    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let shifted = Dataset::Belgium.generate(1, 400, 77).pop().unwrap();

    // U_π and U_V over one in-distribution and one shifted session;
    // calibration runs too, so α itself must be pool-invariant.
    assert_pool_invariant("U_pi/U_V series + switch indices", || {
        type SessionBits = (u32, Vec<u32>, Vec<u32>, Option<usize>);
        let ens = load_shared(&text);
        let mut out: Vec<SessionBits> = Vec::new();
        let mut u_pi = abr_safe_agent(
            ens.clone(),
            PolicyDisagreement::new(ens.clone()),
            Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
        );
        let mut u_v = abr_safe_agent(
            ens.clone(),
            ValueDisagreement::new(ens.clone()),
            Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
        );
        let cal_pi = calibrate(
            &mut u_pi,
            &video,
            &cfg,
            &split.validation[..4],
            DEFAULT_MARGIN,
        );
        let cal_v = calibrate(
            &mut u_v,
            &video,
            &cfg,
            &split.validation[..4],
            DEFAULT_MARGIN,
        );
        for trace in [&split.test[0], &shifted] {
            let run = run_session(&mut u_pi, &video, &cfg, trace);
            out.push((
                cal_pi.alpha.to_bits(),
                run.raw.iter().map(|v| v.to_bits()).collect(),
                run.variance.iter().map(|v| v.to_bits()).collect(),
                run.switch_index,
            ));
            let run = run_session(&mut u_v, &video, &cfg, trace);
            out.push((
                cal_v.alpha.to_bits(),
                run.raw.iter().map(|v| v.to_bits()).collect(),
                run.variance.iter().map(|v| v.to_bits()).collect(),
                run.switch_index,
            ));
        }
        out
    });
}
