//! U_S fidelity after the batched novelty-scoring engine, end to end.
//!
//! The batched engine changed the *arithmetic order* of OC-SVM scoring
//! (distance decomposition + `exp_fast` instead of per-SV sequential
//! distances + libm `exp`), so raw score bits differ from the pre-batch
//! implementation by design and the figure artifacts regenerate once.
//! What must NOT drift is the safety behavior of the paper's two
//! headline scenarios, and the agreement between the two production
//! paths that now share the engine:
//!
//! - **Calibration equivalence:** [`calibrate_novelty`] (deferred
//!   collection + one batched scoring call + monitor replay) must
//!   produce the *bit-identical* `Calibration` of the generic
//!   per-decision [`calibrate`], anchored and unanchored alike.
//! - **fig1 scenario (in-distribution Norway):** a U_S agent calibrated
//!   through the batched path never switches on held-out
//!   in-distribution traces — zero spurious trips tolerated.
//! - **fig2 scenario (shifted Belgium 4G):** the shift trips most
//!   sessions, and the fleet engine's per-shard batched scoring agrees
//!   with the scalar per-decision agent on every trip decision — same
//!   trip/no-trip, first switch within ±2 decisions (expected exact:
//!   both paths are the same canonical batch engine).
//!
//! These bounds are quoted in EXPERIMENTS.md — widen only with a
//! documented reason.

use osa_abr::prelude::*;
use osa_abr::HISTORY_LEN;
use osa_core::prelude::*;
use osa_nn::tensor::Tensor;
use osa_ocsvm::prelude::*;
use osa_trace::prelude::*;

const ARTIFACT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../artifacts/pensieve_ensemble_norway.json"
);

/// First-switch agreement between the scalar and fleet paths (fig2).
const SWITCH_INDEX_TOLERANCE: usize = 2;

fn artifact_text() -> String {
    std::fs::read_to_string(ARTIFACT)
        .expect("missing artifact — run `cargo run --release --example osap_ensemble_train`")
}

fn load_ensemble(text: &str) -> PensieveEnsemble {
    PensieveEnsemble::from_json(text).expect("artifact parses")
}

/// Collects the raw Mbit/s rates the U_S feature pipeline consumes
/// (mirrors the corpus collection in `osa-bench`).
struct RateCollector {
    rates: Vec<f32>,
}

impl UncertaintySignal<[f32]> for RateCollector {
    fn name(&self) -> &'static str {
        "collect"
    }
    fn observe(&mut self, obs: &[f32]) -> f32 {
        self.rates.push(obs[HISTORY_LEN - 1] * 10.0);
        0.0
    }
    fn reset(&mut self) {}
}

/// Fit the U_S one-class SVM on rates the learned policy actually sees
/// on a few training traces — in-distribution by construction.
fn fitted_svm(text: &str, video: &VideoModel, cfg: &AbrConfig, train: &[Trace]) -> OcSvm {
    let ens = shared(load_ensemble(text));
    let mut collector = abr_safe_agent(
        ens.clone(),
        RateCollector { rates: Vec::new() },
        Monitor::new(DEFAULT_K, f32::INFINITY, DEFAULT_L),
    );
    for t in train {
        run_session(&mut collector, video, cfg, t);
    }
    let windows = window_features(&collector.signal().rates);
    let mut x = Tensor::zeros(windows.len(), FEATURE_DIM);
    for (i, w) in windows.iter().enumerate() {
        x.row_mut(i).copy_from_slice(w);
    }
    let mut svm = OcSvm::new(OcSvmConfig::default());
    svm.fit(&x);
    svm
}

fn us_agent(text: &str, svm: OcSvm, alpha: f32) -> AbrSafeAgent<NoveltySignal<OcSvm>> {
    let ens = shared(load_ensemble(text));
    abr_safe_agent(
        ens.clone(),
        NoveltySignal::new(svm),
        Monitor::new(DEFAULT_K, alpha, DEFAULT_L),
    )
}

#[test]
fn calibrate_novelty_matches_generic_calibrate_bit_for_bit() {
    let text = artifact_text();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let svm = fitted_svm(&text, &video, &cfg, &split.train[..4]);
    let traces = &split.validation[..3];

    let mut generic = us_agent(&text, svm.clone(), f32::INFINITY);
    let mut deferred = us_agent(&text, svm, f32::INFINITY);
    let want = calibrate(&mut generic, &video, &cfg, traces, DEFAULT_MARGIN);
    let got = calibrate_novelty(&mut deferred, &video, &cfg, traces, DEFAULT_MARGIN);
    assert_eq!(got.alpha.to_bits(), want.alpha.to_bits(), "alpha");
    assert_eq!(got.mu.to_bits(), want.mu.to_bits(), "mu");
    assert_eq!(
        got.max_variance.to_bits(),
        want.max_variance.to_bits(),
        "max_variance"
    );
    assert_eq!((got.k, got.l), (want.k, want.l));

    // Anchored mode rides through the replay monitor's clone too.
    generic.monitor_mut().set_anchor(Some(want.mu));
    deferred.monitor_mut().set_anchor(Some(got.mu));
    let want_a = calibrate(&mut generic, &video, &cfg, traces, DEFAULT_MARGIN);
    let got_a = calibrate_novelty(&mut deferred, &video, &cfg, traces, DEFAULT_MARGIN);
    assert_eq!(
        got_a.alpha.to_bits(),
        want_a.alpha.to_bits(),
        "anchored alpha"
    );
    assert_eq!(
        got_a.max_variance.to_bits(),
        want_a.max_variance.to_bits(),
        "anchored max_variance"
    );
}

#[test]
fn batched_us_keeps_fig1_quiet_and_fig2_tripping_with_fleet_parity() {
    let text = artifact_text();
    let video = VideoModel::envivio();
    let cfg = AbrConfig::default();
    let split = Split::generate(Dataset::Norway, 60, 400, 2020);
    let svm = fitted_svm(&text, &video, &cfg, &split.train[..4]);

    let mut agent = us_agent(&text, svm.clone(), f32::INFINITY);
    let cal = calibrate_novelty(
        &mut agent,
        &video,
        &cfg,
        &split.validation[..3],
        DEFAULT_MARGIN,
    );
    assert!(cal.alpha.is_finite() && cal.alpha > 0.0);

    // fig1: held-out in-distribution traces must never switch.
    let in_dist = &split.test[..4];
    let mut run = SessionRun::default();
    for t in in_dist {
        run_session_into(&mut agent, &video, &cfg, t, &mut run);
        assert_eq!(
            run.switch_index, None,
            "fig1: calibrated U_S agent spuriously switched on {}",
            t.id
        );
    }

    // fig2: the Belgium 4G shift must trip most sessions on the scalar
    // path, and the fleet engine's per-shard batched scoring must agree
    // per session.
    let shifted = Dataset::Belgium.generate(4, 400, 77);
    let mut scalar_profile = Vec::new();
    for t in &shifted {
        run_session_into(&mut agent, &video, &cfg, t, &mut run);
        scalar_profile.push(run.switch_index);
    }
    let tripped = scalar_profile.iter().filter(|s| s.is_some()).count();
    assert!(
        tripped >= shifted.len() / 2,
        "fig2 precondition: the shift must trip most sessions ({tripped}/{})",
        shifted.len()
    );

    let serve = ServeConfig {
        alpha: cal.alpha,
        shard: 3, // smaller than the fleet: forces sub-batched lanes
        ..ServeConfig::default()
    };
    let n = shifted.len();
    let mut fleet = FleetEngine::new(
        load_ensemble(&text),
        FleetSignal::Novelty(svm),
        video.clone(),
        cfg.clone(),
        shifted.clone(),
        n,
        &serve,
    );
    while fleet.round() {}
    for (i, want) in scalar_profile.iter().enumerate() {
        let got = fleet.monitors().tripped_at(i);
        match (*want, got) {
            (Some(si), Some(fi)) => assert!(
                si.abs_diff(fi) <= SWITCH_INDEX_TOLERANCE,
                "fig2 session {i}: first switch scalar @ {si} vs fleet @ {fi} \
                 (tolerance {SWITCH_INDEX_TOLERANCE})"
            ),
            (None, None) => {}
            (w, g) => panic!("fig2 session {i}: trip diverged (scalar {w:?}, fleet {g:?})"),
        }
    }
}
